//! Trace record → serialize → replay across the full stack: the §5.2
//! methodology ("use AI-processor's instruction trace record as NoC's
//! input") as an end-to-end test.

use noc_core::{FlitClass, Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};
use noc_workloads::{Pattern, Trace, TraceEvent, TrafficGen};

fn build(n: u16) -> (Network, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, n).unwrap();
    let eps = (0..n)
        .map(|i| b.add_node(format!("n{i}"), r, i).unwrap())
        .collect();
    (
        Network::new(b.build().unwrap(), NetworkConfig::default()),
        eps,
    )
}

/// Record a synthetic run into a trace.
fn record(cycles: u64, n: usize, seed: u64) -> Trace {
    let mut gen = TrafficGen::new(n, 0.1, Pattern::UniformRandom, 0.5, seed);
    let mut trace = Trace::new();
    for cycle in 0..cycles {
        for (src, dst, class, bytes) in gen.cycle_events() {
            trace.record(TraceEvent {
                cycle,
                src,
                dst,
                class,
                bytes,
            });
        }
    }
    trace
}

/// Run a trace through a network and return per-class delivery counts
/// plus total latency.
fn run_trace(trace: &Trace, n: u16) -> (u64, u64) {
    let (mut net, eps) = build(n);
    let mut replayer = trace.replay();
    let mut cycle = 0u64;
    loop {
        replayer.pump(cycle, |e| {
            net.enqueue(eps[e.src], eps[e.dst], e.class, e.bytes, e.cycle)
                .is_ok()
        });
        net.tick();
        for &ep in &eps {
            while net.pop_delivered(ep).is_some() {}
        }
        cycle += 1;
        if replayer.finished() && net.in_flight() == 0 {
            break;
        }
        assert!(cycle < 500_000, "trace replay wedged");
    }
    (
        net.stats().delivered.get(),
        net.stats().total_latency[FlitClass::Data.index()].sum()
            + net.stats().total_latency[FlitClass::Request.index()].sum(),
    )
}

#[test]
fn trace_roundtrips_through_json_and_replays_identically() {
    let trace = record(2_000, 8, 42);
    assert!(trace.len() > 100, "trace has substance: {}", trace.len());

    // Serialize → deserialize → replay both; byte-identical behaviour.
    let json = trace.to_json().expect("serialize");
    let restored = Trace::from_json(&json).expect("parse");
    assert_eq!(trace, restored);

    let (delivered_a, latency_a) = run_trace(&trace, 8);
    let (delivered_b, latency_b) = run_trace(&restored, 8);
    assert_eq!(delivered_a, trace.len() as u64, "every event delivered");
    assert_eq!(
        (delivered_a, latency_a),
        (delivered_b, latency_b),
        "replay is deterministic across serialization"
    );
}

#[test]
fn replay_is_backpressure_tolerant() {
    // Replay a dense trace into a much smaller, slower network: events
    // get retried under backpressure but none are lost.
    let trace = record(500, 6, 7);
    let (delivered, _) = run_trace(&trace, 6);
    assert_eq!(delivered, trace.len() as u64);
}

#[test]
fn recorded_traffic_statistics_survive_replay() {
    let trace = record(3_000, 8, 99);
    let reads = trace
        .events()
        .iter()
        .filter(|e| e.class == FlitClass::Request)
        .count();
    let writes = trace
        .events()
        .iter()
        .filter(|e| e.class == FlitClass::Data)
        .count();
    // The generator's 50/50 mix is visible in the recorded trace.
    let frac = reads as f64 / (reads + writes) as f64;
    assert!((frac - 0.5).abs() < 0.1, "read fraction {frac}");
    assert_eq!(trace.total_bytes(), 64 * trace.len() as u64);
}
