//! Transport parity: the CHI protocol must reach the same logical
//! outcome (final MESI states, completion counts, coherence invariants)
//! whether it runs over the bufferless multi-ring NoC, the buffered
//! mesh, or the hub-and-spoke — only timing may differ.

use noc_baseline::{BufferedMesh, HubConfig, HubSpoke, MeshConfig};
use noc_chi::system::ChiTransport;
use noc_chi::{CoherentSystem, LineAddr, LlcParams, MemoryParams, MesiState, ReadKind, SystemSpec};
use noc_core::{Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};

const RNS: usize = 4;

fn spec(rns: Vec<NodeId>, hns: Vec<NodeId>, sns: Vec<NodeId>) -> SystemSpec {
    SystemSpec {
        requesters: rns,
        home_nodes: hns,
        memories: sns,
        mem_params: MemoryParams::ddr4(),
        llc: LlcParams::default(),
        line_bytes: 64,
        local_hit_latency: 10,
        hn_latency: 12,
        snoop_latency: 6,
    }
}

/// A deterministic op script every transport executes.
fn script() -> Vec<(usize, u64, u8)> {
    let mut seed = 0xDEAD_BEEFu64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    (0..120)
        .map(|_| {
            (
                (next() % RNS as u64) as usize,
                next() % 12,
                (next() % 3) as u8,
            )
        })
        .collect()
}

/// Run the script to quiescence; return per-line final states and the
/// completion count.
fn run<T: ChiTransport>(
    mut sys: CoherentSystem<T>,
    rns: &[NodeId],
) -> (Vec<Vec<MesiState>>, usize) {
    for (rn, line, op) in script() {
        let rn = rns[rn];
        let addr = LineAddr(line);
        match op {
            0 => {
                sys.write(rn, addr);
            }
            _ => {
                sys.read(rn, addr, ReadKind::Shared);
            }
        }
        for _ in 0..5 {
            sys.tick();
        }
    }
    for _ in 0..300_000 {
        if sys.outstanding() == 0 {
            break;
        }
        sys.tick();
    }
    assert_eq!(sys.outstanding(), 0, "transport wedged");
    let states = (0..12u64)
        .map(|l| {
            rns.iter()
                .map(|&rn| sys.rn_state(rn, LineAddr(l)))
                .collect()
        })
        .collect();
    (states, sys.take_completions().len())
}

fn ring_system() -> (CoherentSystem<Network>, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 16).unwrap();
    let rns: Vec<NodeId> = (0..RNS)
        .map(|i| b.add_node(format!("cpu{i}"), r, (i * 2) as u16).unwrap())
        .collect();
    let hns = vec![
        b.add_node("hn0", r, 9).unwrap(),
        b.add_node("hn1", r, 11).unwrap(),
    ];
    let sns = vec![
        b.add_node("sn0", r, 13).unwrap(),
        b.add_node("sn1", r, 15).unwrap(),
    ];
    let net = Network::new(b.build().unwrap(), NetworkConfig::default());
    let sys = CoherentSystem::new(net, spec(rns.clone(), hns, sns));
    (sys, rns)
}

fn mesh_system() -> (CoherentSystem<BufferedMesh>, Vec<NodeId>) {
    let mesh = BufferedMesh::new(MeshConfig {
        k: 3,
        ..Default::default()
    });
    let rns: Vec<NodeId> = (0..RNS as u32).map(NodeId).collect();
    let hns = vec![NodeId(4), NodeId(5)];
    let sns = vec![NodeId(6), NodeId(7)];
    let sys = CoherentSystem::new(mesh, spec(rns.clone(), hns, sns));
    (sys, rns)
}

fn hub_system() -> (CoherentSystem<HubSpoke>, Vec<NodeId>) {
    let hub = HubSpoke::new(HubConfig {
        chiplets: 3,
        per_chiplet: 4,
        ..Default::default()
    });
    let rns: Vec<NodeId> = (0..RNS as u32).map(NodeId).collect();
    let hns = vec![NodeId(4), NodeId(5)];
    let sns = vec![NodeId(8), NodeId(9)];
    let sys = CoherentSystem::new(hub, spec(rns.clone(), hns, sns));
    (sys, rns)
}

fn check_invariants(states: &[Vec<MesiState>]) {
    for (line, holders) in states.iter().enumerate() {
        let writable = holders.iter().filter(|s| s.writable()).count();
        let readable = holders.iter().filter(|s| s.readable()).count();
        assert!(writable <= 1, "line {line}: {writable} writers");
        if writable == 1 {
            assert_eq!(readable, 1, "line {line}: M/E must be the sole copy");
        }
    }
}

#[test]
fn all_transports_complete_the_script() {
    let (sys, rns) = ring_system();
    let (ring_states, ring_done) = run(sys, &rns);
    check_invariants(&ring_states);

    let (sys, rns) = mesh_system();
    let (mesh_states, mesh_done) = run(sys, &rns);
    check_invariants(&mesh_states);

    let (sys, rns) = hub_system();
    let (hub_states, hub_done) = run(sys, &rns);
    check_invariants(&hub_states);

    // Same script → same number of completions on every transport.
    assert_eq!(ring_done, mesh_done);
    assert_eq!(ring_done, hub_done);
    assert_eq!(ring_done, 120);
}

#[test]
fn final_ownership_matches_across_transports_for_serial_script() {
    // With fully serialized operations (run each to completion before
    // the next), the final states must be *identical* across
    // transports — the protocol outcome is timing-independent.
    fn run_serial<T: ChiTransport>(
        mut sys: CoherentSystem<T>,
        rns: &[NodeId],
    ) -> Vec<Vec<MesiState>> {
        for (rn, line, op) in script().into_iter().take(60) {
            let rn = rns[rn];
            let addr = LineAddr(line);
            let txn = match op {
                0 => sys.write(rn, addr),
                _ => sys.read(rn, addr, ReadKind::Shared),
            };
            sys.run_until_complete(txn, 300_000).expect("completes");
        }
        (0..12u64)
            .map(|l| {
                rns.iter()
                    .map(|&rn| sys.rn_state(rn, LineAddr(l)))
                    .collect()
            })
            .collect()
    }
    let (sys, rns) = ring_system();
    let ring = run_serial(sys, &rns);
    let (sys, rns) = mesh_system();
    let mesh = run_serial(sys, &rns);
    let (sys, rns) = hub_system();
    let hub = run_serial(sys, &rns);
    assert_eq!(ring, mesh, "ring vs mesh final states differ");
    assert_eq!(ring, hub, "ring vs hub final states differ");
}
