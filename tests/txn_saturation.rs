//! Saturation regression for the reassembly-credit admission fix.
//!
//! Before PR 10 the fabric could wedge under sustained non-posted
//! write saturation: rings fill with transit flits, every escape
//! buffer's drain ring is itself full, and SWAP cannot break a cycle
//! that spans four bridges. `TxnConfig::reassembly_slots = 1` credits
//! reassembly buffers against admission — a non-urgent packet's header
//! is released from the staged queue only once its destination holds a
//! free reassembly credit — which bounds uncompleted packets per
//! destination and provably keeps the staged FIFOs drainable (all
//! flits of a credited packet precede any credit-blocked header, so
//! credited packets always complete and recycle their credit).
//!
//! These tests pin both sides of the story with the stall-forensics
//! detector on throughout:
//!
//! * legacy admission (`reassembly_slots = 0`) wedges the stride-7
//!   pattern and the detector latches a wedge report naming a
//!   ring/escape cycle — the detector-fires-on-wedge guarantee;
//! * with the fix, the exact configurations that used to wedge drain
//!   completely and the detector never latches — the fix guarantee.

use noc_core::telemetry::{NullSink, WaitGraphConfig};
use noc_core::topogen::GridParams;
use noc_core::{ExecMode, Network, NetworkConfig, NodeId, TickMode};
use noc_txn::{TxnConfig, TxnFabric, TxnOp};

/// The ROADMAP wedge topology: 4×4 torus, 16 stations, 2 devices per
/// station, pinned seed.
fn torus_devices() -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(4, 4)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65)
        .generate()
        .expect("torus generates")
        .compile()
        .expect("torus compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    (topo, named.into_iter().map(|(_, id)| id).collect())
}

/// Antipodal 4 KiB DMA bursts: device i writes to the device half the
/// ring away.
fn dma(i: usize, devs: &[NodeId]) -> (NodeId, NodeId, TxnOp) {
    let n = devs.len();
    (
        devs[i % n],
        devs[(i + n / 2) % n],
        TxnOp::Write {
            bytes: 4096,
            posted: false,
        },
    )
}

/// Stride-7 2 KiB non-posted writes: the pattern that wedges legacy
/// admission (the stride walks every bridge pair, closing a four-ring
/// escape cycle).
fn stride7(i: usize, devs: &[NodeId]) -> (NodeId, NodeId, TxnOp) {
    let n = devs.len();
    let src = i % n;
    let mut dst = (i * 7 + 3) % n;
    if dst == src {
        dst = (dst + 1) % n;
    }
    (
        devs[src],
        devs[dst],
        TxnOp::Write {
            bytes: 2048,
            posted: false,
        },
    )
}

struct SaturationRun {
    accepted: usize,
    completed: u64,
    drained: bool,
    latched: bool,
    chain_len: usize,
    health: String,
}

/// Drive `total` requests from the generator, keeping up to
/// `max_outstanding` transactions in flight (`greedy` refills the
/// window every cycle; paced submits at most one per cycle), with the
/// wait-graph detector armed. Returns what happened.
fn run_saturation(
    req: fn(usize, &[NodeId]) -> (NodeId, NodeId, TxnOp),
    max_outstanding: usize,
    total: usize,
    greedy: bool,
    slots: usize,
) -> SaturationRun {
    let (topo, devs) = torus_devices();
    let mut net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        ExecMode::Sequential,
        NullSink,
    );
    net.enable_metrics(32);
    let mut fab = TxnFabric::new(
        net,
        TxnConfig {
            metrics_period: 32,
            reassembly_slots: slots,
            ..TxnConfig::default()
        },
    );
    fab.enable_forensics(WaitGraphConfig::default());
    let mut accepted = 0usize;
    let mut last_completed = 0u64;
    let mut last_progress_cycle = 0u64;
    loop {
        loop {
            if accepted >= total || fab.in_flight_txns() >= max_outstanding {
                break;
            }
            let (src, dst, op) = req(accepted, &devs);
            if fab.submit(src, dst, op).expect("valid").is_some() {
                accepted += 1;
                if !greedy {
                    break;
                }
            } else {
                break;
            }
        }
        fab.tick();
        let done = fab.counters().completed();
        if done != last_completed {
            last_completed = done;
            last_progress_cycle = fab.now().raw();
        }
        let quiet = fab.quiet() && accepted >= total;
        let stuck = fab.now().raw() - last_progress_cycle > 50_000;
        if quiet || fab.wedge_latched() || stuck {
            return SaturationRun {
                accepted,
                completed: last_completed,
                drained: quiet,
                latched: fab.wedge_latched(),
                chain_len: fab.wedge_report().map_or(0, |r| r.chain.len()),
                health: fab.network().health_report(),
            };
        }
    }
}

#[test]
fn legacy_admission_wedges_and_detector_latches() {
    // The pre-fix behaviour is itself pinned: greedy stride-7 at 200
    // outstanding wedges within ~1.5k cycles, and the detector must
    // latch with a non-trivial cyclic chain — not time out silently.
    let run = run_saturation(stride7, 200, 2000, true, 0);
    assert!(!run.drained, "legacy admission unexpectedly drained");
    assert!(
        run.latched,
        "wedged (completed {} of {}) but the detector never latched",
        run.completed, run.accepted
    );
    assert!(
        run.chain_len >= 2,
        "latched report names no cyclic chain (len {})",
        run.chain_len
    );
    assert!(
        run.health.contains("stalls: wedged"),
        "health summary misses the stall line:\n{}",
        run.health
    );
}

#[test]
fn credited_admission_drains_greedy_dma_bursts() {
    let run = run_saturation(dma, 200, 200, true, 1);
    assert!(
        !run.latched,
        "detector latched on credited DMA bursts (completed {})",
        run.completed
    );
    assert!(
        run.drained,
        "credited DMA bursts failed to drain: completed {} of {}",
        run.completed, run.accepted
    );
    assert_eq!(run.accepted, 200);
}

#[test]
fn credited_admission_drains_paced_stride7() {
    let run = run_saturation(stride7, 64, 600, false, 1);
    assert!(
        !run.latched,
        "detector latched on credited paced stride-7 (completed {})",
        run.completed
    );
    assert!(
        run.drained,
        "credited paced stride-7 failed to drain: completed {} of {}",
        run.completed, run.accepted
    );
    assert_eq!(run.accepted, 600);
}

#[test]
fn credited_admission_drains_greedy_stride7() {
    // The exact configuration of `legacy_admission_wedges_...`, fixed.
    let run = run_saturation(stride7, 200, 600, true, 1);
    assert!(
        !run.latched,
        "detector latched on credited greedy stride-7 (completed {})",
        run.completed
    );
    assert!(
        run.drained,
        "credited greedy stride-7 failed to drain: completed {} of {}",
        run.completed, run.accepted
    );
    assert_eq!(run.accepted, 600);
    assert!(
        run.health.contains("stalls: progressing"),
        "health summary misses the stall line:\n{}",
        run.health
    );
}
