//! Span-stream determinism: the causal span trees (and the
//! tail-exemplar reservoir derived from them) must be byte-identical
//! across every engine variant, because they are emitted from the
//! fabric's single-threaded drain path in deterministic endpoint
//! order. This is the observability extension of `txn_lockstep`: not
//! just *that* the same transactions complete at the same cycles, but
//! that every per-packet counter, causal edge and critical-flit record
//! agrees byte for byte.
//!
//! Epoch batching (K > 1) legitimately reschedules admission, so each
//! K is checked against its own K-golden (PR 8 convention), not
//! against K = 1.

use noc_core::telemetry::{critical_path, span_trees_jsonl, SpanCollector, SpanSink};
use noc_core::{ExecMode, GridParams, Network, NetworkConfig, NodeId, TickMode};
use noc_sim::fuzz::TrafficPattern;
use noc_sim::SimRng;
use noc_txn::{TxnConfig, TxnFabric};
use noc_workloads::{TxnMix, TxnRequest, TxnWorkload};

const SEEDS: u64 = 20;
const TXNS_PER_SEED: usize = 30;
const EXEMPLAR_K: usize = 8;

/// The serialized observability record of one run.
#[derive(Debug, PartialEq)]
struct SpanStream {
    /// Every recorded tree, oldest first, as JSONL.
    trees: String,
    /// The K slowest trees, slowest first, as JSONL.
    exemplars: String,
    recorded: u64,
}

fn torus(seed: u64) -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(2, 2)
        .with_devices(8)
        .with_seed(seed)
        .generate()
        .expect("params are valid")
        .compile()
        .expect("spec compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    (topo, devs)
}

fn txn_cfg() -> TxnConfig {
    TxnConfig {
        window: 4,
        max_data_flits: 32,
        ..TxnConfig::default()
    }
}

/// Drive the seeded workload to quiescence, collecting spans. `epoch`
/// of 1 uses the per-cycle tick; larger values the epoch tick.
fn run_variant(seed: u64, mode: TickMode, exec: ExecMode, epoch: u64) -> SpanStream {
    let (topo, devs) = torus(seed);
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        mode,
        exec,
        noc_core::telemetry::NullSink,
    );
    let mut fab = TxnFabric::with_spans(net, txn_cfg(), SpanCollector::new(4096, EXEMPLAR_K));
    let wl = TxnWorkload::new(devs, TxnMix::default(), TrafficPattern::Uniform, 64, 32);
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9));
    let mut accepted = 0usize;
    let mut pending: Option<TxnRequest> = None;
    let mut guard = 0u64;
    while accepted < TXNS_PER_SEED {
        let req = pending.take().unwrap_or_else(|| wl.next(&mut rng));
        let outcome = match &req {
            TxnRequest::Point { src, dst, op } => fab
                .submit(*src, *dst, *op)
                .expect("generated endpoints are valid")
                .map(|_| ()),
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            } => fab
                .submit_broadcast(*src, targets, *bytes)
                .expect("generated broadcasts are valid")
                .map(|_| ()),
        };
        match outcome {
            Some(()) => accepted += 1,
            None => pending = Some(req),
        }
        fab.tick_epoch(epoch).expect("epoch within the torus bound");
        guard += 1;
        assert!(guard < 1_000_000, "seed {seed}: workload never accepted");
    }
    let mut spent = 0u64;
    while !fab.quiet() && spent < 2_000_000 {
        fab.tick_epoch(epoch).expect("epoch within the torus bound");
        spent += epoch;
    }
    assert!(
        fab.quiet(),
        "seed {seed}: fabric failed to quiesce on {mode:?}/{exec:?} k={epoch}"
    );

    // Every recorded tree must reconcile exactly before we bother
    // comparing streams: phase sums == completion latency.
    let trees: Vec<_> = fab.span_sink().recent().cloned().collect();
    assert_eq!(trees.len(), TXNS_PER_SEED, "seed {seed}: tree per txn");
    for t in &trees {
        let cp = critical_path(t);
        assert!(
            cp.reconciles(),
            "seed {seed}: txn {} phases {:?} != latency {}",
            t.txn,
            cp.phases,
            t.latency()
        );
    }
    SpanStream {
        trees: span_trees_jsonl(&trees),
        exemplars: span_trees_jsonl(fab.span_sink().exemplars()),
        recorded: fab.span_sink().recorded(),
    }
}

/// 20 pinned seeds: the span and exemplar JSONL streams are
/// byte-identical across `Reference/Fast` × `Sequential/Parallel(2/4)`.
#[test]
fn span_streams_are_byte_identical_across_engines() {
    let variants: [(TickMode, ExecMode); 4] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(2)),
        (TickMode::Fast, ExecMode::Parallel(4)),
    ];
    for seed in 0..SEEDS {
        let golden = run_variant(seed, variants[0].0, variants[0].1, 1);
        assert_eq!(golden.recorded, TXNS_PER_SEED as u64);
        assert!(!golden.exemplars.is_empty(), "seed {seed}: no exemplars");
        for &(mode, exec) in &variants[1..] {
            let other = run_variant(seed, mode, exec, 1);
            assert_eq!(
                golden.trees, other.trees,
                "seed {seed}: span stream diverged on {mode:?}/{exec:?}"
            );
            assert_eq!(
                golden.exemplars, other.exemplars,
                "seed {seed}: exemplar reservoir diverged on {mode:?}/{exec:?}"
            );
        }
    }
}

/// Epoch axis: each K ∈ {2, 4, 8} reproduces its own K-golden span
/// stream on every engine variant.
#[test]
fn epoch_batched_span_streams_match_their_own_k_golden() {
    let variants: [(TickMode, ExecMode); 3] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(4)),
    ];
    for k in [2u64, 4, 8] {
        for seed in 0..6 {
            let golden = run_variant(seed, variants[0].0, variants[0].1, k);
            for &(mode, exec) in &variants[1..] {
                let other = run_variant(seed, mode, exec, k);
                assert_eq!(
                    golden.trees, other.trees,
                    "seed {seed} k={k}: span stream diverged on {mode:?}/{exec:?}"
                );
                assert_eq!(
                    golden.exemplars, other.exemplars,
                    "seed {seed} k={k}: exemplar reservoir diverged on {mode:?}/{exec:?}"
                );
            }
        }
    }
}
