//! Differential lockstep for the transaction layer: a 20-seed
//! transaction workload must behave byte-identically across
//! `TickMode::{Reference,Fast}` and
//! `ExecMode::{Sequential,Parallel(2/4/8)}`, and conserve transactions
//! — every accepted non-posted request completes exactly once, no
//! strays, no duplicates, no late responses.
//!
//! This is the transaction-level extension of the flit-level
//! `tick_equivalence` matrix: the fabric below already fingerprints
//! identically; here the packetization, reassembly, window and
//! broadcast decisions layered on top must too.

use noc_core::telemetry::NullSink;
use noc_core::{ExecMode, GridParams, Network, NetworkConfig, NodeId, TickMode};
use noc_sim::fuzz::TrafficPattern;
use noc_sim::SimRng;
use noc_txn::{TxnCompletion, TxnConfig, TxnCounters, TxnFabric, TxnKind};
use noc_workloads::{TxnMix, TxnRequest, TxnWorkload};

const SEEDS: u64 = 20;
const TXNS_PER_SEED: usize = 30;

/// Everything observable from one run.
#[derive(Debug, PartialEq)]
struct Outcome {
    fingerprint: Vec<u64>,
    completions: Vec<TxnCompletion>,
    counters: TxnCounters,
    cycles: u64,
}

fn torus(seed: u64) -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(2, 2)
        .with_devices(8)
        .with_seed(seed)
        .generate()
        .expect("params are valid")
        .compile()
        .expect("spec compiles");
    // Sorted-by-name device order: `compile` hands back a HashMap, and
    // its iteration order must never leak into the traffic schedule.
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    (topo, devs)
}

fn txn_cfg() -> TxnConfig {
    TxnConfig {
        window: 4,
        max_data_flits: 32, // bursts up to 2 KiB keep the matrix fast
        ..TxnConfig::default()
    }
}

/// Drive the same seeded workload to quiescence on one engine variant.
fn run_variant(seed: u64, mode: TickMode, exec: ExecMode) -> Outcome {
    let (topo, devs) = torus(seed);
    let net = Network::with_exec(topo, NetworkConfig::default(), mode, exec, NullSink);
    let mut fab = TxnFabric::new(net, txn_cfg());
    let wl = TxnWorkload::new(devs, TxnMix::default(), TrafficPattern::Uniform, 64, 32);
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9));
    let mut accepted = 0usize;
    let mut pending: Option<TxnRequest> = None;
    let mut guard = 0u64;
    while accepted < TXNS_PER_SEED {
        let req = pending.take().unwrap_or_else(|| wl.next(&mut rng));
        let outcome = match &req {
            TxnRequest::Point { src, dst, op } => fab
                .submit(*src, *dst, *op)
                .expect("generated endpoints are valid")
                .map(|_| ()),
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            } => fab
                .submit_broadcast(*src, targets, *bytes)
                .expect("generated broadcasts are valid")
                .map(|_| ()),
        };
        match outcome {
            Some(()) => accepted += 1,
            None => pending = Some(req), // backpressured: retry the same request
        }
        fab.tick();
        guard += 1;
        assert!(guard < 1_000_000, "seed {seed}: workload never accepted");
    }
    assert!(
        fab.run_until_quiet(2_000_000),
        "seed {seed}: fabric failed to quiesce on {mode:?}/{exec:?}: \
         {} txns live, {} net flits in flight, counters {:?}",
        fab.in_flight_txns(),
        fab.network().in_flight(),
        fab.counters()
    );
    Outcome {
        fingerprint: fab.fingerprint(),
        cycles: fab.now().raw(),
        completions: fab.drain_completions(),
        counters: *fab.counters(),
    }
}

/// Like [`run_variant`] but advancing the fabric in `k`-cycle epochs.
/// For K > 1 the admission pump runs once per epoch, so the schedule —
/// and therefore the outcome — legitimately differs from K = 1; what
/// must hold is that each K's outcome is a pure function of K alone,
/// identical across every engine variant (the "own K-golden" check).
fn run_variant_epoch(seed: u64, mode: TickMode, exec: ExecMode, k: u64) -> Outcome {
    let (topo, devs) = torus(seed);
    let net = Network::with_exec(topo, NetworkConfig::default(), mode, exec, NullSink);
    let mut fab = TxnFabric::new(net, txn_cfg());
    assert!(k <= fab.network().max_epoch(), "k exceeds the torus bound");
    let wl = TxnWorkload::new(devs, TxnMix::default(), TrafficPattern::Uniform, 64, 32);
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9));
    let mut accepted = 0usize;
    let mut pending: Option<TxnRequest> = None;
    let mut guard = 0u64;
    while accepted < TXNS_PER_SEED {
        let req = pending.take().unwrap_or_else(|| wl.next(&mut rng));
        let outcome = match &req {
            TxnRequest::Point { src, dst, op } => fab
                .submit(*src, *dst, *op)
                .expect("generated endpoints are valid")
                .map(|_| ()),
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            } => fab
                .submit_broadcast(*src, targets, *bytes)
                .expect("generated broadcasts are valid")
                .map(|_| ()),
        };
        match outcome {
            Some(()) => accepted += 1,
            None => pending = Some(req),
        }
        fab.tick_epoch(k).expect("k within the torus bound");
        guard += 1;
        assert!(guard < 1_000_000, "seed {seed}: workload never accepted");
    }
    let mut spent = 0u64;
    while !fab.quiet() && spent < 2_000_000 {
        fab.tick_epoch(k).expect("k within the torus bound");
        spent += k;
    }
    assert!(
        fab.quiet(),
        "seed {seed}: fabric failed to quiesce on {mode:?}/{exec:?} k={k}: \
         {} txns live, {} net flits in flight",
        fab.in_flight_txns(),
        fab.network().in_flight(),
    );
    Outcome {
        fingerprint: fab.fingerprint(),
        cycles: fab.now().raw(),
        completions: fab.drain_completions(),
        counters: *fab.counters(),
    }
}

/// Epoch axis: for each K > 1, every engine variant must reproduce
/// that K's golden outcome byte for byte — completions, counters,
/// fingerprint, quiescence time — and conserve transactions.
#[test]
fn epoch_batched_fabric_matches_its_own_k_golden() {
    let variants: [(TickMode, ExecMode); 4] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(2)),
        (TickMode::Fast, ExecMode::Parallel(4)),
    ];
    for k in [2u64, 4, 8] {
        for seed in 0..6 {
            let golden = run_variant_epoch(seed, variants[0].0, variants[0].1, k);
            let c = &golden.counters;
            assert_eq!(c.stray_flits, 0, "seed {seed} k={k}: stray flits");
            assert_eq!(c.duplicate_flits, 0, "seed {seed} k={k}: duplicate flits");
            assert_eq!(c.late_responses, 0, "seed {seed} k={k}: late responses");
            assert_eq!(
                golden.completions.len(),
                TXNS_PER_SEED,
                "seed {seed} k={k}: accepted vs completed mismatch"
            );
            for &(mode, exec) in &variants[1..] {
                let other = run_variant_epoch(seed, mode, exec, k);
                assert_eq!(
                    golden.fingerprint, other.fingerprint,
                    "seed {seed} k={k}: fingerprint diverged on {mode:?}/{exec:?}"
                );
                assert_eq!(
                    golden.completions, other.completions,
                    "seed {seed} k={k}: completion stream diverged on {mode:?}/{exec:?}"
                );
                assert_eq!(
                    golden.counters, other.counters,
                    "seed {seed} k={k}: counters diverged on {mode:?}/{exec:?}"
                );
                assert_eq!(
                    golden.cycles, other.cycles,
                    "seed {seed} k={k}: quiescence time diverged on {mode:?}/{exec:?}"
                );
            }
        }
    }
}

#[test]
fn twenty_seed_engine_lockstep_with_conservation() {
    let variants: [(TickMode, ExecMode); 6] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Reference, ExecMode::Parallel(4)),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(2)),
        (TickMode::Fast, ExecMode::Parallel(4)),
        (TickMode::Fast, ExecMode::Parallel(8)),
    ];
    for seed in 0..SEEDS {
        let golden = run_variant(seed, variants[0].0, variants[0].1);

        // Conservation on the golden run.
        let c = &golden.counters;
        assert_eq!(c.stray_flits, 0, "seed {seed}: stray flits");
        assert_eq!(c.duplicate_flits, 0, "seed {seed}: duplicate flits");
        assert_eq!(c.late_responses, 0, "seed {seed}: late responses");
        assert_eq!(
            golden.completions.len(),
            TXNS_PER_SEED,
            "seed {seed}: accepted vs completed mismatch"
        );
        // Every transaction id completes exactly once.
        let mut ids: Vec<_> = golden.completions.iter().map(|t| t.txn).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            TXNS_PER_SEED,
            "seed {seed}: duplicated completion"
        );
        // Every non-posted request got exactly one response (its
        // completion); posted kinds completed at delivery.
        let non_posted = golden
            .completions
            .iter()
            .filter(|t| {
                matches!(
                    t.kind,
                    TxnKind::Read | TxnKind::WriteNonPosted | TxnKind::Atomic
                )
            })
            .count() as u64;
        assert_eq!(
            c.reads + c.writes_non_posted + c.atomics,
            non_posted,
            "seed {seed}: non-posted accounting"
        );
        assert!(
            golden.completions.iter().all(|t| t.latency() > 0),
            "seed {seed}: zero-latency completion"
        );

        // Byte-identity across every other engine variant.
        for &(mode, exec) in &variants[1..] {
            let other = run_variant(seed, mode, exec);
            assert_eq!(
                golden.fingerprint, other.fingerprint,
                "seed {seed}: fingerprint diverged on {mode:?}/{exec:?}"
            );
            assert_eq!(
                golden.completions, other.completions,
                "seed {seed}: completion stream diverged on {mode:?}/{exec:?}"
            );
            assert_eq!(
                golden.counters, other.counters,
                "seed {seed}: counters diverged on {mode:?}/{exec:?}"
            );
            assert_eq!(
                golden.cycles, other.cycles,
                "seed {seed}: quiescence time diverged on {mode:?}/{exec:?}"
            );
        }
    }
}
