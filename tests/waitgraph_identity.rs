//! Detector-stream lockstep: the stall-forensics surface — sampled
//! wait graphs, SCC verdicts, gauge rows and wedge reports — must be
//! byte-identical across `TickMode::{Reference,Fast}` ×
//! `ExecMode::{Sequential,Parallel(2,4)}` × epoch K ∈ {1,2,4,8}, each
//! K against its own K-golden (the workspace's lockstep convention:
//! admission cadence is a pure function of K).
//!
//! Two workloads cover both detector regimes: a mixed transactional
//! load that never wedges (verdict stream stays
//! progressing/transient), and the known 4×4-torus stride-7 saturation
//! pattern with legacy admission, which must latch the *same* wedge
//! report on every engine.

use noc_core::telemetry::{wait_graphs_jsonl, NullSink, WaitGraphConfig, WaitVerdict};
use noc_core::{ExecMode, GridParams, Network, NetworkConfig, NodeId, TickMode};
use noc_sim::fuzz::TrafficPattern;
use noc_sim::SimRng;
use noc_txn::{TxnConfig, TxnFabric, TxnOp};
use noc_workloads::{TxnMix, TxnRequest, TxnWorkload};

const SEEDS: u64 = 10;
const TXNS_PER_SEED: usize = 24;

/// The forensics surface of one run, all pre-serialized: comparing
/// strings is the byte-identity claim, not structural equality.
#[derive(Debug, PartialEq)]
struct DetectorStream {
    /// One JSON line per retained wait-graph sample.
    graphs: String,
    /// The per-sample gauge rows (verdict, blocked counts, SCC count).
    stats: String,
    /// The latched wedge report, or `null`.
    report: String,
    cycles: u64,
}

fn torus(seed: u64) -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(2, 2)
        .with_devices(8)
        .with_seed(seed)
        .generate()
        .expect("params are valid")
        .compile()
        .expect("spec compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    (topo, devs)
}

fn txn_cfg() -> TxnConfig {
    TxnConfig {
        window: 4,
        max_data_flits: 32,
        metrics_period: 16,
        reassembly_slots: 1, // the credit path must itself be lockstep
        ..TxnConfig::default()
    }
}

fn stream_of<S: noc_core::telemetry::TraceSink>(fab: &TxnFabric<S>) -> DetectorStream {
    let tracker = fab.wait_tracker().expect("forensics enabled");
    DetectorStream {
        graphs: wait_graphs_jsonl(tracker.samples()),
        stats: serde_json::to_string(&tracker.stats().to_vec()).expect("stats serialize"),
        report: serde_json::to_string(&fab.wedge_report()).expect("report serializes"),
        cycles: fab.now().raw(),
    }
}

/// Drive a mixed seeded workload to quiescence in `k`-cycle epochs and
/// return the detector stream.
fn run_mixed(seed: u64, mode: TickMode, exec: ExecMode, k: u64) -> DetectorStream {
    let (topo, devs) = torus(seed);
    let mut net = Network::with_exec(topo, NetworkConfig::default(), mode, exec, NullSink);
    net.enable_metrics(16);
    let mut fab = TxnFabric::new(net, txn_cfg());
    fab.enable_forensics(WaitGraphConfig::default());
    let wl = TxnWorkload::new(devs, TxnMix::default(), TrafficPattern::Uniform, 64, 32);
    let mut rng = SimRng::seed_from(seed.wrapping_mul(0x9E37_79B9));
    let mut accepted = 0usize;
    let mut pending: Option<TxnRequest> = None;
    let mut guard = 0u64;
    while accepted < TXNS_PER_SEED {
        let req = pending.take().unwrap_or_else(|| wl.next(&mut rng));
        let outcome = match &req {
            TxnRequest::Point { src, dst, op } => fab
                .submit(*src, *dst, *op)
                .expect("generated endpoints are valid")
                .map(|_| ()),
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            } => fab
                .submit_broadcast(*src, targets, *bytes)
                .expect("generated broadcasts are valid")
                .map(|_| ()),
        };
        match outcome {
            Some(()) => accepted += 1,
            None => pending = Some(req),
        }
        fab.tick_epoch(k).expect("k within the torus bound");
        guard += 1;
        assert!(guard < 1_000_000, "seed {seed}: workload never accepted");
    }
    let mut spent = 0u64;
    while !fab.quiet() && spent < 2_000_000 {
        fab.tick_epoch(k).expect("k within the torus bound");
        spent += k;
    }
    assert!(fab.quiet(), "seed {seed} k={k}: failed to quiesce");
    stream_of(&fab)
}

/// Drive the known stride-7 saturation wedge (legacy admission, no
/// reassembly credits) until the detector latches, then a few more
/// epochs, and return the detector stream.
fn run_wedge(mode: TickMode, exec: ExecMode, k: u64) -> DetectorStream {
    let (topo, names) = GridParams::torus(4, 4)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65)
        .generate()
        .expect("torus generates")
        .compile()
        .expect("torus compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    let mut net = Network::with_exec(topo, NetworkConfig::default(), mode, exec, NullSink);
    net.enable_metrics(32);
    let mut fab = TxnFabric::new(
        net,
        TxnConfig {
            metrics_period: 32,
            ..TxnConfig::default()
        },
    );
    fab.enable_forensics(WaitGraphConfig::default());
    let n = devs.len();
    let mut i = 0usize;
    while fab.now().raw() < 4_000 && !fab.wedge_latched() {
        while fab.in_flight_txns() < 200 {
            let src = i % n;
            let mut dst = (i * 7 + 3) % n;
            if dst == src {
                dst = (dst + 1) % n;
            }
            let op = TxnOp::Write {
                bytes: 2048,
                posted: false,
            };
            if fab
                .submit(devs[src], devs[dst], op)
                .expect("valid")
                .is_none()
            {
                break;
            }
            i += 1;
        }
        fab.tick_epoch(k).expect("k within the torus bound");
    }
    assert!(
        fab.wedge_latched(),
        "stride-7 saturation must latch on {mode:?}/{exec:?} k={k}"
    );
    // A few more samples past the latch: the post-latch stream must
    // stay identical too (the report is frozen, samples keep flowing).
    for _ in 0..4 {
        fab.tick_epoch(k).expect("k within the torus bound");
    }
    stream_of(&fab)
}

#[test]
fn detector_streams_match_their_k_golden_on_ten_seeds() {
    let variants: [(TickMode, ExecMode); 6] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Reference, ExecMode::Parallel(2)),
        (TickMode::Reference, ExecMode::Parallel(4)),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(2)),
        (TickMode::Fast, ExecMode::Parallel(4)),
    ];
    for k in [1u64, 2, 4, 8] {
        for seed in 0..SEEDS {
            let golden = run_mixed(seed, variants[0].0, variants[0].1, k);
            assert!(
                !golden.graphs.is_empty(),
                "seed {seed} k={k}: no wait-graph samples recorded"
            );
            assert_eq!(
                golden.report, "null",
                "seed {seed} k={k}: mixed workload latched a wedge"
            );
            for &(mode, exec) in &variants[1..] {
                let other = run_mixed(seed, mode, exec, k);
                assert_eq!(
                    golden, other,
                    "seed {seed} k={k}: detector stream diverged on {mode:?}/{exec:?}"
                );
            }
        }
    }
}

#[test]
fn wedge_reports_are_byte_identical_across_engines() {
    let variants: [(TickMode, ExecMode); 4] = [
        (TickMode::Reference, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Sequential),
        (TickMode::Fast, ExecMode::Parallel(2)),
        (TickMode::Fast, ExecMode::Parallel(4)),
    ];
    for k in [1u64, 4] {
        let golden = run_wedge(variants[0].0, variants[0].1, k);
        assert_ne!(golden.report, "null", "k={k}: no report latched");
        assert!(
            golden.report.contains("\"chain\""),
            "k={k}: report names no cyclic chain"
        );
        for &(mode, exec) in &variants[1..] {
            let other = run_wedge(mode, exec, k);
            assert_eq!(
                golden, other,
                "k={k}: wedge report diverged on {mode:?}/{exec:?}"
            );
        }
    }
}

#[test]
fn verdict_stream_distinguishes_load_from_wedge() {
    // The wedge run must walk through progressing/transient verdicts
    // into a terminal wedged streak; the latched report must name ring
    // and escape resources in its chain and pin windows or reassembly
    // buffers behind it.
    let s = run_wedge(TickMode::Fast, ExecMode::Sequential, 1);
    let stats: Vec<noc_core::telemetry::WaitStats> =
        serde_json::from_str(&s.stats).expect("stats parse");
    assert!(
        stats.iter().any(|r| r.verdict != WaitVerdict::Wedged),
        "stream begins before the wedge forms"
    );
    assert_eq!(
        stats.last().expect("samples exist").verdict,
        WaitVerdict::Wedged,
        "stream ends wedged"
    );
    let report: noc_core::telemetry::WedgeReport =
        serde_json::from_str(&s.report).expect("report parses");
    let rendered = report.render();
    assert!(rendered.contains("ring:"), "chain names ring resources");
    assert!(rendered.contains("escape:"), "chain names escape resources");
    let pinned = rendered.contains("window:") || rendered.contains("reassembly:");
    assert!(pinned, "report pins the dependent resources");
}
