//! End-to-end Server-CPU integration: the full stack (topology → NoC →
//! CHI coherence → workload) across compute dies, I/O dies and packages.

use noc_chi::{LineAddr, MesiState, ReadKind};
use noc_server_cpu::{ServerCpu, ServerCpuConfig};
use noc_sim::SimRng;

fn small() -> ServerCpuConfig {
    ServerCpuConfig {
        clusters_per_ccd: 4,
        hn_per_ccd: 2,
        ddr_per_ccd: 2,
        ..Default::default()
    }
}

#[test]
fn migratory_sharing_across_dies() {
    // A line bounces between writers on alternating dies — the
    // migratory pattern that stresses snoop + bridge paths.
    let mut s = ServerCpu::build(small()).expect("builds");
    let addr = LineAddr(0x777);
    for round in 0..6 {
        let writer = s.map.clusters_of_ccd(round % 2)[round % 4];
        let t = s.sys.write(writer, addr);
        let c = s.sys.run_until_complete(t, 100_000).expect("write");
        assert!(c.latency() > 0);
        assert_eq!(s.sys.rn_state(writer, addr), MesiState::Modified);
        // All other clusters must not hold a writable copy.
        let writable = s
            .map
            .clusters
            .iter()
            .filter(|&&rn| s.sys.rn_state(rn, addr).writable())
            .count();
        assert_eq!(writable, 1, "round {round}");
    }
}

#[test]
fn many_clusters_hammer_shared_lines() {
    let mut s = ServerCpu::build(small()).expect("builds");
    let clusters = s.map.clusters.clone();
    let mut rng = SimRng::seed_from(99);
    let mut issued = 0u64;
    for step in 0..300 {
        let rn = clusters[rng.gen_index(clusters.len())];
        let addr = LineAddr(rng.gen_range(0..16));
        match step % 3 {
            0 => {
                s.sys.write(rn, addr);
                issued += 1;
            }
            _ => {
                s.sys.read(rn, addr, ReadKind::Shared);
                issued += 1;
            }
        }
        for _ in 0..4 {
            s.sys.tick();
        }
    }
    // Everything settles.
    for _ in 0..200_000 {
        if s.sys.outstanding() == 0 {
            break;
        }
        s.sys.tick();
    }
    assert_eq!(s.sys.outstanding(), 0, "transactions stuck");
    let done = s.sys.take_completions();
    assert_eq!(done.len() as u64, issued);
    // Coherence invariant at quiescence.
    for line in 0..16u64 {
        let writable = clusters
            .iter()
            .filter(|&&rn| s.sys.rn_state(rn, LineAddr(line)).writable())
            .count();
        assert!(writable <= 1, "line {line} has {writable} writers");
    }
}

#[test]
fn four_package_system_stays_coherent() {
    let mut s = ServerCpu::build(ServerCpuConfig {
        packages: 4,
        clusters_per_ccd: 2,
        hn_per_ccd: 2,
        ddr_per_ccd: 2,
        ..Default::default()
    })
    .expect("4P builds");
    let per_pkg = 2 * 2; // ccd_count × clusters_per_ccd
    let addr = LineAddr(0xBEEF);
    // A writer in package 0, readers in packages 1..4.
    let writer = s.map.clusters[0];
    let t = s.sys.write(writer, addr);
    s.sys.run_until_complete(t, 500_000).expect("write");
    for pkg in 1..4 {
        let reader = s.map.clusters[pkg * per_pkg];
        let t = s.sys.read(reader, addr, ReadKind::Shared);
        let c = s
            .sys
            .run_until_complete(t, 500_000)
            .unwrap_or_else(|| panic!("package {pkg} read stuck"));
        assert!(
            c.latency() > 40,
            "cross-package read must pay SerDes latency, got {}",
            c.latency()
        );
    }
    assert_eq!(s.sys.rn_state(writer, addr), MesiState::Shared);
}

#[test]
fn network_statistics_are_consistent_after_run() {
    let mut s = ServerCpu::build(small()).expect("builds");
    let clusters = s.map.clusters.clone();
    for (i, &rn) in clusters.iter().enumerate() {
        s.sys
            .read(rn, LineAddr(0x4000 + i as u64), ReadKind::Shared);
    }
    for _ in 0..100_000 {
        if s.sys.outstanding() == 0 {
            break;
        }
        s.sys.tick();
    }
    assert_eq!(s.sys.outstanding(), 0);
    // CompAck flits may still be in flight after the last requester
    // completion; drain them too.
    for _ in 0..10_000 {
        if s.sys.network().in_flight() == 0 {
            break;
        }
        s.sys.tick();
    }
    let stats = s.sys.network().stats();
    assert_eq!(
        stats.enqueued.get(),
        stats.delivered.get(),
        "all protocol flits must be delivered"
    );
    assert!(
        stats.bridge_crossings.get() > 0,
        "cross-die traffic happened"
    );
}

#[test]
fn zipfian_server_application_runs_coherently() {
    // The §3.1.1 workload shape: Zipfian-popular objects, read-heavy,
    // served by several front-end clusters over the coherent NoC.
    use noc_workloads::{ServerApp, ServerAppParams};

    let mut s = ServerCpu::build(small()).expect("builds");
    let clusters = s.map.clusters.clone();
    let mut apps: Vec<ServerApp> = (0..clusters.len())
        .map(|i| {
            ServerApp::new(
                ServerAppParams {
                    objects: 512,
                    requests_per_kcycle: 40.0,
                    ..Default::default()
                },
                i as u64 + 1,
            )
        })
        .collect();
    let mut issued = 0u64;
    for _ in 0..4_000u64 {
        for (i, app) in apps.iter_mut().enumerate() {
            for op in app.cycle_ops() {
                let addr = LineAddr(op.line);
                if op.is_write {
                    s.sys.write(clusters[i], addr);
                } else {
                    s.sys.read(clusters[i], addr, ReadKind::Shared);
                }
                issued += 1;
            }
        }
        s.sys.tick();
    }
    for _ in 0..300_000 {
        if s.sys.outstanding() == 0 {
            break;
        }
        s.sys.tick();
    }
    assert_eq!(s.sys.outstanding(), 0, "server workload drained");
    assert_eq!(s.sys.take_completions().len() as u64, issued);
    // The hot Zipfian head is shared read-mostly: several clusters end
    // up with readable copies of some line.
    let hot_shared = (0..64u64).any(|l| {
        clusters
            .iter()
            .filter(|&&rn| s.sys.rn_state(rn, LineAddr(l)).readable())
            .count()
            >= 2
    });
    assert!(hot_shared, "hot objects should be shared across clusters");
}
