//! Cross-crate property tests: coherence + NoC invariants under random
//! multi-chiplet traffic (DESIGN.md §6, invariants 1, 7, 8).

use noc_chi::{CoherentSystem, LineAddr, LlcParams, MemoryParams, ReadKind, SystemSpec};
use noc_core::{BridgeConfig, Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};
use proptest::prelude::*;

/// Two-die coherent system with configurable geometry.
fn build(ring_stations: u16, rn_per_die: usize) -> (CoherentSystem, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let d0 = b.add_chiplet("d0");
    let d1 = b.add_chiplet("d1");
    let r0 = b.add_ring(d0, RingKind::Full, ring_stations).unwrap();
    let r1 = b.add_ring(d1, RingKind::Full, ring_stations).unwrap();
    let mut rns = Vec::new();
    for i in 0..rn_per_die {
        rns.push(b.add_node(format!("a{i}"), r0, i as u16).unwrap());
        rns.push(b.add_node(format!("b{i}"), r1, i as u16).unwrap());
    }
    let hn0 = b.add_node("hn0", r0, ring_stations - 2).unwrap();
    let hn1 = b.add_node("hn1", r1, ring_stations - 2).unwrap();
    let sn0 = b.add_node("sn0", r0, ring_stations - 3).unwrap();
    let sn1 = b.add_node("sn1", r1, ring_stations - 3).unwrap();
    b.add_bridge(
        BridgeConfig::l2(),
        r0,
        ring_stations - 1,
        r1,
        ring_stations - 1,
    )
    .unwrap();
    let net = Network::new(b.build().unwrap(), NetworkConfig::default());
    let sys = CoherentSystem::new(
        net,
        SystemSpec {
            requesters: rns.clone(),
            home_nodes: vec![hn0, hn1],
            memories: vec![sn0, sn1],
            mem_params: MemoryParams::ddr4(),
            llc: LlcParams::default(),
            line_bytes: 64,
            local_hit_latency: 10,
            hn_latency: 12,
            snoop_latency: 6,
        },
    );
    (sys, rns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random cross-die coherent traffic always drains, never loses a
    /// transaction, and never yields two writable copies of a line.
    #[test]
    fn coherent_traffic_conservation_and_swmr(
        stations in 6u16..12,
        rn_per_die in 2usize..4,
        ops in proptest::collection::vec((0u8..4, 0u64..24), 40..150),
    ) {
        let (mut sys, rns) = build(stations, rn_per_die);
        let mut issued = 0u64;
        for &(op, line) in &ops {
            let rn = rns[(line as usize * 7 + op as usize) % rns.len()];
            let addr = LineAddr(line);
            match op {
                0 => { sys.write(rn, addr); issued += 1; }
                1 => {
                    if sys.write_back(rn, addr).is_some() {
                        issued += 1;
                    }
                }
                2 => { sys.read(rn, addr, ReadKind::Unique); issued += 1; }
                _ => { sys.read(rn, addr, ReadKind::Shared); issued += 1; }
            }
            for _ in 0..3 {
                sys.tick();
            }
        }
        let mut budget = 300_000u64;
        while sys.outstanding() > 0 && budget > 0 {
            sys.tick();
            budget -= 1;
        }
        prop_assert_eq!(sys.outstanding(), 0, "stuck transactions");
        prop_assert_eq!(sys.take_completions().len() as u64, issued);
        for line in 0..24u64 {
            let writable = rns
                .iter()
                .filter(|&&rn| sys.rn_state(rn, LineAddr(line)).writable())
                .count();
            prop_assert!(writable <= 1, "line {} has {} writers", line, writable);
        }
    }

    /// The full coherent stack is deterministic.
    #[test]
    fn coherent_stack_determinism(
        ops in proptest::collection::vec((0u8..3, 0u64..16), 20..80),
    ) {
        let run = || {
            let (mut sys, rns) = build(8, 3);
            for &(op, line) in &ops {
                let rn = rns[(line as usize + op as usize) % rns.len()];
                match op {
                    0 => { sys.write(rn, LineAddr(line)); }
                    _ => { sys.read(rn, LineAddr(line), ReadKind::Shared); }
                }
                sys.tick();
                sys.tick();
            }
            for _ in 0..100_000 {
                if sys.outstanding() == 0 { break; }
                sys.tick();
            }
            let stats = sys.network().stats();
            (
                stats.delivered.get(),
                stats.deflections.get(),
                stats.bridge_crossings.get(),
                stats.hops.sum(),
            )
        };
        prop_assert_eq!(run(), run());
    }
}
