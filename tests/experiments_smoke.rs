//! Smoke-run the fast experiments end-to-end and assert every shape
//! check passes (the slow figures are covered by their own module tests
//! and the `repro` binary).

use noc_experiments::{ExperimentResult, Scale};

fn assert_no_fail(r: &ExperimentResult) {
    let fails: Vec<_> = r.notes.iter().filter(|n| n.ends_with("FAIL")).collect();
    assert!(fails.is_empty(), "{}: {fails:?}", r.id);
    assert!(!r.rows.is_empty(), "{} produced no rows", r.id);
}

#[test]
fn fig03_table04_table09_pass() {
    assert_no_fail(&noc_experiments::fig03::run(Scale::Quick));
    assert_no_fail(&noc_experiments::table04::run(Scale::Quick));
    assert_no_fail(&noc_experiments::table09::run(Scale::Quick));
}

#[test]
fn table07_and_fig14_pass() {
    assert_no_fail(&noc_experiments::table07::run(Scale::Quick));
    assert_no_fail(&noc_experiments::fig14::run(Scale::Quick));
}

#[test]
fn table05_passes() {
    assert_no_fail(&noc_experiments::table05::run(Scale::Quick));
}

#[test]
fn table08_passes() {
    assert_no_fail(&noc_experiments::table08::run(Scale::Quick));
}

#[test]
fn swap_and_itag_ablations_pass() {
    assert_no_fail(&noc_experiments::ablations::run_swap(Scale::Quick));
    assert_no_fail(&noc_experiments::ablations::run_itag_threshold(
        Scale::Quick,
    ));
}

#[test]
fn results_serialize_to_json() {
    let r = noc_experiments::table09::run(Scale::Quick);
    let json = serde_json::to_string(&r).expect("serializable");
    assert!(json.contains("table09"));
}
