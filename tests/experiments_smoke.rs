//! Smoke-run the fast experiments end-to-end and assert every shape
//! check passes (the slow figures are covered by their own module tests
//! and the `repro` binary), plus a postmortem smoke on both SoC models
//! that leaves real bundles under `target/postmortem/` for CI to
//! archive.

use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};
use noc_chi::{LineAddr, ReadKind};
use noc_core::telemetry::{PostmortemBundle, RecorderConfig};
use noc_core::NocDiagnostics;
use noc_experiments::{ExperimentResult, Scale};
use noc_server_cpu::{ServerCpu, ServerCpuConfig};
use noc_sim::SimRng;
use std::path::PathBuf;

fn assert_no_fail(r: &ExperimentResult) {
    let fails: Vec<_> = r.notes.iter().filter(|n| n.ends_with("FAIL")).collect();
    assert!(fails.is_empty(), "{}: {fails:?}", r.id);
    assert!(!r.rows.is_empty(), "{} produced no rows", r.id);
}

#[test]
fn fig03_table04_table09_pass() {
    assert_no_fail(&noc_experiments::fig03::run(Scale::Quick));
    assert_no_fail(&noc_experiments::table04::run(Scale::Quick));
    assert_no_fail(&noc_experiments::table09::run(Scale::Quick));
}

#[test]
fn table07_and_fig14_pass() {
    assert_no_fail(&noc_experiments::table07::run(Scale::Quick));
    assert_no_fail(&noc_experiments::fig14::run(Scale::Quick));
}

#[test]
fn table05_passes() {
    assert_no_fail(&noc_experiments::table05::run(Scale::Quick));
}

#[test]
fn table08_passes() {
    assert_no_fail(&noc_experiments::table08::run(Scale::Quick));
}

#[test]
fn swap_and_itag_ablations_pass() {
    assert_no_fail(&noc_experiments::ablations::run_swap(Scale::Quick));
    assert_no_fail(&noc_experiments::ablations::run_itag_threshold(
        Scale::Quick,
    ));
}

#[test]
fn results_serialize_to_json() {
    let r = noc_experiments::table09::run(Scale::Quick);
    let json = serde_json::to_string(&r).expect("serializable");
    assert!(json.contains("table09"));
}

/// Sanity-check one SoC's explicit postmortem dump and persist the
/// bundle where CI picks it up as an artifact.
fn check_and_archive(bundle: PostmortemBundle, file: &str) {
    assert!(!bundle.flows.is_empty(), "{file}: no flows attributed");
    assert!(
        !bundle.snapshots.is_empty(),
        "{file}: no snapshots retained"
    );
    let jsonl = bundle.to_jsonl();
    let back = PostmortemBundle::from_jsonl(&jsonl).expect("bundle parses back");
    assert_eq!(bundle, back, "{file}: JSONL round trip");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/postmortem");
    std::fs::create_dir_all(&dir).expect("create target/postmortem");
    std::fs::write(dir.join(file), jsonl).expect("write bundle");
}

#[test]
fn server_cpu_postmortem_smoke() {
    let mut s = ServerCpu::build(ServerCpuConfig {
        clusters_per_ccd: 4,
        hn_per_ccd: 2,
        ddr_per_ccd: 2,
        metrics_period: 32,
        recorder: Some(RecorderConfig::default()),
        ..Default::default()
    })
    .expect("builds");
    let clusters = s.map.clusters.clone();
    let mut rng = SimRng::seed_from(7);
    for step in 0..200 {
        let rn = clusters[rng.gen_index(clusters.len())];
        let addr = LineAddr(rng.gen_range(0..32));
        if step % 3 == 0 {
            s.sys.write(rn, addr);
        } else {
            s.sys.read(rn, addr, ReadKind::Shared);
        }
        for _ in 0..4 {
            s.sys.tick();
        }
    }
    let report = s.flow_report(5);
    assert!(
        !report.contains("(no flows observed)"),
        "server CPU saw traffic but attributed no flows:\n{report}"
    );
    let bundle = s
        .sys
        .network()
        .dump_postmortem("server-cpu smoke")
        .expect("recorder enabled");
    check_and_archive(bundle, "server_cpu_smoke.jsonl");
}

#[test]
fn ai_processor_postmortem_smoke() {
    let proc = AiProcessor::build(AiConfig {
        v_rings: 4,
        cores_per_vring: 4,
        h_rings: 3,
        l2_per_hring: 4,
        hbm_count: 3,
        dma_count: 3,
        llc_count: 3,
        metrics_period: 32,
        recorder: Some(RecorderConfig::default()),
        ..Default::default()
    })
    .expect("builds");
    let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
    e.run(200, 2_000).expect("runs");
    let p = e.processor();
    let report = p.flow_report(5);
    assert!(
        !report.contains("(no flows observed)"),
        "AI processor saw traffic but attributed no flows:\n{report}"
    );
    let bundle = p.net.dump_postmortem("ai smoke").expect("recorder enabled");
    check_and_archive(bundle, "ai_smoke.jsonl");
}
