//! End-to-end AI-Processor integration: bandwidth, routing invariants
//! and the Table 7 / Figure 14 shapes at reduced scale.

use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};

fn reduced() -> AiConfig {
    AiConfig {
        v_rings: 4,
        cores_per_vring: 4,
        h_rings: 3,
        l2_per_hring: 4,
        hbm_count: 3,
        dma_count: 3,
        llc_count: 3,
        ..Default::default()
    }
}

#[test]
fn xy_routing_is_one_ring_change_for_all_core_l2_pairs() {
    let p = AiProcessor::build(reduced()).expect("builds");
    let topo = p.net.topology();
    let route = p.net.route();
    for &core in &p.map.cores {
        for &l2 in &p.map.l2s {
            let cr = topo.nodes()[core.index()].ring;
            let lr = topo.nodes()[l2.index()].ring;
            assert_eq!(route.ring_changes(cr, lr), Some(1));
        }
    }
}

#[test]
fn sustained_run_conserves_transactions() {
    let proc = AiProcessor::build(reduced()).expect("builds");
    let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
    let rep = e.run(500, 3_000).expect("runs");
    assert!(rep.total_tbs() > 0.5);
    // The network never leaks flits: what was enqueued is delivered or
    // still resident.
    let net = &e.processor().net;
    let s = net.stats();
    assert!(s.enqueued.get() >= s.delivered.get());
    assert_eq!(
        s.enqueued.get() - s.delivered.get(),
        net.in_flight(),
        "accounting identity"
    );
}

#[test]
fn dma_stays_on_local_horizontal_rings() {
    let p = AiProcessor::build(reduced()).expect("builds");
    let topo = p.net.topology();
    let route = p.net.route();
    for (h, &hbm) in p.map.hbms.iter().enumerate() {
        for l2 in p.map.l2s_on_ring_of_hbm(h) {
            let a = topo.nodes()[hbm.index()].ring;
            let b = topo.nodes()[l2.index()].ring;
            assert_eq!(route.ring_changes(a, b), Some(0), "{hbm}↔{l2}");
        }
    }
}

#[test]
fn ratio_sweep_shape_holds_at_reduced_scale() {
    let bw = |r, w| {
        let proc = AiProcessor::build(reduced()).expect("builds");
        let mut e = AiEngine::new(proc, AiTraffic::from_ratio(r, w));
        e.run(800, 4_000).expect("runs").total_tbs()
    };
    let balanced = bw(1, 1);
    let read_only = bw(1, 0);
    let write_only = bw(0, 1);
    assert!(
        balanced > read_only && balanced > write_only,
        "Table 7 shape: balanced {balanced:.1} vs 1:0 {read_only:.1} vs 0:1 {write_only:.1}"
    );
}

#[test]
fn deterministic_bandwidth_runs() {
    let run = || {
        let proc = AiProcessor::build(reduced()).expect("builds");
        let mut e = AiEngine::new(proc, AiTraffic::from_ratio(2, 1));
        let rep = e.run(300, 2_000).expect("runs");
        (rep.read_bytes, rep.write_bytes, rep.dma_bytes)
    };
    assert_eq!(run(), run());
}

#[test]
fn bigger_mesh_more_bandwidth() {
    let small = {
        let proc = AiProcessor::build(reduced()).expect("builds");
        let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
        e.run(800, 4_000).expect("runs").total_tbs()
    };
    let large = {
        let proc = AiProcessor::build(AiConfig {
            v_rings: 8,
            cores_per_vring: 4,
            h_rings: 4,
            l2_per_hring: 6,
            hbm_count: 4,
            dma_count: 4,
            llc_count: 4,
            ..Default::default()
        })
        .expect("builds");
        let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
        e.run(800, 4_000).expect("runs").total_tbs()
    };
    assert!(
        large > small,
        "scaling the mesh must scale bandwidth ({small:.1} → {large:.1})"
    );
}
