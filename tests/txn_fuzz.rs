//! Seeded transaction fuzz over generated fabrics, wired into the same
//! `NOC_TOPO_FUZZ_*` seed-matrix plumbing the topology fuzz uses: CI
//! pins `{SEED_BASE, SEEDS}`, and any violated invariant drops a JSON
//! transaction trace into the artifact directory
//! (`NOC_TOPO_FUZZ_ARTIFACT_DIR`, default `target/topo-fuzz`) for the
//! workflow to upload — enough to replay the exact run offline.
//!
//! Invariants per seed:
//! * the fabric quiesces within a generous cycle bound;
//! * conservation — accepted transactions all complete, exactly once,
//!   with zero stray/duplicate/late counters;
//! * Sequential and Parallel(4) runs agree byte-for-byte (fingerprint,
//!   counters, completion stream).

use noc_core::telemetry::NullSink;
use noc_core::{ExecMode, GridParams, Network, NetworkConfig, NodeId, TickMode};
use noc_sim::fuzz::{save_failing_artifact, SeedMatrix, TrafficPattern};
use noc_sim::SimRng;
use noc_txn::{TxnConfig, TxnCounters, TxnFabric};
use noc_workloads::{TxnMix, TxnRequest, TxnWorkload};
use serde::Serialize;

const TXNS_PER_SEED: usize = 40;

/// Replayable record of one fuzz run, dumped on failure.
#[derive(Debug, Serialize)]
struct TxnTrace {
    seed: u64,
    grid: (u16, u16),
    devices: usize,
    window: usize,
    max_data_flits: u16,
    submitted: Vec<TxnRequest>,
    counters: TxnCounters,
    fingerprint: Vec<u64>,
    violation: String,
}

struct RunResult {
    fingerprint: Vec<u64>,
    counters: TxnCounters,
    completions: usize,
    submitted: Vec<TxnRequest>,
}

/// Grid shape and per-chiplet device count derived from the seed.
fn shape(seed: u64) -> (u16, u16, u16) {
    let mut rng = SimRng::seed_from(seed ^ 0x7A57_F00D);
    let x = 2 + rng.gen_index(2) as u16; // 2..=3
    let y = 2 + rng.gen_index(2) as u16;
    let devices_per_chiplet = 2 + rng.gen_index(3) as u16; // 2..=4
    (x, y, devices_per_chiplet)
}

fn run(seed: u64, exec: ExecMode) -> Result<RunResult, String> {
    let (x, y, devices) = shape(seed);
    let (topo, names) = GridParams::torus(x, y)
        .with_devices(devices)
        .with_seed(seed)
        .generate()
        .map_err(|e| format!("generate: {e}"))?
        .compile()
        .map_err(|e| format!("compile: {e}"))?;
    // Sorted-by-name device order — the HashMap from `compile` must not
    // leak its iteration order into the traffic schedule.
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    let cfg = TxnConfig {
        window: 4,
        max_data_flits: 32,
        ..TxnConfig::default()
    };
    let mut fab = TxnFabric::new(net, cfg);
    let wl = TxnWorkload::new(devs, TxnMix::default(), TrafficPattern::Uniform, 64, 32);
    let mut rng = SimRng::seed_from(seed);
    let mut submitted = Vec::new();
    let mut pending: Option<TxnRequest> = None;
    let mut guard = 0u64;
    while submitted.len() < TXNS_PER_SEED {
        let req = pending.take().unwrap_or_else(|| wl.next(&mut rng));
        let accepted = match &req {
            TxnRequest::Point { src, dst, op } => fab
                .submit(*src, *dst, *op)
                .map_err(|e| format!("submit: {e}"))?
                .is_some(),
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            } => fab
                .submit_broadcast(*src, targets, *bytes)
                .map_err(|e| format!("broadcast: {e}"))?
                .is_some(),
        };
        if accepted {
            submitted.push(req);
        } else {
            pending = Some(req);
        }
        fab.tick();
        guard += 1;
        if guard > 1_000_000 {
            return Err("workload starved: nothing accepted for 1M cycles".into());
        }
    }
    if !fab.run_until_quiet(2_000_000) {
        return Err(format!(
            "failed to quiesce: {} txns in flight at cycle {}",
            fab.in_flight_txns(),
            fab.now().raw()
        ));
    }
    let completions = fab.drain_completions();
    let c = *fab.counters();
    if c.stray_flits != 0 || c.duplicate_flits != 0 || c.late_responses != 0 {
        return Err(format!(
            "anomaly counters nonzero: stray={} dup={} late={}",
            c.stray_flits, c.duplicate_flits, c.late_responses
        ));
    }
    if completions.len() != TXNS_PER_SEED {
        return Err(format!(
            "conservation: {} accepted, {} completed",
            TXNS_PER_SEED,
            completions.len()
        ));
    }
    let mut ids: Vec<_> = completions.iter().map(|t| t.txn).collect();
    ids.sort_unstable();
    ids.dedup();
    if ids.len() != TXNS_PER_SEED {
        return Err("conservation: a transaction completed twice".into());
    }
    Ok(RunResult {
        fingerprint: fab.fingerprint(),
        counters: c,
        completions: completions.len(),
        submitted,
    })
}

/// Run one seed under both exec modes, check invariants and engine
/// agreement; on violation, drop the artifact and return its path.
fn fuzz_seed(seed: u64) -> Result<(), String> {
    let seq = run(seed, ExecMode::Sequential)?;
    let par = run(seed, ExecMode::Parallel(4))?;
    if seq.fingerprint != par.fingerprint {
        return Err("Sequential vs Parallel(4) fingerprints diverged".into());
    }
    if seq.counters != par.counters {
        return Err("Sequential vs Parallel(4) counters diverged".into());
    }
    if seq.completions != par.completions {
        return Err("Sequential vs Parallel(4) completion counts diverged".into());
    }
    Ok(())
}

#[test]
fn seeded_transaction_fuzz_with_artifact_drop() {
    let matrix = SeedMatrix::from_env(0x7001_BA5E, 3);
    for seed in matrix.seeds() {
        if let Err(violation) = fuzz_seed(seed) {
            // Rebuild the trace under the failing seed for the artifact;
            // if even that run errors out, record the violation alone.
            let (x, y, devices) = shape(seed);
            let (submitted, counters, fingerprint) = match run(seed, ExecMode::Sequential) {
                Ok(r) => (r.submitted, r.counters, r.fingerprint),
                Err(_) => (Vec::new(), TxnCounters::default(), Vec::new()),
            };
            let trace = TxnTrace {
                seed,
                grid: (x, y),
                devices: devices as usize,
                window: 4,
                max_data_flits: 32,
                submitted,
                counters,
                fingerprint,
                violation: violation.clone(),
            };
            let json = serde_json::to_string(&trace).expect("trace serializes");
            let path = save_failing_artifact(&format!("txn-fuzz-seed-{seed}"), &json)
                .expect("artifact dir writable");
            panic!(
                "transaction fuzz violation at seed {seed}: {violation}\n\
                 trace saved to {} — replay with NOC_TOPO_FUZZ_SEED_BASE={seed} \
                 NOC_TOPO_FUZZ_SEEDS=1",
                path.display()
            );
        }
    }
}
