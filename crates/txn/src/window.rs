//! Per-endpoint in-flight windows for non-posted transactions.
//!
//! Every endpoint may hold at most `cap` non-posted transactions (read,
//! non-posted write, atomic) awaiting a response. A full window
//! backpressures the submitter — the transaction is simply not
//! accepted this cycle — mirroring how a NIU with a bounded
//! transaction-ID table stalls new requests. Responses that arrive for
//! transactions no longer in the window (duplicates, or anything a
//! fault-injection hook crafted) are rejected rather than corrupting a
//! live slot.

use std::collections::HashSet;

/// Bounded set of transaction ids awaiting responses at one endpoint.
#[derive(Debug, Clone)]
pub struct InFlightWindow {
    cap: usize,
    pending: HashSet<u64>,
    /// Slots ever released (monotonic) — the wait-graph detector's
    /// progress counter for this window: occupied slots with no
    /// completions across consecutive samples mean the window is
    /// frozen behind something.
    completions: u64,
}

impl InFlightWindow {
    /// A window admitting at most `cap` concurrent non-posted
    /// transactions.
    pub fn new(cap: usize) -> Self {
        InFlightWindow {
            cap,
            pending: HashSet::with_capacity(cap),
            completions: 0,
        }
    }

    /// Whether the window has no free slot.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.cap
    }

    /// Occupied slots.
    pub fn occupancy(&self) -> usize {
        self.pending.len()
    }

    /// Capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Claim a slot for `txn`. Returns `false` (and changes nothing)
    /// when the window is full — the backpressure path.
    pub fn try_reserve(&mut self, txn: u64) -> bool {
        if self.is_full() {
            return false;
        }
        let fresh = self.pending.insert(txn);
        debug_assert!(fresh, "transaction {txn} reserved twice");
        fresh
    }

    /// Release the slot of `txn` on response arrival. Returns `false`
    /// when `txn` holds no slot — a late or duplicate response that
    /// must be dropped.
    pub fn complete(&mut self, txn: u64) -> bool {
        let released = self.pending.remove(&txn);
        self.completions += u64::from(released);
        released
    }

    /// Slots ever released since construction (monotonic).
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Transaction ids currently holding slots, ascending (sorted for
    /// deterministic iteration over the underlying hash set).
    pub fn pending_txns(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pending.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_backpressures() {
        let mut w = InFlightWindow::new(2);
        assert!(w.try_reserve(1));
        assert!(w.try_reserve(2));
        assert!(w.is_full());
        assert!(!w.try_reserve(3), "full window must refuse, not panic");
        assert_eq!(w.occupancy(), 2);
        assert!(w.complete(1));
        assert!(!w.is_full());
        assert!(w.try_reserve(3));
    }

    #[test]
    fn late_and_duplicate_responses_are_rejected() {
        let mut w = InFlightWindow::new(4);
        assert!(w.try_reserve(7));
        assert!(w.complete(7));
        assert!(!w.complete(7), "duplicate response must be rejected");
        assert!(!w.complete(99), "unknown transaction must be rejected");
        assert_eq!(w.occupancy(), 0);
    }

    #[test]
    fn zero_capacity_window_refuses_everything() {
        let mut w = InFlightWindow::new(0);
        assert!(w.is_full());
        assert!(!w.try_reserve(1));
    }
}
