//! # noc-txn — the transaction layer over the deflection fabric
//!
//! The base engine in `noc-core` moves independent single flits, as the
//! paper's §3.4.3 fabric does. Real traffic is transactions: DMA bursts,
//! coherence messages, collectives. This crate packetizes transactions
//! the way the Tenstorrent Blackhole NoC does — one header flit plus up
//! to 256 × 64 B data flits per packet — and layers the protocol state
//! machines above the network:
//!
//! * [`TxnOp`] — reads, posted/non-posted writes, remote atomics
//!   ([`AtomicKind`]); plus rectangle [broadcast](TxnFabric::submit_broadcast)
//!   to a station set and one-way [messages](TxnFabric::submit_message)
//!   (the CHI transport rail);
//! * packetization ([`packet`]) and out-of-order reassembly
//!   ([`reassembly`]) that survive arbitrary per-flit deflection and
//!   reordering;
//! * bounded per-endpoint request/response [windows](window) with
//!   backpressure (`Ok(None)` — retry later) instead of unbounded
//!   buffering;
//! * [broadcast fan-out trees](broadcast::BroadcastTree) derived from
//!   the topology: one bridge crossing per foreign ring, bounded
//!   fanout per hop;
//! * an observatory hook: per-transaction latency percentiles and
//!   in-flight gauges sampled into
//!   [`TxnSnapshot`](noc_core::telemetry::TxnSnapshot)s.
//!
//! Everything above the network runs single-threadedly in
//! deterministic endpoint order, so the byte-identical
//! Sequential/Parallel(n) and Fast/Reference guarantees of the engine
//! extend to transactions — see the module docs of [`fabric`].
//!
//! # Quickstart
//!
//! ```
//! use noc_core::{GridParams, Network, NetworkConfig};
//! use noc_txn::{TxnConfig, TxnFabric, TxnOp};
//!
//! let (topo, names) = GridParams::torus(2, 2)
//!     .with_devices(8)
//!     .with_seed(7)
//!     .generate()?
//!     .compile()?;
//! let mut devs: Vec<_> = names.values().copied().collect();
//! devs.sort_unstable();
//!
//! let net = Network::new(topo, NetworkConfig::default());
//! let mut fab = TxnFabric::new(net, TxnConfig::default());
//! fab.submit(devs[0], devs[5], TxnOp::Read { bytes: 4096 })?;
//! assert!(fab.run_until_quiet(50_000));
//! assert_eq!(fab.drain_completions().len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod broadcast;
pub mod fabric;
pub mod packet;
pub mod reassembly;
pub mod window;

mod types;

pub use broadcast::BroadcastTree;
pub use fabric::TxnFabric;
pub use packet::{data_flits, split_packets, PacketDesc, PacketKind, StagedFlit};
pub use reassembly::{Accept, ReassemblyBuffer};
pub use types::{
    AtomicKind, TxnCompletion, TxnConfig, TxnCounters, TxnError, TxnId, TxnKind, TxnOp,
};
pub use window::InFlightWindow;

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{
        FlitClass, Network, NetworkConfig, NodeId, PacketToken, RingKind, TopologyBuilder,
    };

    /// One full ring, six devices.
    fn ring_fabric(cfg: TxnConfig) -> (TxnFabric, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let r = b.add_ring(die, RingKind::Full, 12).unwrap();
        let devs: Vec<NodeId> = (0..6u16)
            .map(|i| b.add_node(format!("d{i}"), r, i * 2).unwrap())
            .collect();
        let net = Network::new(b.build().unwrap(), NetworkConfig::default());
        (TxnFabric::new(net, cfg), devs)
    }

    #[test]
    fn read_write_atomic_round_trip() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        let r = fab
            .submit(d[0], d[3], TxnOp::Read { bytes: 300 })
            .unwrap()
            .unwrap();
        let w = fab
            .submit(
                d[1],
                d[4],
                TxnOp::Write {
                    bytes: 128,
                    posted: false,
                },
            )
            .unwrap()
            .unwrap();
        let p = fab
            .submit(
                d[2],
                d[5],
                TxnOp::Write {
                    bytes: 64,
                    posted: true,
                },
            )
            .unwrap()
            .unwrap();
        let a = fab
            .submit(d[0], d[5], TxnOp::Atomic(AtomicKind::Accumulate(41)))
            .unwrap()
            .unwrap();
        assert!(fab.run_until_quiet(100_000), "fabric wedged");
        let done = fab.drain_completions();
        assert_eq!(done.len(), 4);
        let by_id = |id| done.iter().find(|c| c.txn == id).unwrap();
        assert_eq!(by_id(r).kind, TxnKind::Read);
        assert_eq!(by_id(r).bytes, 300);
        assert_eq!(by_id(w).kind, TxnKind::WriteNonPosted);
        assert_eq!(by_id(p).kind, TxnKind::WritePosted);
        assert_eq!(by_id(a).kind, TxnKind::Atomic);
        assert_eq!(by_id(a).atomic_result, Some(0), "fetch result pre-op");
        assert_eq!(fab.atomic_cell(d[5]), Some(41));
        assert!(done.iter().all(|c| c.latency() > 0));
        assert_eq!(fab.counters().late_responses, 0);
        assert_eq!(fab.counters().stray_flits, 0);
        assert_eq!(fab.window_occupancy(), 0, "all slots released");
    }

    #[test]
    fn window_full_backpressures_with_ok_none() {
        let cfg = TxnConfig {
            window: 2,
            ..TxnConfig::default()
        };
        let (mut fab, d) = ring_fabric(cfg);
        assert!(fab
            .submit(d[0], d[1], TxnOp::Read { bytes: 64 })
            .unwrap()
            .is_some());
        assert!(fab
            .submit(d[0], d[2], TxnOp::Read { bytes: 64 })
            .unwrap()
            .is_some());
        // Third non-posted submission: full window → Ok(None), no panic.
        assert!(fab
            .submit(d[0], d[3], TxnOp::Read { bytes: 64 })
            .unwrap()
            .is_none());
        assert_eq!(fab.counters().backpressured, 1);
        // Posted writes bypass the window but not the staging bound.
        assert!(fab
            .submit(
                d[0],
                d[3],
                TxnOp::Write {
                    bytes: 64,
                    posted: true
                }
            )
            .unwrap()
            .is_some());
        assert!(fab.run_until_quiet(100_000));
        // Freed slots accept again.
        assert!(fab
            .submit(d[0], d[3], TxnOp::Read { bytes: 64 })
            .unwrap()
            .is_some());
        assert!(fab.run_until_quiet(100_000));
        assert_eq!(fab.drain_completions().len(), 4);
    }

    #[test]
    fn staging_bound_backpressures() {
        let cfg = TxnConfig {
            max_staged_flits: 4,
            ..TxnConfig::default()
        };
        let (mut fab, d) = ring_fabric(cfg);
        // 256-byte posted write = header + 4 data flits > bound once staged.
        assert!(fab
            .submit(
                d[0],
                d[3],
                TxnOp::Write {
                    bytes: 256,
                    posted: true
                }
            )
            .unwrap()
            .is_some());
        assert!(fab
            .submit(
                d[0],
                d[4],
                TxnOp::Write {
                    bytes: 256,
                    posted: true
                }
            )
            .unwrap()
            .is_none());
        assert!(fab.run_until_quiet(100_000));
    }

    #[test]
    fn admission_throttle_bounds_outstanding_flits() {
        let cfg = TxnConfig {
            max_outstanding_flits: 4,
            ..TxnConfig::default()
        };
        let (mut fab, d) = ring_fabric(cfg);
        assert_eq!(fab.outstanding_cap(), 4);
        // Two 1 KiB posted writes stage 2 × (1 header + 16 data) flits —
        // far more than the cap allows into the network at once.
        fab.submit(
            d[0],
            d[3],
            TxnOp::Write {
                bytes: 1024,
                posted: true,
            },
        )
        .unwrap()
        .unwrap();
        fab.submit(
            d[1],
            d[4],
            TxnOp::Write {
                bytes: 1024,
                posted: true,
            },
        )
        .unwrap()
        .unwrap();
        let mut peak = 0u64;
        let mut cycles = 0u64;
        while !fab.quiet() {
            fab.tick();
            peak = peak.max(fab.outstanding());
            cycles += 1;
            assert!(cycles < 100_000, "throttled fabric wedged");
        }
        assert!(peak > 0, "nothing ever entered the network");
        assert!(peak <= 4, "admission cap exceeded: peak {peak}");
        assert_eq!(fab.outstanding(), 0, "all flits accounted for on drain");
        assert_eq!(fab.drain_completions().len(), 2, "writes still complete");
    }

    #[test]
    fn auto_admission_cap_derives_from_ring_slots() {
        // The test ring has 12 stations × 2 lanes = 24 slots; the auto
        // cap is half that.
        let (fab, _) = ring_fabric(TxnConfig::default());
        assert_eq!(fab.outstanding_cap(), 12);
    }

    #[test]
    fn bad_endpoints_error() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        assert_eq!(
            fab.submit(d[0], d[0], TxnOp::Read { bytes: 1 }),
            Err(TxnError::SelfSend(d[0]))
        );
        assert_eq!(
            fab.submit(d[0], NodeId(999), TxnOp::Read { bytes: 1 }),
            Err(TxnError::BadEndpoint(NodeId(999)))
        );
        assert_eq!(
            fab.submit_broadcast(d[0], &[d[0]], 64),
            Err(TxnError::EmptyBroadcast)
        );
        assert!(matches!(
            fab.submit_broadcast(d[0], &[d[1]], 1 << 30),
            Err(TxnError::BroadcastTooLarge { .. })
        ));
    }

    #[test]
    fn broadcast_reaches_every_target_once() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        let id = fab.submit_broadcast(d[0], &d[1..], 512).unwrap().unwrap();
        assert!(fab.run_until_quiet(200_000), "broadcast wedged");
        let done = fab.drain_completions();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].txn, id);
        assert_eq!(done[0].kind, TxnKind::Broadcast);
        assert_eq!(fab.counters().broadcasts, 1);
        // 5 targets × (1 header + 8 data flits) reassembled, plus nothing
        // else: conservation of copies.
        assert_eq!(fab.counters().packets_reassembled, 5);
        assert_eq!(fab.counters().stray_flits, 0);
        assert_eq!(fab.counters().duplicate_flits, 0);
    }

    #[test]
    fn messages_ride_packets_and_preserve_tokens() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        assert!(fab.submit_message(d[0], d[3], FlitClass::Request, 80, 0xAA));
        assert!(fab.submit_message(d[1], d[3], FlitClass::Data, 64, 0xBB));
        assert!(fab.run_until_quiet(100_000));
        let mut got = Vec::new();
        while let Some(t) = fab.recv_message(d[3]) {
            got.push(t);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0xAA, 0xBB]);
        assert_eq!(fab.counters().messages, 2);
        // Messages don't surface as transaction completions.
        assert!(fab.drain_completions().is_empty());
    }

    #[test]
    fn stray_flits_are_counted_and_dropped() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        // A token whose packet id was never allocated.
        let bogus = PacketToken {
            packet: 1 << 40,
            seq: 0,
        }
        .encode();
        fab.inject_raw(d[0], d[2], FlitClass::Data, 64, bogus)
            .unwrap();
        assert!(fab.run_until_quiet(100_000));
        assert_eq!(fab.counters().stray_flits, 1);
        assert!(fab.drain_completions().is_empty());
    }

    #[test]
    fn duplicate_data_flit_is_rejected_end_to_end() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        // Start a 2-packet-capacity write so a live packet id exists,
        // then race a counterfeit duplicate of its first data flit.
        fab.submit(
            d[0],
            d[3],
            TxnOp::Write {
                bytes: 1024,
                posted: true,
            },
        )
        .unwrap()
        .unwrap();
        // Packet ids allocate from 0; seq 1 is the first data flit.
        let dup = PacketToken { packet: 0, seq: 1 }.encode();
        fab.inject_raw(d[1], d[3], FlitClass::Data, 64, dup)
            .unwrap();
        assert!(fab.run_until_quiet(200_000));
        assert_eq!(fab.drain_completions().len(), 1, "write still completes");
        assert_eq!(
            fab.counters().duplicate_flits + fab.counters().stray_flits,
            1,
            "counterfeit dropped either as duplicate (race won) or stray (packet already done)"
        );
    }

    #[test]
    fn observatory_snapshots_report_percentiles_and_gauge() {
        let cfg = TxnConfig {
            metrics_period: 64,
            ..TxnConfig::default()
        };
        let (mut fab, d) = ring_fabric(cfg);
        for i in 0..4 {
            fab.submit(d[i], d[(i + 3) % 6], TxnOp::Read { bytes: 512 })
                .unwrap()
                .unwrap();
        }
        assert!(fab.run_until_quiet(100_000));
        // Pad to the next sampling boundary so the last window closes.
        while fab.now().raw() % 64 != 0 {
            fab.tick();
        }
        let snaps = fab.txn_snapshots();
        assert!(!snaps.is_empty());
        let last = snaps.last().unwrap();
        assert_eq!(last.completed_total, 4);
        assert_eq!(last.inflight_txns, 0);
        assert_eq!(last.window_occupancy, 0);
        let total_delta: u64 = snaps.iter().map(|s| s.completed_delta).sum();
        assert_eq!(total_delta, 4, "every completion lands in some window");
        let busy = snaps.iter().find(|s| s.completed_delta > 0).unwrap();
        assert!(busy.p50 > 0 && busy.p99 >= busy.p50);
        assert_eq!(fab.registry().unwrap().cumulative().count(), 4);
    }

    #[test]
    fn span_trees_cover_completions_and_reconcile_exactly() {
        use noc_core::telemetry::{critical_path, SpanCollector, SpanRole};

        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let r = b.add_ring(die, RingKind::Full, 12).unwrap();
        let devs: Vec<NodeId> = (0..6u16)
            .map(|i| b.add_node(format!("d{i}"), r, i * 2).unwrap())
            .collect();
        let net = Network::new(b.build().unwrap(), NetworkConfig::default());
        let mut fab = TxnFabric::with_spans(net, TxnConfig::default(), SpanCollector::new(64, 4));

        let d = &devs;
        fab.submit(d[0], d[3], TxnOp::Read { bytes: 300 }).unwrap();
        fab.submit(
            d[1],
            d[4],
            TxnOp::Write {
                bytes: 128,
                posted: false,
            },
        )
        .unwrap();
        fab.submit(
            d[2],
            d[5],
            TxnOp::Write {
                bytes: 64,
                posted: true,
            },
        )
        .unwrap();
        fab.submit(d[0], d[5], TxnOp::Atomic(AtomicKind::Swap(9)))
            .unwrap();
        fab.submit_broadcast(d[5], &d[..5], 256).unwrap();
        // Messages are not transactions and must not produce trees.
        assert!(fab.submit_message(d[3], d[0], FlitClass::Request, 32, 0xC0));
        assert!(fab.run_until_quiet(200_000), "fabric wedged");

        let done = fab.drain_completions();
        assert_eq!(done.len(), 5);
        let trees: Vec<_> = fab.span_sink().recent().cloned().collect();
        assert_eq!(trees.len(), 5, "one tree per completed transaction");
        assert_eq!(fab.span_sink().recorded(), 5);

        for c in &done {
            let tree = trees.iter().find(|t| t.txn == c.txn.0).unwrap();
            assert_eq!(tree.issued_at, c.issued_at.raw());
            assert_eq!(tree.completed_at, c.completed_at.raw());
            // Every cycle of the transaction's life is attributed to a
            // named phase, and the attribution is exact.
            let cp = critical_path(tree);
            assert!(
                cp.reconciles(),
                "txn {} phases {:?} != latency {}",
                tree.txn,
                cp.phases,
                tree.latency()
            );
            assert_eq!(cp.total, tree.latency());
            // The chain starts at a submit-time packet and ends at the
            // finishing one.
            assert_eq!(cp.links.last().unwrap().packet, tree.final_packet);
            assert!(tree.packet(cp.links[0].packet).unwrap().parent.is_none());
        }

        // Causal edges: the read's response data packets point at the
        // request packet; the broadcast has relay spans.
        let read = trees.iter().find(|t| t.op == 0).unwrap();
        let req = read
            .packets
            .iter()
            .find(|p| p.role == SpanRole::Request)
            .unwrap();
        let responses: Vec<_> = read
            .packets
            .iter()
            .filter(|p| p.role == SpanRole::Response)
            .collect();
        assert!(!responses.is_empty());
        assert!(responses.iter().all(|p| p.parent == Some(req.packet)));
        assert!(read.req_done_at.is_some());
        assert_eq!(req.reassembled_at, read.req_done_at.unwrap());

        let bcast = trees.iter().find(|t| t.op == 4).unwrap();
        assert!(bcast
            .packets
            .iter()
            .any(|p| p.role == SpanRole::Relay && p.parent.is_some()));
        assert!(bcast.req_done_at.is_none());

        // The tail reservoir holds the 4 slowest, slowest first.
        let ex = fab.tail_exemplars();
        assert_eq!(ex.len(), 4);
        assert!(ex.windows(2).all(|w| w[0].latency() >= w[1].latency()));
    }

    #[test]
    fn null_span_sink_fabric_matches_default_fabric() {
        use noc_core::telemetry::NullSpanSink;

        // `TxnFabric::new` is `with_spans(.., NullSpanSink)`: same
        // monomorphization, so the spans-off overhead is zero by
        // construction. Check behavior anyway.
        let (mut a, d) = ring_fabric(TxnConfig::default());
        let topo = {
            let mut b = TopologyBuilder::new();
            let die = b.add_chiplet("die");
            let r = b.add_ring(die, RingKind::Full, 12).unwrap();
            for i in 0..6u16 {
                b.add_node(format!("d{i}"), r, i * 2).unwrap();
            }
            b.build().unwrap()
        };
        let net = Network::new(topo, NetworkConfig::default());
        let mut bfab = TxnFabric::with_spans(net, TxnConfig::default(), NullSpanSink);
        for fab in [&mut a, &mut bfab] {
            fab.submit(d[0], d[3], TxnOp::Read { bytes: 512 }).unwrap();
            fab.submit(d[1], d[4], TxnOp::Atomic(AtomicKind::Accumulate(3)))
                .unwrap();
            assert!(fab.run_until_quiet(100_000));
        }
        assert_eq!(a.fingerprint(), bfab.fingerprint());
        assert!(bfab.tail_exemplars().is_empty());
    }

    #[test]
    fn fingerprint_extends_network_fingerprint() {
        let (mut fab, d) = ring_fabric(TxnConfig::default());
        let before = fab.fingerprint();
        assert!(before.len() > fab.network().fingerprint().len());
        fab.submit(d[0], d[1], TxnOp::Read { bytes: 64 }).unwrap();
        assert!(fab.run_until_quiet(100_000));
        assert_ne!(fab.fingerprint(), before);
    }
}
