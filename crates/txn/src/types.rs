//! Transaction vocabulary: operations, identifiers, completions,
//! configuration and the layer's counter block.

use noc_core::NodeId;
use noc_sim::Cycle;
use serde::{Deserialize, Serialize};

/// Identifier of one transaction, unique per [`TxnFabric`] in
/// allocation order.
///
/// [`TxnFabric`]: crate::TxnFabric
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl std::fmt::Display for TxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A remote atomic operation on the destination endpoint's 64-bit
/// atomic cell. All atomics are fetch-ops: the response carries the
/// cell value *before* the operation (Blackhole-style remote atomics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AtomicKind {
    /// `cell += operand` (wrapping).
    Accumulate(u64),
    /// `cell = operand`.
    Swap(u64),
    /// `cell += 1` (wrapping).
    Increment,
    /// `if cell == expected { cell = desired }`.
    CompareSwap {
        /// Value the cell must hold for the swap to take effect.
        expected: u64,
        /// Value written on a successful compare.
        desired: u64,
    },
}

impl AtomicKind {
    /// Apply to a cell, returning the pre-op value (the fetch result).
    pub fn apply(self, cell: &mut u64) -> u64 {
        let before = *cell;
        match self {
            AtomicKind::Accumulate(v) => *cell = cell.wrapping_add(v),
            AtomicKind::Swap(v) => *cell = v,
            AtomicKind::Increment => *cell = cell.wrapping_add(1),
            AtomicKind::CompareSwap { expected, desired } => {
                if before == expected {
                    *cell = desired;
                }
            }
        }
        before
    }
}

/// A point-to-point transaction offered to [`TxnFabric::submit`].
///
/// [`TxnFabric::submit`]: crate::TxnFabric::submit
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnOp {
    /// Non-posted read of `bytes` from the destination; the response
    /// carries the data back.
    Read {
        /// Bytes requested.
        bytes: u32,
    },
    /// Write of `bytes` to the destination. Posted writes complete at
    /// delivery; non-posted writes complete when the ack returns.
    Write {
        /// Bytes carried.
        bytes: u32,
        /// Whether the write is posted (no acknowledgement).
        posted: bool,
    },
    /// Non-posted remote atomic on the destination's atomic cell.
    Atomic(AtomicKind),
}

impl TxnOp {
    /// Whether the operation needs a response (occupies a window slot).
    pub fn non_posted(self) -> bool {
        !matches!(self, TxnOp::Write { posted: true, .. })
    }

    /// Request-direction payload bytes.
    pub fn bytes(self) -> u32 {
        match self {
            TxnOp::Read { .. } | TxnOp::Atomic(_) => 0,
            TxnOp::Write { bytes, .. } => bytes,
        }
    }
}

/// What kind of transaction a completion records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TxnKind {
    /// Non-posted read.
    Read,
    /// Posted write (completes at delivery).
    WritePosted,
    /// Non-posted write (completes at ack).
    WriteNonPosted,
    /// Remote atomic.
    Atomic,
    /// Broadcast to a station set.
    Broadcast,
}

/// One finished transaction, reported in completion order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnCompletion {
    /// The transaction.
    pub txn: TxnId,
    /// What it was.
    pub kind: TxnKind,
    /// Issuing endpoint.
    pub src: NodeId,
    /// Destination endpoint (for broadcasts: the root's first target).
    pub dst: NodeId,
    /// Payload bytes moved in the request direction (for reads: bytes
    /// returned in the response direction).
    pub bytes: u32,
    /// Cycle the transaction was accepted by [`TxnFabric::submit`].
    ///
    /// [`TxnFabric::submit`]: crate::TxnFabric::submit
    pub issued_at: Cycle,
    /// Cycle the transaction completed.
    pub completed_at: Cycle,
    /// Fetch result for atomics (`None` otherwise).
    pub atomic_result: Option<u64>,
}

impl TxnCompletion {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at.since(self.issued_at)
    }
}

/// Why a submission was rejected outright (distinct from backpressure,
/// which is the `Ok(None)` path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// Source or destination is not a device endpoint of the fabric.
    BadEndpoint(NodeId),
    /// Source equals destination.
    SelfSend(NodeId),
    /// A broadcast was submitted with no targets besides the root.
    EmptyBroadcast,
    /// A broadcast payload exceeds one packet
    /// (`flit_bytes * max_data_flits`).
    BroadcastTooLarge {
        /// Bytes requested.
        bytes: u32,
        /// Largest allowed payload.
        max: u32,
    },
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::BadEndpoint(n) => write!(f, "{n} is not a device endpoint"),
            TxnError::SelfSend(n) => write!(f, "{n} cannot transact with itself"),
            TxnError::EmptyBroadcast => write!(f, "broadcast has no targets"),
            TxnError::BroadcastTooLarge { bytes, max } => {
                write!(f, "broadcast of {bytes} B exceeds one packet ({max} B)")
            }
        }
    }
}

impl std::error::Error for TxnError {}

/// Transaction-layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnConfig {
    /// Data flit payload capacity in bytes (Blackhole: 64).
    pub flit_bytes: u32,
    /// Maximum data flits per packet (Blackhole: 256, i.e. 16 KiB).
    pub max_data_flits: u16,
    /// Header flit size in bytes, charged to bandwidth accounting.
    pub header_bytes: u32,
    /// Per-endpoint cap on in-flight non-posted transactions. A full
    /// window backpressures `submit` into the `Ok(None)` path.
    pub window: usize,
    /// Per-endpoint cap on flits staged for injection; beyond it,
    /// `submit` backpressures rather than buffering unboundedly.
    pub max_staged_flits: usize,
    /// Maximum children per node in broadcast fan-out trees.
    pub broadcast_fanout: usize,
    /// Fabric-wide admission cap: flits in the network at once (pumped
    /// but not yet delivered). `0` derives a bound from the topology
    /// (half the fabric's ring slots). Unbounded injection can wedge a
    /// multi-ring fabric — saturated rings and full bridge escape
    /// buffers form a cyclic wait SWAP cannot break — so the
    /// transaction layer keeps offered load below that regime;
    /// deflection routing has no escape channels to fall back on.
    pub max_outstanding_flits: usize,
    /// Sample a transaction-metrics snapshot every this many cycles
    /// (0 disables the observatory hook).
    pub metrics_period: u64,
    /// Per-endpoint reassembly credits: how many request packets may be
    /// concurrently admitted *toward* one endpoint. The admission pump
    /// reserves a credit at the responder before releasing a request
    /// packet's header flit and the credit returns when that packet
    /// finishes reassembly, so inbound demand can never pile up
    /// unboundedly on the rings around a hot destination — the
    /// saturation pattern that wedges a multi-ring fabric (full rings +
    /// full escape buffers in a cyclic wait SWAP cannot break).
    /// Responses and broadcast forwards are never credit-gated (gating
    /// them could deadlock the windows waiting on them). `0` disables
    /// crediting (legacy admission).
    pub reassembly_slots: usize,
}

impl Default for TxnConfig {
    fn default() -> Self {
        TxnConfig {
            flit_bytes: 64,
            max_data_flits: 256,
            header_bytes: 16,
            window: 8,
            max_staged_flits: 4096,
            broadcast_fanout: 4,
            max_outstanding_flits: 0,
            metrics_period: 0,
            reassembly_slots: 0,
        }
    }
}

impl TxnConfig {
    /// Largest payload one packet can carry.
    pub fn packet_capacity(&self) -> u32 {
        self.flit_bytes * u32::from(self.max_data_flits)
    }
}

/// Monotonic counters over the fabric's lifetime. All values are part
/// of the transaction-layer fingerprint, so any cross-engine divergence
/// in packetization, reassembly or windowing shows up as a mismatch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxnCounters {
    /// Transactions accepted by `submit`/`submit_broadcast`.
    pub submitted: u64,
    /// Messages accepted by `submit_message`.
    pub messages_submitted: u64,
    /// Submissions refused with `Ok(None)` (window or staging full).
    pub backpressured: u64,
    /// Completed reads.
    pub reads: u64,
    /// Completed posted writes.
    pub writes_posted: u64,
    /// Completed non-posted writes.
    pub writes_non_posted: u64,
    /// Completed atomics.
    pub atomics: u64,
    /// Completed broadcasts.
    pub broadcasts: u64,
    /// Delivered messages.
    pub messages: u64,
    /// Packets fully reassembled anywhere in the fabric.
    pub packets_reassembled: u64,
    /// Flits handed to the network.
    pub flits_sent: u64,
    /// Payload bytes handed to the network (headers included).
    pub bytes_sent: u64,
    /// Flits whose token matched no live packet (dropped).
    pub stray_flits: u64,
    /// Flits repeating an already-received packet sequence (dropped).
    pub duplicate_flits: u64,
    /// Responses for transactions no longer in the window (dropped).
    pub late_responses: u64,
    /// Pump passes that paused an endpoint because the responder's
    /// reassembly credits were exhausted
    /// ([`TxnConfig::reassembly_slots`]).
    pub reassembly_deferred: u64,
}

impl TxnCounters {
    /// Completed transactions of all kinds (messages excluded).
    pub fn completed(&self) -> u64 {
        self.reads + self.writes_posted + self.writes_non_posted + self.atomics + self.broadcasts
    }

    /// Flatten into fingerprint words.
    pub fn digest(&self) -> Vec<u64> {
        vec![
            self.submitted,
            self.messages_submitted,
            self.backpressured,
            self.reads,
            self.writes_posted,
            self.writes_non_posted,
            self.atomics,
            self.broadcasts,
            self.messages,
            self.packets_reassembled,
            self.flits_sent,
            self.bytes_sent,
            self.stray_flits,
            self.duplicate_flits,
            self.late_responses,
            self.reassembly_deferred,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_apply_is_fetch_op() {
        let mut cell = 10;
        assert_eq!(AtomicKind::Accumulate(5).apply(&mut cell), 10);
        assert_eq!(cell, 15);
        assert_eq!(AtomicKind::Swap(2).apply(&mut cell), 15);
        assert_eq!(cell, 2);
        assert_eq!(AtomicKind::Increment.apply(&mut cell), 2);
        assert_eq!(cell, 3);
        assert_eq!(
            AtomicKind::CompareSwap {
                expected: 3,
                desired: 99
            }
            .apply(&mut cell),
            3
        );
        assert_eq!(cell, 99);
        // Failed compare leaves the cell untouched but still fetches.
        assert_eq!(
            AtomicKind::CompareSwap {
                expected: 0,
                desired: 1
            }
            .apply(&mut cell),
            99
        );
        assert_eq!(cell, 99);
    }

    #[test]
    fn op_posting_rules() {
        assert!(TxnOp::Read { bytes: 64 }.non_posted());
        assert!(TxnOp::Atomic(AtomicKind::Increment).non_posted());
        assert!(TxnOp::Write {
            bytes: 64,
            posted: false
        }
        .non_posted());
        assert!(!TxnOp::Write {
            bytes: 64,
            posted: true
        }
        .non_posted());
    }

    #[test]
    fn default_config_matches_blackhole_shape() {
        let c = TxnConfig::default();
        assert_eq!(c.flit_bytes, 64);
        assert_eq!(c.max_data_flits, 256);
        assert_eq!(c.packet_capacity(), 16 * 1024);
    }

    #[test]
    fn counters_digest_covers_every_field() {
        // 16 public u64 fields — the digest must track them all.
        let c = TxnCounters {
            submitted: 1,
            messages_submitted: 2,
            backpressured: 3,
            reads: 4,
            writes_posted: 5,
            writes_non_posted: 6,
            atomics: 7,
            broadcasts: 8,
            messages: 9,
            packets_reassembled: 10,
            flits_sent: 11,
            bytes_sent: 12,
            stray_flits: 13,
            duplicate_flits: 14,
            late_responses: 15,
            reassembly_deferred: 16,
        };
        let d = c.digest();
        assert_eq!(d.len(), 16);
        assert_eq!(d, (1..=16).collect::<Vec<u64>>());
        assert_eq!(c.completed(), 4 + 5 + 6 + 7 + 8);
    }
}
