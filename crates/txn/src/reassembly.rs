//! Per-endpoint reassembly of packets whose flits arrive in arbitrary
//! order.
//!
//! The deflection fabric gives no ordering guarantee: flits of one
//! packet may deflect, overtake each other, or interleave with flits of
//! any other packet bound for the same endpoint. Reassembly therefore
//! keeps one [`PartialPacket`] per in-flight packet id, tracks received
//! data sequences in a bitmask, and completes a packet only once the
//! header *and* every data flit announced by the descriptor have
//! arrived. Duplicate sequences are rejected and counted by the fabric.

use noc_core::PacketToken;
use std::collections::HashMap;

/// Outcome of feeding one flit to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// The flit completed its packet; the packet's state was removed.
    Complete,
    /// The flit was absorbed; the packet is still missing pieces.
    Partial,
    /// The flit's sequence was already received (dropped).
    Duplicate,
}

/// Assembly state of one packet.
#[derive(Debug, Clone)]
struct PartialPacket {
    /// Data flits expected; known from the packet descriptor when the
    /// first flit arrives.
    expect_data: u32,
    have_header: bool,
    received_data: u32,
    /// Bitmask of received data sequences (seq 1 → bit 0). 256 data
    /// flits fit in four words.
    seen: [u64; 4],
}

impl PartialPacket {
    fn new(expect_data: u32) -> Self {
        PartialPacket {
            expect_data,
            have_header: false,
            received_data: 0,
            seen: [0; 4],
        }
    }

    fn complete(&self) -> bool {
        self.have_header && self.received_data == self.expect_data
    }
}

/// Reassembly buffer of one endpoint.
#[derive(Debug, Clone, Default)]
pub struct ReassemblyBuffer {
    parts: HashMap<u64, PartialPacket>,
    /// Flits ever absorbed (headers + data, duplicates excluded;
    /// monotonic) — the wait-graph detector's progress counter for
    /// this buffer: open packets with no absorption across consecutive
    /// samples mean every missing flit is stuck upstream.
    accepted: u64,
}

impl ReassemblyBuffer {
    /// Fresh, empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Packets currently mid-assembly at this endpoint.
    pub fn open_packets(&self) -> usize {
        self.parts.len()
    }

    /// Flits ever absorbed since construction (monotonic).
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Ids of packets currently mid-assembly, ascending (sorted for
    /// deterministic iteration over the underlying hash map).
    pub fn open_packet_ids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.parts.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Feed one flit. `expect_data` is the packet's data-flit count
    /// from its descriptor (the fabric is omniscient; a hardware
    /// implementation would read it off the header flit and buffer
    /// early data flits optimistically, which this models).
    ///
    /// # Panics
    ///
    /// Panics if a data sequence exceeds the 256-flit packet bound the
    /// token encoding is sized for.
    pub fn accept(&mut self, tok: PacketToken, expect_data: u32) -> Accept {
        let part = self
            .parts
            .entry(tok.packet)
            .or_insert_with(|| PartialPacket::new(expect_data));
        debug_assert_eq!(
            part.expect_data, expect_data,
            "descriptor changed mid-flight"
        );
        if tok.is_header() {
            if part.have_header {
                return Accept::Duplicate;
            }
            part.have_header = true;
        } else {
            let bit = u32::from(tok.seq) - 1;
            assert!(bit < 256, "data seq {} beyond packet bound", tok.seq);
            let (word, mask) = ((bit / 64) as usize, 1u64 << (bit % 64));
            if part.seen[word] & mask != 0 {
                return Accept::Duplicate;
            }
            part.seen[word] |= mask;
            part.received_data += 1;
        }
        let done = part.complete();
        if done {
            self.parts.remove(&tok.packet);
        }
        self.accepted += 1;
        if done {
            Accept::Complete
        } else {
            Accept::Partial
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(packet: u64, seq: u16) -> PacketToken {
        PacketToken { packet, seq }
    }

    #[test]
    fn header_only_packet_completes_immediately() {
        let mut b = ReassemblyBuffer::new();
        assert_eq!(b.accept(tok(5, 0), 0), Accept::Complete);
        assert_eq!(b.open_packets(), 0);
    }

    #[test]
    fn out_of_order_data_before_header() {
        let mut b = ReassemblyBuffer::new();
        assert_eq!(b.accept(tok(1, 2), 2), Accept::Partial);
        assert_eq!(b.accept(tok(1, 1), 2), Accept::Partial);
        assert_eq!(b.accept(tok(1, 0), 2), Accept::Complete);
        assert_eq!(b.open_packets(), 0);
    }

    #[test]
    fn interleaved_packets_from_multiple_sources() {
        let mut b = ReassemblyBuffer::new();
        // Three packets' flits arrive fully interleaved.
        assert_eq!(b.accept(tok(10, 0), 2), Accept::Partial);
        assert_eq!(b.accept(tok(11, 1), 1), Accept::Partial);
        assert_eq!(b.accept(tok(12, 0), 0), Accept::Complete);
        assert_eq!(b.accept(tok(10, 2), 2), Accept::Partial);
        assert_eq!(b.accept(tok(11, 0), 1), Accept::Complete);
        assert_eq!(b.open_packets(), 1);
        assert_eq!(b.accept(tok(10, 1), 2), Accept::Complete);
        assert_eq!(b.open_packets(), 0);
    }

    #[test]
    fn duplicates_are_rejected_not_double_counted() {
        let mut b = ReassemblyBuffer::new();
        assert_eq!(b.accept(tok(3, 1), 2), Accept::Partial);
        assert_eq!(b.accept(tok(3, 1), 2), Accept::Duplicate);
        assert_eq!(b.accept(tok(3, 0), 2), Accept::Partial);
        assert_eq!(b.accept(tok(3, 0), 2), Accept::Duplicate);
        // Still needs the real second data flit.
        assert_eq!(b.accept(tok(3, 2), 2), Accept::Complete);
    }

    #[test]
    fn full_size_packet_reassembles() {
        let mut b = ReassemblyBuffer::new();
        // 256 data flits, header arriving in the middle, evens then odds.
        for seq in (2..=256u16).step_by(2) {
            assert_eq!(b.accept(tok(9, seq), 256), Accept::Partial);
        }
        assert_eq!(b.accept(tok(9, 0), 256), Accept::Partial);
        for seq in (1..=253u16).step_by(2) {
            assert_eq!(b.accept(tok(9, seq), 256), Accept::Partial);
        }
        assert_eq!(b.accept(tok(9, 255), 256), Accept::Complete);
    }
}
