//! Broadcast fan-out trees over the multi-ring fabric.
//!
//! A rectangle broadcast in the Blackhole NoC replicates one packet to
//! a set of stations. On a multi-ring fabric the natural shape is a
//! two-level tree derived from the [`Topology`]: the root first reaches
//! one *relay* per ring that holds targets (paying each ring-to-ring
//! bridge crossing once instead of once per target), and every relay
//! then fans out to its ring-local siblings. Both levels bound the
//! out-degree with a configurable fanout by chaining extra children
//! through earlier ones (d-ary heap order), so no single inject queue
//! absorbs the whole replication burst.
//!
//! Tree construction is a pure function of the topology, the root and
//! the sorted target set — identical on every engine, which is what the
//! lockstep guarantees need.

use noc_core::{NodeId, Topology};
use std::collections::BTreeMap;

/// A deterministic fan-out tree: each sender's children, in send order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BroadcastTree {
    children: BTreeMap<NodeId, Vec<NodeId>>,
    targets: usize,
}

impl BroadcastTree {
    /// Build the tree for `root` reaching `targets` (the root itself is
    /// ignored if listed; duplicates collapse). `fanout` bounds every
    /// node's out-degree and must be at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0` or a target id is out of range for the
    /// topology.
    pub fn build(topo: &Topology, root: NodeId, targets: &[NodeId], fanout: usize) -> Self {
        assert!(fanout >= 1, "broadcast fanout must be at least 1");
        let mut sorted: Vec<NodeId> = targets.iter().copied().filter(|&t| t != root).collect();
        sorted.sort_unstable();
        sorted.dedup();

        // Group targets by ring, in ring order (BTreeMap), members sorted.
        let mut by_ring: BTreeMap<u16, Vec<NodeId>> = BTreeMap::new();
        for &t in &sorted {
            let spec = &topo.nodes()[t.index()];
            by_ring.entry(spec.ring.0).or_default().push(t);
        }

        let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let root_ring = topo.nodes()[root.index()].ring.0;

        // Level 1: the root reaches one relay per foreign ring; on its
        // own ring the root itself is the relay.
        let mut relays: Vec<NodeId> = Vec::new();
        for (&ring, members) in &by_ring {
            if ring != root_ring {
                relays.push(members[0]);
            }
        }
        link_dary(&mut children, root, &relays, fanout);

        // Level 2: each relay chains through its ring-local siblings.
        for (&ring, members) in &by_ring {
            let (relay, rest) = if ring == root_ring {
                (root, &members[..])
            } else {
                (members[0], &members[1..])
            };
            link_dary(&mut children, relay, rest, fanout);
        }

        BroadcastTree {
            children,
            targets: sorted.len(),
        }
    }

    /// Children of `node`, in send order (empty for leaves).
    pub fn children_of(&self, node: NodeId) -> &[NodeId] {
        self.children.get(&node).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct targets the tree reaches.
    pub fn targets(&self) -> usize {
        self.targets
    }

    /// Every `(sender, child)` edge, in deterministic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.children
            .iter()
            .flat_map(|(&s, cs)| cs.iter().map(move |&c| (s, c)))
    }
}

/// Wire `nodes` under `root` as a d-ary heap: `root` sends to the
/// first `fanout` nodes, node `i` of the list sends to nodes
/// `i*fanout+1 ..= i*fanout+fanout`.
fn link_dary(
    children: &mut BTreeMap<NodeId, Vec<NodeId>>,
    root: NodeId,
    nodes: &[NodeId],
    fanout: usize,
) {
    if nodes.is_empty() {
        return;
    }
    children
        .entry(root)
        .or_default()
        .extend(nodes.iter().take(fanout));
    for (i, &parent) in nodes.iter().enumerate() {
        let lo = i * fanout + fanout;
        if lo >= nodes.len() {
            break;
        }
        let hi = (lo + fanout).min(nodes.len());
        children.entry(parent).or_default().extend(&nodes[lo..hi]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{RingKind, TopologyBuilder};

    /// Two rings bridged, four devices each.
    fn two_ring_topo() -> (Topology, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let r0 = b.add_ring(die, RingKind::Full, 8).unwrap();
        let r1 = b.add_ring(die, RingKind::Full, 8).unwrap();
        let mut devs = Vec::new();
        for i in 0..4u16 {
            devs.push(b.add_node(format!("a{i}"), r0, i * 2).unwrap());
        }
        for i in 0..4u16 {
            devs.push(b.add_node(format!("b{i}"), r1, i * 2).unwrap());
        }
        b.add_bridge(noc_core::BridgeConfig::l1(), r0, 1, r1, 1)
            .unwrap();
        (b.build().unwrap(), devs)
    }

    #[test]
    fn tree_reaches_every_target_exactly_once() {
        let (topo, devs) = two_ring_topo();
        let root = devs[0];
        let targets: Vec<NodeId> = devs[1..].to_vec();
        let tree = BroadcastTree::build(&topo, root, &targets, 2);
        assert_eq!(tree.targets(), 7);
        let mut reached: Vec<NodeId> = tree.edges().map(|(_, c)| c).collect();
        reached.sort_unstable();
        let mut expect = targets.clone();
        expect.sort_unstable();
        assert_eq!(reached, expect, "each target exactly one incoming edge");
    }

    #[test]
    fn fanout_bounds_out_degree() {
        let (topo, devs) = two_ring_topo();
        let tree = BroadcastTree::build(&topo, devs[0], &devs[1..], 2);
        for cs in tree.children.values() {
            assert!(cs.len() <= 2 * 2, "root joins two d-ary levels at most");
        }
        // Leaves exist: not everything hangs off the root.
        assert!(tree.children_of(devs[0]).len() < 7);
    }

    #[test]
    fn one_relay_crosses_each_foreign_ring() {
        let (topo, devs) = two_ring_topo();
        let tree = BroadcastTree::build(&topo, devs[0], &devs[1..], 4);
        // Exactly one edge crosses from ring 0 to ring 1.
        let crossings = tree
            .edges()
            .filter(|&(s, c)| topo.nodes()[s.index()].ring != topo.nodes()[c.index()].ring)
            .count();
        assert_eq!(crossings, 1, "bridge paid once, not per target");
    }

    #[test]
    fn root_in_target_list_and_duplicates_collapse() {
        let (topo, devs) = two_ring_topo();
        let mut targets = devs.clone();
        targets.push(devs[1]); // duplicate
        let tree = BroadcastTree::build(&topo, devs[0], &targets, 3);
        assert_eq!(tree.targets(), 7, "root and duplicate dropped");
    }

    #[test]
    fn trees_are_deterministic_under_target_order() {
        let (topo, devs) = two_ring_topo();
        let fwd = BroadcastTree::build(&topo, devs[0], &devs[1..], 2);
        let mut rev: Vec<NodeId> = devs[1..].to_vec();
        rev.reverse();
        let bwd = BroadcastTree::build(&topo, devs[0], &rev, 2);
        assert_eq!(fwd, bwd);
    }
}
