//! The transaction fabric: packetization, injection pumping,
//! reassembly, windows, responses, atomics and broadcast relaying,
//! layered over a [`Network`].
//!
//! # Determinism
//!
//! [`TxnFabric`] owns all transaction state and mutates it only in
//! [`TxnFabric::tick`], single-threadedly, *around* the network's own
//! tick: staged flits are pumped into inject queues in ascending
//! endpoint order before the tick, and deliveries are drained in
//! ascending endpoint order after it. The engine below guarantees
//! byte-identical delivery streams across `TickMode::{Fast,Reference}`
//! and `ExecMode::{Sequential,Parallel(n)}`, so every transaction-layer
//! decision — reassembly completions, window releases, broadcast
//! forwards, atomic results — replays identically on every engine.
//! Hash maps are keyed-lookup only (never iterated), endpoints live in
//! a `BTreeMap`, so no iteration order leaks into behavior.
//!
//! [`TxnFabric::tick_epoch`] re-points the pump and drain at **epoch
//! boundaries**: admission happens once per K cycles instead of every
//! cycle, so for K > 1 the schedule legitimately differs from K = 1 —
//! fewer pump opportunities, batched drains. What holds instead is
//! that the K-schedule is itself a pure function of K: for any fixed
//! epoch length the fabric replays byte-identically across
//! `TickMode` × `ExecMode`, which is exactly what the lockstep suite
//! checks (each K-variant against its own K-golden).
//!
//! # Backpressure
//!
//! `submit*` returns `Ok(None)` (or `false` for messages) when the
//! endpoint's non-posted window or staging queue is full — retry next
//! cycle. Inside `tick`, a full inject queue pauses that endpoint's
//! pump until the network drains; staged flits are never dropped.

use crate::broadcast::BroadcastTree;
use crate::packet::{data_flits, split_packets, PacketDesc, PacketKind, StagedFlit};
use crate::reassembly::{Accept, ReassemblyBuffer};
use crate::types::{
    AtomicKind, TxnCompletion, TxnConfig, TxnCounters, TxnError, TxnId, TxnKind, TxnOp,
};
use crate::window::InFlightWindow;
use noc_core::telemetry::{
    FlitSpan, NullSink, NullSpanSink, PacketSpan, PostmortemBundle, ResourceId, SpanRole, SpanSink,
    TraceSink, TxnRegistry, TxnSnapshot, TxnSpanTree, WaitEdge, WaitGraphConfig, WaitGraphTracker,
    WaitNode, WedgeReport,
};
use noc_core::{
    EngineError, EnqueueError, Flit, FlitClass, Network, NodeId, NodeKind, PacketPlace,
    PacketToken, Topology,
};
use noc_sim::{Cycle, Histogram};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// Per-endpoint transaction state.
#[derive(Debug)]
struct Endpoint {
    reassembly: ReassemblyBuffer,
    window: InFlightWindow,
    staged: VecDeque<StagedFlit>,
    msg_inbox: VecDeque<u64>,
    atomic_cell: u64,
    /// Reassembly credits held *toward* this endpoint: request packets
    /// admitted by the pump and not yet fully reassembled here
    /// ([`TxnConfig::reassembly_slots`]).
    credit_used: usize,
}

impl Endpoint {
    fn new(window: usize) -> Self {
        Endpoint {
            reassembly: ReassemblyBuffer::new(),
            window: InFlightWindow::new(window),
            staged: VecDeque::new(),
            msg_inbox: VecDeque::new(),
            atomic_cell: 0,
            credit_used: 0,
        }
    }
}

/// Stall-forensics state (see [`TxnFabric::enable_forensics`]).
#[derive(Debug)]
struct Forensics {
    tracker: WaitGraphTracker,
    /// `false` is the "detector-off" tripwire mode: the per-sample hook
    /// runs but builds no graph — the overhead-gate baseline.
    active: bool,
    /// Postmortem bundles captured on the rising wedge edge, with the
    /// wedge report and tail exemplars attached.
    bundles: Vec<PostmortemBundle>,
}

/// Broadcast progress of one transaction.
#[derive(Debug)]
struct BcastState {
    tree: BroadcastTree,
    remaining: usize,
}

/// Fabric-side record of one live transaction.
#[derive(Debug)]
struct TxnState {
    kind: TxnKind,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
    issued_at: Cycle,
    /// Request-direction packets not yet reassembled at the destination.
    req_remaining: u32,
    /// Response-direction packets not yet reassembled at the source
    /// (0 for posted operations).
    resp_remaining: u32,
    atomic: Option<AtomicKind>,
    atomic_result: Option<u64>,
    bcast: Option<BcastState>,
}

/// The transaction layer over a deflection-routed [`Network`].
///
/// # Example
///
/// ```
/// use noc_core::{Network, NetworkConfig, RingKind, TopologyBuilder};
/// use noc_txn::{TxnConfig, TxnFabric, TxnOp};
///
/// let mut b = TopologyBuilder::new();
/// let die = b.add_chiplet("die");
/// let r = b.add_ring(die, RingKind::Full, 8)?;
/// let a = b.add_node("a", r, 0)?;
/// let c = b.add_node("c", r, 4)?;
/// let net = Network::new(b.build()?, NetworkConfig::default());
///
/// let mut fab = TxnFabric::new(net, TxnConfig::default());
/// let txn = fab.submit(a, c, TxnOp::Write { bytes: 256, posted: false })?
///     .expect("empty window accepts");
/// assert!(fab.run_until_quiet(10_000));
/// let done = fab.drain_completions();
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].txn, txn);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TxnFabric<S: TraceSink = NullSink, P: SpanSink = NullSpanSink> {
    net: Network<S>,
    cfg: TxnConfig,
    endpoints: BTreeMap<NodeId, Endpoint>,
    /// Live packet descriptors by packet id. Keyed lookups only.
    packets: HashMap<u64, PacketDesc>,
    /// Live transactions by id. Keyed lookups only.
    txns: HashMap<u64, TxnState>,
    next_packet: u64,
    next_txn: u64,
    completions: VecDeque<TxnCompletion>,
    counters: TxnCounters,
    latency: Histogram,
    registry: Option<TxnRegistry>,
    /// Flits pumped into the network and not yet delivered back.
    outstanding: u64,
    /// Admission cap on `outstanding` (see
    /// [`TxnConfig::max_outstanding_flits`]).
    outstanding_cap: u64,
    /// Destination for finished span trees. Every bookkeeping site
    /// below is guarded by `P::ENABLED`, so for the default
    /// [`NullSpanSink`] monomorphization deletes span tracking
    /// entirely.
    span_sink: P,
    /// In-progress packet spans: packet id → (owning txn, span).
    /// Keyed lookups only; empty when spans are disabled.
    pkt_spans: HashMap<u64, (u64, PacketSpan)>,
    /// In-progress transaction trees by txn id. Keyed lookups only;
    /// empty when spans are disabled.
    txn_spans: HashMap<u64, TxnSpanTree>,
    /// Wait-graph stall forensics, if enabled.
    forensics: Option<Forensics>,
    /// Packets staged non-urgently that must acquire a reassembly
    /// credit at their destination before the pump releases their
    /// header flit. Keyed lookups only; empty when
    /// [`TxnConfig::reassembly_slots`] is 0.
    credit_pending: HashSet<u64>,
    /// Packets currently holding a reassembly credit at their
    /// destination. Keyed lookups only.
    credited: HashSet<u64>,
}

/// Map the fabric's [`TxnKind`] onto
/// [`SPAN_OP_NAMES`](noc_core::telemetry::SPAN_OP_NAMES) indices.
fn span_op(kind: TxnKind) -> u8 {
    match kind {
        TxnKind::Read => 0,
        TxnKind::WritePosted => 1,
        TxnKind::WriteNonPosted => 2,
        TxnKind::Atomic => 3,
        TxnKind::Broadcast => 4,
    }
}

impl<S: TraceSink> TxnFabric<S> {
    /// Layer a transaction fabric over `net`. Every device node of the
    /// topology becomes a transaction endpoint. Span tracing is off
    /// (and compiled away); use [`TxnFabric::with_spans`] to record
    /// causal span trees.
    pub fn new(net: Network<S>, cfg: TxnConfig) -> Self {
        Self::with_spans(net, cfg, NullSpanSink)
    }
}

impl<S: TraceSink, P: SpanSink> TxnFabric<S, P> {
    /// Layer a transaction fabric over `net`, recording one
    /// [`TxnSpanTree`] per finished transaction into `spans`.
    pub fn with_spans(net: Network<S>, cfg: TxnConfig, spans: P) -> Self {
        assert!(cfg.flit_bytes > 0, "flit_bytes must be positive");
        assert!(
            cfg.max_data_flits >= 1 && cfg.max_data_flits <= 256,
            "max_data_flits must be in 1..=256 (token seq space)"
        );
        let endpoints = net
            .topology()
            .devices()
            .map(|d| (d.id, Endpoint::new(cfg.window)))
            .collect();
        let registry = (cfg.metrics_period > 0).then(|| TxnRegistry::new(cfg.metrics_period));
        let outstanding_cap = if cfg.max_outstanding_flits > 0 {
            cfg.max_outstanding_flits as u64
        } else {
            // Auto: half the fabric's ring slots. Saturation-induced
            // bridge deadlock needs at least one ring full plus full
            // escape buffers, so staying below half the slot count
            // keeps the fabric out of that regime while still letting
            // throughput scale with fabric size.
            let slots: u64 = net
                .topology()
                .rings()
                .iter()
                .map(|r| u64::from(r.stations) * r.kind.lanes() as u64)
                .sum();
            (slots / 2).max(8)
        };
        TxnFabric {
            net,
            cfg,
            endpoints,
            packets: HashMap::new(),
            txns: HashMap::new(),
            next_packet: 0,
            next_txn: 0,
            completions: VecDeque::new(),
            counters: TxnCounters::default(),
            latency: Histogram::new("txn-latency"),
            registry,
            outstanding: 0,
            outstanding_cap,
            span_sink: spans,
            pkt_spans: HashMap::new(),
            txn_spans: HashMap::new(),
            forensics: None,
            credit_pending: HashSet::new(),
            credited: HashSet::new(),
        }
    }

    /// The span sink (e.g. to read a
    /// [`SpanCollector`](noc_core::telemetry::SpanCollector)'s trees).
    pub fn span_sink(&self) -> &P {
        &self.span_sink
    }

    /// Mutable span-sink access (e.g. to flush a streaming sink).
    pub fn span_sink_mut(&mut self) -> &mut P {
        &mut self.span_sink
    }

    /// The K slowest transactions' span trees, if the sink keeps them.
    pub fn tail_exemplars(&self) -> &[TxnSpanTree] {
        self.span_sink.exemplars()
    }

    /// Freeze a postmortem bundle from the network's flight recorder
    /// and attach the span sink's tail exemplars and any latched wedge
    /// report as causal context. `None` when the network's observatory
    /// is disabled.
    pub fn dump_postmortem(&self, reason: &str) -> Option<PostmortemBundle> {
        let mut bundle = self.net.dump_postmortem(reason)?;
        self.attach_exemplars(&mut bundle);
        self.attach_wedges(&mut bundle);
        Some(bundle)
    }

    /// Attach the sink's tail exemplars to an existing bundle — e.g.
    /// one the network's watchdog latched mid-run, which the network
    /// froze without transaction-layer context.
    pub fn attach_exemplars(&self, bundle: &mut PostmortemBundle) {
        bundle.txn_exemplars = self.span_sink.exemplars().to_vec();
    }

    /// Attach the latched wedge report, if any, to an existing bundle.
    pub fn attach_wedges(&self, bundle: &mut PostmortemBundle) {
        if let Some(rep) = self.wedge_report() {
            bundle.wedges = vec![rep.clone()];
        }
    }

    /// Enable stall forensics: at every transaction-observatory sample
    /// boundary, build the typed resource wait-for graph (ring slots,
    /// bridge escape buffers, in-flight windows, reassembly buffers),
    /// classify it, and feed the network's `deadlock-suspected`
    /// watchdog. On the first wedged verdict a [`WedgeReport`] latches
    /// and a postmortem bundle with the report and tail exemplars
    /// attached is captured ([`TxnFabric::wedge_bundles`]).
    ///
    /// # Panics
    ///
    /// Panics unless the transaction observatory is on
    /// ([`TxnConfig::metrics_period`] > 0) — forensics rides its
    /// sample schedule, which is what makes the detector stream
    /// byte-identical across engines.
    pub fn enable_forensics(&mut self, cfg: WaitGraphConfig) {
        assert!(
            self.registry.is_some(),
            "stall forensics rides the transaction observatory; \
             set TxnConfig::metrics_period > 0"
        );
        self.forensics = Some(Forensics {
            tracker: WaitGraphTracker::new(cfg),
            active: true,
            bundles: Vec::new(),
        });
    }

    /// Enable forensics in detector-off tripwire mode: the per-sample
    /// hook runs but no graph is built and nothing can latch. This is
    /// the baseline arm of the detector-overhead gate.
    pub fn enable_forensics_idle(&mut self) {
        self.forensics = Some(Forensics {
            tracker: WaitGraphTracker::new(WaitGraphConfig::default()),
            active: false,
            bundles: Vec::new(),
        });
    }

    /// The wait-graph tracker, if forensics is enabled — samples,
    /// per-sample gauge rows, and the latched report live here.
    pub fn wait_tracker(&self) -> Option<&WaitGraphTracker> {
        self.forensics.as_ref().map(|f| &f.tracker)
    }

    /// Whether the deadlock detector has latched a wedge.
    pub fn wedge_latched(&self) -> bool {
        self.forensics.as_ref().is_some_and(|f| f.tracker.latched())
    }

    /// The frozen wedge report, if the detector latched.
    pub fn wedge_report(&self) -> Option<&WedgeReport> {
        self.forensics.as_ref().and_then(|f| f.tracker.report())
    }

    /// Postmortem bundles captured on the rising wedge edge.
    pub fn wedge_bundles(&self) -> &[PostmortemBundle] {
        self.forensics.as_ref().map_or(&[], |f| &f.bundles)
    }

    /// The configuration.
    pub fn config(&self) -> &TxnConfig {
        &self.cfg
    }

    /// The underlying network (read-only).
    pub fn network(&self) -> &Network<S> {
        &self.net
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        self.net.topology()
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.net.now()
    }

    /// Transaction endpoints, in ascending id order.
    pub fn endpoints(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.endpoints.keys().copied()
    }

    /// Transactions currently in flight.
    pub fn in_flight_txns(&self) -> usize {
        self.txns.len()
    }

    /// Non-posted window slots occupied, summed over all endpoints —
    /// the observatory's window gauge.
    pub fn window_occupancy(&self) -> u64 {
        self.endpoints
            .values()
            .map(|e| e.window.occupancy() as u64)
            .sum()
    }

    /// Flits currently in the network (pumped, not yet delivered).
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// The fabric-wide admission cap the pump enforces.
    pub fn outstanding_cap(&self) -> u64 {
        self.outstanding_cap
    }

    /// Window occupancy of one endpoint (`None` for non-endpoints).
    pub fn window_of(&self, node: NodeId) -> Option<usize> {
        self.endpoints.get(&node).map(|e| e.window.occupancy())
    }

    /// The destination-side 64-bit atomic cell of `node`.
    pub fn atomic_cell(&self, node: NodeId) -> Option<u64> {
        self.endpoints.get(&node).map(|e| e.atomic_cell)
    }

    /// Lifetime counters.
    pub fn counters(&self) -> &TxnCounters {
        &self.counters
    }

    /// Whole-run per-transaction latency histogram.
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Observatory snapshots (empty when `metrics_period == 0`).
    pub fn txn_snapshots(&self) -> &[TxnSnapshot] {
        self.registry.as_ref().map_or(&[], |r| r.snapshots())
    }

    /// The transaction observatory registry, if enabled.
    pub fn registry(&self) -> Option<&TxnRegistry> {
        self.registry.as_ref()
    }

    /// Network fingerprint extended with the transaction layer's
    /// counter digest: byte-identical across engines iff both the
    /// fabric below *and* every transaction-layer decision agree.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = self.net.fingerprint();
        fp.extend(self.counters.digest());
        fp.push(self.latency.sum());
        fp.push(self.latency.count());
        fp
    }

    fn check_endpoint(&self, n: NodeId) -> Result<(), TxnError> {
        let nodes = self.net.topology().nodes();
        match nodes.get(n.index()) {
            Some(spec) if spec.kind == NodeKind::Device => Ok(()),
            _ => Err(TxnError::BadEndpoint(n)),
        }
    }

    fn staging_full(&self, src: NodeId) -> bool {
        self.endpoints[&src].staged.len() >= self.cfg.max_staged_flits
    }

    /// Allocate a packet, record its descriptor, and stage its flits at
    /// `from`'s endpoint. `urgent` bypasses the staging bound (used for
    /// responses and broadcast forwards, which must never be refused —
    /// refusing them would deadlock the windows waiting on them).
    /// `parent` is the packet whose reassembly completion caused this
    /// staging (`None` at submit time); it becomes the span tree's
    /// causal edge.
    fn stage_packet(&mut self, from: NodeId, desc: PacketDesc, urgent: bool, parent: Option<u64>) {
        debug_assert!(urgent || !self.staging_full(from));
        let id = self.next_packet;
        self.next_packet += 1;
        let flits = desc.flits(id, &self.cfg);
        if P::ENABLED {
            let role = if parent.is_none() {
                SpanRole::Request
            } else if matches!(desc.kind, PacketKind::Bcast) {
                SpanRole::Relay
            } else {
                SpanRole::Response
            };
            self.pkt_spans.insert(
                id,
                (
                    desc.txn,
                    PacketSpan {
                        packet: id,
                        parent,
                        role,
                        src: desc.src.0,
                        dst: desc.dst.0,
                        class: desc.class.index() as u8,
                        bytes: desc.bytes,
                        flits: 1 + desc.n_data,
                        staged_at: self.net.now().raw(),
                        // Sentinel until the first flit drains; always
                        // overwritten before the span leaves the fabric
                        // (reassembly completion is itself a drain).
                        first_flit_at: u64::MAX,
                        reassembled_at: 0,
                        hops: 0,
                        deflections: 0,
                        recirc_cycles: 0,
                        etag_laps: 0,
                        itag_wait: 0,
                        bridge_crossings: 0,
                        crit: FlitSpan::default(),
                    },
                ),
            );
        }
        self.packets.insert(id, desc);
        if !urgent && self.cfg.reassembly_slots > 0 {
            // Request packets acquire a reassembly credit at their
            // destination before the pump releases their header.
            // Urgent packets (responses, broadcast forwards) are
            // exempt: deferring them would deadlock the windows
            // waiting on them.
            self.credit_pending.insert(id);
        }
        self.endpoints
            .get_mut(&from)
            .expect("staging at a known endpoint")
            .staged
            .extend(flits);
    }

    /// Span bookkeeping for one accepted (non-duplicate) flit. Callers
    /// guard with `P::ENABLED`; `completed` marks the flit that
    /// finished reassembly — it becomes the packet's critical flit and
    /// moves the span into its transaction's tree.
    fn span_flit(&mut self, packet: u64, flit: &Flit, completed: bool) {
        let now = self.net.now().raw();
        let Some((_, span)) = self.pkt_spans.get_mut(&packet) else {
            return;
        };
        if span.first_flit_at == u64::MAX {
            span.first_flit_at = now;
        }
        span.hops += u64::from(flit.hops);
        span.deflections += u64::from(flit.deflections);
        span.recirc_cycles += u64::from(flit.recirc_cycles);
        span.etag_laps += u64::from(flit.etag_laps);
        span.itag_wait += u64::from(flit.itag_wait);
        span.bridge_crossings += u64::from(flit.ring_changes);
        if !completed {
            return;
        }
        span.reassembled_at = now;
        span.crit = FlitSpan {
            enqueued_at: flit.created_at.raw(),
            injected_at: flit.injected_at.unwrap_or(flit.created_at).raw(),
            delivered_at: now,
            hops: flit.hops,
            deflections: flit.deflections,
            recirc_cycles: flit.recirc_cycles,
            etag_laps: flit.etag_laps,
            itag_wait: flit.itag_wait,
            bridge_crossings: flit.ring_changes,
        };
        let (txn, span) = self.pkt_spans.remove(&packet).expect("looked up above");
        // Message packets have no tree (they are not transactions);
        // their spans end here.
        if let Some(tree) = self.txn_spans.get_mut(&txn) {
            tree.final_packet = packet;
            tree.packets.push(span);
        }
    }

    /// Submit a point-to-point transaction from `src` to `dst`.
    ///
    /// Returns `Ok(None)` under backpressure (full non-posted window or
    /// full staging queue) — retry on a later cycle. The transaction id
    /// is returned once accepted; completions surface through
    /// [`TxnFabric::drain_completions`].
    ///
    /// # Errors
    ///
    /// [`TxnError`] for structurally invalid submissions (unknown or
    /// non-device endpoints, self-sends).
    pub fn submit(
        &mut self,
        src: NodeId,
        dst: NodeId,
        op: TxnOp,
    ) -> Result<Option<TxnId>, TxnError> {
        self.check_endpoint(src)?;
        self.check_endpoint(dst)?;
        if src == dst {
            return Err(TxnError::SelfSend(src));
        }
        if self.staging_full(src) || (op.non_posted() && self.endpoints[&src].window.is_full()) {
            self.counters.backpressured += 1;
            return Ok(None);
        }

        let txn = self.next_txn;
        self.next_txn += 1;
        let now = self.net.now();
        let (kind, atomic) = match op {
            TxnOp::Read { .. } => (TxnKind::Read, None),
            TxnOp::Write { posted: true, .. } => (TxnKind::WritePosted, None),
            TxnOp::Write { posted: false, .. } => (TxnKind::WriteNonPosted, None),
            TxnOp::Atomic(a) => (TxnKind::Atomic, Some(a)),
        };

        // Carve the request direction into packets.
        let (req_packets, resp_packets) = match op {
            TxnOp::Read { bytes } => (vec![0u32], split_packets(bytes, &self.cfg)),
            TxnOp::Write { bytes, posted } => (
                split_packets(bytes, &self.cfg),
                if posted { vec![] } else { vec![0] },
            ),
            TxnOp::Atomic(_) => (vec![0], vec![0]),
        };

        let payload = match op {
            TxnOp::Read { bytes } => bytes,
            TxnOp::Write { bytes, .. } => bytes,
            TxnOp::Atomic(_) => 0,
        };
        if P::ENABLED {
            self.txn_spans.insert(
                txn,
                TxnSpanTree {
                    txn,
                    op: span_op(kind),
                    src: src.0,
                    dst: dst.0,
                    bytes: payload,
                    issued_at: now.raw(),
                    req_done_at: None,
                    completed_at: 0,
                    window_occupancy: self.endpoints[&src].window.occupancy() as u64,
                    final_packet: 0,
                    packets: Vec::new(),
                },
            );
        }
        self.txns.insert(
            txn,
            TxnState {
                kind,
                src,
                dst,
                bytes: payload,
                issued_at: now,
                req_remaining: req_packets.len() as u32,
                resp_remaining: resp_packets.len() as u32,
                atomic,
                atomic_result: None,
                bcast: None,
            },
        );

        for bytes in req_packets {
            let (pk, class) = match op {
                TxnOp::Read { bytes } => (
                    PacketKind::ReadReq { resp_bytes: bytes },
                    FlitClass::Request,
                ),
                TxnOp::Write { .. } => (PacketKind::Data, FlitClass::Data),
                TxnOp::Atomic(_) => (PacketKind::AtomicReq, FlitClass::Request),
            };
            self.stage_packet(
                src,
                PacketDesc {
                    txn,
                    kind: pk,
                    src,
                    dst,
                    class,
                    bytes,
                    n_data: data_flits(bytes, self.cfg.flit_bytes),
                },
                false,
                None,
            );
        }

        if op.non_posted() {
            let ok = self
                .endpoints
                .get_mut(&src)
                .expect("validated endpoint")
                .window
                .try_reserve(txn);
            debug_assert!(ok, "window checked above");
        }
        self.counters.submitted += 1;
        Ok(Some(TxnId(txn)))
    }

    /// Submit a posted broadcast of `bytes` from `src` to every node in
    /// `targets` (duplicates and the root collapse). Delivery fans out
    /// along a [`BroadcastTree`]; the transaction completes when every
    /// target has reassembled its copy.
    ///
    /// Returns `Ok(None)` when `src`'s staging queue is full.
    ///
    /// # Errors
    ///
    /// [`TxnError`] for invalid endpoints, an empty target set, or a
    /// payload larger than one packet.
    pub fn submit_broadcast(
        &mut self,
        src: NodeId,
        targets: &[NodeId],
        bytes: u32,
    ) -> Result<Option<TxnId>, TxnError> {
        self.check_endpoint(src)?;
        for &t in targets {
            self.check_endpoint(t)?;
        }
        if bytes > self.cfg.packet_capacity() {
            return Err(TxnError::BroadcastTooLarge {
                bytes,
                max: self.cfg.packet_capacity(),
            });
        }
        let tree =
            BroadcastTree::build(self.net.topology(), src, targets, self.cfg.broadcast_fanout);
        if tree.targets() == 0 {
            return Err(TxnError::EmptyBroadcast);
        }
        if self.staging_full(src) {
            self.counters.backpressured += 1;
            return Ok(None);
        }

        let txn = self.next_txn;
        self.next_txn += 1;
        let now = self.net.now();
        let first_child = tree.children_of(src)[0];
        let root_children: Vec<NodeId> = tree.children_of(src).to_vec();
        if P::ENABLED {
            self.txn_spans.insert(
                txn,
                TxnSpanTree {
                    txn,
                    op: span_op(TxnKind::Broadcast),
                    src: src.0,
                    dst: first_child.0,
                    bytes,
                    issued_at: now.raw(),
                    req_done_at: None,
                    completed_at: 0,
                    window_occupancy: self.endpoints[&src].window.occupancy() as u64,
                    final_packet: 0,
                    packets: Vec::new(),
                },
            );
        }
        self.txns.insert(
            txn,
            TxnState {
                kind: TxnKind::Broadcast,
                src,
                dst: first_child,
                bytes,
                issued_at: now,
                req_remaining: 0,
                resp_remaining: 0,
                atomic: None,
                atomic_result: None,
                bcast: Some(BcastState {
                    remaining: tree.targets(),
                    tree,
                }),
            },
        );
        for child in root_children {
            self.stage_packet(
                src,
                PacketDesc {
                    txn,
                    kind: PacketKind::Bcast,
                    src,
                    dst: child,
                    class: FlitClass::Data,
                    bytes,
                    n_data: data_flits(bytes, self.cfg.flit_bytes),
                },
                false,
                None,
            );
        }
        self.counters.submitted += 1;
        Ok(Some(TxnId(txn)))
    }

    /// Submit a one-way message datagram carrying an opaque `token`,
    /// delivered to `dst`'s message inbox ([`TxnFabric::recv_message`]).
    /// This is the rail the CHI transport rides: each coherence message
    /// becomes a real header+data packet. Returns `false` under staging
    /// backpressure or for invalid endpoints (mirroring the network's
    /// `ChiTransport` impl, which folds all errors into `false`).
    pub fn submit_message(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlitClass,
        bytes: u32,
        token: u64,
    ) -> bool {
        if self.check_endpoint(src).is_err() || self.check_endpoint(dst).is_err() || src == dst {
            return false;
        }
        if self.staging_full(src) || bytes > self.cfg.packet_capacity() {
            self.counters.backpressured += 1;
            return false;
        }
        let txn = self.next_txn;
        self.next_txn += 1;
        self.txns.insert(
            txn,
            TxnState {
                kind: TxnKind::WritePosted, // placeholder; messages never complete via kind
                src,
                dst,
                bytes,
                issued_at: self.net.now(),
                req_remaining: 1,
                resp_remaining: 0,
                atomic: None,
                atomic_result: None,
                bcast: None,
            },
        );
        self.stage_packet(
            src,
            PacketDesc {
                txn,
                kind: PacketKind::Msg { token },
                src,
                dst,
                class,
                bytes,
                n_data: data_flits(bytes, self.cfg.flit_bytes),
            },
            false,
            None,
        );
        self.counters.messages_submitted += 1;
        true
    }

    /// Pop the token of the oldest message delivered to `node`.
    pub fn recv_message(&mut self, node: NodeId) -> Option<u64> {
        self.endpoints.get_mut(&node)?.msg_inbox.pop_front()
    }

    /// Fault-injection hook: enqueue a raw flit with an arbitrary token
    /// directly onto the wrapped network, bypassing packetization. The
    /// transaction layer must survive whatever arrives — unknown packet
    /// ids count as stray flits, repeated sequences as duplicates.
    ///
    /// # Errors
    ///
    /// Propagates the network's [`EnqueueError`].
    pub fn inject_raw(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlitClass,
        bytes: u32,
        token: u64,
    ) -> Result<u64, EnqueueError> {
        let id = self.net.enqueue(src, dst, class, bytes, token)?;
        self.outstanding += 1;
        Ok(id)
    }

    /// Pump staged flits into inject queues: round-robin over
    /// endpoints in ascending id order, one flit per endpoint per
    /// pass, so the admission cap is shared fairly instead of being
    /// consumed by the lowest-numbered endpoints. A full inject
    /// queue pauses an endpoint (flits stay staged); reaching the
    /// cap pauses the pump until deliveries bring the outstanding
    /// count back down.
    fn pump_staged(&mut self, nodes: &[NodeId]) {
        let mut paused = vec![false; nodes.len()];
        let mut progress = true;
        while progress && self.outstanding < self.outstanding_cap {
            progress = false;
            for (i, &node) in nodes.iter().enumerate() {
                if paused[i] || self.outstanding >= self.outstanding_cap {
                    continue;
                }
                let Some(&flit) = self.endpoints[&node].staged.front() else {
                    paused[i] = true;
                    continue;
                };
                let tok = PacketToken::decode(flit.token);
                if tok.is_header() && self.credit_pending.contains(&tok.packet) {
                    // Reserve a reassembly credit at the responder
                    // before releasing a request packet's header. The
                    // credit returns when the packet finishes
                    // reassembly there, bounding inbound demand per
                    // endpoint — the admission-side fix for the
                    // saturation wedge (full rings + full escape
                    // buffers in a cyclic wait SWAP cannot break).
                    let dst = self.packets[&tok.packet].dst;
                    if self.endpoints[&dst].credit_used >= self.cfg.reassembly_slots {
                        self.counters.reassembly_deferred += 1;
                        paused[i] = true;
                        continue;
                    }
                    self.credit_pending.remove(&tok.packet);
                    self.credited.insert(tok.packet);
                    self.endpoints
                        .get_mut(&dst)
                        .expect("known endpoint")
                        .credit_used += 1;
                }
                match self
                    .net
                    .enqueue(node, flit.dst, flit.class, flit.bytes, flit.token)
                {
                    Ok(_) => {
                        self.endpoints
                            .get_mut(&node)
                            .expect("known endpoint")
                            .staged
                            .pop_front();
                        self.counters.flits_sent += 1;
                        self.counters.bytes_sent += u64::from(flit.bytes);
                        self.outstanding += 1;
                        progress = true;
                    }
                    Err(EnqueueError::InjectQueueFull { .. }) => paused[i] = true,
                    Err(e) => unreachable!("staged flit rejected: {e:?}"),
                }
            }
        }
    }

    /// Drain network deliveries into the transaction layer, ascending
    /// endpoint order.
    fn drain_deliveries(&mut self, nodes: &[NodeId]) {
        for &node in nodes {
            while let Some(flit) = self.net.pop_delivered(node) {
                self.accept_flit(node, &flit);
            }
        }
    }

    /// Observatory sample, stamped at the current cycle.
    fn sample_observatory(&mut self) {
        let inflight = self.txns.len() as u64;
        let occupancy = self.window_occupancy();
        if let Some(reg) = &mut self.registry {
            reg.sample(self.net.now(), inflight, occupancy);
        }
        self.sample_forensics();
    }

    /// Build the wait-graph's node set: one [`WaitNode`] per ring,
    /// escape buffer, window and reassembly buffer, carrying occupancy
    /// and monotone progress counters. This is the cheap per-boundary
    /// pass — it uses the light census (no per-flit packet walks) and
    /// its values are identical to what the full census would report,
    /// since both read the same owner-held counters.
    fn build_wait_nodes(&self) -> Vec<WaitNode> {
        let census = self.net.wait_census_light();
        // Push in [`ResourceId`] order (rings, escapes, windows,
        // reassembly; each group ascending) so no sort is needed: the
        // census emits rings/escapes sorted, and the endpoint map
        // iterates ascending.
        let mut nodes: Vec<WaitNode> = Vec::with_capacity(
            census.rings.len() + census.escapes.len() + 2 * self.endpoints.len(),
        );
        for r in &census.rings {
            nodes.push(WaitNode {
                id: ResourceId::Ring { ring: r.ring },
                occupancy: r.occupancy,
                capacity: r.capacity,
                progress: r.progress,
            });
        }
        for e in &census.escapes {
            nodes.push(WaitNode {
                id: ResourceId::Escape {
                    bridge: u32::from(e.bridge),
                    side: e.side,
                },
                occupancy: e.occupancy,
                capacity: e.capacity,
                progress: e.progress,
            });
        }
        let mut rea: Vec<WaitNode> = Vec::with_capacity(self.endpoints.len());
        for (&id, ep) in &self.endpoints {
            nodes.push(WaitNode {
                id: ResourceId::Window { node: id.0 },
                occupancy: ep.window.occupancy() as u64,
                capacity: ep.window.cap() as u64,
                progress: ep.window.completions(),
            });
            rea.push(WaitNode {
                id: ResourceId::Reassembly { node: id.0 },
                occupancy: ep.reassembly.open_packets() as u64,
                capacity: self.cfg.reassembly_slots as u64,
                progress: ep.reassembly.accepted(),
            });
        }
        nodes.extend(rea);
        debug_assert!(nodes.windows(2).all(|w| w[0].id < w[1].id), "nodes sorted");
        nodes
    }

    /// Build the wait-graph's edge set: the engine's full census
    /// contributes where every in-network packet sits, the fabric
    /// contributes staged packets, credit-deferred headers and the
    /// holder-transaction ids. This is the expensive pass — the lazy
    /// tracker only requests it when a ring or escape resource has
    /// stopped making progress.
    fn build_wait_edges(&self) -> Vec<WaitEdge> {
        let census = self.net.wait_census();
        let topo_nodes = self.net.topology().nodes();
        // Holder id for edges: the owning transaction of a packet, or
        // the raw packet id for traffic the fabric never staged.
        let holder_of = |packet: u64| self.packets.get(&packet).map_or(packet, |d| d.txn);

        let mut edges: Vec<WaitEdge> = Vec::new();
        for r in &census.rings {
            let from = ResourceId::Ring { ring: r.ring };
            // Resident flits routing through a bridge side hold ring
            // slots until that side's escape resource admits them.
            for t in &r.transit {
                edges.push(WaitEdge {
                    from,
                    to: ResourceId::Escape {
                        bridge: u32::from(t.bridge),
                        side: t.side,
                    },
                    holder: holder_of(t.min_packet),
                });
            }
        }
        for e in &census.escapes {
            // An occupied escape pipe needs free slots on the ring the
            // crossing lands on.
            if e.occupancy > 0 {
                edges.push(WaitEdge {
                    from: ResourceId::Escape {
                        bridge: u32::from(e.bridge),
                        side: e.side,
                    },
                    to: ResourceId::Ring { ring: e.to_ring },
                    holder: e.min_packet.map_or(0, holder_of),
                });
            }
        }

        // Fabric-side placement: which endpoint is reassembling each
        // open packet, and which ring each staged packet waits to
        // enter. Both maps iterate owner-held ordered state.
        let mut open_at: BTreeMap<u64, u32> = BTreeMap::new();
        let mut staged_on: BTreeMap<u64, u16> = BTreeMap::new();
        for (&id, ep) in &self.endpoints {
            let ring = topo_nodes[id.index()].ring.0;
            for pkt in ep.reassembly.open_packet_ids() {
                open_at.insert(pkt, id.0);
            }
            for flit in &ep.staged {
                staged_on
                    .entry(PacketToken::decode(flit.token).packet)
                    .or_insert(ring);
            }
        }
        // Every resource flits of `packet` currently hold or wait at.
        let places = |packet: u64| -> Vec<ResourceId> {
            let mut v: Vec<ResourceId> = census
                .places_of(packet)
                .map(|p| match p {
                    PacketPlace::Ring { ring } => ResourceId::Ring { ring },
                    PacketPlace::Escape { bridge, side } => ResourceId::Escape {
                        bridge: u32::from(bridge),
                        side,
                    },
                })
                .collect();
            if let Some(&ring) = staged_on.get(&packet) {
                v.push(ResourceId::Ring { ring });
            }
            if let Some(&n) = open_at.get(&packet) {
                v.push(ResourceId::Reassembly { node: n });
            }
            if self.credit_pending.contains(&packet) {
                // Admission-deferred: the header waits for a
                // reassembly credit at the destination.
                if let Some(desc) = self.packets.get(&packet) {
                    if self.endpoints[&desc.dst].credit_used >= self.cfg.reassembly_slots {
                        v.push(ResourceId::Reassembly { node: desc.dst.0 });
                    }
                }
            }
            v.sort_unstable();
            v.dedup();
            v
        };

        // Live packets per transaction (hash map collected, then
        // sorted — determinism is restored before anything reads it).
        let mut pkts_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        {
            let mut all: Vec<(u64, u64)> = self.packets.iter().map(|(&p, d)| (d.txn, p)).collect();
            all.sort_unstable();
            for (t, p) in all {
                pkts_of.entry(t).or_default().push(p);
            }
        }

        for (&id, ep) in &self.endpoints {
            let win = ResourceId::Window { node: id.0 };
            let rea = ResourceId::Reassembly { node: id.0 };
            // A held window slot waits on every resource its
            // transaction's live packets occupy.
            for txn in ep.window.pending_txns() {
                for &pkt in pkts_of.get(&txn).map_or(&[][..], |v| v) {
                    for to in places(pkt) {
                        edges.push(WaitEdge {
                            from: win,
                            to,
                            holder: txn,
                        });
                    }
                }
            }
            // A pinned reassembly entry waits wherever its packet's
            // missing flits are.
            for pkt in ep.reassembly.open_packet_ids() {
                let holder = holder_of(pkt);
                for to in places(pkt) {
                    if to != rea {
                        edges.push(WaitEdge {
                            from: rea,
                            to,
                            holder,
                        });
                    }
                }
            }
        }
        edges
    }

    /// Forensics hook, run at every observatory sample: take the cheap
    /// node census, let the tracker decide whether the full edge build
    /// is warranted ([`WaitGraphTracker::ingest_lazy`]), feed the
    /// network's watchdog and gauges, and on the rising wedge edge
    /// capture a postmortem bundle with the report and tail exemplars
    /// attached.
    fn sample_forensics(&mut self) {
        // Take the forensics state out so the deferred edge closure can
        // borrow `self` while the tracker is being driven.
        let Some(mut f) = self.forensics.take() else {
            return;
        };
        if !f.active {
            self.forensics = Some(f);
            return;
        }
        let cycle = self.net.now().raw();
        let nodes = self.build_wait_nodes();
        let was_latched = f.tracker.latched();
        f.tracker
            .ingest_lazy(cycle, nodes, || self.build_wait_edges());
        let sample = f.tracker.last().expect("just ingested");
        let stats = *f.tracker.stats().last().expect("ingest pushed a row");
        self.net.observe_wait(sample);
        self.net.note_wait_stats(stats);
        let latched = f.tracker.latched();
        self.forensics = Some(f);
        if was_latched || !latched {
            return;
        }
        let Some(mut bundle) = self
            .net
            .dump_postmortem("watchdog: CRIT:deadlock-suspected")
        else {
            return;
        };
        self.attach_exemplars(&mut bundle);
        self.attach_wedges(&mut bundle);
        self.forensics
            .as_mut()
            .expect("latched")
            .bundles
            .push(bundle);
    }

    /// Advance one cycle: pump staged flits, tick the network, drain
    /// and process deliveries, sample the observatory.
    pub fn tick(&mut self) {
        let nodes: Vec<NodeId> = self.endpoints.keys().copied().collect();
        self.pump_staged(&nodes);
        self.net.tick();
        self.drain_deliveries(&nodes);
        if let Some(reg) = &self.registry {
            if self.net.now().raw().is_multiple_of(reg.period()) {
                self.sample_observatory();
            }
        }
    }

    /// Advance `k` cycles as one epoch: the admission pump, delivery
    /// drain and observatory sampling all move to the epoch boundary,
    /// and the network below runs [`Network::tick_epoch`]. For `k = 1`
    /// this is exactly [`TxnFabric::tick`]; for larger `k` the fabric
    /// interacts with the network `k`× less often, so admission and
    /// drain *cadence* differ from `k = 1` — but the result is still a
    /// pure function of `k` alone: byte-identical across
    /// `TickMode` × `ExecMode` for any fixed epoch length.
    ///
    /// The transaction observatory samples once per epoch that crosses
    /// a period boundary, stamped at the epoch's end cycle (for `k`
    /// dividing the period this coincides with the `k = 1` stamps).
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`EngineError`] (`k` validation and
    /// worker-pool failures); see [`Network::tick_epoch`].
    pub fn tick_epoch(&mut self, k: u64) -> Result<(), EngineError> {
        let nodes: Vec<NodeId> = self.endpoints.keys().copied().collect();
        self.pump_staged(&nodes);
        let before = self.net.now().raw();
        self.net.tick_epoch(k)?;
        self.drain_deliveries(&nodes);
        if let Some(reg) = &self.registry {
            let period = reg.period();
            if self.net.now().raw() / period > before / period {
                self.sample_observatory();
            }
        }
        Ok(())
    }

    /// Tick until the fabric is quiet (no staged flits, nothing in the
    /// network, no live transactions) or `max_cycles` elapse. Returns
    /// whether quiescence was reached.
    pub fn run_until_quiet(&mut self, max_cycles: u64) -> bool {
        for _ in 0..max_cycles {
            if self.quiet() {
                return true;
            }
            self.tick();
        }
        self.quiet()
    }

    /// Whether nothing is in flight at either layer. Undrained message
    /// inboxes and completions do not count — they are delivered.
    pub fn quiet(&self) -> bool {
        self.net.in_flight() == 0
            && self.txns.is_empty()
            && self.endpoints.values().all(|e| e.staged.is_empty())
    }

    /// Take all completions accumulated so far, in completion order.
    pub fn drain_completions(&mut self) -> Vec<TxnCompletion> {
        self.completions.drain(..).collect()
    }

    fn accept_flit(&mut self, node: NodeId, flit: &Flit) {
        self.outstanding = self.outstanding.saturating_sub(1);
        let tok = PacketToken::decode(flit.token);
        let Some(desc) = self.packets.get(&tok.packet).copied() else {
            self.counters.stray_flits += 1;
            return;
        };
        // A live packet id, but the flit may still be a counterfeit
        // aimed at the wrong endpoint: only the descriptor's receiver
        // reassembles it.
        if desc.dst != node {
            self.counters.stray_flits += 1;
            return;
        }
        let ep = self.endpoints.get_mut(&node).expect("delivery at endpoint");
        match ep.reassembly.accept(tok, desc.n_data) {
            Accept::Partial => {
                if P::ENABLED {
                    self.span_flit(tok.packet, flit, false);
                }
            }
            Accept::Duplicate => self.counters.duplicate_flits += 1,
            Accept::Complete => {
                if P::ENABLED {
                    self.span_flit(tok.packet, flit, true);
                }
                self.packets.remove(&tok.packet);
                if self.credited.remove(&tok.packet) {
                    // The packet's reassembly credit returns to its
                    // destination (this endpoint).
                    let ep = self.endpoints.get_mut(&node).expect("delivery at endpoint");
                    ep.credit_used -= 1;
                }
                self.counters.packets_reassembled += 1;
                self.packet_complete(node, tok.packet, desc);
            }
        }
    }

    /// One whole packet (`packet_id`) has reassembled at `node`.
    fn packet_complete(&mut self, node: NodeId, packet_id: u64, desc: PacketDesc) {
        let txn_id = desc.txn;
        match desc.kind {
            PacketKind::Msg { token } => {
                self.endpoints
                    .get_mut(&node)
                    .expect("msg endpoint")
                    .msg_inbox
                    .push_back(token);
                self.counters.messages += 1;
                self.txns.remove(&txn_id);
            }
            PacketKind::Bcast => {
                // Forward to tree children, then count the delivery.
                let children: Vec<NodeId> = {
                    let st = self.txns.get(&txn_id).expect("live broadcast");
                    let bc = st.bcast.as_ref().expect("broadcast state");
                    bc.tree.children_of(node).to_vec()
                };
                for child in children {
                    self.stage_packet(
                        node,
                        PacketDesc {
                            txn: txn_id,
                            kind: PacketKind::Bcast,
                            src: node,
                            dst: child,
                            class: FlitClass::Data,
                            bytes: desc.bytes,
                            n_data: desc.n_data,
                        },
                        true,
                        Some(packet_id),
                    );
                }
                let st = self.txns.get_mut(&txn_id).expect("live broadcast");
                let bc = st.bcast.as_mut().expect("broadcast state");
                bc.remaining -= 1;
                if bc.remaining == 0 {
                    self.finish_txn(txn_id);
                }
            }
            PacketKind::ReadReq { .. }
            | PacketKind::Data
            | PacketKind::Ack
            | PacketKind::AtomicReq
            | PacketKind::AtomicResp => {
                // Direction check: the same `Data` kind serves write
                // requests (arriving at txn.dst) and read responses
                // (arriving back at txn.src).
                let req_side = node == self.txns.get(&txn_id).expect("live txn").dst;
                if req_side {
                    self.request_side_complete(node, txn_id, packet_id, desc);
                } else {
                    self.response_side_complete(node, txn_id);
                }
            }
        }
    }

    /// One response-direction packet of `txn` is in at the source.
    fn response_side_complete(&mut self, node: NodeId, txn_id: u64) {
        let st = self.txns.get_mut(&txn_id).expect("live txn");
        debug_assert_eq!(node, st.src, "response landed at a third party");
        st.resp_remaining -= 1;
        if st.resp_remaining > 0 {
            return;
        }
        let src = st.src;
        let released = self
            .endpoints
            .get_mut(&src)
            .expect("source endpoint")
            .window
            .complete(txn_id);
        if !released {
            self.counters.late_responses += 1;
            self.txns.remove(&txn_id);
            if P::ENABLED {
                self.txn_spans.remove(&txn_id);
            }
            return;
        }
        self.finish_txn(txn_id);
    }

    /// All request-direction packets of `txn` are in at the
    /// destination: generate the response (or complete, for posted).
    /// `packet_id` is the request packet whose reassembly completed —
    /// the causal parent of every response staged here.
    fn request_side_complete(
        &mut self,
        node: NodeId,
        txn_id: u64,
        packet_id: u64,
        desc: PacketDesc,
    ) {
        let (src, atomic, resp_remaining) = {
            let st = self.txns.get_mut(&txn_id).expect("live txn");
            st.req_remaining -= 1;
            if st.req_remaining > 0 {
                return;
            }
            (st.src, st.atomic, st.resp_remaining)
        };
        if P::ENABLED {
            if let Some(tree) = self.txn_spans.get_mut(&txn_id) {
                tree.req_done_at = Some(self.net.now().raw());
            }
        }
        match desc.kind {
            PacketKind::Data if resp_remaining == 0 => {
                // Posted write: complete at delivery.
                self.finish_txn(txn_id);
            }
            PacketKind::Data => {
                // Non-posted write: ack back to the source.
                self.stage_packet(
                    node,
                    PacketDesc {
                        txn: txn_id,
                        kind: PacketKind::Ack,
                        src: node,
                        dst: src,
                        class: FlitClass::Response,
                        bytes: 0,
                        n_data: 0,
                    },
                    true,
                    Some(packet_id),
                );
            }
            PacketKind::ReadReq { resp_bytes } => {
                // Stream the data back, possibly as several packets.
                for bytes in split_packets(resp_bytes, &self.cfg) {
                    self.stage_packet(
                        node,
                        PacketDesc {
                            txn: txn_id,
                            kind: PacketKind::Data,
                            src: node,
                            dst: src,
                            class: FlitClass::Data,
                            bytes,
                            n_data: data_flits(bytes, self.cfg.flit_bytes),
                        },
                        true,
                        Some(packet_id),
                    );
                }
            }
            PacketKind::AtomicReq => {
                let op = atomic.expect("atomic txn carries its op");
                let cell = &mut self
                    .endpoints
                    .get_mut(&node)
                    .expect("atomic endpoint")
                    .atomic_cell;
                let result = op.apply(cell);
                self.txns.get_mut(&txn_id).expect("live txn").atomic_result = Some(result);
                self.stage_packet(
                    node,
                    PacketDesc {
                        txn: txn_id,
                        kind: PacketKind::AtomicResp,
                        src: node,
                        dst: src,
                        class: FlitClass::Response,
                        bytes: 0,
                        n_data: 0,
                    },
                    true,
                    Some(packet_id),
                );
            }
            kind => unreachable!("request side saw {kind:?}"),
        }
    }

    /// Retire `txn`: record latency, counters, observatory, completion.
    fn finish_txn(&mut self, txn_id: u64) {
        let st = self.txns.remove(&txn_id).expect("live txn");
        let now = self.net.now();
        let done = TxnCompletion {
            txn: TxnId(txn_id),
            kind: st.kind,
            src: st.src,
            dst: st.dst,
            bytes: st.bytes,
            issued_at: st.issued_at,
            completed_at: now,
            atomic_result: st.atomic_result,
        };
        match st.kind {
            TxnKind::Read => self.counters.reads += 1,
            TxnKind::WritePosted => self.counters.writes_posted += 1,
            TxnKind::WriteNonPosted => self.counters.writes_non_posted += 1,
            TxnKind::Atomic => self.counters.atomics += 1,
            TxnKind::Broadcast => self.counters.broadcasts += 1,
        }
        let lat = done.latency();
        self.latency.record(lat);
        if let Some(reg) = &mut self.registry {
            reg.record(lat);
        }
        if P::ENABLED {
            if let Some(mut tree) = self.txn_spans.remove(&txn_id) {
                tree.completed_at = now.raw();
                // Canonical form: children in packet-id (staging) order
                // rather than completion order.
                tree.packets.sort_by_key(|p| p.packet);
                self.span_sink.record(tree);
            }
        }
        self.completions.push_back(done);
    }
}
