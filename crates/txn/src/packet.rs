//! Packetization: carving a transaction's byte stream into packets of
//! header + data flits, and the per-packet descriptor the fabric keeps
//! while a packet is in flight.
//!
//! The layout follows the Tenstorrent Blackhole NoC exemplar: every
//! packet is one header flit (sequence 0) followed by up to
//! [`TxnConfig::max_data_flits`] data flits, each carrying up to
//! [`TxnConfig::flit_bytes`] of payload. A transfer larger than one
//! packet's capacity is split into several packets, all belonging to
//! the same transaction.

use crate::types::TxnConfig;
use noc_core::{FlitClass, NodeId, PacketToken};
use serde::{Deserialize, Serialize};

/// Number of data flits needed for `bytes` of payload (0 for an empty
/// payload — control packets are header-only).
pub fn data_flits(bytes: u32, flit_bytes: u32) -> u32 {
    assert!(flit_bytes > 0, "flit_bytes must be positive");
    bytes.div_ceil(flit_bytes)
}

/// Split a transfer into per-packet byte counts. Always yields at
/// least one packet, so zero-byte transfers still produce a header
/// flit (a pure control packet).
pub fn split_packets(bytes: u32, cfg: &TxnConfig) -> Vec<u32> {
    let cap = cfg.packet_capacity();
    if bytes == 0 {
        return vec![0];
    }
    let mut out = Vec::with_capacity((bytes.div_ceil(cap)) as usize);
    let mut left = bytes;
    while left > 0 {
        let take = left.min(cap);
        out.push(take);
        left -= take;
    }
    out
}

/// What a packet is doing for its transaction. The direction check in
/// the fabric (`arrived at txn.dst` vs `arrived at txn.src`)
/// distinguishes request data from response data, so one `Data` kind
/// serves both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketKind {
    /// Header-only read request; `resp_bytes` is returned by the
    /// destination as `Data` packets.
    ReadReq {
        /// Bytes the destination must send back.
        resp_bytes: u32,
    },
    /// Bulk payload: write request data (towards `txn.dst`) or read
    /// response data (towards `txn.src`).
    Data,
    /// Header-only write acknowledgement (non-posted writes).
    Ack,
    /// Header-only atomic request.
    AtomicReq,
    /// Header-only atomic response; the fetch result rides in the
    /// transaction state.
    AtomicResp,
    /// One hop of a broadcast fan-out tree.
    Bcast,
    /// A one-way datagram carrying an opaque user token (the CHI
    /// transport rides on these).
    Msg {
        /// Token handed back by `recv` on delivery.
        token: u64,
    },
}

/// The fabric's in-flight record of one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketDesc {
    /// Owning transaction.
    pub txn: u64,
    /// Role of the packet.
    pub kind: PacketKind,
    /// Injecting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
    /// Flit class every flit of the packet travels in.
    pub class: FlitClass,
    /// Payload bytes (excluding the header flit).
    pub bytes: u32,
    /// Number of data flits (`data_flits(bytes, flit_bytes)`).
    pub n_data: u32,
}

/// One flit of a packet, staged for injection: everything
/// `Network::enqueue` needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StagedFlit {
    /// Destination endpoint.
    pub dst: NodeId,
    /// Flit class.
    pub class: FlitClass,
    /// Payload bytes charged to this flit.
    pub bytes: u32,
    /// Encoded [`PacketToken`].
    pub token: u64,
}

impl PacketDesc {
    /// Stage every flit of this packet (header first, then data in
    /// sequence order) for injection at its source.
    pub fn flits(&self, packet_id: u64, cfg: &TxnConfig) -> Vec<StagedFlit> {
        assert!(
            self.n_data <= u32::from(cfg.max_data_flits),
            "packet of {} data flits exceeds the {}-flit cap",
            self.n_data,
            cfg.max_data_flits
        );
        let mut out = Vec::with_capacity(1 + self.n_data as usize);
        out.push(StagedFlit {
            dst: self.dst,
            class: self.class,
            bytes: cfg.header_bytes,
            token: PacketToken {
                packet: packet_id,
                seq: 0,
            }
            .encode(),
        });
        let mut left = self.bytes;
        for seq in 1..=self.n_data {
            let take = left.min(cfg.flit_bytes);
            left -= take;
            out.push(StagedFlit {
                dst: self.dst,
                class: self.class,
                bytes: take,
                token: PacketToken {
                    packet: packet_id,
                    seq: seq as u16,
                }
                .encode(),
            });
        }
        debug_assert_eq!(left, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TxnConfig {
        TxnConfig::default()
    }

    #[test]
    fn data_flit_counts() {
        assert_eq!(data_flits(0, 64), 0);
        assert_eq!(data_flits(1, 64), 1);
        assert_eq!(data_flits(64, 64), 1);
        assert_eq!(data_flits(65, 64), 2);
        assert_eq!(data_flits(16 * 1024, 64), 256);
    }

    #[test]
    fn split_respects_packet_capacity() {
        let c = cfg();
        assert_eq!(split_packets(0, &c), vec![0]);
        assert_eq!(split_packets(100, &c), vec![100]);
        assert_eq!(split_packets(16 * 1024, &c), vec![16 * 1024]);
        assert_eq!(split_packets(16 * 1024 + 1, &c), vec![16 * 1024, 1]);
        let big = split_packets(3 * 16 * 1024 + 7, &c);
        assert_eq!(big, vec![16 * 1024, 16 * 1024, 16 * 1024, 7]);
        assert_eq!(big.iter().sum::<u32>(), 3 * 16 * 1024 + 7);
    }

    #[test]
    fn staged_flits_cover_header_and_tail() {
        let c = cfg();
        let desc = PacketDesc {
            txn: 7,
            kind: PacketKind::Data,
            src: NodeId(0),
            dst: NodeId(3),
            class: FlitClass::Data,
            bytes: 130,
            n_data: data_flits(130, c.flit_bytes),
        };
        let flits = desc.flits(42, &c);
        assert_eq!(flits.len(), 4); // header + 3 data (64+64+2)
        let head = PacketToken::decode(flits[0].token);
        assert!(head.is_header());
        assert_eq!(head.packet, 42);
        assert_eq!(flits[0].bytes, c.header_bytes);
        assert_eq!(flits[3].bytes, 2);
        let total: u32 = flits[1..].iter().map(|f| f.bytes).sum();
        assert_eq!(total, 130);
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(PacketToken::decode(f.token).seq as usize, i);
            assert_eq!(f.dst, NodeId(3));
        }
    }

    #[test]
    fn control_packet_is_header_only() {
        let c = cfg();
        let desc = PacketDesc {
            txn: 1,
            kind: PacketKind::Ack,
            src: NodeId(2),
            dst: NodeId(5),
            class: FlitClass::Response,
            bytes: 0,
            n_data: 0,
        };
        let flits = desc.flits(9, &c);
        assert_eq!(flits.len(), 1);
        assert!(PacketToken::decode(flits[0].token).is_header());
    }
}
