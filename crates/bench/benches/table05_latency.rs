//! Table 5 bench: one M-state coherence ping on the 96-core server.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_chi::LineAddr;
use noc_server_cpu::experiments::{coherence_ping, PreparedState};
use noc_server_cpu::{ServerCpu, ServerCpuConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table05");
    g.sample_size(10);
    g.bench_function("m_state_ping", |b| {
        b.iter(|| {
            let mut s = ServerCpu::build(ServerCpuConfig::default()).expect("builds");
            let owner = s.map.clusters_of_ccd(0)[0];
            let helper = s.map.clusters_of_ccd(0)[2];
            let reader = s.map.clusters_of_ccd(1)[0];
            let addrs: Vec<_> = (0..4).map(|i| LineAddr(0x100 + i)).collect();
            std::hint::black_box(coherence_ping(
                &mut s.sys,
                owner,
                helper,
                reader,
                PreparedState::M,
                &addrs,
            ))
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
