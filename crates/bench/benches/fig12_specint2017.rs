//! Figure 12 bench: SPECint-2017 score model on a synthetic latency
//! profile (the measured-profile path is exercised by fig10/fig11).
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::fig12_13::LatencyProfile;
use noc_server_cpu::experiments::LatencyPoint;
use noc_workloads::specint2017;

fn pt(noise_rate: f64, probe_latency: f64) -> LatencyPoint {
    LatencyPoint {
        noise_rate,
        probe_latency,
        p50: probe_latency as u64,
        p95: probe_latency as u64,
        p99: probe_latency as u64,
        max: probe_latency as u64,
    }
}

fn profile() -> LatencyProfile {
    LatencyProfile {
        name: "synthetic".into(),
        curve: vec![pt(0.0, 85.0), pt(0.2, 140.0), pt(0.6, 700.0)],
        cores: 96,
        cores_per_requester: 4,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig12_score_model", |b| {
        let p = profile();
        let suite = specint2017();
        b.iter(|| {
            suite
                .iter()
                .map(|s| s.score(p.package_latency(s), 3.0))
                .sum::<f64>()
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
