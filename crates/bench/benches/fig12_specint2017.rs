//! Figure 12 bench: SPECint-2017 score model on a synthetic latency
//! profile (the measured-profile path is exercised by fig10/fig11).
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::fig12_13::LatencyProfile;
use noc_server_cpu::experiments::LatencyPoint;
use noc_workloads::specint2017;

fn profile() -> LatencyProfile {
    LatencyProfile {
        name: "synthetic".into(),
        curve: vec![
            LatencyPoint {
                noise_rate: 0.0,
                probe_latency: 85.0,
            },
            LatencyPoint {
                noise_rate: 0.2,
                probe_latency: 140.0,
            },
            LatencyPoint {
                noise_rate: 0.6,
                probe_latency: 700.0,
            },
        ],
        cores: 96,
        cores_per_requester: 4,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig12_score_model", |b| {
        let p = profile();
        let suite = specint2017();
        b.iter(|| {
            suite
                .iter()
                .map(|s| s.score(p.package_latency(s), 3.0))
                .sum::<f64>()
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
