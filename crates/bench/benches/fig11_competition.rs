//! Figure 11 bench: one probe-with-noise latency point.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_baseline::{MemHarness, MemHarnessConfig};
use noc_experiments::systems;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("probe_with_noise", |b| {
        b.iter(|| {
            let (ic, p) = systems::ours(12);
            let mut noise = p.requesters.clone();
            let probe = noise.remove(0);
            let mut h = MemHarness::new(ic, p.memories.clone(), MemHarnessConfig::default());
            std::hint::black_box(h.run_probe_with_noise(probe, &noise, 0.2, 0.5, 300, 2_000))
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
