//! Core micro-benchmarks: raw simulation throughput of the network
//! engine (cycles/sec) and of one loaded ring — the numbers that bound
//! how large an experiment the harness can run.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_core::{FlitClass, Network, NetworkConfig, RingKind, TopologyBuilder};

fn loaded_ring() -> (Network, Vec<noc_core::NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 16).expect("ring");
    let eps: Vec<_> = (0..16)
        .map(|i| b.add_node(format!("n{i}"), r, i).expect("node"))
        .collect();
    (Network::new(b.build().expect("valid"), NetworkConfig::default()), eps)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_core");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("tick_1k_cycles_loaded_ring", |b| {
        b.iter_with_setup(
            || {
                let (mut net, eps) = loaded_ring();
                for i in 0..64u64 {
                    let s = eps[(i % 16) as usize];
                    let d = eps[((i + 7) % 16) as usize];
                    let _ = net.enqueue(s, d, FlitClass::Data, 64, i);
                }
                (net, eps)
            },
            |(mut net, eps)| {
                for i in 0..1_000u64 {
                    let s = eps[(i % 16) as usize];
                    let d = eps[((i * 5 + 3) % 16) as usize];
                    if s != d {
                        let _ = net.enqueue(s, d, FlitClass::Data, 64, i);
                    }
                    net.tick();
                    for &e in &eps {
                        while net.pop_delivered(e).is_some() {}
                    }
                }
                net
            },
        )
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
