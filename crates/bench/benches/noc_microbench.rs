//! Core micro-benchmarks: raw simulation throughput of the network
//! engine (cycles/sec) and of one loaded ring — the numbers that bound
//! how large an experiment the harness can run.
//!
//! The `tick64/*` benchmarks compare the occupancy-indexed fast path
//! (`TickMode::Fast`) against the golden-model full sweep
//! (`TickMode::Reference`, the engine's original inner loop) on a
//! 64-station full ring, at low occupancy (a handful of flits in
//! flight, where skipping idle stations should win big) and at
//! saturation (every station pushing flits, where the fast path must
//! fall back to full sweeps and merely not regress).
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_core::{FlitClass, Network, NetworkConfig, NodeId, RingKind, TickMode, TopologyBuilder};

fn loaded_ring() -> (Network, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 16).expect("ring");
    let eps: Vec<_> = (0..16)
        .map(|i| b.add_node(format!("n{i}"), r, i).expect("node"))
        .collect();
    (
        Network::new(b.build().expect("valid"), NetworkConfig::default()),
        eps,
    )
}

/// 64-station full ring with a device on every station.
fn ring64(mode: TickMode) -> (Network, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 64).expect("ring");
    let eps: Vec<_> = (0..64)
        .map(|i| b.add_node(format!("n{i}"), r, i).expect("node"))
        .collect();
    let net = Network::with_mode(b.build().expect("valid"), NetworkConfig::default(), mode);
    (net, eps)
}

/// Closed loop of `inflight` flits: each delivery immediately re-sends,
/// holding ring occupancy near `inflight / 128` slots.
fn run_low_occupancy(mode: TickMode, cycles: u64, inflight: u64) -> Network {
    let (mut net, eps) = ring64(mode);
    for i in 0..inflight {
        let s = eps[(i * 11 % 64) as usize];
        let d = eps[((i * 11 + 32) % 64) as usize];
        net.enqueue(s, d, FlitClass::Data, 64, i)
            .expect("seed flit");
    }
    for _ in 0..cycles {
        net.tick();
        for ei in 0..eps.len() {
            while let Some(f) = net.pop_delivered(eps[ei]) {
                let back = eps[(ei + 17) % 64];
                let _ = net.enqueue(eps[ei], back, FlitClass::Data, 64, f.token);
            }
        }
    }
    net
}

/// Every station tries to enqueue every cycle: inject queues stay full
/// and lane activity sits at the saturation fallback.
fn run_saturated(mode: TickMode, cycles: u64) -> Network {
    let (mut net, eps) = ring64(mode);
    for c in 0..cycles {
        for (i, &s) in eps.iter().enumerate() {
            let d = eps[(i + 21 + (c as usize % 13)) % 64];
            if s != d {
                let _ = net.enqueue(s, d, FlitClass::Data, 64, c);
            }
        }
        net.tick();
        for &e in &eps {
            while net.pop_delivered(e).is_some() {}
        }
    }
    net
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc_core");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("tick_1k_cycles_loaded_ring", |b| {
        b.iter_with_setup(
            || {
                let (mut net, eps) = loaded_ring();
                for i in 0..64u64 {
                    let s = eps[(i % 16) as usize];
                    let d = eps[((i + 7) % 16) as usize];
                    let _ = net.enqueue(s, d, FlitClass::Data, 64, i);
                }
                (net, eps)
            },
            |(mut net, eps)| {
                for i in 0..1_000u64 {
                    let s = eps[(i % 16) as usize];
                    let d = eps[((i * 5 + 3) % 16) as usize];
                    if s != d {
                        let _ = net.enqueue(s, d, FlitClass::Data, 64, i);
                    }
                    net.tick();
                    for &e in &eps {
                        while net.pop_delivered(e).is_some() {}
                    }
                }
                net
            },
        )
    });
    g.finish();

    let mut g = c.benchmark_group("tick64");
    g.throughput(Throughput::Elements(1_000));
    g.sample_size(20);
    g.bench_function("low_occupancy_fast", |b| {
        b.iter(|| run_low_occupancy(TickMode::Fast, 1_000, 6))
    });
    g.bench_function("low_occupancy_reference", |b| {
        b.iter(|| run_low_occupancy(TickMode::Reference, 1_000, 6))
    });
    g.bench_function("saturated_fast", |b| {
        b.iter(|| run_saturated(TickMode::Fast, 1_000))
    });
    g.bench_function("saturated_reference", |b| {
        b.iter(|| run_saturated(TickMode::Reference, 1_000))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
