//! Table 9 bench: render the commercial NoC survey.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{table09, Scale};

fn bench(c: &mut Criterion) {
    c.bench_function("table09_survey", |b| {
        b.iter(|| std::hint::black_box(table09::run(Scale::Quick)))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
