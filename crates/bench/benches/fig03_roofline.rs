//! Figure 3 bench: regenerate the roofline table.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{fig03, Scale};

fn bench(c: &mut Criterion) {
    c.bench_function("fig03_roofline", |b| {
        b.iter(|| std::hint::black_box(fig03::run(Scale::Quick)))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
