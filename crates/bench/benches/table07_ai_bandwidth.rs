//! Table 7 bench: one R/W-ratio bandwidth measurement on the full-scale
//! AI processor (1:1 row).
use criterion::{criterion_group, criterion_main, Criterion};
use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table07");
    g.sample_size(10);
    g.bench_function("ratio_1_1", |b| {
        b.iter(|| {
            let proc = AiProcessor::build(AiConfig::default()).expect("builds");
            let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
            std::hint::black_box(e.run(500, 2_000).expect("AI engine run"))
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
