//! Telemetry overhead guard: the zero-cost claim, measured.
//!
//! `nullsink/*` runs the 64-station microbench workloads on the default
//! `Network<NullSink>` — every emission site compiled away — and must
//! stay within noise of the pre-telemetry `tick64/*` numbers recorded
//! in EXPERIMENTS.md (±2% acceptance, min-of-N against run-to-run
//! noise). `ringbuffer/*` runs the same workloads with a live
//! `RingBufferSink`, pricing what recording actually costs; it is
//! informational, not a gate.
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_core::telemetry::{NullSink, RingBufferSink};
use noc_core::TickMode;
use noc_experiments::engine::{
    run_low_occupancy_with_sink, run_saturated_with_sink, LOW_OCCUPANCY_INFLIGHT,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1_000));
    g.sample_size(20);
    g.bench_function("nullsink/low_occupancy_fast", |b| {
        b.iter(|| {
            run_low_occupancy_with_sink(TickMode::Fast, 1_000, LOW_OCCUPANCY_INFLIGHT, NullSink)
        })
    });
    g.bench_function("nullsink/saturated_fast", |b| {
        b.iter(|| run_saturated_with_sink(TickMode::Fast, 1_000, NullSink))
    });
    g.bench_function("ringbuffer/low_occupancy_fast", |b| {
        b.iter(|| {
            run_low_occupancy_with_sink(
                TickMode::Fast,
                1_000,
                LOW_OCCUPANCY_INFLIGHT,
                RingBufferSink::new(4096),
            )
        })
    });
    g.bench_function("ringbuffer/saturated_fast", |b| {
        b.iter(|| run_saturated_with_sink(TickMode::Fast, 1_000, RingBufferSink::new(4096)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
