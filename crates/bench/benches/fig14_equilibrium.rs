//! Figure 14 bench: equilibrium probe collection on a reduced run.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{fig14, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.bench_function("equilibrium_probes", |b| {
        b.iter(|| std::hint::black_box(fig14::run(Scale::Quick)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
