//! Figure 10 bench: single-core LMBench `rd` bandwidth on the server NoC.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_baseline::{MemHarness, MemHarnessConfig};
use noc_experiments::systems;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.bench_function("single_core_rd", |b| {
        b.iter(|| {
            let (ic, p) = systems::ours(12);
            let mut h = MemHarness::new(ic, p.memories.clone(), MemHarnessConfig::default());
            std::hint::black_box(h.run_closed_loop(&p.requesters[..1], 16, 1.0, 500, 2_000))
        })
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
