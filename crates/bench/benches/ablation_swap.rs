//! Figure 9 / SWAP bench: the cross-ring saturation scenario with SWAP
//! armed (the experiment also covers half/full, I-tag and scaling
//! ablations via the repro binary).
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{ablations, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("swap_flood", |b| {
        b.iter(|| std::hint::black_box(ablations::run_swap(Scale::Quick)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
