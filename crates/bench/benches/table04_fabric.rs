//! Table 4 bench: wire-fabric and floorplan estimation.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{table04, Scale};

fn bench(c: &mut Criterion) {
    c.bench_function("table04_fabric", |b| {
        b.iter(|| std::hint::black_box(table04::run(Scale::Quick)))
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
