//! Figure 13 bench: SPECint-2006 score model.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::fig12_13::LatencyProfile;
use noc_server_cpu::experiments::LatencyPoint;
use noc_workloads::specint2006;

fn pt(noise_rate: f64, probe_latency: f64) -> LatencyPoint {
    LatencyPoint {
        noise_rate,
        probe_latency,
        p50: probe_latency as u64,
        p95: probe_latency as u64,
        p99: probe_latency as u64,
        max: probe_latency as u64,
    }
}

fn bench(c: &mut Criterion) {
    let p = LatencyProfile {
        name: "synthetic".into(),
        curve: vec![pt(0.0, 85.0), pt(0.6, 700.0)],
        cores: 96,
        cores_per_requester: 4,
    };
    c.bench_function("fig13_score_model", |b| {
        let suite = specint2006();
        b.iter(|| {
            suite
                .iter()
                .map(|s| s.score(p.package_latency(s), 3.0))
                .sum::<f64>()
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
