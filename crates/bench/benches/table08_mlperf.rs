//! Table 8 bench: two-level roofline MLPerf estimates (uses a short
//! Table 7 simulation for the measured on-chip bandwidth).
use criterion::{criterion_group, criterion_main, Criterion};
use noc_experiments::{table08, Scale};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table08");
    g.sample_size(10);
    g.bench_function("mlperf_vs_a100", |b| {
        b.iter(|| std::hint::black_box(table08::run(Scale::Quick)))
    });
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
