//! Table 6 bench: the SPECpower ops/watt ladder model.
use criterion::{criterion_group, criterion_main, Criterion};
use noc_workloads::PowerModel;

fn bench(c: &mut Criterion) {
    c.bench_function("table06_power_ladder", |b| {
        b.iter(|| {
            let m = PowerModel {
                peak_ops: std::hint::black_box(350_000.0),
                idle_w: 92.0,
                peak_w: 263.0,
            };
            std::hint::black_box(m.score())
        })
    });
}
criterion_group!(benches, bench);
criterion_main!(benches);
