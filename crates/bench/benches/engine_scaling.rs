//! Engine scaling: ticks/sec of the sharded tick engine on the AI
//! topology as the per-ring phase fans out over worker threads
//! (`ExecMode::Parallel(n)` vs `ExecMode::Sequential`).
//!
//! Results are bit-identical across modes by construction (see
//! `tick_equivalence.rs`); this bench measures only the wall-clock
//! trade. Interpret the numbers against the host's actual core count —
//! on a single-CPU host the parallel rows measure pure fan-out
//! overhead, not speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use noc_ai::{build_topology, AiConfig};
use noc_core::telemetry::NullSink;
use noc_core::{ExecMode, FlitClass, Network, NetworkConfig, NodeId, TickMode};

const CYCLES: u64 = 500;

/// A mid-size AI mesh: 4 vertical + 2 horizontal rings is enough shards
/// for an 8-way fan-out to have real work per worker.
fn ai_cfg() -> AiConfig {
    AiConfig {
        v_rings: 4,
        cores_per_vring: 8,
        h_rings: 2,
        l2_per_hring: 8,
        hbm_count: 2,
        dma_count: 2,
        llc_count: 2,
        ..Default::default()
    }
}

fn build(exec: ExecMode) -> (Network, Vec<NodeId>, Vec<NodeId>) {
    let cfg = ai_cfg();
    let (topo, map) = build_topology(&cfg).expect("builds");
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    (net, map.cores, map.l2s)
}

/// Saturating closed loop: every core offers a flit to an interleaved
/// L2 slice each cycle, deliveries drain immediately.
fn run(net: &mut Network, cores: &[NodeId], l2s: &[NodeId], cycles: u64) {
    for c in 0..cycles {
        for (i, &core) in cores.iter().enumerate() {
            let l2 = l2s[(i * 7 + c as usize) % l2s.len()];
            let _ = net.enqueue(core, l2, FlitClass::Data, 64, c);
        }
        net.tick();
        for &l2 in l2s {
            while net.pop_delivered(l2).is_some() {}
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling");
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("sequential", |b| {
        b.iter_with_setup(
            || build(ExecMode::Sequential),
            |(mut net, cores, l2s)| {
                run(&mut net, &cores, &l2s, CYCLES);
                net
            },
        )
    });
    for threads in [1usize, 2, 4] {
        g.bench_function(&format!("parallel/{threads}"), |b| {
            b.iter_with_setup(
                || build(ExecMode::Parallel(threads)),
                |(mut net, cores, l2s)| {
                    run(&mut net, &cores, &l2s, CYCLES);
                    net
                },
            )
        });
    }
    g.finish();
}
criterion_group!(benches, bench);
criterion_main!(benches);
