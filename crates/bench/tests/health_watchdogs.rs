//! Watchdog no-false-positive regression on the paper's standard
//! workloads.
//!
//! The liveness-stall rule exists to flag wedged networks (the firing
//! half is covered by `crates/core/tests/metrics_observatory.rs`).
//! Here we run the fig11/fig12-style memory-noise workloads — the
//! workloads every experiment in §5 is built from — with the
//! observatory enabled and assert the watchdog stays quiet: these
//! systems drain, so a liveness verdict would be a false positive.

use noc_baseline::{MemHarness, MemHarnessConfig, RingAdapter};
use noc_core::telemetry::HealthRule;
use noc_core::NocDiagnostics;
use noc_experiments::{fig11, systems};
use noc_server_cpu::experiments::{coherence_ping, lines_homed_at, server_interconnect};
use noc_server_cpu::{ServerCpu, ServerCpuConfig};

/// Observatory sampling period for the regression runs.
const PERIOD: u64 = 32;

/// The fig11 harness factory, with the observatory switched on through
/// the public `ServerCpuConfig::metrics_period` knob.
fn observed_harness() -> (MemHarness<RingAdapter>, usize, Vec<usize>) {
    let cfg = ServerCpuConfig {
        clusters_per_ccd: 12,
        metrics_period: PERIOD,
        ..Default::default()
    };
    let (ic, eps) = server_interconnect(&cfg).expect("server config builds");
    let mut noise = eps.clusters.clone();
    let probe = noise.remove(0);
    let h = MemHarness::new(
        ic,
        eps.ddrs.clone(),
        MemHarnessConfig {
            mem: systems::mem_params(),
            ..Default::default()
        },
    );
    (h, probe, noise)
}

#[test]
fn fig11_noise_sweep_never_trips_the_liveness_watchdog() {
    // Every mix of the paper's Figure 11, at a light and a heavy noise
    // rate (fig12/13 sweep the same harness over the same rate range).
    for &(mix, read_frac) in &fig11::MIXES {
        for &rate in &[0.05_f64, 0.4] {
            let (mut h, probe, noise) = observed_harness();
            let _ = h.run_probe_with_noise(probe, &noise, rate, read_frac, 300, 2_500);

            let net = h.interconnect().network();
            let reg = net.metrics().expect("observatory enabled via config");
            assert!(
                !reg.is_empty(),
                "{mix} @ {rate}: observatory produced no snapshots"
            );
            let monitor = net.health().expect("observatory enabled via config");
            let stalls: Vec<_> = monitor
                .verdicts()
                .iter()
                .filter(|v| v.rule == HealthRule::LivenessStall)
                .collect();
            assert!(
                stalls.is_empty(),
                "{mix} @ {rate}: liveness watchdog false-positived: {stalls:?}"
            );
        }
    }
}

#[test]
fn coherent_server_health_summary_reports_a_live_observatory() {
    // Satellite surface check: `NocDiagnostics::health_summary` on a
    // metrics-enabled SoC after a standard coherence workload.
    let mut s = ServerCpu::build(ServerCpuConfig {
        metrics_period: PERIOD,
        ..Default::default()
    })
    .expect("default server builds");

    let local_hns: Vec<_> = s.map.home_nodes[..s.cfg.hn_per_ccd].to_vec();
    let addrs = lines_homed_at(&s.sys, &local_hns, 8, 0x100);
    let owner = s.map.clusters_of_ccd(0)[0];
    let helper = s.map.clusters_of_ccd(0)[2];
    let reader = s.map.clusters_of_ccd(1)[0];
    let lat = coherence_ping(
        &mut s.sys,
        owner,
        helper,
        reader,
        noc_server_cpu::experiments::PreparedState::M,
        &addrs,
    );
    assert!(lat > 0.0, "coherence ping measured nothing");

    let summary = s.health_summary();
    assert!(
        !summary.contains("observatory disabled"),
        "metrics_period should have enabled the observatory: {summary}"
    );
    let monitor = s.noc().health().expect("observatory enabled");
    assert!(
        !monitor
            .verdicts()
            .iter()
            .any(|v| v.rule == HealthRule::LivenessStall),
        "coherence ping false-positived the liveness watchdog:\n{summary}"
    );

    // The disabled path still answers, rather than panicking.
    let plain = systems::ours_coherent();
    assert!(plain.health_summary().contains("observatory disabled"));
}
