//! Figure 10: LMBench memory bandwidth — single core occupying the
//! whole package's DDR bandwidth, and all cores competing for it.

use crate::report::{fnum, ExperimentResult, Scale};
use crate::systems;
use noc_baseline::{Interconnect, MemHarness, MemHarnessConfig};
use noc_workloads::{geomean_ratio, lmbench_kernels};

fn bandwidth<I: Interconnect>(
    ic: I,
    mems: &[usize],
    actives: &[usize],
    outstanding: u32,
    read_frac: f64,
    scale: Scale,
) -> f64 {
    let mut h = MemHarness::new(
        ic,
        mems.to_vec(),
        MemHarnessConfig {
            mem: systems::mem_params(),
            ..Default::default()
        },
    );
    h.run_closed_loop(
        actives,
        outstanding,
        read_frac,
        scale.pick(500, 2_000),
        scale.pick(3_000, 10_000),
    )
    .bytes_per_cycle()
}

/// Reproduce Figure 10: per-kernel bandwidth, this work vs both
/// baselines, single-core and full-package.
pub fn run(scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig10",
        "LMBench NoC bandwidth (bytes/cycle), single-core and full package",
    )
    .with_header(vec![
        "kernel",
        "1c ours",
        "1c intel-like",
        "1c amd-like",
        "1c ratio I/A",
        "pkg ours",
        "pkg intel-like",
        "pkg amd-like",
        "pkg ratio I/A",
    ]);

    let mut single: Vec<[f64; 3]> = Vec::new();
    let mut pkg: Vec<[f64; 3]> = Vec::new();
    for k in lmbench_kernels() {
        let rf = k.read_frac();
        // Single core with deep MLP: can it use the whole package's DDR?
        let s_ours = {
            let (ic, p) = systems::ours(12);
            bandwidth(ic, &p.memories, &p.requesters[..1], 16, rf, scale)
        };
        let s_intel = {
            let (ic, p) = systems::intel_like();
            bandwidth(ic, &p.memories, &p.requesters[..1], 16, rf, scale)
        };
        let s_amd = {
            let (ic, p) = systems::amd_like();
            bandwidth(ic, &p.memories, &p.requesters[..1], 16, rf, scale)
        };
        // Whole package: every requester keeps moderate MLP.
        let p_ours = {
            let (ic, p) = systems::ours(12);
            bandwidth(ic, &p.memories, &p.requesters, 8, rf, scale)
        };
        let p_intel = {
            let (ic, p) = systems::intel_like();
            bandwidth(ic, &p.memories, &p.requesters, 8, rf, scale)
        };
        let p_amd = {
            let (ic, p) = systems::amd_like();
            bandwidth(ic, &p.memories, &p.requesters, 8, rf, scale)
        };
        r.push_row(vec![
            k.name.to_string(),
            fnum(s_ours, 1),
            fnum(s_intel, 1),
            fnum(s_amd, 1),
            format!("{:.2}/{:.2}", s_ours / s_intel, s_ours / s_amd),
            fnum(p_ours, 1),
            fnum(p_intel, 1),
            fnum(p_amd, 1),
            format!("{:.2}/{:.2}", p_ours / p_intel, p_ours / p_amd),
        ]);
        single.push([s_ours, s_intel, s_amd]);
        pkg.push([p_ours, p_intel, p_amd]);
    }

    let g = |v: &[[f64; 3]], i: usize| {
        let ours: Vec<f64> = v.iter().map(|x| x[0]).collect();
        let base: Vec<f64> = v.iter().map(|x| x[i]).collect();
        geomean_ratio(&ours, &base)
    };
    let (s_i, s_a) = (g(&single, 1), g(&single, 2));
    let (p_i, p_a) = (g(&pkg, 1), g(&pkg, 2));
    r.note(format!(
        "single-core geomean: {s_i:.2}x intel-like (paper 3.23x), {s_a:.2}x amd-like (paper 1.77x) — {}",
        if s_i > 1.0 && s_a > 1.0 { "PASS (ours wins both)" } else { "FAIL" }
    ));
    r.note(format!(
        "package geomean: {p_i:.2}x intel-like (paper 1.19x), {p_a:.2}x amd-like (paper 1.7x) — {}",
        if p_i >= 0.95 && p_a > 1.0 {
            "PASS (ours matches/beats both; in our idealized DDR-controller model both the \
             monolithic mesh and ours saturate the normalized channels, so the paper's extra \
             1.19x utilization gap does not fully reproduce — see EXPERIMENTS.md)"
        } else {
            "FAIL"
        }
    ));
    r.note(
        "single-core advantage exceeds package advantage, as in the paper (latency-bound MLP \
         vs DDR-bound saturation)"
            .to_string(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_ours_wins_quick() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 8);
        let fails = r.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        assert_eq!(fails, 0, "{:?}", r.notes);
    }
}
