//! `noc-bench scaling`: the epoch-batched parallel-scaling sweep.
//!
//! One run produces `BENCH_PR8.json`: engine throughput on a 16-ring
//! chain (256 stations, L2 bridges) across
//! `ExecMode::{Sequential, Parallel(2/4/8)}` × K ∈ {1, 2, 4, 8}, where
//! 8 is the fabric's bridge-latency epoch bound
//! ([`noc_core::Network::max_epoch`]). Traffic and drains are applied
//! only at cycles aligned to the largest K, so every point simulates
//! the identical network and the sweep doubles as a 16-way fingerprint
//! cross-check.
//!
//! The report header records the **host shape** — logical core count
//! and CPU model — because the headline gate (`Parallel(4)` at its
//! best K must beat `Sequential` at *its* best K by ≥ 1.5×) is only
//! meaningful with ≥ 4 hardware cores. On smaller hosts the gate
//! auto-skips and records the reason in the artifact instead of
//! producing a vacuous pass/fail. The fingerprint cross-check never
//! skips: a host too small to demonstrate speedup can still prove
//! determinism.
//!
//! `NOC_EXEC_THREADS` (also honored by the CI step) caps the swept
//! thread counts and is recorded in the report when set.

use noc_core::telemetry::NullSink;
use noc_core::{
    BridgeConfig, ExecMode, FlitClass, Network, NetworkConfig, NodeId, RingKind, TickMode,
    Topology, TopologyBuilder,
};
use serde::Serialize;
use std::time::Instant;

/// splitmix64, the workspace's deterministic stream of choice.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, from the top 53 bits.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The epoch lengths every point is swept over; the last entry is the
/// 16-ring chain's bridge-latency bound (L2 latency = 8 cycles).
pub const EPOCHS: [u64; 4] = [1, 2, 4, 8];

/// The shape of the machine the numbers were taken on.
#[derive(Debug, Clone, Serialize)]
pub struct HostInfo {
    /// Logical cores visible to the process
    /// (`std::thread::available_parallelism`).
    pub logical_cores: usize,
    /// CPU model string from `/proc/cpuinfo`, or `"unknown"` where
    /// unavailable.
    pub cpu_model: String,
}

/// Probe the host shape. Failures degrade to `1` core / `"unknown"`
/// rather than erroring: the sweep itself runs anywhere.
pub fn host_info() -> HostInfo {
    let logical_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".to_string());
    HostInfo {
        logical_cores,
        cpu_model,
    }
}

/// One measured cell of the exec × K grid.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Execution mode label (`sequential`, `parallel2`, …).
    pub exec: String,
    /// Worker threads behind the label (0 = sequential).
    pub threads: usize,
    /// Epoch length (cycles per handoff).
    pub k: u64,
    /// Engine throughput in simulated cycles per wall-clock second
    /// (best of the timing repeats).
    pub ticks_per_sec: f64,
    /// This point's throughput over the sequential K=1 point's.
    pub speedup_vs_seq_k1: f64,
    /// Whether this point's `NetStats` fingerprint matched the
    /// sequential K=1 run.
    pub fingerprint_ok: bool,
}

/// The headline gate's outcome — always present in the artifact, even
/// (especially) when it could not run.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupGate {
    /// Required `Parallel(4)` / `Sequential` speedup.
    pub required: f64,
    /// Best measured speedup (best-K parallel4 over best-K
    /// sequential), when both sides were swept.
    pub measured: Option<f64>,
    /// `Some(true/false)` when the gate ran; `None` when it skipped.
    pub passed: Option<bool>,
    /// Why the gate skipped, when it did.
    pub skip_reason: Option<String>,
}

/// The whole `BENCH_PR8.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingReport {
    /// Report schema tag.
    pub bench: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Host shape the numbers were taken on.
    pub host: HostInfo,
    /// `NOC_EXEC_THREADS` cap, when the environment set one.
    pub exec_threads_env: Option<usize>,
    /// Fabric label (`chain-16ring`).
    pub fabric: String,
    /// Rings in the fabric.
    pub rings: usize,
    /// Total cross stations.
    pub stations: u64,
    /// Injection cycles per timed run.
    pub cycles: u64,
    /// The measured exec × K grid.
    pub points: Vec<ScalingPoint>,
    /// The Parallel(4) ≥ 1.5× Sequential gate.
    pub gate: SpeedupGate,
}

/// The scaling fabric: sixteen 16-station full rings chained by L2
/// bridges (latency 8 ⇒ `max_epoch() == 8`), four rings per chiplet,
/// four devices per ring.
pub fn sixteen_ring_chain() -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let dies: Vec<_> = (0..4).map(|d| b.add_chiplet(format!("die{d}"))).collect();
    let mut rings = Vec::new();
    let mut devices = Vec::new();
    for i in 0..16 {
        let ring = b
            .add_ring(dies[i / 4], RingKind::Full, 16)
            .expect("ring fits");
        for d in 0..4u16 {
            // Stations 0..=9 step 3; 12+ stays free for bridges.
            devices.push(
                b.add_node(format!("dev{i}_{d}"), ring, d * 3)
                    .expect("device placement"),
            );
        }
        rings.push(ring);
    }
    for w in 0..rings.len() - 1 {
        b.add_bridge(BridgeConfig::l2(), rings[w], 13, rings[w + 1], 15)
            .expect("bridge placement");
    }
    (b.build().expect("valid 16-ring chain"), devices)
}

/// Drive `cycles` of epoch-aligned uniform traffic (enqueue and drain
/// only at multiples of the largest swept K) and run to full drain,
/// advancing `k` cycles per engine call. Returns (ticks/sec,
/// fingerprint).
fn timed_run(cycles: u64, rate: f64, exec: ExecMode, k: u64) -> (f64, Vec<u64>) {
    let align = *EPOCHS.last().expect("non-empty");
    assert!(align.is_multiple_of(k));
    let (topo, devices) = sixteen_ring_chain();
    let mut net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    debug_assert_eq!(net.max_epoch(), align);
    let mut rng = Rng(0x5ca1_ab1e_0000_0008);
    let mut token = 0u64;
    let start = Instant::now();
    loop {
        let now = net.now().raw();
        if now.is_multiple_of(align) && now < cycles {
            for (si, &src) in devices.iter().enumerate() {
                if rng.unit() >= rate {
                    continue;
                }
                let dst = devices
                    [(si + 1 + rng.below(devices.len() as u64 - 1) as usize) % devices.len()];
                token += 1;
                let _ = net.enqueue(src, dst, FlitClass::Data, 64, token);
            }
        }
        net.tick_epoch(k)
            .expect("k divides the fabric's epoch bound");
        let now = net.now().raw();
        if now.is_multiple_of(align) {
            for &d in &devices {
                while net.pop_delivered(d).is_some() {}
            }
            if now >= cycles && net.in_flight() == 0 {
                break;
            }
            assert!(now < cycles + 200_000, "scaling run failed to drain");
        }
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (net.now().raw() as f64 / secs, net.stats().fingerprint())
}

/// Thread counts to sweep: {2, 4, 8} capped by `NOC_EXEC_THREADS` when
/// set (the cap itself joins the sweep if it is not a power of two).
fn thread_counts(env_cap: Option<usize>) -> Vec<usize> {
    let mut counts: Vec<usize> = [2usize, 4, 8]
        .into_iter()
        .filter(|&t| env_cap.is_none_or(|cap| t <= cap))
        .collect();
    if let Some(cap) = env_cap {
        if cap >= 2 && !counts.contains(&cap) {
            counts.push(cap);
            counts.sort_unstable();
        }
    }
    counts
}

/// Run the whole sweep. `quick` trades cycle counts and timing repeats
/// for wall-clock.
pub fn run(quick: bool) -> ScalingReport {
    let cycles: u64 = if quick { 2_000 } else { 12_000 };
    let repeats: u32 = if quick { 1 } else { 3 };
    let rate = 0.25;
    let host = host_info();
    let exec_threads_env = std::env::var("NOC_EXEC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());

    let mut execs: Vec<(String, usize, ExecMode)> =
        vec![("sequential".to_string(), 0, ExecMode::Sequential)];
    for t in thread_counts(exec_threads_env) {
        execs.push((format!("parallel{t}"), t, ExecMode::Parallel(t)));
    }

    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut base: Option<(f64, Vec<u64>)> = None;
    for (label, threads, exec) in &execs {
        for &k in &EPOCHS {
            let mut tps = f64::MIN;
            let mut fp = Vec::new();
            for _ in 0..repeats {
                let (t, f) = timed_run(cycles, rate, *exec, k);
                tps = tps.max(t);
                fp = f;
            }
            let (base_tps, base_fp) = base.get_or_insert_with(|| (tps, fp.clone()));
            points.push(ScalingPoint {
                exec: label.clone(),
                threads: *threads,
                k,
                ticks_per_sec: tps,
                speedup_vs_seq_k1: tps / *base_tps,
                fingerprint_ok: fp == *base_fp,
            });
        }
    }

    let best = |pred: &dyn Fn(&ScalingPoint) -> bool| -> Option<f64> {
        points
            .iter()
            .filter(|p| pred(p))
            .map(|p| p.ticks_per_sec)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    };
    let required = 1.5;
    let gate = if host.logical_cores < 4 {
        SpeedupGate {
            required,
            measured: None,
            passed: None,
            skip_reason: Some(format!(
                "host has {} logical core(s) (< 4): a {}× parallel speedup is not \
                 demonstrable here; fingerprint cross-check still enforced",
                host.logical_cores, required
            )),
        }
    } else {
        match (best(&|p| p.threads == 0), best(&|p| p.threads == 4)) {
            (Some(seq), Some(par4)) => {
                let measured = par4 / seq;
                SpeedupGate {
                    required,
                    measured: Some(measured),
                    passed: Some(measured >= required),
                    skip_reason: None,
                }
            }
            _ => SpeedupGate {
                required,
                measured: None,
                passed: None,
                skip_reason: Some(
                    "NOC_EXEC_THREADS excluded the 4-thread point from the sweep".to_string(),
                ),
            },
        }
    };

    let (topo, _) = sixteen_ring_chain();
    ScalingReport {
        bench: "noc-bench parallel-scaling".to_string(),
        quick,
        host,
        exec_threads_env,
        fabric: "chain-16ring".to_string(),
        rings: topo.rings().len(),
        stations: topo.total_stations(),
        cycles,
        points,
        gate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_ring_chain_has_the_advertised_shape() {
        let (topo, devices) = sixteen_ring_chain();
        assert_eq!(topo.rings().len(), 16);
        assert_eq!(topo.total_stations(), 256);
        assert_eq!(topo.chiplets().len(), 4);
        assert_eq!(devices.len(), 64);
        let net = Network::new(topo, NetworkConfig::default());
        assert_eq!(net.max_epoch(), *EPOCHS.last().unwrap());
    }

    #[test]
    fn thread_counts_honor_the_env_cap() {
        assert_eq!(thread_counts(None), vec![2, 4, 8]);
        assert_eq!(thread_counts(Some(4)), vec![2, 4]);
        assert_eq!(thread_counts(Some(6)), vec![2, 4, 6]);
        assert_eq!(thread_counts(Some(1)), Vec::<usize>::new());
    }

    #[test]
    fn quick_scaling_sweep_is_complete_and_fingerprint_clean() {
        // Pin the sweep shape regardless of the test host's environment.
        let report = run(true);
        assert!(report.host.logical_cores >= 1);
        assert!(!report.host.cpu_model.is_empty());
        assert_eq!(report.rings, 16);
        assert_eq!(report.stations, 256);
        let seq_points = report.points.iter().filter(|p| p.threads == 0).count();
        assert_eq!(seq_points, EPOCHS.len());
        for p in &report.points {
            assert!(p.ticks_per_sec > 0.0, "{}/k={}: no throughput", p.exec, p.k);
            assert!(
                p.fingerprint_ok,
                "{}/k={}: fingerprint diverged from sequential K=1",
                p.exec, p.k
            );
        }
        // The gate either ran or recorded why it could not.
        assert!(
            report.gate.passed.is_some() || report.gate.skip_reason.is_some(),
            "gate must resolve or explain itself"
        );
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"cpu_model\""));
        assert!(json.contains("\"gate\""));
    }
}
