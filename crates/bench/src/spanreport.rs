//! `noc-bench trace-report`: causal-span critical-path attribution as
//! a machine-readable artifact (`BENCH_PR9.json`) plus a human table.
//!
//! One run drives three transaction workloads on the generated 4×4
//! torus with the fabric's [`SpanCollector`] attached, reduces every
//! finished transaction to its critical chain
//! ([`critical_path`](noc_core::telemetry::critical_path)) and reports
//! the per-phase latency breakdown — staging / inject / ring / recirc /
//! bridge — whose sums reconcile *exactly* with the completion
//! latencies the transaction registry recorded. The run fails loudly if
//! a single cycle goes unattributed.
//!
//! The artifact also carries the span-tracing cost measurement the CI
//! gate enforces:
//!
//! * **null overhead** — `TxnFabric::new` (the PR 8 constructor) vs
//!   `TxnFabric::with_spans(.., NullSpanSink)`. These are the *same
//!   monomorphization* (`new` delegates to `with_spans`), so the gate
//!   is a tripwire for someone un-gating a bookkeeping site: budget 1%.
//! * **enabled overhead** — `NullSpanSink` vs a live [`SpanCollector`]
//!   on the same workload: full span trees for every transaction,
//!   budget 5%.
//!
//! Both are minima over paired interleaved repeats, the workspace's
//! standard defense against one-sided scheduler noise (see
//! [`trajectory`](crate::trajectory)).
//!
//! A Perfetto/Chrome trace of the slowest transactions' span trees is
//! emitted alongside (`TRACE_PR9.json`) — load it in
//! <https://ui.perfetto.dev>.

use crate::trajectory::METRICS_PERIOD;
use noc_core::telemetry::{
    breakdown_table, span_trees_jsonl, spans_chrome_trace, LatencyBreakdown, NullSink,
    NullSpanSink, SpanCollector, SpanSink, TxnSpanTree, PHASE_NAMES,
};
use noc_core::topogen::GridParams;
use noc_core::{ExecMode, Network, NetworkConfig, NodeId, TickMode};
use noc_txn::{TxnConfig, TxnFabric, TxnOp};
use serde::Serialize;
use std::time::Instant;

/// Tail-exemplar reservoir depth for the report runs.
pub const EXEMPLAR_K: usize = 8;

/// Outstanding-transaction cap for every report run. Sits past the
/// region that used to wedge the 4×4 torus permanently (≈200 concurrent
/// 4 KiB DMA bursts, or 64 outstanding stride-7 2 KiB writes) — safe
/// now that reassembly credits bound admission per destination; the
/// `txn_saturation` regression pins both the old wedge and the fix.
const MAX_OUTSTANDING: usize = 256;

/// One phase's aggregate share of a workload's latency.
#[derive(Debug, Clone, Serialize)]
pub struct PhasePoint {
    /// Phase name (`staging` / `inject` / `ring` / `recirc` / `bridge`).
    pub phase: String,
    /// Critical-chain cycles attributed to this phase, summed over all
    /// transactions.
    pub cycles: u64,
    /// Percentage of the summed completion latency.
    pub share_pct: f64,
}

/// One workload's span-derived latency profile.
#[derive(Debug, Clone, Serialize)]
pub struct SpanWorkloadPoint {
    /// Workload name (`dma_burst` / `uniform_high` / `hotspot`).
    pub workload: String,
    /// Fabric label.
    pub fabric: String,
    /// Transactions completed (= span trees recorded).
    pub transactions: u64,
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Mean completion latency over the critical-path profile.
    pub mean_latency: f64,
    /// Median per-transaction latency from the registry histogram.
    pub p50_latency: u64,
    /// Tail per-transaction latency from the registry histogram.
    pub p99_latency: u64,
    /// Per-phase attribution, in [`PHASE_NAMES`] order.
    pub phases: Vec<PhasePoint>,
    /// Whether phase sums equal the registry's summed completion
    /// latencies, cycle for cycle.
    pub reconciled: bool,
    /// Whether `Parallel(4)` reproduced the sequential span stream and
    /// exemplar reservoir byte-for-byte.
    pub span_stream_ok: bool,
    /// Tail exemplars retained.
    pub exemplars: u64,
    /// Latency of the slowest retained exemplar.
    pub slowest_latency: u64,
}

/// Span tracing's cost on the transaction workload.
#[derive(Debug, Clone, Serialize)]
pub struct SpanOverheadPoint {
    /// Best-of-N ticks/second with the PR 8 constructor
    /// (`TxnFabric::new`).
    pub base_ticks_per_sec: f64,
    /// Best-of-N ticks/second with the explicit `NullSpanSink`.
    pub null_ticks_per_sec: f64,
    /// Best-of-N ticks/second with a live `SpanCollector`.
    pub enabled_ticks_per_sec: f64,
    /// `new` → `NullSpanSink` throughput loss in percent (negative =
    /// noise): same monomorphization, so anything real means a
    /// bookkeeping site lost its `P::ENABLED` guard. Minimum over
    /// paired repeats.
    pub null_overhead_pct: f64,
    /// `NullSpanSink` → `SpanCollector` throughput loss in percent:
    /// the true cost of recording every span tree. Minimum over paired
    /// repeats.
    pub enabled_overhead_pct: f64,
    /// Timing repeats the paired minima were taken over.
    pub repeats: u32,
}

/// The whole `BENCH_PR9.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct TraceReport {
    /// Report schema tag.
    pub bench: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Per-workload span profiles.
    pub workloads: Vec<SpanWorkloadPoint>,
    /// Span-tracing cost measurement.
    pub overhead: SpanOverheadPoint,
    /// Events in the emitted Perfetto trace.
    pub trace_events: u64,
}

/// Everything `noc-bench trace-report` needs: the JSON document, the
/// rendered breakdown table, and the Perfetto trace body.
#[derive(Debug, Clone)]
pub struct TraceBundle {
    /// The machine-readable report.
    pub report: TraceReport,
    /// Aligned ASCII breakdown table, one row per workload.
    pub table: String,
    /// Chrome `trace_event` JSON of the slowest transactions.
    pub perfetto: String,
}

/// Transaction workload shapes the report profiles. All are
/// deterministic closed loops — no RNG, so the span streams are
/// reproducible byte-for-byte.
enum Shape {
    /// 4 KiB non-posted DMA writes to the device half the fabric away —
    /// the trajectory benchmark's canonical burst point.
    DmaBurst,
    /// 2 KiB non-posted writes on a stride-7 all-to-all shuffle: every
    /// endpoint both sends and receives, load spread evenly.
    UniformHigh,
    /// 1 KiB non-posted writes from every endpoint to device 0: ejection
    /// pressure concentrates, recirculation and window wait dominate.
    Hotspot,
}

impl Shape {
    fn name(&self) -> &'static str {
        match self {
            Shape::DmaBurst => "dma_burst",
            Shape::UniformHigh => "uniform_high",
            Shape::Hotspot => "hotspot",
        }
    }

    /// The `i`-th request of the closed loop over `devs`.
    fn request(&self, i: usize, devs: &[NodeId]) -> (NodeId, NodeId, TxnOp) {
        let n = devs.len();
        match self {
            Shape::DmaBurst => (
                devs[i % n],
                devs[(i + n / 2) % n],
                TxnOp::Write {
                    bytes: 4096,
                    posted: false,
                },
            ),
            Shape::UniformHigh => {
                let src = i % n;
                let mut dst = (i * 7 + 3) % n;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                (
                    devs[src],
                    devs[dst],
                    TxnOp::Write {
                        bytes: 2048,
                        posted: false,
                    },
                )
            }
            Shape::Hotspot => (
                devs[1 + i % (n - 1)],
                devs[0],
                TxnOp::Write {
                    bytes: 1024,
                    posted: false,
                },
            ),
        }
    }
}

/// The report fabric: the trajectory benchmark's generated 4×4 torus.
fn torus_devices() -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(4, 4)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65)
        .generate()
        .expect("torus generates")
        .compile()
        .expect("torus compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    (topo, named.into_iter().map(|(_, id)| id).collect())
}

/// Everything one span-collecting run yields.
struct SpanRun {
    trees: Vec<TxnSpanTree>,
    exemplars: Vec<TxnSpanTree>,
    cycles: u64,
    latency_sum: u64,
    completed: u64,
    p50: u64,
    p99: u64,
}

/// Drive `txns` transactions of `shape` to quiescence with a
/// [`SpanCollector`] attached.
fn span_run(shape: &Shape, txns: usize, exec: ExecMode) -> SpanRun {
    let (topo, devs) = torus_devices();
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    let cfg = TxnConfig {
        metrics_period: METRICS_PERIOD,
        reassembly_slots: 1,
        ..TxnConfig::default()
    };
    let mut fab = TxnFabric::with_spans(net, cfg, SpanCollector::new(txns.max(1), EXEMPLAR_K));
    let mut accepted = 0usize;
    let mut guard = 0u64;
    while accepted < txns {
        if fab.in_flight_txns() < MAX_OUTSTANDING {
            let (src, dst, op) = shape.request(accepted, &devs);
            if fab
                .submit(src, dst, op)
                .expect("generated endpoints are valid")
                .is_some()
            {
                accepted += 1;
            }
        }
        fab.tick();
        guard += 1;
        assert!(guard < 2_000_000, "trace-report workload starved");
    }
    assert!(
        fab.run_until_quiet(2_000_000),
        "trace-report workload failed to quiesce"
    );
    SpanRun {
        trees: fab.span_sink().recent().cloned().collect(),
        exemplars: fab.span_sink().exemplars().to_vec(),
        cycles: fab.now().raw(),
        latency_sum: fab.latency().sum(),
        completed: fab.counters().completed(),
        p50: fab.latency().percentile(0.50),
        p99: fab.latency().percentile(0.99),
    }
}

/// Profile one workload, cross-checking the `Parallel(4)` span stream
/// against sequential byte-for-byte.
fn workload_point(shape: Shape, txns: usize) -> (SpanWorkloadPoint, LatencyBreakdown, SpanRun) {
    let seq = span_run(&shape, txns, ExecMode::Sequential);
    let par = span_run(&shape, txns, ExecMode::Parallel(4));
    let breakdown = LatencyBreakdown::of(&seq.trees);
    // The acceptance invariant: every cycle of every completion latency
    // the registry recorded is attributed to a named phase.
    let reconciled = breakdown.reconciles()
        && breakdown.total == seq.latency_sum
        && breakdown.txns == seq.completed;
    let span_stream_ok = span_trees_jsonl(&seq.trees) == span_trees_jsonl(&par.trees)
        && span_trees_jsonl(&seq.exemplars) == span_trees_jsonl(&par.exemplars);
    let phases = PHASE_NAMES
        .iter()
        .zip(breakdown.phases.as_array())
        .enumerate()
        .map(|(idx, (name, cycles))| PhasePoint {
            phase: name.to_string(),
            cycles,
            share_pct: 100.0 * breakdown.share(idx),
        })
        .collect();
    let point = SpanWorkloadPoint {
        workload: shape.name().to_string(),
        fabric: "torus-4x4".to_string(),
        transactions: seq.completed,
        cycles: seq.cycles,
        mean_latency: breakdown.mean_latency(),
        p50_latency: seq.p50,
        p99_latency: seq.p99,
        phases,
        reconciled,
        span_stream_ok,
        exemplars: seq.exemplars.len() as u64,
        slowest_latency: seq.exemplars.first().map_or(0, TxnSpanTree::latency),
    };
    (point, breakdown, seq)
}

/// Time one DMA-burst run under the given span instrumentation.
/// `sink = None` uses the PR 8 constructor (`TxnFabric::new`);
/// `Some(false)` the explicit `NullSpanSink`; `Some(true)` a live
/// collector.
fn timed_run(txns: usize, sink: Option<bool>) -> f64 {
    let (topo, devs) = torus_devices();
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        ExecMode::Sequential,
        NullSink,
    );
    let cfg = TxnConfig {
        metrics_period: METRICS_PERIOD,
        reassembly_slots: 1,
        ..TxnConfig::default()
    };

    // One driver, monomorphized per sink type.
    fn drive<P: SpanSink>(mut fab: TxnFabric<NullSink, P>, devs: &[NodeId], txns: usize) -> f64 {
        let shape = Shape::DmaBurst;
        let start = Instant::now();
        let mut accepted = 0usize;
        let mut guard = 0u64;
        while accepted < txns {
            guard += 1;
            assert!(
                guard < 4_000_000,
                "timed run starved: {accepted}/{txns} accepted, cycle {}, in-flight {}",
                fab.now().raw(),
                fab.in_flight_txns()
            );
            if fab.in_flight_txns() < MAX_OUTSTANDING {
                let (src, dst, op) = shape.request(accepted, devs);
                if fab
                    .submit(src, dst, op)
                    .expect("generated endpoints are valid")
                    .is_some()
                {
                    accepted += 1;
                }
            }
            fab.tick();
        }
        assert!(
            fab.run_until_quiet(2_000_000),
            "timed run failed to quiesce"
        );
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        fab.now().raw() as f64 / secs
    }

    match sink {
        None => drive(TxnFabric::new(net, cfg), &devs, txns),
        Some(false) => drive(TxnFabric::with_spans(net, cfg, NullSpanSink), &devs, txns),
        Some(true) => drive(
            TxnFabric::with_spans(net, cfg, SpanCollector::new(txns.max(1), EXEMPLAR_K)),
            &devs,
            txns,
        ),
    }
}

/// Run the whole trace report. `quick` trades transaction counts and
/// timing repeats for CI wall-clock.
pub fn run(quick: bool) -> TraceBundle {
    let txns = if quick { 40 } else { 150 };

    let (dma, dma_breakdown, dma_run) = workload_point(Shape::DmaBurst, txns);
    let (uniform, uniform_breakdown, _) = workload_point(Shape::UniformHigh, txns);
    let (hotspot, hotspot_breakdown, _) = workload_point(Shape::Hotspot, txns);

    let table = breakdown_table(&[
        (dma.workload.as_str(), &dma_breakdown),
        (uniform.workload.as_str(), &uniform_breakdown),
        (hotspot.workload.as_str(), &hotspot_breakdown),
    ]);

    // Perfetto trace of the DMA point's slowest transactions.
    let perfetto = spans_chrome_trace(&dma_run.exemplars);
    let trace_events = perfetto.matches("\"ph\":").count() as u64;

    // Interleaved paired repeats, minimum overhead — scheduler noise
    // only slows runs down, so the quietest pairing is the closest
    // estimate of the true cost (trajectory convention). Never
    // quick-scaled: the gates compare numbers ~1% apart, which a
    // shorter run cannot resolve. One untimed warmup per variant first,
    // so allocator and cache warmup don't land on whichever variant
    // happens to run first.
    let overhead_txns = 500;
    let repeats: u32 = if quick { 5 } else { 7 };
    for sink in [None, Some(false), Some(true)] {
        let _ = timed_run(overhead_txns, sink);
    }
    let mut base_runs = Vec::new();
    let mut null_runs = Vec::new();
    let mut enabled_runs = Vec::new();
    let mut null_over = Vec::new();
    let mut enabled_over = Vec::new();
    for _ in 0..repeats {
        let base = timed_run(overhead_txns, None);
        let null = timed_run(overhead_txns, Some(false));
        let enabled = timed_run(overhead_txns, Some(true));
        base_runs.push(base);
        null_runs.push(null);
        enabled_runs.push(enabled);
        null_over.push((1.0 - null / base) * 100.0);
        enabled_over.push((1.0 - enabled / null) * 100.0);
    }
    let best = |xs: Vec<f64>| xs.into_iter().fold(f64::MIN, f64::max);
    let overhead = SpanOverheadPoint {
        base_ticks_per_sec: best(base_runs),
        null_ticks_per_sec: best(null_runs),
        enabled_ticks_per_sec: best(enabled_runs),
        null_overhead_pct: null_over.iter().copied().fold(f64::INFINITY, f64::min),
        enabled_overhead_pct: enabled_over.iter().copied().fold(f64::INFINITY, f64::min),
        repeats,
    };

    TraceBundle {
        report: TraceReport {
            bench: "noc-bench trace-report".to_string(),
            quick,
            workloads: vec![dma, uniform, hotspot],
            overhead,
            trace_events,
        },
        table,
        perfetto,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trace_report_reconciles_and_renders() {
        let bundle = run(true);
        let r = &bundle.report;
        assert_eq!(r.workloads.len(), 3);
        for w in &r.workloads {
            assert_eq!(w.transactions, 40, "{}: transaction census", w.workload);
            assert!(w.reconciled, "{}: unattributed cycles", w.workload);
            assert!(w.span_stream_ok, "{}: span stream diverged", w.workload);
            assert_eq!(w.phases.len(), PHASE_NAMES.len());
            assert_eq!(w.exemplars, EXEMPLAR_K as u64);
            assert!(w.slowest_latency >= w.p50_latency, "{}: tail", w.workload);
            let share: f64 = w.phases.iter().map(|p| p.share_pct).sum();
            assert!((share - 100.0).abs() < 1e-6, "{}: shares", w.workload);
            assert!(
                w.phases.iter().any(|p| p.phase == "ring" && p.cycles > 0),
                "{}: no ring time",
                w.workload
            );
        }
        // Hotspot concentrates all writes on one destination. With
        // reassembly credits bounding admission per destination, that
        // pressure shows up as staging wait (headers queue for the
        // single credit) rather than in-network recirculation.
        let share = |name: &str, phase: &str| {
            r.workloads
                .iter()
                .find(|w| w.workload == name)
                .and_then(|w| w.phases.iter().find(|p| p.phase == phase))
                .map(|p| p.share_pct)
                .unwrap_or(0.0)
        };
        assert!(
            share("hotspot", "staging") >= share("uniform_high", "staging"),
            "hotspot should queue on the destination credit at least as much as uniform_high"
        );
        assert!(bundle.table.contains("dma_burst"), "{}", bundle.table);
        assert!(bundle.table.contains("staging"), "{}", bundle.table);
        assert!(r.trace_events > 0);
        assert!(bundle.perfetto.starts_with("{\"traceEvents\":["));
        let json = serde_json::to_string_pretty(&r).expect("serializes");
        assert!(json.contains("\"null_overhead_pct\""));
    }
}
