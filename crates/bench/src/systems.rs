//! System factories shared by the Server-CPU experiments: this work's
//! multi-ring NoC plus the two commercial-style baselines, all exposed
//! through the same `Interconnect`/`ChiTransport` interfaces with
//! normalized memory parameters (the paper normalizes DDR channel count
//! and frequency across systems).

use noc_baseline::{BufferedMesh, HubConfig, HubSpoke, MeshConfig, RingAdapter};
use noc_chi::{CoherentSystem, LlcParams, MemoryParams, SystemSpec};
use noc_core::NodeId;
use noc_server_cpu::experiments::{server_interconnect, ServerEndpoints};
use noc_server_cpu::{ServerCpu, ServerCpuConfig};

/// Endpoint partition of a generic system.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Requester endpoints.
    pub requesters: Vec<usize>,
    /// Home-node endpoints (coherence experiments only).
    pub home_nodes: Vec<usize>,
    /// Memory endpoints.
    pub memories: Vec<usize>,
    /// Physical CPU cores represented by one requester endpoint.
    pub cores_per_requester: usize,
}

/// This work: the Server-CPU multi-ring NoC as a raw interconnect
/// (clusters then DDRs), with the given cluster count per compute die.
pub fn ours(clusters_per_ccd: usize) -> (RingAdapter, Partition) {
    let cfg = ServerCpuConfig {
        clusters_per_ccd,
        ..Default::default()
    };
    let (ic, eps): (RingAdapter, ServerEndpoints) =
        server_interconnect(&cfg).expect("server config builds");
    let part = Partition {
        requesters: eps.clusters.clone(),
        home_nodes: Vec::new(),
        memories: eps.ddrs.clone(),
        cores_per_requester: 4,
    };
    (ic, part)
}

/// Intel-like monolithic buffered mesh (Ice-Lake-SP style): a 7×7 mesh
/// hosting 28 cores, 8 home nodes and 8 memory controllers on one die.
pub fn intel_like() -> (BufferedMesh, Partition) {
    let mesh = BufferedMesh::new(MeshConfig {
        k: 7,
        buf_cap: 4,
        router_delay: 3,
        delivery_cap: 8,
    });
    // Cores on the first 28 endpoints, HNs next, memories spread last.
    let part = Partition {
        requesters: (0..28).collect(),
        home_nodes: (28..36).collect(),
        memories: (36..44).collect(),
        cores_per_requester: 1,
    };
    (mesh, part)
}

/// AMD-like chiplet hub-and-spoke (Milan style): 8 compute chiplets of
/// 8 cores around a central switched IO die; home nodes and DDR sit on
/// IO-die-attached chiplets, so every memory access crosses the hub.
pub fn amd_like() -> (HubSpoke, Partition) {
    let hub = HubSpoke::new(HubConfig {
        chiplets: 10,
        per_chiplet: 8,
        ..Default::default()
    });
    let part = Partition {
        requesters: (0..64).collect(),  // chiplets 0..8
        home_nodes: (64..72).collect(), // chiplet 8
        memories: (72..80).collect(),   // chiplet 9
        cores_per_requester: 1,
    };
    (hub, part)
}

/// Normalized memory model shared by every system.
pub fn mem_params() -> MemoryParams {
    MemoryParams::ddr4()
}

/// Build a CHI coherent system over any transport given a partition.
pub fn coherent<T: noc_chi::system::ChiTransport>(
    transport: T,
    part: &Partition,
) -> CoherentSystem<T> {
    CoherentSystem::new(
        transport,
        SystemSpec {
            requesters: part.requesters.iter().map(|&i| NodeId(i as u32)).collect(),
            home_nodes: part.home_nodes.iter().map(|&i| NodeId(i as u32)).collect(),
            memories: part.memories.iter().map(|&i| NodeId(i as u32)).collect(),
            mem_params: mem_params(),
            llc: LlcParams::default(),
            line_bytes: 64,
            local_hit_latency: 10,
            hn_latency: 12,
            snoop_latency: 6,
        },
    )
}

/// This work as a full coherent Server-CPU (for Table 5).
pub fn ours_coherent() -> ServerCpu {
    ServerCpu::build(ServerCpuConfig::default()).expect("default server builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_baseline::Interconnect;

    #[test]
    fn factories_have_consistent_partitions() {
        let (ic, p) = ours(12);
        assert_eq!(p.requesters.len(), 24);
        assert_eq!(p.memories.len(), 8);
        assert!(p
            .requesters
            .iter()
            .chain(&p.memories)
            .all(|&e| e < ic.endpoints()));

        let (mesh, p) = intel_like();
        assert!(p.memories.iter().all(|&e| e < mesh.endpoints()));
        assert_eq!(p.requesters.len(), 28);

        let (hub, p) = amd_like();
        assert!(p.home_nodes.iter().all(|&e| e < hub.endpoints()));
        assert_eq!(p.requesters.len(), 64);
    }
}
