//! Figures 12 & 13: SPECint-2017/2006 scores, normalized against the
//! baselines.
//!
//! Methodology (the substitution documented in DESIGN.md): SPECint
//! binaries are replaced by analytic per-benchmark profiles (MPKI,
//! base CPI, MLP). Single-core scores use each system's *measured*
//! unloaded memory latency. Package scores solve the closed-loop fixed
//! point between per-core demand and the system's *measured*
//! latency-vs-load curve, then multiply by core count.

use crate::report::{fnum, ExperimentResult, Scale};
use crate::systems::{self, Partition};
use noc_baseline::{Interconnect, MemHarness, MemHarnessConfig};
use noc_server_cpu::experiments::{latency_vs_noise, LatencyPoint};
use noc_workloads::{geomean_ratio, specint2006, specint2017, SpecProfile};

/// Measured latency profile of a system: unloaded latency plus a
/// latency-vs-rate curve (rate = requests/cycle per requester).
#[derive(Debug, Clone)]
pub struct LatencyProfile {
    /// System label.
    pub name: String,
    /// Latency-vs-noise points, ascending rate (index 0 = unloaded).
    pub curve: Vec<LatencyPoint>,
    /// Physical cores in the package.
    pub cores: usize,
    /// Cores represented by one harness requester.
    pub cores_per_requester: usize,
}

impl LatencyProfile {
    /// Unloaded memory round-trip latency.
    pub fn unloaded(&self) -> f64 {
        self.curve.first().expect("non-empty curve").probe_latency
    }

    /// Interpolate latency at a per-requester rate (clamped to curve).
    pub fn latency_at(&self, rate: f64) -> f64 {
        let pts = &self.curve;
        if rate <= pts[0].noise_rate {
            return pts[0].probe_latency;
        }
        for w in pts.windows(2) {
            if rate <= w[1].noise_rate {
                let span = w[1].noise_rate - w[0].noise_rate;
                let frac = if span > 0.0 {
                    (rate - w[0].noise_rate) / span
                } else {
                    0.0
                };
                return w[0].probe_latency + frac * (w[1].probe_latency - w[0].probe_latency);
            }
        }
        pts.last().expect("non-empty").probe_latency
    }

    /// Package-level fixed point for one benchmark: cores drive load,
    /// load drives latency, latency drives IPC. The measured curve's
    /// x-axis is a closed-loop duty ratio, so a demand of `r`
    /// requests/cycle at round-trip `lat` maps to duty `r × lat`.
    pub fn package_latency(&self, p: &SpecProfile) -> f64 {
        let mut lat = self.unloaded();
        for _ in 0..25 {
            let per_core = p.ipc(lat) * p.mpki_l3 / 1000.0;
            let demand = per_core * self.cores_per_requester as f64;
            let duty = (demand * lat).min(1.0);
            let next = self.latency_at(duty);
            lat = 0.5 * lat + 0.5 * next;
        }
        lat
    }
}

/// Measure a system's latency profile.
pub fn profile<I, F>(
    name: &str,
    factory: F,
    cores: usize,
    cpr: usize,
    scale: Scale,
) -> LatencyProfile
where
    I: Interconnect,
    F: Fn() -> (MemHarness<I>, usize, Vec<usize>),
{
    let rates: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.05, 0.15, 0.4],
        Scale::Full => vec![0.0, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.8],
    };
    let curve = latency_vs_noise(
        factory,
        &rates,
        0.67,
        scale.pick(300, 1_500),
        scale.pick(2_000, 8_000),
    );
    LatencyProfile {
        name: name.to_string(),
        curve,
        cores,
        cores_per_requester: cpr,
    }
}

fn harness_factory_ours(
    clusters: usize,
) -> impl Fn() -> (MemHarness<noc_baseline::RingAdapter>, usize, Vec<usize>) {
    move || {
        let (ic, p) = systems::ours(clusters);
        let mut noise = p.requesters.clone();
        let probe = noise.remove(0);
        (
            MemHarness::new(
                ic,
                p.memories.clone(),
                MemHarnessConfig {
                    mem: systems::mem_params(),
                    ..Default::default()
                },
            ),
            probe,
            noise,
        )
    }
}

/// Latency profiles of all compared systems.
pub fn all_profiles(scale: Scale) -> Vec<LatencyProfile> {
    let mut out = Vec::new();
    out.push(profile(
        "this-work-96c",
        harness_factory_ours(12),
        96,
        4,
        scale,
    ));
    out.push(profile(
        "intel-like-28c",
        || {
            let (ic, p) = systems::intel_like();
            let mut noise = p.requesters.clone();
            let probe = noise.remove(0);
            (
                MemHarness::new(
                    ic,
                    p.memories.clone(),
                    MemHarnessConfig {
                        mem: systems::mem_params(),
                        ..Default::default()
                    },
                ),
                probe,
                noise,
            )
        },
        28,
        1,
        scale,
    ));
    out.push(profile(
        "amd-like-64c",
        || {
            let (ic, p) = systems::amd_like();
            let mut noise = p.requesters.clone();
            let probe = noise.remove(0);
            (
                MemHarness::new(
                    ic,
                    p.memories.clone(),
                    MemHarnessConfig {
                        mem: systems::mem_params(),
                        ..Default::default()
                    },
                ),
                probe,
                noise,
            )
        },
        64,
        1,
        scale,
    ));
    // Scaled-down variants of this work for fair core-count matches.
    out.push(profile(
        "this-work-28c",
        harness_factory_ours(4), // 2 dies × 4 clusters × 4 cores = 32 ≈ 28
        32,
        4,
        scale,
    ));
    out.push(profile(
        "this-work-64c",
        harness_factory_ours(8),
        64,
        4,
        scale,
    ));
    out
}

const FREQ_GHZ: f64 = 3.0;

fn suite_scores(
    suite: &[SpecProfile],
    profiles: &[LatencyProfile],
) -> Vec<(String, Vec<f64>, Vec<f64>)> {
    suite
        .iter()
        .map(|p| {
            let single: Vec<f64> = profiles
                .iter()
                .map(|m| p.score(m.unloaded(), FREQ_GHZ))
                .collect();
            let pkg: Vec<f64> = profiles
                .iter()
                .map(|m| p.score(m.package_latency(p), FREQ_GHZ) * m.cores as f64)
                .collect();
            (p.name.to_string(), single, pkg)
        })
        .collect()
}

fn build_result(
    id: &str,
    title: &str,
    suite: &[SpecProfile],
    profiles: &[LatencyProfile],
) -> ExperimentResult {
    let mut r = ExperimentResult::new(id, title).with_header(vec![
        "benchmark",
        "1c ours/intel",
        "1c ours/amd",
        "pkg ours/intel",
        "pkg ours/amd",
        "pkg-scaled28 ours/intel",
        "pkg-scaled64 ours/amd",
    ]);
    // Profile order: ours-96, intel-28, amd-64, ours-28, ours-64.
    let scores = suite_scores(suite, profiles);
    type Score = (String, Vec<f64>, Vec<f64>);
    let col = |v: &[Score], f: &dyn Fn(&Score) -> f64| v.iter().map(f).collect::<Vec<f64>>();
    for (name, single, pkg) in &scores {
        r.push_row(vec![
            name.clone(),
            fnum(single[0] / single[1], 2),
            fnum(single[0] / single[2], 2),
            fnum(pkg[0] / pkg[1], 2),
            fnum(pkg[0] / pkg[2], 2),
            fnum(pkg[3] / pkg[1], 2),
            fnum(pkg[4] / pkg[2], 2),
        ]);
    }
    let ones = vec![1.0; scores.len()];
    let g1i = geomean_ratio(&col(&scores, &|s| s.1[0] / s.1[1]), &ones);
    let g1a = geomean_ratio(&col(&scores, &|s| s.1[0] / s.1[2]), &ones);
    let gpi = geomean_ratio(&col(&scores, &|s| s.2[0] / s.2[1]), &ones);
    let gpa = geomean_ratio(&col(&scores, &|s| s.2[0] / s.2[2]), &ones);
    let gsi = geomean_ratio(&col(&scores, &|s| s.2[3] / s.2[1]), &ones);
    let gsa = geomean_ratio(&col(&scores, &|s| s.2[4] / s.2[2]), &ones);
    r.note(format!(
        "geomean single-core: {g1i:.2}x intel-like, {g1a:.2}x amd-like — {}",
        if g1i > 1.0 && g1a > 1.0 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(format!(
        "geomean package: {gpi:.2}x intel-like (96c vs 28c), {gpa:.2}x amd-like (96c vs 64c) — {}",
        if gpi > 1.0 && gpa > 1.0 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(format!(
        "geomean scaled-to-same-cores: {gsi:.2}x intel-like (32c vs 28c), {gsa:.2}x amd-like (64c vs 64c) — {}",
        if gsi > 1.0 && gsa > 1.0 {
            "PASS (advantage persists at equal core counts)"
        } else {
            "FAIL"
        }
    ));
    // Tail latencies behind the scores: the mean the model consumes
    // hides congestion the percentiles expose.
    for m in profiles {
        let p = m.curve.first().expect("non-empty curve");
        let q = m.curve.last().expect("non-empty curve");
        r.note(format!(
            "{}: unloaded mean {:.0} (p50 {} / p99 {}), max-rate mean {:.0} (p50 {} / p99 {})",
            m.name, p.probe_latency, p.p50, p.p99, q.probe_latency, q.p50, q.p99
        ));
    }
    r
}

/// Reproduce Figure 12 (SPECint-2017).
pub fn run_2017(scale: Scale) -> ExperimentResult {
    let profiles = all_profiles(scale);
    build_result(
        "fig12",
        "SPECint-2017 normalized scores (analytic model on measured latencies)",
        &specint2017(),
        &profiles,
    )
}

/// Reproduce Figure 13 (SPECint-2006).
pub fn run_2006(scale: Scale) -> ExperimentResult {
    let profiles = all_profiles(scale);
    build_result(
        "fig13",
        "SPECint-2006 normalized scores (analytic model on measured latencies)",
        &specint2006(),
        &profiles,
    )
}

/// Shared helper for Table 6: the ssj-like throughput profile.
pub fn ssj_profile() -> SpecProfile {
    SpecProfile {
        name: "ssj-ops",
        suite: noc_workloads::SpecSuite::Power2008,
        mpki_l3: 2.5,
        base_cpi: 0.7,
        mlp: 1.8,
    }
}

/// Expose partitions for reuse (kept for API symmetry).
pub fn partitions() -> (Partition, Partition, Partition) {
    (
        systems::ours(12).1,
        systems::intel_like().1,
        systems::amd_like().1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(noise_rate: f64, probe_latency: f64) -> LatencyPoint {
        LatencyPoint {
            noise_rate,
            probe_latency,
            p50: probe_latency as u64,
            p95: probe_latency as u64,
            p99: probe_latency as u64,
            max: probe_latency as u64,
        }
    }

    #[test]
    fn latency_profile_interpolates() {
        let lp = LatencyProfile {
            name: "x".into(),
            curve: vec![pt(0.0, 100.0), pt(0.5, 200.0)],
            cores: 4,
            cores_per_requester: 1,
        };
        assert_eq!(lp.unloaded(), 100.0);
        assert!((lp.latency_at(0.25) - 150.0).abs() < 1e-9);
        assert_eq!(lp.latency_at(2.0), 200.0);
    }

    #[test]
    fn package_fixed_point_converges() {
        let lp = LatencyProfile {
            name: "x".into(),
            curve: vec![pt(0.0, 100.0), pt(1.0, 400.0)],
            cores: 64,
            cores_per_requester: 1,
        };
        let p = &specint2006()[3]; // mcf: memory bound
        let lat = lp.package_latency(p);
        assert!(lat > 100.0 && lat < 400.0, "lat {lat}");
    }

    #[test]
    #[ignore = "multi-minute at full scale; run via repro binary"]
    fn fig12_full() {
        let r = run_2017(Scale::Full);
        assert!(r.notes.iter().filter(|n| n.ends_with("FAIL")).count() == 0);
    }
}
