//! Table 4 + Figure 6: physical wire-fabric parameters and their
//! floorplan consequences ("distance per cycle" as the co-design
//! metric, §3.3).

use crate::report::{fnum, ExperimentResult, Scale};
use noc_fabric::{best_fabric, frequency_sweep, FloorplanSpec, LinkBudget, WireFabric};

/// The chiplet geometry used for the floorplan comparison (a
/// compute-die-sized 20×15 mm chiplet with a 512-bit, 2-lane ring).
pub fn compute_die_spec() -> FloorplanSpec {
    FloorplanSpec {
        width_mm: 20.0,
        height_mm: 15.0,
        ring_lanes: 2,
        bus_bits: 512,
        base_pitch_um: 0.08,
        station_area_mm2: 0.05,
        freq_ghz: 3.0,
    }
}

/// Reproduce Table 4 (fabric parameters) and the Figure 6 consequences.
pub fn run(_scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table04",
        "Physical implementation: high-dense vs high-speed wire fabric",
    )
    .with_header(vec![
        "fabric",
        "metal",
        "width",
        "pitch",
        "bus width",
        "jump @3GHz (um)",
        "stride (um)",
        "over",
        "ring stations (35mm lap)",
        "lap latency (cyc)",
        "net blocked (mm2)",
        "GB/s per mm2",
    ]);
    let spec = compute_die_spec();
    let mut estimates = Vec::new();
    for fabric in [WireFabric::high_dense(), WireFabric::high_speed()] {
        let est = spec.estimate(&fabric);
        r.push_row(vec![
            fabric.name().to_string(),
            fabric.metal().to_string(),
            format!("x{}", fabric.rel_width()),
            format!("x{}", fabric.rel_pitch()),
            format!("x{}", fabric.rel_bus_width()),
            fnum(fabric.jump_um(3.0), 0),
            fnum(fabric.stride_um(), 0),
            format!("{:?}", fabric.over()),
            est.stations.to_string(),
            est.lap_latency_cycles.to_string(),
            fnum(est.net_blocked_mm2(), 2),
            fnum(est.bandwidth_per_mm2(), 1),
        ]);
        estimates.push(est);
    }
    let hd = &estimates[0];
    let hs = &estimates[1];
    r.note(format!(
        "distance per cycle: high-speed {:.2} mm vs high-dense {:.2} mm (3x) — {}",
        hs.distance_per_cycle_mm,
        hd.distance_per_cycle_mm,
        if hs.distance_per_cycle_mm > hd.distance_per_cycle_mm {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(format!(
        "area efficiency: high-speed {:.1} GB/s/mm2 vs high-dense {:.1} — high-speed wins: {}",
        hs.bandwidth_per_mm2(),
        hd.bandwidth_per_mm2(),
        if hs.bandwidth_per_mm2() > hd.bandwidth_per_mm2() {
            "PASS (matches §3.3: high-speed 'is a better choice for NoC')"
        } else {
            "FAIL"
        }
    ));
    // A single cross-die link budget, for the record.
    let b_hs = LinkBudget::for_length(&WireFabric::high_speed(), 18_000.0, 3.0);
    let b_hd = LinkBudget::for_length(&WireFabric::high_dense(), 18_000.0, 3.0);
    r.note(format!(
        "an 18 mm die crossing costs {} cycles on high-speed wire vs {} on high-dense",
        b_hs.cycles, b_hd.cycles
    ));
    // The §3.3 decision procedure, run across the frequency axis.
    let winner = best_fabric(&spec);
    let sweep = frequency_sweep(&spec, &[1.0, 2.0, 3.0, 4.0]);
    let stable = sweep.iter().all(|(_, s)| s.fabric == winner.fabric);
    r.note(format!(
        "co-design chooser picks '{}' at the 3 GHz design point{} — {}",
        winner.fabric,
        if stable { " (and at 1-4 GHz)" } else { "" },
        if winner.fabric == "high-speed" {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_reproduces() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(
            r.notes.iter().filter(|n| n.ends_with("FAIL")).count(),
            0,
            "no shape check may fail: {:?}",
            r.notes
        );
        assert!(r.notes.iter().filter(|n| n.contains("PASS")).count() >= 3);
    }
}
