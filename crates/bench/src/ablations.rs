//! Ablations of the design choices DESIGN.md calls out: SWAP deadlock
//! resolution (Figure 9), half vs full rings, the bufferless multi-ring
//! against a buffered mesh and a single ring, I-tag thresholds, and
//! ring-count scaling of the AI mesh.

use crate::report::{fnum, ExperimentResult, Scale};
use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};
use noc_baseline::{BufferedMesh, Interconnect, MeshConfig, RingAdapter};
use noc_core::{
    BridgeConfig, FlitClass, Network, NetworkConfig, NodeId, RingKind, TopologyBuilder,
};

/// Figure 9 scenario: adversarial cross-ring saturation with and
/// without SWAP.
fn cross_ring_flood(swap: bool) -> (Network, Vec<NodeId>, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let d0 = b.add_chiplet("d0");
    let d1 = b.add_chiplet("d1");
    let r0 = b.add_ring(d0, RingKind::Full, 6).expect("ring");
    let r1 = b.add_ring(d1, RingKind::Full, 6).expect("ring");
    let a: Vec<_> = (0..4)
        .map(|i| b.add_node(format!("a{i}"), r0, i as u16).expect("node"))
        .collect();
    let z: Vec<_> = (0..4)
        .map(|i| b.add_node(format!("z{i}"), r1, i as u16).expect("node"))
        .collect();
    let cfg = BridgeConfig::l2()
        .with_latency(2)
        .with_buffer_cap(2)
        .with_width(1)
        .with_swap(swap)
        .with_deadlock_threshold(48)
        .with_reserved_cap(2);
    b.add_bridge(cfg, r0, 5, r1, 5).expect("bridge");
    let net_cfg = NetworkConfig {
        inject_queue_cap: 8,
        eject_queue_cap: 2,
        itag_threshold: 8,
        ..NetworkConfig::default()
    };
    (Network::new(b.build().expect("valid"), net_cfg), a, z)
}

fn run_flood(net: &mut Network, a: &[NodeId], z: &[NodeId], cycles: u64) -> u64 {
    for rr in 0..cycles as usize {
        for (i, &src) in a.iter().enumerate() {
            let _ = net.enqueue(src, z[(i + rr) % z.len()], FlitClass::Data, 64, 0);
        }
        for (i, &src) in z.iter().enumerate() {
            let _ = net.enqueue(src, a[(i + rr) % a.len()], FlitClass::Data, 64, 0);
        }
        net.tick();
        for &n in a.iter().chain(z) {
            while net.pop_delivered(n).is_some() {}
        }
    }
    net.stats().delivered.get()
}

/// Ablation: SWAP on/off under the Figure 9 deadlock scenario.
pub fn run_swap(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(8_000, 30_000);
    let mut r = ExperimentResult::new(
        "ablation_swap",
        "Figure 9 / §4.4: SWAP deadlock resolution under cross-ring saturation",
    )
    .with_header(vec![
        "configuration",
        "delivered flits",
        "throughput (flits/kcycle)",
        "DRM entries",
        "swaps",
    ]);
    let mut delivered = Vec::new();
    for swap in [true, false] {
        let (mut net, a, z) = cross_ring_flood(swap);
        let d = run_flood(&mut net, &a, &z, cycles);
        delivered.push(d);
        r.push_row(vec![
            if swap {
                "SWAP enabled"
            } else {
                "SWAP disabled"
            }
            .to_string(),
            d.to_string(),
            fnum(d as f64 / cycles as f64 * 1000.0, 1),
            net.stats().drm_entries.get().to_string(),
            net.stats().swaps.get().to_string(),
        ]);
    }
    let ratio = delivered[0] as f64 / delivered[1].max(1) as f64;
    r.note(format!(
        "SWAP sustains {ratio:.1}x the throughput of the SWAP-less configuration once the \
         cross-ring dependency cycle forms — {}",
        if ratio > 3.0 {
            "PASS (deadlock broken)"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: half ring vs full ring at equal device count.
pub fn run_half_vs_full(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(5_000, 20_000);
    let build = |kind: RingKind| -> RingAdapter {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let ring = b.add_ring(die, kind, 12).expect("ring");
        let eps: Vec<NodeId> = (0..12)
            .map(|i| b.add_node(format!("n{i}"), ring, i).expect("node"))
            .collect();
        RingAdapter::new(
            format!("{kind:?}-ring"),
            Network::new(b.build().expect("valid"), NetworkConfig::default()),
            eps,
        )
    };
    let mut r = ExperimentResult::new(
        "ablation_half_full",
        "§4.1.3: half ring vs full ring (12 devices, uniform traffic)",
    )
    .with_header(vec![
        "ring kind",
        "delivered",
        "mean latency (cyc)",
        "bytes/cycle",
    ]);
    let mut stats = Vec::new();
    for kind in [RingKind::Half, RingKind::Full] {
        let mut ic = build(kind);
        let mut gen =
            noc_workloads::TrafficGen::new(12, 0.25, noc_workloads::Pattern::UniformRandom, 0.5, 7);
        for _ in 0..cycles {
            for (s, d, class, bytes) in gen.cycle_events() {
                let _ = ic.offer(s, d, class, bytes, 0);
            }
            ic.tick();
            for e in 0..12 {
                while ic.pop_delivered(e).is_some() {}
            }
        }
        stats.push((
            ic.delivered_count(),
            ic.mean_latency(),
            ic.delivered_bytes(),
        ));
        r.push_row(vec![
            format!("{kind:?}"),
            ic.delivered_count().to_string(),
            fnum(ic.mean_latency(), 1),
            fnum(ic.delivered_bytes() as f64 / cycles as f64, 1),
        ]);
    }
    r.note(format!(
        "full ring: {:.1}x the throughput and {:.0}% of the latency of the half ring — {}",
        stats[1].0 as f64 / stats[0].0 as f64,
        stats[1].1 / stats[0].1 * 100.0,
        if stats[1].0 > stats[0].0 && stats[1].1 < stats[0].1 {
            "PASS ('higher capacity and throughput at the cost of hardware area')"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: bufferless multi-ring vs buffered mesh vs single ring at
/// 36 endpoints under uniform traffic.
pub fn run_vs_alternatives(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(5_000, 20_000);
    let loads = [0.05, 0.15, 0.3];
    let mut r = ExperimentResult::new(
        "ablation_alternatives",
        "Bufferless multi-ring vs buffered mesh vs single ring (36 endpoints)",
    )
    .with_header(vec![
        "design",
        "load (flits/node/cyc)",
        "delivered",
        "mean latency",
    ]);

    // Multi-ring: 6 rings × 6 devices, fully bridged neighbours.
    let multi_ring = || -> RingAdapter {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let rings: Vec<_> = (0..6)
            .map(|_| b.add_ring(die, RingKind::Full, 8).expect("ring"))
            .collect();
        let mut eps = Vec::new();
        for (ri, &ring) in rings.iter().enumerate() {
            for i in 0..6u16 {
                eps.push(b.add_node(format!("n{ri}_{i}"), ring, i).expect("node"));
            }
        }
        for w in 0..rings.len() {
            let next = (w + 1) % rings.len();
            b.add_bridge(
                BridgeConfig::l1().with_width(2),
                rings[w],
                6,
                rings[next],
                7,
            )
            .expect("bridge");
        }
        RingAdapter::new(
            "multi-ring",
            Network::new(b.build().expect("valid"), NetworkConfig::default()),
            eps,
        )
    };

    let mut summary: Vec<(String, f64, f64)> = Vec::new();
    for &load in &loads {
        let mut drive = |name: &str, ic: &mut dyn Interconnect| {
            let n = ic.endpoints().min(36);
            let mut gen = noc_workloads::TrafficGen::new(
                n,
                load,
                noc_workloads::Pattern::UniformRandom,
                0.5,
                11,
            );
            for _ in 0..cycles {
                for (s, d, class, bytes) in gen.cycle_events() {
                    let _ = ic.offer(s, d, class, bytes, 0);
                }
                ic.tick();
                for e in 0..n {
                    while ic.pop_delivered(e).is_some() {}
                }
            }
            r.push_row(vec![
                name.to_string(),
                fnum(load, 2),
                ic.delivered_count().to_string(),
                fnum(ic.mean_latency(), 1),
            ]);
            summary.push((name.to_string(), load, ic.mean_latency()));
        };
        drive("multi-ring (this work)", &mut multi_ring());
        drive(
            "buffered mesh",
            &mut BufferedMesh::new(MeshConfig {
                k: 6,
                ..Default::default()
            }),
        );
        drive(
            "single ring",
            &mut RingAdapter::single_ring(36, NetworkConfig::default()),
        );
    }
    let low_load: Vec<_> = summary.iter().filter(|s| s.1 == loads[0]).collect();
    let ours = low_load
        .iter()
        .find(|s| s.0.contains("multi-ring"))
        .expect("present")
        .2;
    let mesh = low_load
        .iter()
        .find(|s| s.0.contains("mesh"))
        .expect("present")
        .2;
    let single = low_load
        .iter()
        .find(|s| s.0.contains("single"))
        .expect("present")
        .2;
    r.note(format!(
        "low-load latency: multi-ring {ours:.1} vs buffered mesh {mesh:.1} vs single ring {single:.1} — {}",
        if ours < mesh && ours < single {
            "PASS (multi-ring 'can decrease average latency when the number of agents rises', §3.4.2)"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: I-tag threshold vs victim progress under a
/// starvation-prone pattern (two upstream aggressors monopolize the
/// lane; without I-tags the downstream victim starves outright).
pub fn run_itag_threshold(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(5_000, 20_000);
    let mut r = ExperimentResult::new(
        "ablation_itag",
        "I-tag starvation threshold vs victim progress",
    )
    .with_header(vec![
        "itag threshold",
        "victim flits delivered",
        "victim mean latency",
        "itags placed",
    ]);
    let mut progress = Vec::new();
    for threshold in [4u32, 8, 32, 1_000_000] {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let ring = b.add_ring(die, RingKind::Full, 12).expect("ring");
        let a0 = b.add_node("agg0", ring, 0).expect("node");
        let a1 = b.add_node("agg1", ring, 1).expect("node");
        let victim = b.add_node("victim", ring, 5).expect("node");
        let sink = b.add_node("sink", ring, 6).expect("node");
        let mut net = Network::new(
            b.build().expect("valid"),
            NetworkConfig {
                itag_threshold: threshold,
                ..NetworkConfig::default()
            },
        );
        let mut victim_lat = noc_sim::Histogram::new("victim");
        for _ in 0..cycles {
            let _ = net.enqueue(a0, sink, FlitClass::Data, 64, 0);
            let _ = net.enqueue(a1, sink, FlitClass::Data, 64, 0);
            let _ = net.enqueue(victim, sink, FlitClass::Request, 64, 1);
            net.tick();
            while let Some(f) = net.pop_delivered(sink) {
                if f.src == victim {
                    victim_lat.record(f.total_latency(net.now()));
                }
            }
        }
        progress.push(victim_lat.count());
        r.push_row(vec![
            if threshold > 100_000 {
                "off".to_string()
            } else {
                threshold.to_string()
            },
            victim_lat.count().to_string(),
            fnum(victim_lat.mean(), 1),
            net.stats().itags_placed.get().to_string(),
        ]);
    }
    r.note(format!(
        "starvation freedom: victim delivers {} flits with threshold 8 vs {} with I-tags          disabled (upstream aggressors monopolize the lane) — {}",
        progress[1],
        progress[3],
        if progress[1] > 5 * progress[3].max(1) {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: AI-mesh ring-count scaling (§3.4.2 scalability claim).
pub fn run_ring_scaling(scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ablation_scaling",
        "AI-mesh bandwidth vs vertical-ring count (64 cores fixed)",
    )
    .with_header(vec!["v-rings", "cores/ring", "total TB/s"]);
    let mut totals = Vec::new();
    for (v, c) in [(4usize, 16usize), (8, 8), (16, 4)] {
        let cfg = AiConfig {
            v_rings: v,
            cores_per_vring: c,
            ..Default::default()
        };
        let proc = AiProcessor::build(cfg).expect("builds");
        let mut e = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
        let rep = e
            .run(scale.pick(1_000, 3_000), scale.pick(3_000, 8_000))
            .expect("AI engine run");
        totals.push(rep.total_tbs());
        r.push_row(vec![v.to_string(), c.to_string(), fnum(rep.total_tbs(), 1)]);
    }
    r.note(format!(
        "more, shorter rings raise bandwidth at fixed core count ({:.1} → {:.1} TB/s) — {}",
        totals[0],
        totals[2],
        if totals[2] > totals[0] {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: the Fig. 8B LLC-directory read path vs direct core→L2
/// addressing — the directory hop's bandwidth/latency cost.
pub fn run_llc_path(scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "ablation_llc",
        "Fig. 8B read path: via LLC directory vs direct L2 addressing",
    )
    .with_header(vec!["read path", "total TB/s", "read TB/s"]);
    let mut totals = Vec::new();
    for via_llc in [false, true] {
        let proc = AiProcessor::build(AiConfig::default()).expect("builds");
        let mut e = AiEngine::new(
            proc,
            AiTraffic {
                via_llc,
                ..AiTraffic::from_ratio(1, 1)
            },
        );
        let rep = e
            .run(scale.pick(1_000, 3_000), scale.pick(3_000, 8_000))
            .expect("AI engine run");
        totals.push(rep.total_tbs());
        r.push_row(vec![
            if via_llc {
                "via LLC (Paths 1→2)"
            } else {
                "direct"
            }
            .to_string(),
            crate::report::fnum(rep.total_tbs(), 1),
            crate::report::fnum(rep.read_tbs(), 1),
        ]);
    }
    r.note(format!(
        "directory hop costs {:.0}% of total bandwidth ({:.1} → {:.1} TB/s); the LLC keeps \
         its L2 partners on its own ring so no route exceeds one ring change — {}",
        (1.0 - totals[1] / totals[0]) * 100.0,
        totals[0],
        totals[1],
        if totals[1] > 0.5 * totals[0] {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: multi-package scale-up over PA SerDes (§4.2's 4P system) —
/// cross-package coherence latency by package count.
pub fn run_multi_package(scale: Scale) -> ExperimentResult {
    use noc_chi::{LineAddr, ReadKind};
    use noc_server_cpu::{ServerCpu, ServerCpuConfig};
    let lines = scale.pick(6, 24);
    let mut r = ExperimentResult::new(
        "ablation_4p",
        "§4.2 scale-up: cross-package dirty-read latency via PA SerDes",
    )
    .with_header(vec![
        "packages",
        "total cores",
        "same-package read (cyc)",
        "cross-package read (cyc)",
    ]);
    let mut cross = Vec::new();
    for packages in [1usize, 2, 4] {
        let cfg = ServerCpuConfig {
            packages,
            clusters_per_ccd: 4,
            hn_per_ccd: 2,
            ddr_per_ccd: 2,
            ..Default::default()
        };
        let cores = cfg.cores();
        let mut s = ServerCpu::build(cfg).expect("builds");
        let per_pkg = 2 * 4;
        let writer = s.map.clusters[0];
        let local_reader = s.map.clusters[1];
        let remote_reader = if packages > 1 {
            Some(s.map.clusters[per_pkg])
        } else {
            None
        };
        // Keep the tested lines homed in the writer's package, as the
        // paper's setup does: otherwise "same-package" reads may chase a
        // home node behind the SerDes.
        let local_hns: Vec<_> = s.map.home_nodes[..2 * 2].to_vec();
        let addrs =
            noc_server_cpu::experiments::lines_homed_at(&s.sys, &local_hns, lines as usize, 0x9000);
        let mut local_sum = 0u64;
        let mut remote_sum = 0u64;
        for &addr in &addrs {
            let _ = LineAddr(0); // keep the import used in all cfgs
            let t = s.sys.write(writer, addr);
            s.sys.run_until_complete(t, 500_000).expect("write");
            let t = s.sys.read(local_reader, addr, ReadKind::Shared);
            local_sum += s
                .sys
                .run_until_complete(t, 500_000)
                .expect("local read")
                .latency();
            if let Some(rr) = remote_reader {
                // Re-dirty so the remote read snoops too.
                let t = s.sys.write(writer, addr);
                s.sys.run_until_complete(t, 500_000).expect("re-dirty");
                let t = s.sys.read(rr, addr, ReadKind::Shared);
                remote_sum += s
                    .sys
                    .run_until_complete(t, 500_000)
                    .expect("remote read")
                    .latency();
            }
        }
        let local = local_sum as f64 / lines as f64;
        let remote = remote_sum as f64 / lines as f64;
        if remote_reader.is_some() {
            cross.push(remote);
        }
        r.push_row(vec![
            packages.to_string(),
            cores.to_string(),
            crate::report::fnum(local, 0),
            if remote_reader.is_some() {
                crate::report::fnum(remote, 0)
            } else {
                "—".to_string()
            },
        ]);
    }
    r.note(format!(
        "coherence holds across packages; same-package latency is unchanged by scale-up \
         while cross-package reads pay the PA SerDes (2P {:.0} cyc, 4P {:.0} cyc) — {}",
        cross[0],
        cross[1],
        if cross.iter().all(|&c| c > 60.0) {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: SWAP vs always-on escape buffers vs nothing (§4.4's
/// argument against the escape-virtual-channel recovery style).
pub fn run_escape_vs_swap(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(8_000, 30_000);
    let mut r = ExperimentResult::new(
        "ablation_escape",
        "§4.4: SWAP vs always-on escape buffers under cross-ring saturation",
    )
    .with_header(vec![
        "deadlock strategy",
        "delivered flits",
        "throughput (flits/kcycle)",
        "mean latency (cyc)",
    ]);
    let build = |swap: bool, escape: bool| {
        let mut b = TopologyBuilder::new();
        let d0 = b.add_chiplet("d0");
        let d1 = b.add_chiplet("d1");
        let r0 = b.add_ring(d0, RingKind::Full, 6).expect("ring");
        let r1 = b.add_ring(d1, RingKind::Full, 6).expect("ring");
        let a: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("a{i}"), r0, i as u16).expect("node"))
            .collect();
        let z: Vec<_> = (0..4)
            .map(|i| b.add_node(format!("z{i}"), r1, i as u16).expect("node"))
            .collect();
        let cfg = BridgeConfig::l2()
            .with_latency(2)
            .with_buffer_cap(2)
            .with_width(1)
            .with_swap(swap)
            .with_escape_always(escape)
            .with_deadlock_threshold(48)
            .with_reserved_cap(2);
        b.add_bridge(cfg, r0, 5, r1, 5).expect("bridge");
        let net_cfg = NetworkConfig {
            inject_queue_cap: 8,
            eject_queue_cap: 2,
            itag_threshold: 8,
            ..NetworkConfig::default()
        };
        (Network::new(b.build().expect("valid"), net_cfg), a, z)
    };
    let mut rows = Vec::new();
    for (name, swap, escape) in [
        ("SWAP (this work)", true, false),
        ("escape buffers always on", false, true),
        ("none", false, false),
    ] {
        let (mut net, a, z) = build(swap, escape);
        let d = run_flood(&mut net, &a, &z, cycles);
        let lat = net.stats().mean_total_latency();
        rows.push((name, d, lat));
        r.push_row(vec![
            name.to_string(),
            d.to_string(),
            fnum(d as f64 / cycles as f64 * 1000.0, 1),
            fnum(lat, 1),
        ]);
    }
    let swap_row = rows[0];
    let escape_row = rows[1];
    let none_row = rows[2];
    r.note(format!(
        "reserved escape buffers alone do NOT break the cycle (they fill and stall at \
         {} flits, no better than nothing at {}): the *simultaneous inject+eject swap* \
         is the essential ingredient, sustaining {} flits — {}",
        escape_row.1,
        none_row.1,
        swap_row.1,
        if swap_row.1 > 100 * escape_row.1.max(1) && swap_row.1 > 100 * none_row.1.max(1) {
            "PASS (supports §4.4's choice of SWAP over passive buffering)"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: §3.4.2's scalability claim — "bufferless multi-ring NoC
/// can decrease average latency when the number of agents rises".
/// Sweep the agent count and compare one big ring against a multi-ring
/// of the same total size.
pub fn run_agent_scaling(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(4_000, 15_000);
    let mut r = ExperimentResult::new(
        "ablation_agents",
        "§3.4.2: mean latency vs agent count, single ring vs multi-ring",
    )
    .with_header(vec![
        "agents",
        "single-ring latency",
        "multi-ring latency",
        "multi-ring advantage",
    ]);

    let multi_ring = |agents: usize| -> RingAdapter {
        // sqrt-ish decomposition: rings of ~8 devices chained pairwise.
        let per_ring = 8usize.min(agents);
        let rings_n = agents.div_ceil(per_ring);
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let rings: Vec<_> = (0..rings_n)
            .map(|_| {
                b.add_ring(die, RingKind::Full, per_ring as u16 + 2)
                    .expect("ring")
            })
            .collect();
        let mut eps = Vec::new();
        for (ri, &ring) in rings.iter().enumerate() {
            for i in 0..per_ring.min(agents - ri * per_ring) {
                eps.push(
                    b.add_node(format!("n{ri}_{i}"), ring, i as u16)
                        .expect("node"),
                );
            }
        }
        if rings_n > 1 {
            for w in 0..rings_n {
                let next = (w + 1) % rings_n;
                if rings_n == 2 && w == 1 {
                    break;
                }
                b.add_bridge(
                    BridgeConfig::l1().with_width(2),
                    rings[w],
                    per_ring as u16,
                    rings[next],
                    per_ring as u16 + 1,
                )
                .expect("bridge");
            }
        }
        RingAdapter::new(
            "multi",
            Network::new(b.build().expect("valid"), NetworkConfig::default()),
            eps,
        )
    };

    let drive = |ic: &mut dyn Interconnect, agents: usize| -> f64 {
        let mut gen = noc_workloads::TrafficGen::new(
            agents,
            0.05,
            noc_workloads::Pattern::UniformRandom,
            0.5,
            13,
        );
        for _ in 0..cycles {
            for (s, d, class, bytes) in gen.cycle_events() {
                let _ = ic.offer(s, d, class, bytes, 0);
            }
            ic.tick();
            for e in 0..agents {
                while ic.pop_delivered(e).is_some() {}
            }
        }
        ic.mean_latency()
    };

    let mut gaps = Vec::new();
    for agents in [8usize, 16, 32, 64] {
        let single = {
            let mut ic = RingAdapter::single_ring(agents, NetworkConfig::default());
            drive(&mut ic, agents)
        };
        let multi = {
            let mut ic = multi_ring(agents);
            drive(&mut ic, agents)
        };
        gaps.push((agents, single / multi));
        r.push_row(vec![
            agents.to_string(),
            fnum(single, 1),
            fnum(multi, 1),
            format!("{:.2}x", single / multi),
        ]);
    }
    let small_gap = gaps[0].1;
    let large_gap = gaps[3].1;
    r.note(format!(
        "the multi-ring's latency advantage grows with agent count ({small_gap:.2}x at 8 \
         agents → {large_gap:.2}x at 64) — {}",
        if large_gap > small_gap && large_gap > 1.0 {
            "PASS (§3.4.2: 'decrease average latency when the number of agents rises')"
        } else {
            "FAIL"
        }
    ));
    r
}

/// Ablation: §4.2's placement rationale — latency-tolerant devices live
/// on the I/O die's half ring so their DMA traffic does not disturb the
/// compute die's memory latency.
pub fn run_io_interference(scale: Scale) -> ExperimentResult {
    use noc_server_cpu::{build_topology, ServerCpuConfig};

    let cfg = ServerCpuConfig {
        clusters_per_ccd: 8,
        hn_per_ccd: 2,
        ddr_per_ccd: 2,
        ..Default::default()
    };
    let mut r = ExperimentResult::new(
        "ablation_io",
        "§4.2: probe-core DDR latency with and without I/O-die DMA traffic",
    )
    .with_header(vec![
        "I/O DMA duty",
        "probe latency (cyc)",
        "delta vs quiet",
    ]);

    let run = |io_rate: f64| -> f64 {
        let (topo, map) = build_topology(&cfg).expect("builds");
        let net = Network::new(topo, cfg.net.clone());
        // Endpoints: probe cluster, DDRs, and the I/O devices.
        let mut endpoints = vec![map.clusters[0]];
        endpoints.extend(&map.ddrs);
        endpoints.extend(&map.io_devices);
        let n_ddr = map.ddrs.len();
        let n_io = map.io_devices.len();
        let ic = RingAdapter::new("server-io", net, endpoints);
        let mut h = noc_baseline::MemHarness::new(
            ic,
            (1..=n_ddr).collect(),
            noc_baseline::MemHarnessConfig::default(),
        );
        let io_eps: Vec<usize> = (1 + n_ddr..1 + n_ddr + n_io).collect();
        let report = h.run_probe_with_noise(
            0,
            &io_eps,
            io_rate,
            0.5,
            scale.pick(300, 1_500),
            scale.pick(2_500, 8_000),
        );
        report.per_requester[0].mean_latency()
    };

    let quiet = run(0.0);
    let mut worst = quiet;
    for duty in [0.0, 0.25, 0.5, 1.0] {
        let lat = run(duty);
        worst = worst.max(lat);
        r.push_row(vec![
            fnum(duty, 2),
            fnum(lat, 0),
            format!("{:+.0}", lat - quiet),
        ]);
    }
    r.note(format!(
        "saturating every I/O device raises the compute probe's DDR latency by only \
         {:.0}% ({quiet:.0} → {worst:.0} cyc): the half-ring I/O die isolates \
         latency-tolerant traffic — {}",
        (worst / quiet - 1.0) * 100.0,
        if worst < 1.5 * quiet { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_ablation_quick() {
        let r = run_swap(Scale::Quick);
        assert!(r.notes.iter().any(|n| n.contains("PASS")), "{:?}", r.notes);
    }

    #[test]
    fn half_vs_full_quick() {
        let r = run_half_vs_full(Scale::Quick);
        assert!(r.notes.iter().any(|n| n.contains("PASS")), "{:?}", r.notes);
    }

    #[test]
    fn itag_ablation_quick() {
        let r = run_itag_threshold(Scale::Quick);
        assert!(r.notes.iter().any(|n| n.contains("PASS")), "{:?}", r.notes);
    }
}
