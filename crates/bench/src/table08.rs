//! Table 8: MLPerf training performance and energy efficiency vs an
//! A100-class accelerator.
//!
//! Methodology: two-level roofline per layer — compute peak, on-chip
//! (L2/NoC) bandwidth, and HBM bandwidth with a data-reuse factor. The
//! AI processor's on-chip bandwidth is not assumed: it is the *measured*
//! Table 7 NoC bandwidth from the cycle-accurate simulation.

use crate::report::{fnum, ExperimentResult, Scale};
use crate::table07;
use noc_workloads::{bert_large, mask_rcnn, resnet50, NnModel};

/// A two-level roofline machine.
#[derive(Debug, Clone)]
pub struct Accel {
    /// Label.
    pub name: String,
    /// Peak FP16 TFLOP/s.
    pub peak_tflops: f64,
    /// On-chip (L2/NoC) bandwidth, TB/s.
    pub onchip_tbs: f64,
    /// Off-chip HBM bandwidth, TB/s.
    pub hbm_tbs: f64,
    /// Board power in watts.
    pub power_w: f64,
}

impl Accel {
    /// Step time for a model: Σ per-layer max(compute, on-chip, HBM)
    /// with `reuse`× on-chip data reuse before spilling to HBM.
    pub fn step_time_s(&self, model: &NnModel, reuse: f64) -> f64 {
        model
            .layers
            .iter()
            .map(|l| {
                let compute = l.gflops / (self.peak_tflops * 1000.0);
                let onchip = l.total_gb() / (self.onchip_tbs * 1000.0);
                let hbm = (l.total_gb() / reuse) / (self.hbm_tbs * 1000.0);
                compute.max(onchip).max(hbm)
            })
            .sum()
    }
}

/// Reproduce Table 8.
pub fn run(scale: Scale) -> ExperimentResult {
    // Measured on-chip bandwidth from the Table 7 simulation (1:1 mix).
    let measured = table07::run_ratio(1, 1, scale);
    let ours = Accel {
        name: "this-work".into(),
        peak_tflops: 1048.0, // 64 cores × 16^3 MACs × 2 × 2 GHz
        onchip_tbs: measured.total_tbs(),
        hbm_tbs: 3.0, // 6 × 500 GB/s (§3.2.2)
        power_w: 650.0,
    };
    let a100 = Accel {
        name: "a100-like".into(),
        peak_tflops: 312.0,
        onchip_tbs: 7.0, // A100 L2 bandwidth class
        hbm_tbs: 2.0,
        power_w: 400.0,
    };
    let reuse = 4.0;

    let mut r = ExperimentResult::new(
        "table08",
        "MLPerf training: performance and energy efficiency vs A100-class",
    )
    .with_header(vec![
        "model",
        "ours steps/s",
        "a100 steps/s",
        "perf ratio (paper)",
        "energy-eff ratio (paper)",
    ]);
    let cases: Vec<(NnModel, f64, f64)> = vec![
        (resnet50(256), 3.2, 1.89),
        (bert_large(32, 512), 2.99, 1.50),
        (mask_rcnn(32), 4.13, f64::NAN),
    ];
    let mut ratios = Vec::new();
    for (model, paper_perf, paper_energy) in &cases {
        let t_ours = ours.step_time_s(model, reuse);
        let t_a100 = a100.step_time_s(model, reuse);
        let perf = t_a100 / t_ours;
        let energy = perf * a100.power_w / ours.power_w;
        ratios.push(perf);
        r.push_row(vec![
            model.name.clone(),
            fnum(1.0 / t_ours, 1),
            fnum(1.0 / t_a100, 1),
            format!("{:.2}x ({paper_perf}x)", perf),
            if paper_energy.is_nan() {
                format!("{:.2}x (NA)", energy)
            } else {
                format!("{:.2}x ({paper_energy}x)", energy)
            },
        ]);
    }
    let ok = ratios.iter().all(|&x| (2.0..6.0).contains(&x));
    r.note(format!(
        "shape check: 2-6x speedup over A100-class on all three workloads (paper: 2.99-4.13x) — {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "on-chip bandwidth used: measured {:.1} TB/s from the Table 7 simulation (not assumed)",
        measured.total_tbs()
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table8_quick_shape() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        let fails = r.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        assert_eq!(fails, 0, "{:?}", r.notes);
    }

    #[test]
    fn accel_step_time_monotone_in_peak() {
        let m = resnet50(64);
        let slow = Accel {
            name: "s".into(),
            peak_tflops: 100.0,
            onchip_tbs: 10.0,
            hbm_tbs: 2.0,
            power_w: 1.0,
        };
        let fast = Accel {
            peak_tflops: 400.0,
            ..slow.clone()
        };
        assert!(fast.step_time_s(&m, 4.0) < slow.step_time_s(&m, 4.0));
    }
}
