//! Table 7: AI-NoC bandwidth at the paper's read/write ratios.

use crate::report::{fnum, ExperimentResult, Scale};
use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};

/// The paper's ratio rows, in order.
pub const RATIOS: [(u32, u32); 6] = [(1, 1), (2, 1), (4, 1), (3, 2), (1, 0), (0, 1)];

/// Run one ratio and return the report.
pub fn run_ratio(read: u32, write: u32, scale: Scale) -> noc_ai::AiBandwidthReport {
    let proc = AiProcessor::build(AiConfig::default()).expect("default AI config builds");
    let mut engine = AiEngine::new(proc, AiTraffic::from_ratio(read, write));
    engine
        .run(scale.pick(1_000, 3_000), scale.pick(3_000, 10_000))
        .expect("AI engine run")
}

/// Reproduce Table 7.
pub fn run(scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new("table07", "AI-NoC bandwidth test (TB/s)").with_header(vec![
        "R-W ratio",
        "Total",
        "Read",
        "Write",
        "DMA",
    ]);
    let mut totals = Vec::new();
    for &(read, write) in &RATIOS {
        let rep = run_ratio(read, write, scale);
        r.push_row(vec![
            format!("{read}:{write}"),
            fnum(rep.total_tbs(), 1),
            fnum(rep.read_tbs(), 1),
            fnum(rep.write_tbs(), 1),
            fnum(rep.dma_tbs(), 1),
        ]);
        totals.push(rep.total_tbs());
    }
    let balanced = totals[0];
    let pure_read = totals[4];
    let pure_write = totals[5];
    r.note(format!(
        "shape check: balanced 1:1 ({balanced:.1}) beats pure read ({pure_read:.1}) and pure write ({pure_write:.1}) — {}",
        if balanced > pure_read && balanced > pure_write { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "headline check: peak total ≥ 14 TB/s (paper: 16.0; full scale measures ≈15) — {}",
        if balanced >= 14.0 { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "typical-ratio check: every row ≥ 9 TB/s (paper: 'more than 10TB/s') — {}",
        if totals.iter().all(|&t| t >= 9.0) {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(
        "paper row 1:1 = 16.0/7.3/7.1/1.6; 1:0 = 11.2/9.5/0/1.7; 0:1 = 10.0/0/8.4/1.6".to_string(),
    );
    r
}

/// Companion experiment: derive the read/write mixes from the Table 3
/// neural networks (§5.4: "according to the various memory access
/// behavior of diversified neural network layers, we build several
/// traffic-flows") and measure each model's achievable NoC bandwidth.
pub fn run_model_driven(scale: Scale) -> ExperimentResult {
    use noc_ai::{AiEngine, AiTraffic};
    let mut r = ExperimentResult::new(
        "table03_traffic",
        "NoC bandwidth under Table 3 model-derived read/write mixes",
    )
    .with_header(vec![
        "model",
        "read fraction",
        "total TB/s",
        "read TB/s",
        "write TB/s",
    ]);
    let mut totals = Vec::new();
    for model in noc_workloads::table3_models() {
        let rf = model.read_frac();
        let proc = noc_ai::AiProcessor::build(noc_ai::AiConfig::default()).expect("builds");
        let mut e = AiEngine::new(
            proc,
            AiTraffic {
                read_frac: rf,
                ..AiTraffic::from_ratio(1, 1)
            },
        );
        let rep = e
            .run(scale.pick(1_000, 3_000), scale.pick(3_000, 8_000))
            .expect("AI engine run");
        totals.push(rep.total_tbs());
        r.push_row(vec![
            model.name.clone(),
            fnum(rf, 2),
            fnum(rep.total_tbs(), 1),
            fnum(rep.read_tbs(), 1),
            fnum(rep.write_tbs(), 1),
        ]);
    }
    let ok = totals.iter().all(|&t| t >= 9.0);
    r.note(format!(
        "every Table 3 model's traffic mix sustains ≥9 TB/s on the NoC (paper: 'more \
         than 10TB/s' for typical ratios) — {}",
        if ok { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_quick_shape() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 6);
        let fails = r.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        assert_eq!(fails, 0, "{:?}", r.notes);
    }
}
