//! Table 9: state-of-the-art commercial processor NoC survey, with this
//! work's row appended.

use crate::report::{ExperimentResult, Scale};

/// One survey row.
#[derive(Debug, Clone)]
pub struct SurveyRow {
    /// Processor name.
    pub name: &'static str,
    /// Core count (or compute-engine count).
    pub cores: &'static str,
    /// Intra-chiplet NoC.
    pub intra: &'static str,
    /// Inter-chiplet NoC.
    pub inter: &'static str,
    /// Buffering strategy.
    pub buffering: &'static str,
    /// Integration technology.
    pub integration: &'static str,
}

/// The paper's survey rows plus this work.
pub fn rows() -> Vec<SurveyRow> {
    vec![
        SurveyRow {
            name: "Intel Ice Lake-SP",
            cores: "40",
            intra: "Mesh",
            inter: "—",
            buffering: "Bufferless",
            integration: "1 die",
        },
        SurveyRow {
            name: "Intel Sapphire Rapids",
            cores: "56",
            intra: "Mesh",
            inter: "UPI",
            buffering: "—",
            integration: "EMIB",
        },
        SurveyRow {
            name: "AMD Milan",
            cores: "64",
            intra: "Bi-directional ring bus",
            inter: "Switched mesh",
            buffering: "Buffered",
            integration: "MCM",
        },
        SurveyRow {
            name: "AMD Instinct MI200",
            cores: "8 ACEs",
            intra: "—",
            inter: "Bi-directional rings",
            buffering: "Buffered",
            integration: "2.5D fanout bridge",
        },
        SurveyRow {
            name: "Fujitsu Fugaku (A64FX)",
            cores: "52",
            intra: "Ring bus",
            inter: "Tofu-D",
            buffering: "Buffered",
            integration: "CoWoS",
        },
        SurveyRow {
            name: "Ampere Altra MAX",
            cores: "128",
            intra: "CoreLink CMN-600 mesh",
            inter: "—",
            buffering: "Buffered",
            integration: "1 die",
        },
        SurveyRow {
            name: "This work (Server-CPU)",
            cores: "96 (384 at 4P)",
            intra: "Bufferless multi-ring",
            inter: "RBRG-L2 + PA SerDes",
            buffering: "Bufferless",
            integration: "heterogeneous chiplets",
        },
        SurveyRow {
            name: "This work (AI-Processor)",
            cores: "64 AI cores",
            intra: "Bufferless multi-ring mesh",
            inter: "RBRG-L2",
            buffering: "Bufferless",
            integration: "heterogeneous chiplets",
        },
    ]
}

/// Render Table 9.
pub fn run(_scale: Scale) -> ExperimentResult {
    let mut r =
        ExperimentResult::new("table09", "Commercial processor NoC survey").with_header(vec![
            "processor",
            "cores",
            "intra-chiplet NoC",
            "inter-chiplet NoC",
            "buffering",
            "integration",
        ]);
    for row in rows() {
        r.push_row(vec![
            row.name.to_string(),
            row.cores.to_string(),
            row.intra.to_string(),
            row.inter.to_string(),
            row.buffering.to_string(),
            row.integration.to_string(),
        ]);
    }
    r.note(
        "this work is the only chiplet system in the survey with a bufferless inter-chiplet NoC"
            .to_string(),
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_includes_this_work_and_paper_rows() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 8);
        assert!(r.rows.iter().any(|row| row[0].contains("This work")));
        assert!(r.rows.iter().any(|row| row[0].contains("Milan")));
    }
}
