//! Determinism gate: the sharded parallel engine must be bit-identical
//! to the sequential engine on the AI topology, for any worker count.
//!
//! Each workload runs twice — once `ExecMode::Sequential`, once
//! `ExecMode::Parallel(n)` with `n` taken from the `NOC_EXEC_THREADS`
//! environment variable (default 2) — and the rows record both stats
//! fingerprints. Nothing thread-count-dependent is emitted, so the
//! JSON result of two invocations at *different* `NOC_EXEC_THREADS`
//! values must be byte-identical; CI diffs exactly that.

use crate::report::{ExperimentResult, Scale};
use noc_ai::{build_topology, AiConfig};
use noc_core::telemetry::NullSink;
use noc_core::{ExecMode, FlitClass, Network, NetworkConfig, NodeId, TickMode};

/// Worker count for the parallel runs, from `NOC_EXEC_THREADS`
/// (default 2).
pub fn threads_from_env() -> usize {
    std::env::var("NOC_EXEC_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(2)
}

/// The mid-size AI mesh also used by the `engine_scaling` bench.
fn ai_cfg() -> AiConfig {
    AiConfig {
        v_rings: 4,
        cores_per_vring: 8,
        h_rings: 2,
        l2_per_hring: 8,
        hbm_count: 2,
        dma_count: 2,
        llc_count: 2,
        ..Default::default()
    }
}

fn build(exec: ExecMode) -> (Network, Vec<NodeId>, Vec<NodeId>) {
    let cfg = ai_cfg();
    let (topo, map) = build_topology(&cfg).expect("builds");
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    (net, map.cores, map.l2s)
}

/// Fold a stats fingerprint vector into one displayable word
/// (FNV-1a-style mix; equality of the full vectors is what the PASS
/// check uses).
fn digest(fp: &[u64]) -> u64 {
    fp.iter().fold(0xcbf2_9ce4_8422_2325, |h, &w| {
        (h ^ w).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Closed-loop core→L2 traffic; `every` controls the offered load
/// (1 = saturating, larger = sparser).
fn workload(exec: ExecMode, cycles: u64, every: u64) -> (Vec<u64>, u64) {
    let (mut net, cores, l2s) = build(exec);
    for c in 0..cycles {
        if c % every == 0 {
            for (i, &core) in cores.iter().enumerate() {
                let l2 = l2s[(i * 7 + c as usize) % l2s.len()];
                let _ = net.enqueue(core, l2, FlitClass::Data, 64, c);
            }
        }
        net.tick();
        for &l2 in &l2s {
            while net.pop_delivered(l2).is_some() {}
        }
    }
    let s = net.stats();
    (s.fingerprint(), s.delivered.get())
}

/// The `determinism` experiment.
pub fn run(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(400, 4_000);
    let threads = threads_from_env();
    let mut r = ExperimentResult::new(
        "determinism",
        "Parallel engine fingerprint gate on the AI topology",
    )
    .with_header(vec![
        "workload",
        "fingerprint (sequential)",
        "fingerprint (parallel)",
        "delivered",
    ]);

    let mut all_match = true;
    for (name, every) in [("saturating", 1u64), ("sparse(1/8)", 8)] {
        let (fp_seq, delivered) = workload(ExecMode::Sequential, cycles, every);
        let (fp_par, delivered_par) = workload(ExecMode::Parallel(threads), cycles, every);
        all_match &= fp_seq == fp_par && delivered == delivered_par;
        r.push_row(vec![
            name.to_string(),
            format!("{:016x}", digest(&fp_seq)),
            format!("{:016x}", digest(&fp_par)),
            delivered.to_string(),
        ]);
    }
    r.note(format!(
        "parallel engine bit-identical to sequential — {}",
        if all_match { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_quick() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 2);
        assert!(r.notes.iter().all(|n| n.ends_with("PASS")), "{:?}", r.notes);
        // Fingerprints in each row must already agree.
        for row in &r.rows {
            assert_eq!(row[1], row[2], "{row:?}");
        }
    }
}
