//! `noc-bench wedge-report`: the stall-forensics acceptance artifact
//! (`BENCH_PR10.json`) — a sweep of outstanding load across the 4×4
//! torus's wedge frontier with the wait-graph detector armed, plus the
//! detector's own cost measurement.
//!
//! The sweep drives the two saturation shapes the ROADMAP recorded as
//! wedging the fabric (antipodal 4 KiB DMA bursts; stride-7 2 KiB
//! non-posted writes) at increasing outstanding-transaction caps, once
//! under legacy admission (`reassembly_slots = 0`) and once with
//! reassembly credits (`reassembly_slots = 1`). Two invariants are
//! checked row by row and recorded in the artifact:
//!
//! * **fires-on-wedge / silent-below** — on every run that fails to
//!   drain, the detector must have latched a wedge report with a
//!   non-trivial cyclic chain; on every run that drains, it must never
//!   have latched. No false negatives, no false positives.
//! * **the fix holds** — every credited row drains, including the
//!   configurations that wedge under legacy admission (the frontier
//!   must be non-empty for the claim to mean anything).
//!
//! The cost measurement times the same steady-state credited workload
//! three ways — forensics never constructed, constructed but idle
//! (`enable_forensics_idle`, the tripwire that per-tick paths stay
//! gated), and sampling at the observatory cadence — and reports
//! overheads between best-of-N throughputs (scheduler noise only
//! slows runs down, so each configuration's fastest run is its least
//! contaminated estimate). CI budgets: 1% detector-off, 5% sampling-on.

use crate::trajectory::METRICS_PERIOD;
use noc_core::telemetry::{NullSink, WaitGraphConfig};
use noc_core::topogen::GridParams;
use noc_core::{ExecMode, Network, NetworkConfig, NodeId, TickMode};
use noc_txn::{TxnConfig, TxnFabric, TxnOp};
use serde::Serialize;
use std::time::Instant;

/// Hard per-run bound: a run that neither drains, wedges, nor latches
/// within this many cycles is reported as stuck (and fails the
/// invariants — the detector should have spoken).
const CYCLE_CAP: u64 = 200_000;

/// Cycles without a completion before a run is declared wedged.
const NO_PROGRESS_CAP: u64 = 30_000;

/// One cell of the wedge-frontier sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FrontierPoint {
    /// Workload shape (`dma_burst` / `stride7`).
    pub workload: String,
    /// Outstanding-transaction cap for the closed loop.
    pub outstanding: usize,
    /// `greedy` refills the outstanding window every cycle; `paced`
    /// submits at most one transaction per cycle.
    pub greedy: bool,
    /// `TxnConfig::reassembly_slots` for the run (0 = legacy).
    pub reassembly_slots: usize,
    /// Transactions accepted before the run ended.
    pub accepted: usize,
    /// Transactions completed.
    pub completed: u64,
    /// Cycle the run ended at.
    pub cycles: u64,
    /// Whether the fabric drained every accepted transaction.
    pub drained: bool,
    /// Whether the deadlock watchdog latched.
    pub latched: bool,
    /// Length of the latched report's cyclic chain (0 if none).
    pub chain_len: usize,
    /// Row-level invariant: latched exactly when not drained, and a
    /// latched report names a real cycle.
    pub detector_ok: bool,
}

/// The detector's cost on a steady-state credited workload.
#[derive(Debug, Clone, Serialize)]
pub struct WedgeOverheadPoint {
    /// Best-of-N ticks/second with forensics never constructed.
    pub base_ticks_per_sec: f64,
    /// Best-of-N ticks/second with the tracker constructed but idle.
    pub idle_ticks_per_sec: f64,
    /// Best-of-N ticks/second with wait-graph sampling at the
    /// observatory cadence.
    pub sampling_ticks_per_sec: f64,
    /// Best-of-N `base → idle` throughput loss in percent
    /// (negative = noise). CI budget 1%.
    pub detector_off_overhead_pct: f64,
    /// Best-of-N `idle → sampling` throughput loss in percent.
    /// CI budget 5%.
    pub sampling_overhead_pct: f64,
    /// Timing repeats the best-of throughputs were taken over.
    pub repeats: u32,
}

/// The whole `BENCH_PR10.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct WedgeFrontierReport {
    /// Report schema tag.
    pub bench: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// The sweep, legacy rows first.
    pub frontier: Vec<FrontierPoint>,
    /// Every undrained run latched a wedge report with a cyclic chain.
    pub fires_on_wedge: bool,
    /// No drained run ever latched.
    pub silent_below: bool,
    /// At least one legacy row actually wedged — the frontier exists.
    pub frontier_nonempty: bool,
    /// Every credited (`reassembly_slots = 1`) row drained.
    pub fix_drains_all: bool,
    /// Detector cost measurement.
    pub overhead: WedgeOverheadPoint,
}

/// Everything `noc-bench wedge-report` needs: the JSON document, a
/// rendered frontier table, the first latched report's human rendering,
/// and the latched postmortem bundle as JSONL (the CI artifact).
#[derive(Debug, Clone)]
pub struct WedgeBundle {
    /// The machine-readable report.
    pub report: WedgeFrontierReport,
    /// Aligned ASCII table, one row per sweep cell.
    pub table: String,
    /// `WedgeReport::render()` of the first latched run, if any.
    pub wedge_text: String,
    /// Postmortem bundle (JSONL) captured at the first latch, if any.
    pub bundle_jsonl: String,
}

/// The wedge topology: the trajectory benchmark's generated 4×4 torus.
fn torus_devices() -> (noc_core::Topology, Vec<NodeId>) {
    let (topo, names) = GridParams::torus(4, 4)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65)
        .generate()
        .expect("torus generates")
        .compile()
        .expect("torus compiles");
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    (topo, named.into_iter().map(|(_, id)| id).collect())
}

fn dma(i: usize, devs: &[NodeId]) -> (NodeId, NodeId, TxnOp) {
    let n = devs.len();
    (
        devs[i % n],
        devs[(i + n / 2) % n],
        TxnOp::Write {
            bytes: 4096,
            posted: false,
        },
    )
}

fn stride7(i: usize, devs: &[NodeId]) -> (NodeId, NodeId, TxnOp) {
    let n = devs.len();
    let src = i % n;
    let mut dst = (i * 7 + 3) % n;
    if dst == src {
        dst = (dst + 1) % n;
    }
    (
        devs[src],
        devs[dst],
        TxnOp::Write {
            bytes: 2048,
            posted: false,
        },
    )
}

type Shape = fn(usize, &[NodeId]) -> (NodeId, NodeId, TxnOp);

/// Run one sweep cell. Returns the point plus, when the detector
/// latched, the rendered report and the postmortem bundle JSONL.
fn frontier_run(
    workload: &str,
    shape: Shape,
    outstanding: usize,
    total: usize,
    greedy: bool,
    slots: usize,
) -> (FrontierPoint, Option<(String, String)>) {
    let (topo, devs) = torus_devices();
    let mut net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        ExecMode::Sequential,
        NullSink,
    );
    // The network observatory must be live for the watchdog to capture
    // a postmortem bundle at the latch.
    net.enable_metrics(METRICS_PERIOD);
    let mut fab = TxnFabric::new(
        net,
        TxnConfig {
            metrics_period: METRICS_PERIOD,
            reassembly_slots: slots,
            ..TxnConfig::default()
        },
    );
    fab.enable_forensics(WaitGraphConfig::default());
    let mut accepted = 0usize;
    let mut last_completed = 0u64;
    let mut last_progress = 0u64;
    let (drained, latched) = loop {
        loop {
            if accepted >= total || fab.in_flight_txns() >= outstanding {
                break;
            }
            let (src, dst, op) = shape(accepted, &devs);
            if fab.submit(src, dst, op).expect("valid endpoints").is_some() {
                accepted += 1;
                if !greedy {
                    break;
                }
            } else {
                break;
            }
        }
        fab.tick();
        let done = fab.counters().completed();
        if done != last_completed {
            last_completed = done;
            last_progress = fab.now().raw();
        }
        if fab.quiet() && accepted >= total {
            break (true, fab.wedge_latched());
        }
        if fab.wedge_latched() {
            break (false, true);
        }
        let now = fab.now().raw();
        if now - last_progress > NO_PROGRESS_CAP || now > CYCLE_CAP {
            break (false, false);
        }
    };
    let chain_len = fab.wedge_report().map_or(0, |r| r.chain.len());
    let detector_ok = if drained {
        !latched
    } else {
        latched && chain_len >= 2
    };
    let evidence = fab.wedge_report().map(|r| {
        let jsonl = fab
            .wedge_bundles()
            .first()
            .map(|b| b.to_jsonl())
            .unwrap_or_default();
        (r.render(), jsonl)
    });
    let point = FrontierPoint {
        workload: workload.to_string(),
        outstanding,
        greedy,
        reassembly_slots: slots,
        accepted,
        completed: last_completed,
        cycles: fab.now().raw(),
        drained,
        latched,
        chain_len,
        detector_ok,
    };
    (point, evidence)
}

/// Time one credited steady-state run (stride-7, drains cleanly) with
/// the given forensics arming: `0` never constructs the tracker, `1`
/// constructs it idle, `2` samples at the observatory cadence.
fn timed_run(txns: usize, arming: u8) -> f64 {
    let (topo, devs) = torus_devices();
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        ExecMode::Sequential,
        NullSink,
    );
    let mut fab = TxnFabric::new(
        net,
        TxnConfig {
            metrics_period: METRICS_PERIOD,
            reassembly_slots: 1,
            ..TxnConfig::default()
        },
    );
    match arming {
        0 => {}
        1 => fab.enable_forensics_idle(),
        _ => fab.enable_forensics(WaitGraphConfig::default()),
    }
    let start = Instant::now();
    let mut accepted = 0usize;
    let mut guard = 0u64;
    while accepted < txns {
        guard += 1;
        assert!(guard < 4_000_000, "wedge-report timed run starved");
        if fab.in_flight_txns() < 64 {
            let (src, dst, op) = stride7(accepted, &devs);
            if fab.submit(src, dst, op).expect("valid endpoints").is_some() {
                accepted += 1;
            }
        }
        fab.tick();
    }
    assert!(
        fab.run_until_quiet(2_000_000),
        "wedge-report timed run failed to quiesce"
    );
    assert!(!fab.wedge_latched(), "timed run latched the watchdog");
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    fab.now().raw() as f64 / secs
}

fn frontier_table(points: &[FrontierPoint]) -> String {
    let mut out = String::from(
        "workload    outstanding  mode    slots  accepted  completed   cycles  outcome\n",
    );
    for p in points {
        let outcome = match (p.drained, p.latched) {
            (true, false) => "drained",
            (true, true) => "drained+LATCHED",
            (false, true) => "WEDGED (latched)",
            (false, false) => "STUCK (no latch)",
        };
        out.push_str(&format!(
            "{:<11} {:>11}  {:<6} {:>6} {:>9} {:>10} {:>8}  {}\n",
            p.workload,
            p.outstanding,
            if p.greedy { "greedy" } else { "paced" },
            p.reassembly_slots,
            p.accepted,
            p.completed,
            p.cycles,
            outcome
        ));
    }
    out
}

/// Run the whole wedge-frontier report. `quick` trades sweep points
/// and timing repeats for CI wall-clock.
pub fn run(quick: bool) -> WedgeBundle {
    // (workload, shape, outstanding, total, greedy). The full sweep
    // walks the stride-7 cap through the frontier (it wedges legacy
    // admission from 64 outstanding up) and pins the paced variant and
    // the DMA-burst shape at their ROADMAP-recorded wedge points.
    let mut sweep: Vec<(&str, Shape, usize, usize, bool)> = vec![
        ("stride7", stride7 as Shape, 32, 400, true),
        ("stride7", stride7 as Shape, 200, 400, true),
    ];
    if !quick {
        sweep.push(("stride7", stride7 as Shape, 16, 400, true));
        sweep.push(("stride7", stride7 as Shape, 64, 400, true));
        sweep.push(("stride7", stride7 as Shape, 128, 400, true));
        sweep.push(("stride7", stride7 as Shape, 64, 400, false));
        sweep.push(("dma_burst", dma as Shape, 200, 400, true));
    }

    let mut frontier = Vec::new();
    let mut wedge_text = String::new();
    let mut bundle_jsonl = String::new();
    for slots in [0usize, 1] {
        for &(name, shape, outstanding, total, greedy) in &sweep {
            let (point, evidence) = frontier_run(name, shape, outstanding, total, greedy, slots);
            if let Some((text, jsonl)) = evidence {
                if wedge_text.is_empty() {
                    wedge_text = text;
                    bundle_jsonl = jsonl;
                }
            }
            frontier.push(point);
        }
    }

    let fires_on_wedge = frontier
        .iter()
        .filter(|p| !p.drained)
        .all(|p| p.latched && p.chain_len >= 2);
    let silent_below = frontier.iter().filter(|p| p.drained).all(|p| !p.latched);
    let frontier_nonempty = frontier
        .iter()
        .any(|p| p.reassembly_slots == 0 && !p.drained);
    let fix_drains_all = frontier
        .iter()
        .filter(|p| p.reassembly_slots == 1)
        .all(|p| p.drained && !p.latched);

    // Interleaved paired repeats, minimum overhead (trajectory
    // convention), with one untimed warmup per arming first. Never
    // quick-scaled below a resolvable run length: the gates compare
    // numbers ~1% apart.
    let overhead_txns = 500;
    let repeats: u32 = if quick { 5 } else { 7 };
    for arming in [0u8, 1, 2] {
        let _ = timed_run(overhead_txns, arming);
    }
    let mut base_runs = Vec::new();
    let mut idle_runs = Vec::new();
    let mut sampling_runs = Vec::new();
    for _ in 0..repeats {
        base_runs.push(timed_run(overhead_txns, 0));
        idle_runs.push(timed_run(overhead_txns, 1));
        sampling_runs.push(timed_run(overhead_txns, 2));
    }
    // Best-of-N throughput per arming, overheads between the bests:
    // scheduler noise only slows runs down, so each config's fastest
    // run is its least-contaminated estimate and the reported
    // percentages match the reported throughputs.
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::MIN, f64::max);
    let (base, idle, sampling) = (best(&base_runs), best(&idle_runs), best(&sampling_runs));
    let overhead = WedgeOverheadPoint {
        base_ticks_per_sec: base,
        idle_ticks_per_sec: idle,
        sampling_ticks_per_sec: sampling,
        detector_off_overhead_pct: (1.0 - idle / base) * 100.0,
        sampling_overhead_pct: (1.0 - sampling / idle) * 100.0,
        repeats,
    };

    let table = frontier_table(&frontier);
    WedgeBundle {
        report: WedgeFrontierReport {
            bench: "noc-bench wedge-report".to_string(),
            quick,
            frontier,
            fires_on_wedge,
            silent_below,
            frontier_nonempty,
            fix_drains_all,
            overhead,
        },
        table,
        wedge_text,
        bundle_jsonl,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_wedge_report_holds_its_invariants() {
        let bundle = run(true);
        let r = &bundle.report;
        assert_eq!(r.frontier.len(), 4, "quick sweep is 2 shapes × 2 slots");
        assert!(r.fires_on_wedge, "an undrained run escaped the detector");
        assert!(r.silent_below, "the detector latched on a draining run");
        assert!(r.frontier_nonempty, "no legacy run wedged — frontier gone");
        assert!(r.fix_drains_all, "a credited run failed to drain");
        assert!(r.frontier.iter().all(|p| p.detector_ok));
        // The latched evidence is captured for the CI artifact.
        assert!(bundle.wedge_text.contains("ring:"), "{}", bundle.wedge_text);
        assert!(bundle.wedge_text.contains("escape:"));
        assert!(!bundle.bundle_jsonl.is_empty(), "no postmortem bundle");
        assert!(bundle.table.contains("WEDGED"), "{}", bundle.table);
        let json = serde_json::to_string_pretty(&r).expect("serializes");
        assert!(json.contains("\"detector_off_overhead_pct\""));
    }
}
