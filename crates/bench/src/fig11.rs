//! Figure 11: DDR latency under increasing background noise — the
//! turning point of this work comes later than the baseline's.

use crate::report::{fnum, ExperimentResult, Scale};
use crate::systems;
use noc_baseline::{MemHarness, MemHarnessConfig};
use noc_server_cpu::experiments::{latency_vs_noise, turning_point_abs, LatencyPoint};

/// The background traffic mixes of the paper's experiment.
pub const MIXES: [(&str, f64); 3] = [("read", 1.0), ("write", 0.0), ("hybrid", 0.5)];

fn sweep_ours(rates: &[f64], read_frac: f64, scale: Scale) -> Vec<LatencyPoint> {
    latency_vs_noise(
        || {
            let (ic, p) = systems::ours(12);
            let mut noise = p.requesters.clone();
            let probe = noise.remove(0);
            let h = MemHarness::new(
                ic,
                p.memories.clone(),
                MemHarnessConfig {
                    mem: systems::mem_params(),
                    ..Default::default()
                },
            );
            (h, probe, noise)
        },
        rates,
        read_frac,
        scale.pick(300, 1_500),
        scale.pick(2_500, 8_000),
    )
}

fn sweep_intel(rates: &[f64], read_frac: f64, scale: Scale) -> Vec<LatencyPoint> {
    latency_vs_noise(
        || {
            let (ic, p) = systems::intel_like();
            let mut noise = p.requesters.clone();
            let probe = noise.remove(0);
            let h = MemHarness::new(
                ic,
                p.memories.clone(),
                MemHarnessConfig {
                    mem: systems::mem_params(),
                    ..Default::default()
                },
            );
            (h, probe, noise)
        },
        rates,
        read_frac,
        scale.pick(300, 1_500),
        scale.pick(2_500, 8_000),
    )
}

/// Reproduce Figure 11.
pub fn run(scale: Scale) -> ExperimentResult {
    let rates: Vec<f64> = match scale {
        Scale::Quick => vec![0.0, 0.05, 0.1, 0.2, 0.4],
        Scale::Full => vec![0.0, 0.025, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6, 0.8],
    };
    let mut r = ExperimentResult::new(
        "fig11",
        "Probe-core DDR latency vs background noise rate (cycles)",
    )
    .with_header(vec![
        "mix",
        "noise rate",
        "this work",
        "p50",
        "p95",
        "p99",
        "intel-like",
        "i p99",
    ]);

    let mut all_pass = true;
    for &(mix, rf) in &MIXES {
        let ours = sweep_ours(&rates, rf, scale);
        let intel = sweep_intel(&rates, rf, scale);
        for (o, i) in ours.iter().zip(&intel) {
            r.push_row(vec![
                mix.to_string(),
                fnum(o.noise_rate, 3),
                fnum(o.probe_latency, 0),
                o.p50.to_string(),
                o.p95.to_string(),
                o.p99.to_string(),
                fnum(i.probe_latency, 0),
                i.p99.to_string(),
            ]);
        }
        // Common absolute threshold: the figure's y-axis is absolute
        // latency, so both systems are judged against the same cliff.
        let threshold = 1.5 * ours[0].probe_latency.min(intel[0].probe_latency);
        let tp_ours = turning_point_abs(&ours, threshold);
        let tp_intel = turning_point_abs(&intel, threshold);
        let later = match (tp_ours, tp_intel) {
            (None, Some(_)) => true, // ours never crosses in range
            (Some(a), Some(b)) => a >= b,
            (None, None) => {
                ours.last().expect("points").probe_latency
                    <= intel.last().expect("points").probe_latency
            }
            (Some(_), None) => false,
        };
        all_pass &= later;
        r.note(format!(
            "{mix}: first rate above {threshold:.0} cycles: ours={:?} intel-like={:?} — {}",
            tp_ours,
            tp_intel,
            if later {
                "PASS (ours turns later)"
            } else {
                "FAIL"
            }
        ));
    }
    r.note(format!(
        "overall: this work's latency cliff comes later under read, write and hybrid noise — {}",
        if all_pass { "PASS" } else { "PARTIAL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_turning_points_quick() {
        let r = run(Scale::Quick);
        assert!(!r.rows.is_empty());
        assert!(
            r.notes.last().expect("notes").contains("PASS"),
            "{:?}",
            r.notes
        );
    }
}
