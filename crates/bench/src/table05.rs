//! Table 5: intra-/inter-chiplet cache access latency for M/E/S lines,
//! this work vs the commercial-style baselines — the full CHI protocol
//! runs over every transport.

use crate::report::{fnum, ExperimentResult, Scale};
use crate::systems;
use noc_server_cpu::experiments::{coherence_ping, lines_homed_at, PreparedState};

/// Reproduce Table 5.
pub fn run(scale: Scale) -> ExperimentResult {
    let lines = scale.pick(12, 64);
    let mut r = ExperimentResult::new(
        "table05",
        "Inter-/intra-chiplet coherent access latency (cycles)",
    )
    .with_header(vec![
        "scenario",
        "state",
        "this work",
        "intel-like (monolithic)",
        "amd-like (hub)",
    ]);

    let states = [
        (PreparedState::M, "M"),
        (PreparedState::E, "E"),
        (PreparedState::S, "S"),
    ];

    // Baselines (monolithic mesh has no chiplet distinction; the hub
    // design pays the central switch either way).
    let mut intel = Vec::new();
    let mut amd_intra = Vec::new();
    let mut amd_inter = Vec::new();
    for &(state, _) in &states {
        let (mesh, p) = systems::intel_like();
        let mut sys = systems::coherent(mesh, &p);
        let owner = noc_core::NodeId(p.requesters[0] as u32);
        let helper = noc_core::NodeId(p.requesters[2] as u32);
        let reader = noc_core::NodeId(p.requesters[14] as u32);
        let addrs: Vec<_> = (0..lines).map(|i| noc_chi::LineAddr(0x100 + i)).collect();
        intel.push(coherence_ping(
            &mut sys, owner, helper, reader, state, &addrs,
        ));

        let (hub, p) = systems::amd_like();
        let mut sys = systems::coherent(hub, &p);
        let owner = noc_core::NodeId(p.requesters[0] as u32);
        let helper = noc_core::NodeId(p.requesters[2] as u32);
        let intra_reader = noc_core::NodeId(p.requesters[1] as u32); // same chiplet
        let addrs: Vec<_> = (0..lines).map(|i| noc_chi::LineAddr(0x100 + i)).collect();
        amd_intra.push(coherence_ping(
            &mut sys,
            owner,
            helper,
            intra_reader,
            state,
            &addrs,
        ));
        let (hub, p) = systems::amd_like();
        let mut sys = systems::coherent(hub, &p);
        let owner = noc_core::NodeId(p.requesters[0] as u32);
        let helper = noc_core::NodeId(p.requesters[2] as u32);
        let inter_reader = noc_core::NodeId(p.requesters[9] as u32); // other chiplet
        amd_inter.push(coherence_ping(
            &mut sys,
            owner,
            helper,
            inter_reader,
            state,
            &addrs,
        ));
    }

    // This work: lines homed on the owner's compute die.
    let mut ours_intra = Vec::new();
    let mut ours_inter = Vec::new();
    for &(state, _) in &states {
        let mut s = systems::ours_coherent();
        let local_hns: Vec<_> = s.map.home_nodes[..s.cfg.hn_per_ccd].to_vec();
        let addrs = lines_homed_at(&s.sys, &local_hns, lines as usize, 0x100);
        let owner = s.map.clusters_of_ccd(0)[0];
        let helper = s.map.clusters_of_ccd(0)[2];
        let intra_reader = s.map.clusters_of_ccd(0)[1];
        ours_intra.push(coherence_ping(
            &mut s.sys,
            owner,
            helper,
            intra_reader,
            state,
            &addrs,
        ));
        let mut s = systems::ours_coherent();
        let local_hns: Vec<_> = s.map.home_nodes[..s.cfg.hn_per_ccd].to_vec();
        let addrs = lines_homed_at(&s.sys, &local_hns, lines as usize, 0x100);
        let owner = s.map.clusters_of_ccd(0)[0];
        let helper = s.map.clusters_of_ccd(0)[2];
        let inter_reader = s.map.clusters_of_ccd(1)[0];
        ours_inter.push(coherence_ping(
            &mut s.sys,
            owner,
            helper,
            inter_reader,
            state,
            &addrs,
        ));
    }

    for (i, &(_, name)) in states.iter().enumerate() {
        r.push_row(vec![
            "intra-chiplet".to_string(),
            name.to_string(),
            fnum(ours_intra[i], 0),
            "NA (monolithic)".to_string(),
            fnum(amd_intra[i], 0),
        ]);
    }
    for (i, &(_, name)) in states.iter().enumerate() {
        r.push_row(vec![
            "inter-chiplet".to_string(),
            name.to_string(),
            fnum(ours_inter[i], 0),
            fnum(intel[i], 0),
            fnum(amd_inter[i], 0),
        ]);
    }

    let ours_i = ours_intra.iter().sum::<f64>() / 3.0;
    let ours_x = ours_inter.iter().sum::<f64>() / 3.0;
    let intel_x = intel.iter().sum::<f64>() / 3.0;
    let amd_x = amd_inter.iter().sum::<f64>() / 3.0;
    r.note(format!(
        "shape check: intra ({ours_i:.0}) < inter ({ours_x:.0}) for this work — {}",
        if ours_i < ours_x { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "shape check: this work's inter-chiplet latency ({ours_x:.0}) beats intel-like ({intel_x:.0}) and amd-like ({amd_x:.0}) — {}",
        if ours_x < intel_x && ours_x < amd_x { "PASS" } else { "FAIL" }
    ));
    let amd_flat = (amd_intra.iter().sum::<f64>() / 3.0 - amd_x).abs() < 0.35 * amd_x;
    r.note(format!(
        "shape check: amd-like is flat across intra/inter (every access crosses the hub, paper shows 138-140 everywhere) — {}",
        if amd_flat { "PASS" } else { "FAIL" }
    ));
    r.note("paper: ours 44/44/48 intra, 65/65/69 inter; Intel-6248 91; AMD-7742 ≈138".to_string());
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_shape_quick() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 6);
        let fails = r.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        assert_eq!(fails, 0, "{:?}", r.notes);
    }
}
