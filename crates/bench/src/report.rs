//! Experiment result containers and table rendering.

use serde::Serialize;
use std::fmt;

/// Run scale: `Quick` for CI/benches, `Full` for paper-style runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Short warmups and measurement windows; small line counts.
    Quick,
    /// Paper-style cycle counts.
    Full,
}

impl Scale {
    /// Pick `quick` or `full` by scale.
    pub fn pick(self, quick: u64, full: u64) -> u64 {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// One reproduced table or figure.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentResult {
    /// Stable id ("table07", "fig11", …).
    pub id: String,
    /// Human title echoing the paper's caption.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Formatted rows.
    pub rows: Vec<Vec<String>>,
    /// Shape checks and commentary (paper-vs-measured).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Create an empty result shell.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentResult {
            id: id.into(),
            title: title.into(),
            header: Vec::new(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Set the header row.
    pub fn with_header<S: Into<String>>(mut self, header: Vec<S>) -> Self {
        self.header = header.into_iter().map(Into::into).collect();
        self
    }

    /// Append a data row.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Append a note (shape check, observed-vs-paper commentary).
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} — {} ==", self.id, self.title)?;
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect();
            writeln!(f, "| {} |", cells.join(" | "))
        };
        if !self.header.is_empty() {
            render(f, &self.header)?;
            let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
            render(f, &sep)?;
        }
        for row in &self.rows {
            render(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  * {note}")?;
        }
        Ok(())
    }
}

/// Format a float with `digits` decimals.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }

    #[test]
    fn table_renders_aligned() {
        let mut r = ExperimentResult::new("t1", "demo").with_header(vec!["a", "bbbb"]);
        r.push_row(vec!["xxxx", "y"]);
        r.note("check passed");
        let s = r.to_string();
        assert!(s.contains("== t1 — demo =="));
        assert!(s.contains("| xxxx | y    |"));
        assert!(s.contains("* check passed"));
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.456, 2), "3.46");
    }
}
