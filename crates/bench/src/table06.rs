//! Table 6: SPECpower-ssj-2008 — power/performance characteristics.
//!
//! Throughput comes from the measured latency profiles (as in
//! Figures 12/13). Power is a parametric model where the only
//! *differentiating* term is the NoC: the bufferless multi-ring's cross
//! stations carry no VC buffers or allocators, which the paper's §3.4.2
//! credits with "reduce both circuit complexity and energy consumption".
//! Router-class power constants follow the bufferless-router literature
//! (Moscibroda & Mutlu, ISCA'09: buffered router ≈ 2-4x bufferless).

use crate::fig12_13::{all_profiles, ssj_profile};
use crate::report::{fnum, ExperimentResult, Scale};
use noc_workloads::PowerModel;

const FREQ_GHZ: f64 = 3.0;
/// Watts per CPU core at full load (identical across systems — the
/// comparison isolates the NoC).
const CORE_W: f64 = 2.2;
/// Uncore/IO base watts (identical).
const BASE_W: f64 = 45.0;
/// One bufferless cross station (this work).
const STATION_W: f64 = 0.06;
/// One buffered 5-port VC mesh router (intel-like).
const ROUTER_W: f64 = 0.24;
/// Hub-and-spoke: per-chiplet link PHY + share of the central switch.
const HUB_LINK_W: f64 = 0.9;

/// Reproduce Table 6.
pub fn run(scale: Scale) -> ExperimentResult {
    let profiles = all_profiles(scale);
    let ssj = ssj_profile();
    // Profile order: ours-96, intel-28, amd-64, ours-28, ours-64.
    let ours = &profiles[0];
    let intel = &profiles[1];
    let amd = &profiles[2];

    let noc_w = |name: &str, cores: usize| -> f64 {
        match name {
            "ours" => {
                // 2 compute dies × ~14 stations × 2 lanes + IO dies.
                let stations = (cores / 4 + 16) as f64;
                stations * STATION_W * 2.0
            }
            "intel" => (cores as f64 + 21.0) * ROUTER_W, // 7x7 mesh routers
            _ => 10.0 * HUB_LINK_W,                      // 10 chiplet links + switch
        }
    };

    let model = |p: &crate::fig12_13::LatencyProfile, kind: &str| -> (PowerModel, PowerModel) {
        let single_ops = ssj.score(p.unloaded(), FREQ_GHZ) * 1000.0;
        let pkg_ops = ssj.score(p.package_latency(&ssj), FREQ_GHZ) * p.cores as f64 * 1000.0;
        let pkg_peak_w = BASE_W + CORE_W * p.cores as f64 + noc_w(kind, p.cores);
        let pkg_idle_w = 0.35 * pkg_peak_w;
        let single_peak_w = BASE_W / 4.0 + CORE_W + noc_w(kind, p.cores) / p.cores as f64;
        (
            PowerModel {
                peak_ops: single_ops,
                idle_w: 0.35 * single_peak_w,
                peak_w: single_peak_w,
            },
            PowerModel {
                peak_ops: pkg_ops,
                idle_w: pkg_idle_w,
                peak_w: pkg_peak_w,
            },
        )
    };

    let (o1, op) = model(ours, "ours");
    let (i1, ip) = model(intel, "intel");
    let (a1, ap) = model(amd, "amd");

    let mut r = ExperimentResult::new(
        "table06",
        "SPECpower-ssj-2008 score comparison (ops/watt ladder, normalized core count)",
    )
    .with_header(vec!["platform", "1-core score", "1-package score (ops/W)"]);
    for (name, s1, sp) in [
        ("this work", &o1, &op),
        ("intel-like", &i1, &ip),
        ("amd-like", &a1, &ap),
    ] {
        r.push_row(vec![
            name.to_string(),
            fnum(s1.score(), 1),
            fnum(sp.score(), 1),
        ]);
    }
    let r1i = o1.score() / i1.score();
    let r1a = o1.score() / a1.score();
    let rpi = op.score() / ip.score();
    let rpa = op.score() / ap.score();
    r.note(format!(
        "single-core: {r1i:.2}x intel-like (paper 1.08x), {r1a:.2}x amd-like (paper 1.03x) — {}",
        if r1i > 1.0 && r1a > 1.0 {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(format!(
        "package (ops/W): {rpi:.2}x intel-like (paper 1.19x), {rpa:.2}x amd-like (paper 1.11x) — {}",
        if rpi > 1.0 && rpa > 1.0 { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table6_quick_shape() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        let fails = r.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        assert_eq!(fails, 0, "{:?}", r.notes);
    }
}
