//! Figure 3: roofline model — "the arithmetic intensity of AI is the
//! highest".

use crate::report::{fnum, ExperimentResult, Scale};
use noc_workloads::{figure3_app_points, table3_models, Machine};

/// Machines whose rooflines frame the figure.
pub fn machines() -> Vec<Machine> {
    vec![
        // Our AI processor: 64 cores × 16×16×16 cube × 2 FLOP × 2 GHz.
        Machine::new("this-work-ai", 1048.0, 3.0),
        Machine::new("a100-like", 312.0, 2.0),
        // A server CPU: ~3 TFLOP/s FP16-equivalent, 8 DDR4 channels.
        Machine::new("server-cpu", 3.2, 0.2),
    ]
}

/// Reproduce Figure 3.
pub fn run(_scale: Scale) -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "fig03",
        "Roofline model: arithmetic intensity per application class",
    )
    .with_header(vec![
        "application",
        "AI (FLOP/byte)",
        "attainable on AI-proc (TF/s)",
        "attainable on server-CPU (TF/s)",
        "bound",
    ]);
    let ms = machines();
    let ai_m = &ms[0];
    let cpu_m = &ms[2];

    let mut points = figure3_app_points();
    // Add the Table 3 model zoo as measured points.
    for m in table3_models() {
        points.push(noc_workloads::AppPoint {
            name: m.name.clone(),
            arithmetic_intensity: m.arithmetic_intensity(),
        });
    }
    points.sort_by(|a, b| {
        a.arithmetic_intensity
            .partial_cmp(&b.arithmetic_intensity)
            .expect("finite")
    });
    for p in &points {
        let bound = if p.arithmetic_intensity >= ai_m.ridge_point() {
            "compute"
        } else {
            "bandwidth"
        };
        r.push_row(vec![
            p.name.clone(),
            fnum(p.arithmetic_intensity, 2),
            fnum(ai_m.attainable_tflops(p.arithmetic_intensity), 1),
            fnum(cpu_m.attainable_tflops(p.arithmetic_intensity), 2),
            bound.to_string(),
        ]);
    }
    let max = points.last().expect("non-empty");
    let min = points.first().expect("non-empty");
    r.note(format!(
        "shape check: highest-intensity class is '{}' (AI), lowest is '{}' (general-purpose) — {}",
        max.name,
        min.name,
        if ["AI", "ResNet", "GPT", "BERT"]
            .iter()
            .any(|k| max.name.contains(k))
        {
            "PASS"
        } else {
            "FAIL"
        }
    ));
    r.note(format!(
        "AI-processor ridge point {:.0} FLOP/byte; AI training workloads sit at or above it",
        ms[0].ridge_point()
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_shape_holds() {
        let r = run(Scale::Quick);
        assert!(r.rows.len() >= 8);
        assert!(r.notes.iter().any(|n| n.contains("PASS")));
    }
}
