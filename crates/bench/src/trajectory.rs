//! `noc-bench trajectory`: the machine-readable performance trajectory.
//!
//! One run produces `BENCH_PR7.json` — a single JSON document a CI job
//! (or the next PR) can diff without parsing human tables:
//!
//! * **Workload points** — throughput, p50/p99 end-to-end latency and
//!   deflection rate for three canonical workloads (uniform low,
//!   uniform high, hotspot) on a 4-ring chain, each run with the
//!   observatory on so the snapshot/verdict counts are part of the
//!   record.
//! * **Exec sweep** — engine ticks/second for `Sequential` and
//!   `Parallel(2/4/8)`, with a fingerprint check proving the modes
//!   simulated the same network.
//! * **Metrics overhead** — best-of-N ticks/second with the observatory
//!   off vs on (period 32) on the same workload; the observatory is
//!   sold as cheap, so the regression gate holds the overhead to a few
//!   percent.
//! * **Recorder overhead** — best-of-N ticks/second with the plain
//!   observatory vs the full flight recorder (per-flow Space-Saving
//!   accounting, link counting, bounded snapshot/event retention). The
//!   flow hooks ride the hot station logic, so this point carries its
//!   own regression gate.
//! * **Transaction workloads** — the `noc-txn` layer on the 4×4 torus:
//!   a 4 KiB DMA-burst point and a rectangle-broadcast point, with
//!   per-transaction p50/p99 latency, payload throughput, the peak
//!   in-flight-window gauge from the transaction observatory, and a
//!   `Sequential` vs `Parallel(4)` fingerprint cross-check.
//!
//! Timings are wall-clock and machine-dependent; everything else in the
//! document is deterministic.

use noc_core::telemetry::{HealthConfig, NullSink, RecorderConfig};
use noc_core::topogen::GridParams;
use noc_core::{
    BridgeConfig, ExecMode, FlitClass, Network, NetworkConfig, NodeId, RingKind, TickMode,
    Topology, TopologyBuilder,
};
use noc_sim::Histogram;
use noc_txn::{TxnConfig, TxnFabric, TxnOp};
use serde::Serialize;
use std::time::Instant;

/// splitmix64, the workspace's deterministic stream of choice.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, from the top 53 bits.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Observatory sampling period used throughout the trajectory.
pub const METRICS_PERIOD: u64 = 32;

/// One workload's measured point.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadPoint {
    /// Workload name (`uniform_low` / `uniform_high` / `hotspot`).
    pub workload: String,
    /// Cycles simulated (including the drain tail).
    pub cycles: u64,
    /// Flits delivered to devices.
    pub delivered: u64,
    /// Delivered flits per cycle.
    pub throughput_flits_per_cycle: f64,
    /// Median end-to-end latency (cycles), all classes merged.
    pub p50_latency: u64,
    /// Tail end-to-end latency (cycles), all classes merged.
    pub p99_latency: u64,
    /// Deflections / (deflections + deliveries) over the whole run.
    pub deflection_rate: f64,
    /// Metrics snapshots committed by the observatory.
    pub snapshots: u64,
    /// Health verdicts the watchdogs emitted.
    pub verdicts: u64,
    /// Rules that fired, deduplicated, in first-fired order.
    pub fired_rules: Vec<String>,
}

/// Ticks/second for one execution mode.
#[derive(Debug, Clone, Serialize)]
pub struct ExecPoint {
    /// Execution mode label (`sequential`, `parallel2`, …).
    pub exec: String,
    /// Engine throughput in simulated cycles per wall-clock second.
    pub ticks_per_sec: f64,
    /// Whether this mode's `NetStats` fingerprint matched sequential.
    pub fingerprint_ok: bool,
}

/// The observatory's cost on the tick loop.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadPoint {
    /// Best-of-N ticks/second with the observatory off.
    pub plain_ticks_per_sec: f64,
    /// Best-of-N ticks/second with metrics sampling every
    /// [`METRICS_PERIOD`] cycles.
    pub metrics_ticks_per_sec: f64,
    /// Throughput lost to metrics, in percent (negative = noise): the
    /// minimum over paired interleaved repeats, so one-sided scheduler
    /// noise cannot fake an overhead.
    pub overhead_pct: f64,
    /// Timing repeats the paired minimum was taken over.
    pub repeats: u32,
}

/// The flight recorder's cost on top of the plain observatory.
#[derive(Debug, Clone, Serialize)]
pub struct RecorderOverheadPoint {
    /// Best-of-N ticks/second with only metrics sampling on.
    pub metrics_ticks_per_sec: f64,
    /// Best-of-N ticks/second with the flight recorder on (flow
    /// accounting, link sampling, snapshot/event retention).
    pub recorder_ticks_per_sec: f64,
    /// Throughput lost to the recorder, in percent (negative = noise):
    /// minimum over paired interleaved repeats, like
    /// [`OverheadPoint::overhead_pct`].
    pub overhead_pct: f64,
    /// Timing repeats the paired minimum was taken over.
    pub repeats: u32,
}

/// One generated-topology scaling point: engine throughput on a K×K
/// torus built by [`GridParams`], with a sequential-vs-parallel
/// fingerprint cross-check.
#[derive(Debug, Clone, Serialize)]
pub struct TopoPoint {
    /// Fabric label (`torus-2x2`, `torus-4x4`, `torus-8x8`).
    pub fabric: String,
    /// Chiplets in the fabric.
    pub chiplets: usize,
    /// Total cross stations.
    pub stations: u64,
    /// Engine throughput in simulated cycles per wall-clock second
    /// (sequential fast tick).
    pub ticks_per_sec: f64,
    /// Flits delivered over the run.
    pub delivered: u64,
    /// Delivered flits per cycle.
    pub throughput_flits_per_cycle: f64,
    /// Deflections / (deflections + deliveries).
    pub deflection_rate: f64,
    /// Whether `Parallel(4)` reproduced the sequential fingerprint on
    /// the same schedule.
    pub fingerprint_ok: bool,
}

/// One transaction-layer measured point: a `noc-txn` workload driven
/// to quiescence on a generated 4×4 torus, with the transaction
/// observatory sampling and a sequential-vs-parallel fingerprint
/// cross-check.
#[derive(Debug, Clone, Serialize)]
pub struct TxnPoint {
    /// Workload name (`dma_burst` / `broadcast`).
    pub workload: String,
    /// Fabric label (`torus-4x4`).
    pub fabric: String,
    /// Transactions completed (each broadcast counts once).
    pub transactions: u64,
    /// Cycles to quiescence.
    pub cycles: u64,
    /// Median per-transaction latency (submit → completion), cycles.
    pub p50_latency: u64,
    /// Tail per-transaction latency, cycles.
    pub p99_latency: u64,
    /// Payload bytes pushed into the network per cycle.
    pub bytes_per_cycle: f64,
    /// Peak summed request-window occupancy seen by the observatory.
    pub window_peak: u64,
    /// Transaction-observatory snapshots committed.
    pub snapshots: u64,
    /// Whether `Parallel(4)` reproduced the sequential transaction
    /// fingerprint (network digest + counters + latency sums).
    pub fingerprint_ok: bool,
}

/// The whole `BENCH_PR7.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryReport {
    /// Report schema tag.
    pub bench: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Per-workload measured points.
    pub workloads: Vec<WorkloadPoint>,
    /// Ticks/second per execution mode.
    pub exec_sweep: Vec<ExecPoint>,
    /// Generated-topology scaling sweep (2×2 → 8×8 torus).
    pub topo_scaling: Vec<TopoPoint>,
    /// Transaction-layer points (DMA burst + broadcast on the 4×4
    /// torus).
    pub txn_workloads: Vec<TxnPoint>,
    /// Observatory cost measurement.
    pub overhead: OverheadPoint,
    /// Flight-recorder cost measurement (relative to plain metrics).
    pub recorder_overhead: RecorderOverheadPoint,
}

/// The trajectory system: four 16-station rings chained by L2 bridges,
/// six devices per ring — big enough to exercise bridges, deflections
/// and the observatory, small enough for CI.
pub fn chain_topology() -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let dies = [b.add_chiplet("die0"), b.add_chiplet("die1")];
    let mut rings = Vec::new();
    for i in 0..4 {
        rings.push(
            b.add_ring(dies[i / 2], RingKind::Full, 16)
                .expect("ring fits"),
        );
    }
    let mut devices = Vec::new();
    for (ri, &ring) in rings.iter().enumerate() {
        for d in 0..6u16 {
            // Stations 0..=10 step 2; station 12+ stays free for bridges.
            let id = b
                .add_node(format!("dev{ri}_{d}"), ring, d * 2)
                .expect("device placement");
            devices.push(id);
        }
    }
    for w in 0..rings.len() - 1 {
        b.add_bridge(BridgeConfig::l2(), rings[w], 13, rings[w + 1], 15)
            .expect("bridge placement");
    }
    (b.build().expect("valid trajectory topology"), devices)
}

/// Destination picker for one workload shape.
enum Pattern {
    /// Uniform random destination.
    Uniform,
    /// Everything targets device 0 (the classic hotspot).
    Hotspot,
}

/// Drive the chain system for `cycles` of open-loop traffic at
/// `rate` flits/device/cycle, then drain.
fn drive(net: &mut Network, devices: &[NodeId], cycles: u64, rate: f64, pattern: &Pattern) {
    let mut rng = Rng(0x7261_6a65_6374_6f72); // fixed: the trajectory seed
    let mut token = 0u64;
    for cycle in 0..cycles + 4 * cycles.max(2_000) {
        if cycle < cycles {
            for (si, &src) in devices.iter().enumerate() {
                if rng.unit() >= rate {
                    continue;
                }
                let dst = match pattern {
                    Pattern::Uniform => {
                        devices[(si + 1 + rng.below(devices.len() as u64 - 1) as usize)
                            % devices.len()]
                    }
                    Pattern::Hotspot => {
                        if si == 0 {
                            devices[1 + rng.below(devices.len() as u64 - 1) as usize]
                        } else {
                            devices[0]
                        }
                    }
                };
                token += 1;
                let _ = net.enqueue(src, dst, FlitClass::Data, 64, token);
            }
        }
        net.tick();
        for &d in devices {
            while net.pop_delivered(d).is_some() {}
        }
        if cycle >= cycles && net.in_flight() == 0 {
            break;
        }
    }
}

/// Measure one workload point with the observatory on.
fn workload_point(name: &str, cycles: u64, rate: f64, pattern: Pattern) -> WorkloadPoint {
    let (topo, devices) = chain_topology();
    let mut net = Network::new(topo, NetworkConfig::default());
    net.enable_metrics(METRICS_PERIOD);
    drive(&mut net, &devices, cycles, rate, &pattern);
    net.finish_metrics();

    let stats = net.stats();
    let elapsed = net.now().raw();
    let mut latency = Histogram::new("total_latency");
    for h in &stats.total_latency {
        latency.merge(h);
    }
    let delivered = stats.delivered.get();
    let deflections = stats.deflections.get();
    let monitor = net.health().expect("observatory enabled");
    let mut fired_rules: Vec<String> = Vec::new();
    for v in monitor.verdicts() {
        let rule = v.rule.to_string();
        if !fired_rules.contains(&rule) {
            fired_rules.push(rule);
        }
    }
    WorkloadPoint {
        workload: name.to_string(),
        cycles: elapsed,
        delivered,
        throughput_flits_per_cycle: if elapsed == 0 {
            0.0
        } else {
            delivered as f64 / elapsed as f64
        },
        p50_latency: latency.percentile(0.50),
        p99_latency: latency.percentile(0.99),
        deflection_rate: if deflections + delivered == 0 {
            0.0
        } else {
            deflections as f64 / (deflections + delivered) as f64
        },
        snapshots: net.metrics().expect("enabled").len() as u64,
        verdicts: monitor.verdicts().len() as u64,
        fired_rules,
    }
}

/// Instrumentation level for a timed run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Instrument {
    /// No observatory at all.
    Plain,
    /// Metrics sampling every [`METRICS_PERIOD`] cycles.
    Metrics,
    /// Full flight recorder: metrics plus flow accounting, link
    /// counting and bounded snapshot/event retention.
    Recorder,
}

/// Time one full uniform-high run, returning ticks/second and the
/// resulting stats fingerprint.
fn timed_run(cycles: u64, exec: ExecMode, instrument: Instrument) -> (f64, Vec<u64>) {
    let (topo, devices) = chain_topology();
    let mut net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    match instrument {
        Instrument::Plain => {}
        Instrument::Metrics => net.enable_metrics(METRICS_PERIOD),
        Instrument::Recorder => net.enable_flight_recorder(
            METRICS_PERIOD,
            HealthConfig::default(),
            RecorderConfig::default(),
        ),
    }
    let start = Instant::now();
    drive(&mut net, &devices, cycles, 0.4, &Pattern::Uniform);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (net.now().raw() as f64 / secs, net.stats().fingerprint())
}

/// Measure one generated-topology scaling point: a K×K torus from
/// [`GridParams`] driven with uniform traffic, timed sequentially, then
/// re-run under `Parallel(4)` to cross-check the fingerprint.
fn topo_point(k: u16, cycles: u64) -> TopoPoint {
    let params = GridParams::torus(k, k)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65);
    let spec = params.generate().expect("torus generates");
    let run = |exec: ExecMode| -> (f64, u64, Network) {
        let (topo, names) = spec.compile().expect("torus compiles");
        let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
        named.sort();
        let devices: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
        let mut net = Network::with_exec(
            topo,
            NetworkConfig::default(),
            TickMode::Fast,
            exec,
            NullSink,
        );
        let start = Instant::now();
        drive(&mut net, &devices, cycles, 0.1, &Pattern::Uniform);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let elapsed = net.now().raw();
        (elapsed as f64 / secs, elapsed, net)
    };
    let (tps, elapsed, net) = run(ExecMode::Sequential);
    let (_, _, par) = run(ExecMode::Parallel(4));
    let stats = net.stats();
    let delivered = stats.delivered.get();
    let deflections = stats.deflections.get();
    TopoPoint {
        fabric: format!("torus-{k}x{k}"),
        chiplets: (k as usize) * (k as usize),
        stations: net.topology().total_stations(),
        ticks_per_sec: tps,
        delivered,
        throughput_flits_per_cycle: if elapsed == 0 {
            0.0
        } else {
            delivered as f64 / elapsed as f64
        },
        deflection_rate: if deflections + delivered == 0 {
            0.0
        } else {
            deflections as f64 / (deflections + delivered) as f64
        },
        fingerprint_ok: net.fingerprint() == par.fingerprint(),
    }
}

/// Which transaction workload a [`TxnPoint`] measures.
enum TxnShape {
    /// 4 KiB non-posted DMA writes (acknowledged bursts) to the device
    /// half the fabric away — non-posted so the run also exercises the
    /// request window and its occupancy gauge.
    DmaBurst,
    /// 1 KiB broadcasts from rotating roots to eight spread targets.
    Broadcast,
}

/// Everything one transaction run yields.
struct TxnRun {
    fingerprint: Vec<u64>,
    cycles: u64,
    completed: u64,
    p50: u64,
    p99: u64,
    bytes_sent: u64,
    snapshots: u64,
    window_peak: u64,
}

/// Drive `txns` transactions of one shape to quiescence on the 4×4
/// torus under the given exec mode, with the transaction observatory
/// sampling every [`METRICS_PERIOD`] cycles.
fn txn_run(shape: &TxnShape, txns: usize, exec: ExecMode) -> TxnRun {
    let (topo, names) = GridParams::torus(4, 4)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65)
        .generate()
        .expect("torus generates")
        .compile()
        .expect("torus compiles");
    // Sorted-by-name device order: `compile` hands back a HashMap, and
    // its iteration order must never leak into the traffic schedule.
    let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
    named.sort();
    let devs: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
    let net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    let cfg = TxnConfig {
        metrics_period: METRICS_PERIOD,
        ..TxnConfig::default()
    };
    let mut fab = TxnFabric::new(net, cfg);
    let n = devs.len();
    let mut accepted = 0usize;
    let mut guard = 0u64;
    while accepted < txns {
        let src = devs[accepted % n];
        let ok = match shape {
            TxnShape::DmaBurst => fab
                .submit(
                    src,
                    devs[(accepted + n / 2) % n],
                    TxnOp::Write {
                        bytes: 4096,
                        posted: false,
                    },
                )
                .expect("generated endpoints are valid")
                .is_some(),
            TxnShape::Broadcast => {
                let targets: Vec<NodeId> = (0..8)
                    .map(|t| devs[(accepted + 1 + t * (n / 8)) % n])
                    .collect();
                fab.submit_broadcast(src, &targets, 1024)
                    .expect("generated broadcasts are valid")
                    .is_some()
            }
        };
        if ok {
            accepted += 1;
        }
        fab.tick();
        guard += 1;
        assert!(guard < 2_000_000, "transaction trajectory point starved");
    }
    assert!(
        fab.run_until_quiet(2_000_000),
        "transaction trajectory point failed to quiesce"
    );
    // Pad to the next sampling boundary so the last window commits.
    while fab.now().raw() % METRICS_PERIOD != 0 {
        fab.tick();
    }
    let snaps = fab.txn_snapshots();
    let snapshots = snaps.len() as u64;
    let window_peak = snaps.iter().map(|s| s.window_occupancy).max().unwrap_or(0);
    let c = *fab.counters();
    TxnRun {
        fingerprint: fab.fingerprint(),
        cycles: fab.now().raw(),
        completed: c.completed(),
        p50: fab.latency().percentile(0.50),
        p99: fab.latency().percentile(0.99),
        bytes_sent: c.bytes_sent,
        snapshots,
        window_peak,
    }
}

/// Measure one transaction point, cross-checking `Parallel(4)` against
/// the sequential run byte-for-byte.
fn txn_point(shape: TxnShape, txns: usize) -> TxnPoint {
    let seq = txn_run(&shape, txns, ExecMode::Sequential);
    let par = txn_run(&shape, txns, ExecMode::Parallel(4));
    TxnPoint {
        workload: match shape {
            TxnShape::DmaBurst => "dma_burst",
            TxnShape::Broadcast => "broadcast",
        }
        .to_string(),
        fabric: "torus-4x4".to_string(),
        transactions: seq.completed,
        cycles: seq.cycles,
        p50_latency: seq.p50,
        p99_latency: seq.p99,
        bytes_per_cycle: if seq.cycles == 0 {
            0.0
        } else {
            seq.bytes_sent as f64 / seq.cycles as f64
        },
        window_peak: seq.window_peak,
        snapshots: seq.snapshots,
        fingerprint_ok: seq.fingerprint == par.fingerprint,
    }
}

/// Best-of-N: the max ticks/second observed. Scheduling noise only ever
/// slows a run down, so the fastest repeat is the least contaminated —
/// comparing best against best is far more stable than medians on the
/// short runs a CI box allows.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::MIN, f64::max)
}

/// Run the whole trajectory. `quick` trades cycle counts and timing
/// repeats for CI wall-clock.
pub fn run(quick: bool) -> TrajectoryReport {
    let cycles: u64 = if quick { 4_000 } else { 20_000 };
    let repeats: u32 = if quick { 5 } else { 7 };

    let workloads = vec![
        workload_point("uniform_low", cycles, 0.05, Pattern::Uniform),
        workload_point("uniform_high", cycles, 0.4, Pattern::Uniform),
        workload_point("hotspot", cycles, 0.15, Pattern::Hotspot),
    ];

    let mut exec_sweep = Vec::new();
    let mut base_fp: Option<Vec<u64>> = None;
    for (label, exec) in [
        ("sequential", ExecMode::Sequential),
        ("parallel2", ExecMode::Parallel(2)),
        ("parallel4", ExecMode::Parallel(4)),
        ("parallel8", ExecMode::Parallel(8)),
    ] {
        let (tps, fp) = timed_run(cycles, exec, Instrument::Plain);
        let fingerprint_ok = match &base_fp {
            None => {
                base_fp = Some(fp);
                true
            }
            Some(base) => base == &fp,
        };
        exec_sweep.push(ExecPoint {
            exec: label.to_string(),
            ticks_per_sec: tps,
            fingerprint_ok,
        });
    }

    // Interleave the off/on/recorder repeats so cache and frequency
    // drift hit every side equally. The overhead gates compare numbers
    // a few percent apart, which a 4k-cycle (~20 ms) timing window
    // cannot resolve — so these runs always use the full cycle count,
    // even in quick mode (a few seconds total, still fine for CI).
    // Each overhead is then taken as the *minimum over paired repeats*:
    // scheduler noise only ever slows a run down, so the repeat where
    // adjacent runs saw the quietest machine is the closest estimate of
    // the true instrumentation cost — best-of on each side separately
    // still flags a false overhead whenever one side got one lucky run.
    let overhead_cycles: u64 = 20_000;
    let mut plain_runs = Vec::new();
    let mut metrics_runs = Vec::new();
    let mut metrics_over = Vec::new();
    let mut recorder_runs = Vec::new();
    let mut recorder_over = Vec::new();
    for _ in 0..repeats {
        let plain = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Plain).0;
        let metrics = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Metrics).0;
        let recorder = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Recorder).0;
        plain_runs.push(plain);
        metrics_runs.push(metrics);
        recorder_runs.push(recorder);
        metrics_over.push((1.0 - metrics / plain) * 100.0);
        recorder_over.push((1.0 - recorder / metrics) * 100.0);
    }
    let overhead = OverheadPoint {
        plain_ticks_per_sec: best(plain_runs),
        metrics_ticks_per_sec: best(metrics_runs),
        overhead_pct: metrics_over.iter().copied().fold(f64::INFINITY, f64::min),
        repeats,
    };
    let recorder_overhead = RecorderOverheadPoint {
        metrics_ticks_per_sec: overhead.metrics_ticks_per_sec,
        recorder_ticks_per_sec: best(recorder_runs),
        overhead_pct: recorder_over.iter().copied().fold(f64::INFINITY, f64::min),
        repeats,
    };

    // Generated-topology scaling: the same engine, on fabrics the
    // topogen layer emits, from a toy 2×2 torus up to the 64-chiplet,
    // 1024-station acceptance fabric. The injection cycle count shrinks
    // with fabric size so each point does comparable total work.
    let topo_cycles: u64 = if quick { 400 } else { 2_000 };
    let topo_scaling = [2u16, 4, 8]
        .into_iter()
        .map(|k| topo_point(k, topo_cycles))
        .collect();

    // Transaction-layer points: multi-flit DMA bursts and rectangle
    // broadcasts over the same generated 4×4 torus the scaling sweep
    // uses, driven through `noc-txn` rather than raw flits.
    let txn_count = if quick { 40 } else { 150 };
    let txn_workloads = vec![
        txn_point(TxnShape::DmaBurst, txn_count),
        txn_point(TxnShape::Broadcast, txn_count),
    ];

    TrajectoryReport {
        bench: "noc-bench trajectory".to_string(),
        quick,
        workloads,
        exec_sweep,
        topo_scaling,
        txn_workloads,
        overhead,
        recorder_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trajectory_is_complete_and_consistent() {
        let report = run(true);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.delivered > 0, "{}: no traffic", w.workload);
            assert!(w.snapshots > 0, "{}: no snapshots", w.workload);
            assert!(
                w.p50_latency <= w.p99_latency,
                "{}: percentiles out of order",
                w.workload
            );
            assert!(
                !w.fired_rules.iter().any(|r| r == "liveness-stall"),
                "{}: liveness false positive ({:?})",
                w.workload,
                w.fired_rules
            );
        }
        // Hotspot concentrates ejection pressure: deflection rate must
        // exceed the low-uniform point's.
        assert!(
            report.workloads[2].deflection_rate >= report.workloads[0].deflection_rate,
            "hotspot should deflect at least as much as uniform_low"
        );
        assert_eq!(report.exec_sweep.len(), 4);
        for e in &report.exec_sweep {
            assert!(e.fingerprint_ok, "{}: fingerprint diverged", e.exec);
            assert!(e.ticks_per_sec > 0.0);
        }
        assert_eq!(report.topo_scaling.len(), 3);
        let expected = [(4usize, 64u64), (16, 256), (64, 1024)];
        for (t, (chiplets, stations)) in report.topo_scaling.iter().zip(expected) {
            assert_eq!(t.chiplets, chiplets, "{}: chiplet census", t.fabric);
            assert_eq!(t.stations, stations, "{}: station census", t.fabric);
            assert!(t.delivered > 0, "{}: no traffic", t.fabric);
            assert!(t.ticks_per_sec > 0.0, "{}: no throughput", t.fabric);
            assert!(
                t.fingerprint_ok,
                "{}: parallel fingerprint diverged",
                t.fabric
            );
        }
        assert_eq!(report.txn_workloads.len(), 2);
        for t in &report.txn_workloads {
            assert_eq!(t.fabric, "torus-4x4", "{}: wrong fabric", t.workload);
            assert_eq!(t.transactions, 40, "{}: transaction census", t.workload);
            assert!(t.cycles > 0, "{}: no cycles", t.workload);
            assert!(t.snapshots > 0, "{}: no txn snapshots", t.workload);
            assert!(t.bytes_per_cycle > 0.0, "{}: no payload", t.workload);
            assert!(
                0 < t.p50_latency && t.p50_latency <= t.p99_latency,
                "{}: percentiles out of order",
                t.workload
            );
            assert!(
                t.fingerprint_ok,
                "{}: parallel transaction fingerprint diverged",
                t.workload
            );
        }
        // The non-posted DMA point must have exercised the request
        // window (posted broadcasts bypass it by design).
        assert!(
            report.txn_workloads[0].window_peak > 0,
            "dma_burst: window gauge never moved"
        );
        assert!(report.overhead.plain_ticks_per_sec > 0.0);
        assert!(report.recorder_overhead.metrics_ticks_per_sec > 0.0);
        assert!(report.recorder_overhead.recorder_ticks_per_sec > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"bench\""));
        assert!(json.contains("\"recorder_overhead\""));
    }
}
