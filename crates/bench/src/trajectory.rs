//! `noc-bench trajectory`: the machine-readable performance trajectory.
//!
//! One run produces `BENCH_PR5.json` — a single JSON document a CI job
//! (or the next PR) can diff without parsing human tables:
//!
//! * **Workload points** — throughput, p50/p99 end-to-end latency and
//!   deflection rate for three canonical workloads (uniform low,
//!   uniform high, hotspot) on a 4-ring chain, each run with the
//!   observatory on so the snapshot/verdict counts are part of the
//!   record.
//! * **Exec sweep** — engine ticks/second for `Sequential` and
//!   `Parallel(2/4/8)`, with a fingerprint check proving the modes
//!   simulated the same network.
//! * **Metrics overhead** — best-of-N ticks/second with the observatory
//!   off vs on (period 32) on the same workload; the observatory is
//!   sold as cheap, so the regression gate holds the overhead to a few
//!   percent.
//! * **Recorder overhead** — best-of-N ticks/second with the plain
//!   observatory vs the full flight recorder (per-flow Space-Saving
//!   accounting, link counting, bounded snapshot/event retention). The
//!   flow hooks ride the hot station logic, so this point carries its
//!   own regression gate.
//!
//! Timings are wall-clock and machine-dependent; everything else in the
//! document is deterministic.

use noc_core::telemetry::{HealthConfig, NullSink, RecorderConfig};
use noc_core::topogen::GridParams;
use noc_core::{
    BridgeConfig, ExecMode, FlitClass, Network, NetworkConfig, NodeId, RingKind, TickMode,
    Topology, TopologyBuilder,
};
use noc_sim::Histogram;
use serde::Serialize;
use std::time::Instant;

/// splitmix64, the workspace's deterministic stream of choice.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`, from the top 53 bits.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Observatory sampling period used throughout the trajectory.
pub const METRICS_PERIOD: u64 = 32;

/// One workload's measured point.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadPoint {
    /// Workload name (`uniform_low` / `uniform_high` / `hotspot`).
    pub workload: String,
    /// Cycles simulated (including the drain tail).
    pub cycles: u64,
    /// Flits delivered to devices.
    pub delivered: u64,
    /// Delivered flits per cycle.
    pub throughput_flits_per_cycle: f64,
    /// Median end-to-end latency (cycles), all classes merged.
    pub p50_latency: u64,
    /// Tail end-to-end latency (cycles), all classes merged.
    pub p99_latency: u64,
    /// Deflections / (deflections + deliveries) over the whole run.
    pub deflection_rate: f64,
    /// Metrics snapshots committed by the observatory.
    pub snapshots: u64,
    /// Health verdicts the watchdogs emitted.
    pub verdicts: u64,
    /// Rules that fired, deduplicated, in first-fired order.
    pub fired_rules: Vec<String>,
}

/// Ticks/second for one execution mode.
#[derive(Debug, Clone, Serialize)]
pub struct ExecPoint {
    /// Execution mode label (`sequential`, `parallel2`, …).
    pub exec: String,
    /// Engine throughput in simulated cycles per wall-clock second.
    pub ticks_per_sec: f64,
    /// Whether this mode's `NetStats` fingerprint matched sequential.
    pub fingerprint_ok: bool,
}

/// The observatory's cost on the tick loop.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadPoint {
    /// Best-of-N ticks/second with the observatory off.
    pub plain_ticks_per_sec: f64,
    /// Best-of-N ticks/second with metrics sampling every
    /// [`METRICS_PERIOD`] cycles.
    pub metrics_ticks_per_sec: f64,
    /// Throughput lost to metrics, in percent (negative = noise): the
    /// minimum over paired interleaved repeats, so one-sided scheduler
    /// noise cannot fake an overhead.
    pub overhead_pct: f64,
    /// Timing repeats the paired minimum was taken over.
    pub repeats: u32,
}

/// The flight recorder's cost on top of the plain observatory.
#[derive(Debug, Clone, Serialize)]
pub struct RecorderOverheadPoint {
    /// Best-of-N ticks/second with only metrics sampling on.
    pub metrics_ticks_per_sec: f64,
    /// Best-of-N ticks/second with the flight recorder on (flow
    /// accounting, link sampling, snapshot/event retention).
    pub recorder_ticks_per_sec: f64,
    /// Throughput lost to the recorder, in percent (negative = noise):
    /// minimum over paired interleaved repeats, like
    /// [`OverheadPoint::overhead_pct`].
    pub overhead_pct: f64,
    /// Timing repeats the paired minimum was taken over.
    pub repeats: u32,
}

/// One generated-topology scaling point: engine throughput on a K×K
/// torus built by [`GridParams`], with a sequential-vs-parallel
/// fingerprint cross-check.
#[derive(Debug, Clone, Serialize)]
pub struct TopoPoint {
    /// Fabric label (`torus-2x2`, `torus-4x4`, `torus-8x8`).
    pub fabric: String,
    /// Chiplets in the fabric.
    pub chiplets: usize,
    /// Total cross stations.
    pub stations: u64,
    /// Engine throughput in simulated cycles per wall-clock second
    /// (sequential fast tick).
    pub ticks_per_sec: f64,
    /// Flits delivered over the run.
    pub delivered: u64,
    /// Delivered flits per cycle.
    pub throughput_flits_per_cycle: f64,
    /// Deflections / (deflections + deliveries).
    pub deflection_rate: f64,
    /// Whether `Parallel(4)` reproduced the sequential fingerprint on
    /// the same schedule.
    pub fingerprint_ok: bool,
}

/// The whole `BENCH_PR5.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct TrajectoryReport {
    /// Report schema tag.
    pub bench: String,
    /// Whether this was a `--quick` run.
    pub quick: bool,
    /// Per-workload measured points.
    pub workloads: Vec<WorkloadPoint>,
    /// Ticks/second per execution mode.
    pub exec_sweep: Vec<ExecPoint>,
    /// Generated-topology scaling sweep (2×2 → 8×8 torus).
    pub topo_scaling: Vec<TopoPoint>,
    /// Observatory cost measurement.
    pub overhead: OverheadPoint,
    /// Flight-recorder cost measurement (relative to plain metrics).
    pub recorder_overhead: RecorderOverheadPoint,
}

/// The trajectory system: four 16-station rings chained by L2 bridges,
/// six devices per ring — big enough to exercise bridges, deflections
/// and the observatory, small enough for CI.
pub fn chain_topology() -> (Topology, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let dies = [b.add_chiplet("die0"), b.add_chiplet("die1")];
    let mut rings = Vec::new();
    for i in 0..4 {
        rings.push(
            b.add_ring(dies[i / 2], RingKind::Full, 16)
                .expect("ring fits"),
        );
    }
    let mut devices = Vec::new();
    for (ri, &ring) in rings.iter().enumerate() {
        for d in 0..6u16 {
            // Stations 0..=10 step 2; station 12+ stays free for bridges.
            let id = b
                .add_node(format!("dev{ri}_{d}"), ring, d * 2)
                .expect("device placement");
            devices.push(id);
        }
    }
    for w in 0..rings.len() - 1 {
        b.add_bridge(BridgeConfig::l2(), rings[w], 13, rings[w + 1], 15)
            .expect("bridge placement");
    }
    (b.build().expect("valid trajectory topology"), devices)
}

/// Destination picker for one workload shape.
enum Pattern {
    /// Uniform random destination.
    Uniform,
    /// Everything targets device 0 (the classic hotspot).
    Hotspot,
}

/// Drive the chain system for `cycles` of open-loop traffic at
/// `rate` flits/device/cycle, then drain.
fn drive(net: &mut Network, devices: &[NodeId], cycles: u64, rate: f64, pattern: &Pattern) {
    let mut rng = Rng(0x7261_6a65_6374_6f72); // fixed: the trajectory seed
    let mut token = 0u64;
    for cycle in 0..cycles + 4 * cycles.max(2_000) {
        if cycle < cycles {
            for (si, &src) in devices.iter().enumerate() {
                if rng.unit() >= rate {
                    continue;
                }
                let dst = match pattern {
                    Pattern::Uniform => {
                        devices[(si + 1 + rng.below(devices.len() as u64 - 1) as usize)
                            % devices.len()]
                    }
                    Pattern::Hotspot => {
                        if si == 0 {
                            devices[1 + rng.below(devices.len() as u64 - 1) as usize]
                        } else {
                            devices[0]
                        }
                    }
                };
                token += 1;
                let _ = net.enqueue(src, dst, FlitClass::Data, 64, token);
            }
        }
        net.tick();
        for &d in devices {
            while net.pop_delivered(d).is_some() {}
        }
        if cycle >= cycles && net.in_flight() == 0 {
            break;
        }
    }
}

/// Measure one workload point with the observatory on.
fn workload_point(name: &str, cycles: u64, rate: f64, pattern: Pattern) -> WorkloadPoint {
    let (topo, devices) = chain_topology();
    let mut net = Network::new(topo, NetworkConfig::default());
    net.enable_metrics(METRICS_PERIOD);
    drive(&mut net, &devices, cycles, rate, &pattern);
    net.finish_metrics();

    let stats = net.stats();
    let elapsed = net.now().raw();
    let mut latency = Histogram::new("total_latency");
    for h in &stats.total_latency {
        latency.merge(h);
    }
    let delivered = stats.delivered.get();
    let deflections = stats.deflections.get();
    let monitor = net.health().expect("observatory enabled");
    let mut fired_rules: Vec<String> = Vec::new();
    for v in monitor.verdicts() {
        let rule = v.rule.to_string();
        if !fired_rules.contains(&rule) {
            fired_rules.push(rule);
        }
    }
    WorkloadPoint {
        workload: name.to_string(),
        cycles: elapsed,
        delivered,
        throughput_flits_per_cycle: if elapsed == 0 {
            0.0
        } else {
            delivered as f64 / elapsed as f64
        },
        p50_latency: latency.percentile(0.50),
        p99_latency: latency.percentile(0.99),
        deflection_rate: if deflections + delivered == 0 {
            0.0
        } else {
            deflections as f64 / (deflections + delivered) as f64
        },
        snapshots: net.metrics().expect("enabled").len() as u64,
        verdicts: monitor.verdicts().len() as u64,
        fired_rules,
    }
}

/// Instrumentation level for a timed run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Instrument {
    /// No observatory at all.
    Plain,
    /// Metrics sampling every [`METRICS_PERIOD`] cycles.
    Metrics,
    /// Full flight recorder: metrics plus flow accounting, link
    /// counting and bounded snapshot/event retention.
    Recorder,
}

/// Time one full uniform-high run, returning ticks/second and the
/// resulting stats fingerprint.
fn timed_run(cycles: u64, exec: ExecMode, instrument: Instrument) -> (f64, Vec<u64>) {
    let (topo, devices) = chain_topology();
    let mut net = Network::with_exec(
        topo,
        NetworkConfig::default(),
        TickMode::Fast,
        exec,
        NullSink,
    );
    match instrument {
        Instrument::Plain => {}
        Instrument::Metrics => net.enable_metrics(METRICS_PERIOD),
        Instrument::Recorder => net.enable_flight_recorder(
            METRICS_PERIOD,
            HealthConfig::default(),
            RecorderConfig::default(),
        ),
    }
    let start = Instant::now();
    drive(&mut net, &devices, cycles, 0.4, &Pattern::Uniform);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (net.now().raw() as f64 / secs, net.stats().fingerprint())
}

/// Measure one generated-topology scaling point: a K×K torus from
/// [`GridParams`] driven with uniform traffic, timed sequentially, then
/// re-run under `Parallel(4)` to cross-check the fingerprint.
fn topo_point(k: u16, cycles: u64) -> TopoPoint {
    let params = GridParams::torus(k, k)
        .with_stations(16)
        .with_devices(2)
        .with_seed(0x7261_6a65);
    let spec = params.generate().expect("torus generates");
    let run = |exec: ExecMode| -> (f64, u64, Network) {
        let (topo, names) = spec.compile().expect("torus compiles");
        let mut named: Vec<(String, NodeId)> = names.into_iter().collect();
        named.sort();
        let devices: Vec<NodeId> = named.into_iter().map(|(_, id)| id).collect();
        let mut net = Network::with_exec(
            topo,
            NetworkConfig::default(),
            TickMode::Fast,
            exec,
            NullSink,
        );
        let start = Instant::now();
        drive(&mut net, &devices, cycles, 0.1, &Pattern::Uniform);
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        let elapsed = net.now().raw();
        (elapsed as f64 / secs, elapsed, net)
    };
    let (tps, elapsed, net) = run(ExecMode::Sequential);
    let (_, _, par) = run(ExecMode::Parallel(4));
    let stats = net.stats();
    let delivered = stats.delivered.get();
    let deflections = stats.deflections.get();
    TopoPoint {
        fabric: format!("torus-{k}x{k}"),
        chiplets: (k as usize) * (k as usize),
        stations: net.topology().total_stations(),
        ticks_per_sec: tps,
        delivered,
        throughput_flits_per_cycle: if elapsed == 0 {
            0.0
        } else {
            delivered as f64 / elapsed as f64
        },
        deflection_rate: if deflections + delivered == 0 {
            0.0
        } else {
            deflections as f64 / (deflections + delivered) as f64
        },
        fingerprint_ok: net.fingerprint() == par.fingerprint(),
    }
}

/// Best-of-N: the max ticks/second observed. Scheduling noise only ever
/// slows a run down, so the fastest repeat is the least contaminated —
/// comparing best against best is far more stable than medians on the
/// short runs a CI box allows.
fn best(xs: Vec<f64>) -> f64 {
    xs.into_iter().fold(f64::MIN, f64::max)
}

/// Run the whole trajectory. `quick` trades cycle counts and timing
/// repeats for CI wall-clock.
pub fn run(quick: bool) -> TrajectoryReport {
    let cycles: u64 = if quick { 4_000 } else { 20_000 };
    let repeats: u32 = if quick { 5 } else { 7 };

    let workloads = vec![
        workload_point("uniform_low", cycles, 0.05, Pattern::Uniform),
        workload_point("uniform_high", cycles, 0.4, Pattern::Uniform),
        workload_point("hotspot", cycles, 0.15, Pattern::Hotspot),
    ];

    let mut exec_sweep = Vec::new();
    let mut base_fp: Option<Vec<u64>> = None;
    for (label, exec) in [
        ("sequential", ExecMode::Sequential),
        ("parallel2", ExecMode::Parallel(2)),
        ("parallel4", ExecMode::Parallel(4)),
        ("parallel8", ExecMode::Parallel(8)),
    ] {
        let (tps, fp) = timed_run(cycles, exec, Instrument::Plain);
        let fingerprint_ok = match &base_fp {
            None => {
                base_fp = Some(fp);
                true
            }
            Some(base) => base == &fp,
        };
        exec_sweep.push(ExecPoint {
            exec: label.to_string(),
            ticks_per_sec: tps,
            fingerprint_ok,
        });
    }

    // Interleave the off/on/recorder repeats so cache and frequency
    // drift hit every side equally. The overhead gates compare numbers
    // a few percent apart, which a 4k-cycle (~20 ms) timing window
    // cannot resolve — so these runs always use the full cycle count,
    // even in quick mode (a few seconds total, still fine for CI).
    // Each overhead is then taken as the *minimum over paired repeats*:
    // scheduler noise only ever slows a run down, so the repeat where
    // adjacent runs saw the quietest machine is the closest estimate of
    // the true instrumentation cost — best-of on each side separately
    // still flags a false overhead whenever one side got one lucky run.
    let overhead_cycles: u64 = 20_000;
    let mut plain_runs = Vec::new();
    let mut metrics_runs = Vec::new();
    let mut metrics_over = Vec::new();
    let mut recorder_runs = Vec::new();
    let mut recorder_over = Vec::new();
    for _ in 0..repeats {
        let plain = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Plain).0;
        let metrics = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Metrics).0;
        let recorder = timed_run(overhead_cycles, ExecMode::Sequential, Instrument::Recorder).0;
        plain_runs.push(plain);
        metrics_runs.push(metrics);
        recorder_runs.push(recorder);
        metrics_over.push((1.0 - metrics / plain) * 100.0);
        recorder_over.push((1.0 - recorder / metrics) * 100.0);
    }
    let overhead = OverheadPoint {
        plain_ticks_per_sec: best(plain_runs),
        metrics_ticks_per_sec: best(metrics_runs),
        overhead_pct: metrics_over.iter().copied().fold(f64::INFINITY, f64::min),
        repeats,
    };
    let recorder_overhead = RecorderOverheadPoint {
        metrics_ticks_per_sec: overhead.metrics_ticks_per_sec,
        recorder_ticks_per_sec: best(recorder_runs),
        overhead_pct: recorder_over.iter().copied().fold(f64::INFINITY, f64::min),
        repeats,
    };

    // Generated-topology scaling: the same engine, on fabrics the
    // topogen layer emits, from a toy 2×2 torus up to the 64-chiplet,
    // 1024-station acceptance fabric. The injection cycle count shrinks
    // with fabric size so each point does comparable total work.
    let topo_cycles: u64 = if quick { 400 } else { 2_000 };
    let topo_scaling = [2u16, 4, 8]
        .into_iter()
        .map(|k| topo_point(k, topo_cycles))
        .collect();

    TrajectoryReport {
        bench: "noc-bench trajectory".to_string(),
        quick,
        workloads,
        exec_sweep,
        topo_scaling,
        overhead,
        recorder_overhead,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_trajectory_is_complete_and_consistent() {
        let report = run(true);
        assert_eq!(report.workloads.len(), 3);
        for w in &report.workloads {
            assert!(w.delivered > 0, "{}: no traffic", w.workload);
            assert!(w.snapshots > 0, "{}: no snapshots", w.workload);
            assert!(
                w.p50_latency <= w.p99_latency,
                "{}: percentiles out of order",
                w.workload
            );
            assert!(
                !w.fired_rules.iter().any(|r| r == "liveness-stall"),
                "{}: liveness false positive ({:?})",
                w.workload,
                w.fired_rules
            );
        }
        // Hotspot concentrates ejection pressure: deflection rate must
        // exceed the low-uniform point's.
        assert!(
            report.workloads[2].deflection_rate >= report.workloads[0].deflection_rate,
            "hotspot should deflect at least as much as uniform_low"
        );
        assert_eq!(report.exec_sweep.len(), 4);
        for e in &report.exec_sweep {
            assert!(e.fingerprint_ok, "{}: fingerprint diverged", e.exec);
            assert!(e.ticks_per_sec > 0.0);
        }
        assert_eq!(report.topo_scaling.len(), 3);
        let expected = [(4usize, 64u64), (16, 256), (64, 1024)];
        for (t, (chiplets, stations)) in report.topo_scaling.iter().zip(expected) {
            assert_eq!(t.chiplets, chiplets, "{}: chiplet census", t.fabric);
            assert_eq!(t.stations, stations, "{}: station census", t.fabric);
            assert!(t.delivered > 0, "{}: no traffic", t.fabric);
            assert!(t.ticks_per_sec > 0.0, "{}: no throughput", t.fabric);
            assert!(
                t.fingerprint_ok,
                "{}: parallel fingerprint diverged",
                t.fabric
            );
        }
        assert!(report.overhead.plain_ticks_per_sec > 0.0);
        assert!(report.recorder_overhead.metrics_ticks_per_sec > 0.0);
        assert!(report.recorder_overhead.recorder_ticks_per_sec > 0.0);
        let json = serde_json::to_string_pretty(&report).expect("serializes");
        assert!(json.contains("\"bench\""));
        assert!(json.contains("\"recorder_overhead\""));
    }
}
