//! Engine profile: the 64-station microbench workloads, shared by the
//! `repro` summary, the telemetry-overhead guard bench, and the
//! telemetry example — generic over the trace sink so the same workload
//! runs untraced (`NullSink`) or recorded (`RingBufferSink`).
//!
//! The `engine_profile` experiment surfaces `TickProfile` — above all
//! `skip_fraction()`, the fraction of station visits the
//! occupancy-indexed fast path proved unnecessary — for the two
//! canonical load points: ~9% occupancy (12 flits over 128 slots) and
//! saturation (every station pushing every cycle).

use crate::report::{fnum, ExperimentResult, Scale};
use noc_core::telemetry::{NullSink, TraceSink};
use noc_core::{FlitClass, Network, NetworkConfig, NodeId, RingKind, TickMode, TopologyBuilder};

/// Closed-loop flit count that holds the 64-station full ring (128
/// slots) near 9% occupancy.
pub const LOW_OCCUPANCY_INFLIGHT: u64 = 12;

/// 64-station full ring with a device on every station, traced by
/// `sink`.
pub fn ring64_with_sink<S: TraceSink>(mode: TickMode, sink: S) -> (Network<S>, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 64).expect("ring");
    let eps: Vec<_> = (0..64)
        .map(|i| b.add_node(format!("n{i}"), r, i).expect("node"))
        .collect();
    let net = Network::with_sink(
        b.build().expect("valid"),
        NetworkConfig::default(),
        mode,
        sink,
    );
    (net, eps)
}

/// Closed loop of `inflight` flits: each delivery immediately re-sends,
/// holding ring occupancy near `inflight / 128` slots.
pub fn run_low_occupancy_with_sink<S: TraceSink>(
    mode: TickMode,
    cycles: u64,
    inflight: u64,
    sink: S,
) -> Network<S> {
    let (mut net, eps) = ring64_with_sink(mode, sink);
    for i in 0..inflight {
        let s = eps[(i * 11 % 64) as usize];
        let d = eps[((i * 11 + 32) % 64) as usize];
        net.enqueue(s, d, FlitClass::Data, 64, i)
            .expect("seed flit");
    }
    for _ in 0..cycles {
        net.tick();
        for ei in 0..eps.len() {
            while let Some(f) = net.pop_delivered(eps[ei]) {
                let back = eps[(ei + 17) % 64];
                let _ = net.enqueue(eps[ei], back, FlitClass::Data, 64, f.token);
            }
        }
    }
    net
}

/// Every station tries to enqueue every cycle: inject queues stay full
/// and lane activity sits at the saturation fallback.
pub fn run_saturated_with_sink<S: TraceSink>(mode: TickMode, cycles: u64, sink: S) -> Network<S> {
    let (mut net, eps) = ring64_with_sink(mode, sink);
    for c in 0..cycles {
        for (i, &s) in eps.iter().enumerate() {
            let d = eps[(i + 21 + (c as usize % 13)) % 64];
            if s != d {
                let _ = net.enqueue(s, d, FlitClass::Data, 64, c);
            }
        }
        net.tick();
        for &e in &eps {
            while net.pop_delivered(e).is_some() {}
        }
    }
    net
}

/// Surface the engine's tick profile (skip fractions) in the repro
/// summary.
pub fn run(scale: Scale) -> ExperimentResult {
    let cycles = scale.pick(1_000, 10_000);
    let mut r = ExperimentResult::new(
        "engine_profile",
        "Occupancy-indexed tick: station visits skipped per workload",
    )
    .with_header(vec![
        "workload",
        "mode",
        "stations visited",
        "stations total",
        "skip fraction",
    ]);

    let mut row = |workload: &str, mode: TickMode, net: &Network| {
        let p = net.tick_profile();
        r.push_row(vec![
            workload.to_string(),
            format!("{mode:?}"),
            p.stations_visited.to_string(),
            p.stations_total.to_string(),
            fnum(p.skip_fraction(), 3),
        ]);
        p.skip_fraction()
    };

    let low_fast =
        run_low_occupancy_with_sink(TickMode::Fast, cycles, LOW_OCCUPANCY_INFLIGHT, NullSink);
    let sf_low = row("low_occupancy(9%)", TickMode::Fast, &low_fast);
    let low_ref = run_low_occupancy_with_sink(
        TickMode::Reference,
        cycles,
        LOW_OCCUPANCY_INFLIGHT,
        NullSink,
    );
    let sf_low_ref = row("low_occupancy(9%)", TickMode::Reference, &low_ref);
    let sat_fast = run_saturated_with_sink(TickMode::Fast, cycles, NullSink);
    let sf_sat = row("saturated", TickMode::Fast, &sat_fast);

    r.note(format!(
        "fast path skips {:.1}% of station visits at 9% occupancy — {}",
        sf_low * 100.0,
        if sf_low > 0.5 { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "reference mode never skips ({:.3}) — {}",
        sf_low_ref,
        if sf_low_ref == 0.0 { "PASS" } else { "FAIL" }
    ));
    r.note(format!(
        "saturation falls back to near-full sweeps (skip {:.3}) — {}",
        sf_sat,
        if sf_sat < 0.5 { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_profile_quick() {
        let r = run(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        assert!(r.notes.iter().all(|n| n.ends_with("PASS")), "{:?}", r.notes);
    }
}
