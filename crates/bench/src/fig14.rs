//! Figure 14: NoC bandwidth equilibrium — probes across the chip should
//! all sustain >80% of the per-window maximum.

use crate::report::{fnum, ExperimentResult, Scale};
use noc_ai::{AiConfig, AiEngine, AiProcessor, AiTraffic};

/// Reproduce Figure 14: per-L2 bandwidth probes during a balanced run.
pub fn run(scale: Scale) -> ExperimentResult {
    let mut cfg = AiConfig::default();
    cfg.net.probe_window = scale.pick(1_000, 2_000);
    let proc = AiProcessor::build(cfg).expect("builds");
    let mut engine = AiEngine::new(proc, AiTraffic::from_ratio(1, 1));
    engine
        .run(scale.pick(1_000, 3_000), scale.pick(5_000, 16_000))
        .expect("AI engine run");
    engine.processor_mut().net.finish_probes();

    let map = engine.processor().map.clone();
    let net = &engine.processor().net;
    // Collect per-window bytes for each AI-core probe (the paper's
    // claim is "a balanced bandwidth supply to all AI-cores").
    let mut series: Vec<(String, Vec<u64>)> = Vec::new();
    for (node, probe) in net.probes() {
        if map.cores.contains(&node) {
            series.push((
                probe.name().to_string(),
                probe.windows().iter().map(|w| w.bytes).collect(),
            ));
        }
    }
    let windows = series.iter().map(|(_, v)| v.len()).min().unwrap_or(0);

    let mut r = ExperimentResult::new(
        "fig14",
        "NoC bandwidth equilibrium across AI-core probes (fraction of per-window max)",
    )
    .with_header(vec![
        "window",
        "min/max ratio",
        "mean/max ratio",
        "probes ≥80%",
    ]);

    let mut all_ratios: Vec<f64> = Vec::new();
    // Skip the first and last (partial / warmup-tail) windows.
    for w in 1..windows.saturating_sub(1) {
        let bytes: Vec<u64> = series.iter().map(|(_, v)| v[w]).collect();
        // Reference "maximum bandwidth": the 95th-percentile probe, so a
        // single lucky slice doesn't set the bar for everyone.
        let mut sorted = bytes.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 * 0.95) as usize).min(sorted.len() - 1);
        let max = sorted[idx] as f64;
        if max == 0.0 {
            continue;
        }
        let ratios: Vec<f64> = bytes.iter().map(|&b| (b as f64 / max).min(1.0)).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let above = ratios.iter().filter(|&&x| x >= 0.8).count();
        r.push_row(vec![
            w.to_string(),
            fnum(min, 2),
            fnum(mean, 2),
            format!("{}/{}", above, ratios.len()),
        ]);
        all_ratios.extend(ratios);
    }
    let frac_above = if all_ratios.is_empty() {
        0.0
    } else {
        all_ratios.iter().filter(|&&x| x >= 0.8).count() as f64 / all_ratios.len() as f64
    };
    r.note(format!(
        "equilibrium check: {:.0}% of probe-windows at ≥80% of max (paper: 'for most of the time, all probes can get more than 80%') — {}",
        frac_above * 100.0,
        if frac_above >= 0.8 { "PASS" } else { "FAIL" }
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_holds_quick() {
        let r = run(Scale::Quick);
        assert!(!r.rows.is_empty());
        assert!(r.notes.iter().any(|n| n.contains("PASS")), "{:?}", r.notes);
    }
}
