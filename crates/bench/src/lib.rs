//! # noc-experiments — the evaluation harness
//!
//! One module per table/figure of the paper's §5 (plus the design-choice
//! ablations). Every module exposes `run(scale) -> ExperimentResult`;
//! the `repro` binary executes them all and prints paper-style tables
//! with explicit shape checks (PASS/FAIL) against the published numbers.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig03`] | Figure 3 — roofline / arithmetic intensity |
//! | [`table04`] | Table 4 + Figure 6 — wire fabrics & floorplan |
//! | [`fig10`] | Figure 10 — LMBench bandwidth vs baselines |
//! | [`table05`] | Table 5 — intra/inter-chiplet coherence latency |
//! | [`fig11`] | Figure 11 — DDR latency under background noise |
//! | [`fig12_13`] | Figures 12/13 — SPECint-2017/2006 |
//! | [`table06`] | Table 6 — SPECpower-ssj-2008 |
//! | [`table07`] | Table 7 — AI-NoC bandwidth per R/W ratio |
//! | [`fig14`] | Figure 14 — bandwidth equilibrium probes |
//! | [`table08`] | Table 8 — MLPerf training vs A100-class |
//! | [`table09`] | Table 9 — commercial NoC survey |
//! | [`ablations`] | Figure 9 SWAP + §3.4 design-choice ablations |
//! | [`engine`] | engine tick profile (fast-path skip fractions) |
//! | [`determinism`] | parallel-engine fingerprint gate |
//! | [`trajectory`] | `noc-bench trajectory` → `BENCH_PR4.json` perf trajectory |
//! | [`scaling`] | `noc-bench scaling` → `BENCH_PR8.json` epoch-batched parallel scaling |
//! | [`spanreport`] | `noc-bench trace-report` → `BENCH_PR9.json` critical-path latency attribution |
//! | [`wedgereport`] | `noc-bench wedge-report` → `BENCH_PR10.json` wedge-frontier stall forensics |

pub mod ablations;
pub mod determinism;
pub mod engine;
pub mod fig03;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig14;
pub mod report;
pub mod scaling;
pub mod spanreport;
pub mod systems;
pub mod table04;
pub mod table05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09;
pub mod trajectory;
pub mod wedgereport;

pub use report::{ExperimentResult, Scale};

/// An experiment entry: id plus runner function.
pub type Experiment = (&'static str, fn(Scale) -> ExperimentResult);

/// Every experiment, in paper order: `(id, runner)`.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        ("fig03", fig03::run),
        ("table04", table04::run),
        ("fig10", fig10::run),
        ("table05", table05::run),
        ("fig11", fig11::run),
        ("fig12", fig12_13::run_2017),
        ("fig13", fig12_13::run_2006),
        ("table06", table06::run),
        ("table07", table07::run),
        ("table03_traffic", table07::run_model_driven),
        ("fig14", fig14::run),
        ("table08", table08::run),
        ("table09", table09::run),
        ("ablation_swap", ablations::run_swap),
        ("ablation_half_full", ablations::run_half_vs_full),
        ("ablation_alternatives", ablations::run_vs_alternatives),
        ("ablation_itag", ablations::run_itag_threshold),
        ("ablation_scaling", ablations::run_ring_scaling),
        ("ablation_agents", ablations::run_agent_scaling),
        ("ablation_escape", ablations::run_escape_vs_swap),
        ("ablation_llc", ablations::run_llc_path),
        ("ablation_4p", ablations::run_multi_package),
        ("ablation_io", ablations::run_io_interference),
        ("engine_profile", engine::run),
        ("determinism", determinism::run),
    ]
}
