//! `noc-bench` — machine-readable benchmark driver.
//!
//! ```text
//! noc-bench trajectory   [--quick] [--out PATH] [--check-overhead PCT]
//! noc-bench scaling      [--quick] [--out PATH] [--gate]
//! noc-bench trace-report [--quick] [--out PATH] [--trace PATH] [--gate]
//! noc-bench wedge-report [--quick] [--out PATH] [--bundle PATH] [--gate]
//! ```
//!
//! `trajectory` runs the performance-trajectory benchmark
//! ([`noc_experiments::trajectory`]) and writes the JSON report
//! (default `BENCH_PR7.json`). With `--check-overhead PCT` the process
//! exits non-zero when either the observatory's measured tick-loop
//! overhead or the flight recorder's overhead on top of it exceeds
//! `PCT` percent — the CI regression gate.
//!
//! `scaling` runs the epoch-batched parallel-scaling sweep
//! ([`noc_experiments::scaling`]) on the 16-ring chain and writes
//! `BENCH_PR8.json`. Any fingerprint divergence across the exec × K
//! grid fails the run unconditionally. With `--gate` the process also
//! exits non-zero when `Parallel(4)` fails to beat `Sequential` by the
//! required 1.5× — unless the host has fewer than 4 logical cores, in
//! which case the gate skips and the artifact records the reason.
//!
//! `trace-report` runs the causal-span critical-path attribution
//! ([`noc_experiments::spanreport`]) on the 4×4 torus transaction
//! workloads, writes `BENCH_PR9.json` plus a Perfetto trace of the
//! slowest transactions (`TRACE_PR9.json`), and prints the per-phase
//! latency breakdown table. A workload whose phase sums fail to
//! reconcile with the registry's completion latencies — or whose span
//! stream diverges across engines — fails the run unconditionally.
//! With `--gate` the process also exits non-zero when span tracing
//! costs more than its budget: 1% with the `NullSpanSink` (which must
//! be free — it is the same monomorphization as the untraced fabric)
//! and 5% with a live `SpanCollector`.
//!
//! `wedge-report` runs the stall-forensics wedge-frontier sweep
//! ([`noc_experiments::wedgereport`]) on the 4×4 torus, writes
//! `BENCH_PR10.json` plus the latched postmortem bundle
//! (`WEDGE_PR10.jsonl`), and prints the frontier table and the first
//! latched wedge report. A detector false negative (an undrained run
//! that never latched), a false positive (a draining run that
//! latched), an empty frontier, or a credited run that fails to drain
//! all fail the run unconditionally. With `--gate` the process also
//! exits non-zero when the detector costs more than its budget: 1%
//! with the tracker idle, 5% with sampling on.

use noc_experiments::{scaling, spanreport, trajectory, wedgereport};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: noc-bench trajectory   [--quick] [--out PATH] [--check-overhead PCT]\n\
         \x20      noc-bench scaling      [--quick] [--out PATH] [--gate]\n\
         \x20      noc-bench trace-report [--quick] [--out PATH] [--trace PATH] [--gate]\n\
         \x20      noc-bench wedge-report [--quick] [--out PATH] [--bundle PATH] [--gate]"
    );
    ExitCode::from(2)
}

/// Write `json` to `out` and read it back, failing loudly on an empty
/// or truncated artifact (a silently rotten perf record looks green).
fn write_artifact(out: &str, json: &str) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::write(out, format!("{json}\n")) {
        eprintln!("noc-bench: FAIL — cannot write {out}: {e}");
        return Err(ExitCode::FAILURE);
    }
    match std::fs::read_to_string(out) {
        Ok(written) if written.trim().is_empty() => {
            eprintln!("noc-bench: FAIL — {out} was written empty");
            Err(ExitCode::FAILURE)
        }
        Ok(written) => {
            if let Err(e) = serde_json::from_str::<serde::Value>(&written) {
                eprintln!("noc-bench: FAIL — {out} is not valid JSON after write: {e}");
                return Err(ExitCode::FAILURE);
            }
            Ok(())
        }
        Err(e) => {
            eprintln!("noc-bench: FAIL — {out} unreadable after write: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

fn run_scaling(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR8.json".to_string();
    let mut gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "noc-bench scaling: running ({} mode)…",
        if quick { "quick" } else { "full" }
    );
    let report = scaling::run(quick);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(code) = write_artifact(&out, &json) {
        return code;
    }
    eprintln!(
        "  host: {} logical core(s), {}",
        report.host.logical_cores, report.host.cpu_model
    );
    for p in &report.points {
        eprintln!(
            "  {:>10} k={}: {:>9.0} ticks/sec ({:.2}× seq k=1, fingerprint {})",
            p.exec,
            p.k,
            p.ticks_per_sec,
            p.speedup_vs_seq_k1,
            if p.fingerprint_ok { "ok" } else { "DIVERGED" }
        );
    }
    eprintln!("noc-bench: wrote {out}");

    if report.points.iter().any(|p| !p.fingerprint_ok) {
        eprintln!("noc-bench: FAIL — exec × K grid disagrees on the simulation");
        return ExitCode::FAILURE;
    }
    match (&report.gate.passed, &report.gate.skip_reason) {
        (Some(true), _) => eprintln!(
            "noc-bench: speedup gate PASS — parallel4 {:.2}× ≥ {:.2}× sequential",
            report.gate.measured.unwrap_or(0.0),
            report.gate.required
        ),
        (Some(false), _) => {
            eprintln!(
                "noc-bench: speedup gate {} — parallel4 {:.2}× < {:.2}× sequential",
                if gate { "FAIL" } else { "MISS (not enforced)" },
                report.gate.measured.unwrap_or(0.0),
                report.gate.required
            );
            if gate {
                return ExitCode::FAILURE;
            }
        }
        (None, Some(reason)) => eprintln!("noc-bench: speedup gate SKIPPED — {reason}"),
        (None, None) => unreachable!("gate resolves or explains itself"),
    }
    ExitCode::SUCCESS
}

fn run_trace_report(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR9.json".to_string();
    let mut trace = "TRACE_PR9.json".to_string();
    let mut gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--trace" => match it.next() {
                Some(path) => trace = path.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "noc-bench trace-report: running ({} mode)…",
        if quick { "quick" } else { "full" }
    );
    let bundle = spanreport::run(quick);
    let report = &bundle.report;
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    if let Err(code) = write_artifact(&out, &json) {
        return code;
    }
    if let Err(code) = write_artifact(&trace, &bundle.perfetto) {
        return code;
    }

    // The headline: critical-path latency attribution, one row per
    // workload — printed to stdout so the CI log carries the table.
    println!("{}", bundle.table);
    for w in &report.workloads {
        eprintln!(
            "  {:>12}: {} txns in {} cycles, mean {:.1} p50 {} p99 {} cycles, {} exemplars (slowest {}), reconcile {}, span stream {}",
            w.workload,
            w.transactions,
            w.cycles,
            w.mean_latency,
            w.p50_latency,
            w.p99_latency,
            w.exemplars,
            w.slowest_latency,
            if w.reconciled { "exact" } else { "BROKEN" },
            if w.span_stream_ok { "ok" } else { "DIVERGED" }
        );
    }
    eprintln!(
        "  null-sink overhead: {:.2}% ({:.0} → {:.0} ticks/sec, paired min of {})",
        report.overhead.null_overhead_pct,
        report.overhead.base_ticks_per_sec,
        report.overhead.null_ticks_per_sec,
        report.overhead.repeats
    );
    eprintln!(
        "  enabled-span overhead: {:.2}% ({:.0} → {:.0} ticks/sec, paired min of {})",
        report.overhead.enabled_overhead_pct,
        report.overhead.null_ticks_per_sec,
        report.overhead.enabled_ticks_per_sec,
        report.overhead.repeats
    );
    eprintln!(
        "noc-bench: wrote {out} and {trace} ({} trace events)",
        report.trace_events
    );

    // Correctness invariants fail unconditionally — a trace that does
    // not reconcile is not an observability artifact, it is a lie.
    if report.workloads.iter().any(|w| !w.reconciled) {
        eprintln!("noc-bench: FAIL — phase sums do not reconcile with completion latencies");
        return ExitCode::FAILURE;
    }
    if report.workloads.iter().any(|w| !w.span_stream_ok) {
        eprintln!("noc-bench: FAIL — span streams diverge across engine variants");
        return ExitCode::FAILURE;
    }
    if report.workloads.iter().any(|w| w.transactions == 0) {
        eprintln!("noc-bench: FAIL — a workload completed nothing");
        return ExitCode::FAILURE;
    }
    if gate {
        const NULL_BUDGET_PCT: f64 = 1.0;
        const ENABLED_BUDGET_PCT: f64 = 5.0;
        if report.overhead.null_overhead_pct > NULL_BUDGET_PCT {
            eprintln!(
                "noc-bench: FAIL — NullSpanSink overhead {:.2}% exceeds the {NULL_BUDGET_PCT}% budget",
                report.overhead.null_overhead_pct
            );
            return ExitCode::FAILURE;
        }
        if report.overhead.enabled_overhead_pct > ENABLED_BUDGET_PCT {
            eprintln!(
                "noc-bench: FAIL — enabled span overhead {:.2}% exceeds the {ENABLED_BUDGET_PCT}% budget",
                report.overhead.enabled_overhead_pct
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "noc-bench: span overhead within budget (null {:.2}% ≤ {NULL_BUDGET_PCT}%, enabled {:.2}% ≤ {ENABLED_BUDGET_PCT}%)",
            report.overhead.null_overhead_pct, report.overhead.enabled_overhead_pct
        );
    }
    ExitCode::SUCCESS
}

fn run_wedge_report(args: &[String]) -> ExitCode {
    let mut quick = false;
    let mut out = "BENCH_PR10.json".to_string();
    let mut bundle_out = "WEDGE_PR10.jsonl".to_string();
    let mut gate = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--gate" => gate = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--bundle" => match it.next() {
                Some(path) => bundle_out = path.clone(),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "noc-bench wedge-report: running ({} mode)…",
        if quick { "quick" } else { "full" }
    );
    let bundle = wedgereport::run(quick);
    let report = &bundle.report;
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    if let Err(code) = write_artifact(&out, &json) {
        return code;
    }
    if !bundle.bundle_jsonl.is_empty() {
        if let Err(e) = std::fs::write(&bundle_out, &bundle.bundle_jsonl) {
            eprintln!("noc-bench: FAIL — cannot write {bundle_out}: {e}");
            return ExitCode::FAILURE;
        }
    }

    // The headline: the frontier table, then the first latched wedge
    // report's cyclic chain — printed to stdout for the CI log.
    println!("{}", bundle.table);
    if !bundle.wedge_text.is_empty() {
        println!("{}", bundle.wedge_text);
    }
    eprintln!(
        "  detector-off overhead: {:.2}% ({:.0} → {:.0} ticks/sec, best of {})",
        report.overhead.detector_off_overhead_pct,
        report.overhead.base_ticks_per_sec,
        report.overhead.idle_ticks_per_sec,
        report.overhead.repeats
    );
    eprintln!(
        "  sampling-on overhead: {:.2}% ({:.0} → {:.0} ticks/sec, best of {})",
        report.overhead.sampling_overhead_pct,
        report.overhead.idle_ticks_per_sec,
        report.overhead.sampling_ticks_per_sec,
        report.overhead.repeats
    );
    eprintln!("noc-bench: wrote {out} and {bundle_out}");

    // Detector soundness fails unconditionally — a watchdog that
    // misses a wedge, or cries wolf on a draining fabric, is not an
    // observability artifact.
    if !report.fires_on_wedge {
        eprintln!("noc-bench: FAIL — an undrained run never latched the detector");
        return ExitCode::FAILURE;
    }
    if !report.silent_below {
        eprintln!("noc-bench: FAIL — the detector latched on a draining run");
        return ExitCode::FAILURE;
    }
    if !report.frontier_nonempty {
        eprintln!("noc-bench: FAIL — no legacy-admission run wedged; the frontier is gone");
        return ExitCode::FAILURE;
    }
    if !report.fix_drains_all {
        eprintln!("noc-bench: FAIL — a reassembly-credited run failed to drain");
        return ExitCode::FAILURE;
    }
    if gate {
        const OFF_BUDGET_PCT: f64 = 1.0;
        const SAMPLING_BUDGET_PCT: f64 = 5.0;
        if report.overhead.detector_off_overhead_pct > OFF_BUDGET_PCT {
            eprintln!(
                "noc-bench: FAIL — idle detector overhead {:.2}% exceeds the {OFF_BUDGET_PCT}% budget",
                report.overhead.detector_off_overhead_pct
            );
            return ExitCode::FAILURE;
        }
        if report.overhead.sampling_overhead_pct > SAMPLING_BUDGET_PCT {
            eprintln!(
                "noc-bench: FAIL — wait-graph sampling overhead {:.2}% exceeds the {SAMPLING_BUDGET_PCT}% budget",
                report.overhead.sampling_overhead_pct
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "noc-bench: detector overhead within budget (off {:.2}% ≤ {OFF_BUDGET_PCT}%, sampling {:.2}% ≤ {SAMPLING_BUDGET_PCT}%)",
            report.overhead.detector_off_overhead_pct, report.overhead.sampling_overhead_pct
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("scaling") => return run_scaling(&args[1..]),
        Some("trace-report") => return run_trace_report(&args[1..]),
        Some("wedge-report") => return run_wedge_report(&args[1..]),
        Some("trajectory") => {}
        _ => return usage(),
    }
    let mut quick = false;
    let mut out = "BENCH_PR7.json".to_string();
    let mut check_overhead: Option<f64> = None;
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => return usage(),
            },
            "--check-overhead" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => check_overhead = Some(pct),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    eprintln!(
        "noc-bench trajectory: running ({} mode)…",
        if quick { "quick" } else { "full" }
    );
    let report = trajectory::run(quick);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(code) = write_artifact(&out, &json) {
        return code;
    }
    for w in &report.workloads {
        eprintln!(
            "  {:>12}: {:.3} flits/cycle, p50 {} p99 {} cycles, deflection rate {:.3}",
            w.workload,
            w.throughput_flits_per_cycle,
            w.p50_latency,
            w.p99_latency,
            w.deflection_rate
        );
    }
    for e in &report.exec_sweep {
        eprintln!(
            "  {:>12}: {:.0} ticks/sec (fingerprint {})",
            e.exec,
            e.ticks_per_sec,
            if e.fingerprint_ok { "ok" } else { "DIVERGED" }
        );
    }
    for t in &report.topo_scaling {
        eprintln!(
            "  {:>12}: {} chiplets / {} stations, {:.0} ticks/sec, {:.3} flits/cycle (fingerprint {})",
            t.fabric,
            t.chiplets,
            t.stations,
            t.ticks_per_sec,
            t.throughput_flits_per_cycle,
            if t.fingerprint_ok { "ok" } else { "DIVERGED" }
        );
    }
    for t in &report.txn_workloads {
        eprintln!(
            "  {:>12}: {} txns in {} cycles on {}, p50 {} p99 {} cycles, {:.1} B/cycle, window peak {} (fingerprint {})",
            t.workload,
            t.transactions,
            t.cycles,
            t.fabric,
            t.p50_latency,
            t.p99_latency,
            t.bytes_per_cycle,
            t.window_peak,
            if t.fingerprint_ok { "ok" } else { "DIVERGED" }
        );
    }
    eprintln!(
        "  observatory overhead: {:.2}% ({:.0} → {:.0} ticks/sec, paired min of {})",
        report.overhead.overhead_pct,
        report.overhead.plain_ticks_per_sec,
        report.overhead.metrics_ticks_per_sec,
        report.overhead.repeats
    );
    eprintln!(
        "  flight-recorder overhead: {:.2}% ({:.0} → {:.0} ticks/sec, paired min of {})",
        report.recorder_overhead.overhead_pct,
        report.recorder_overhead.metrics_ticks_per_sec,
        report.recorder_overhead.recorder_ticks_per_sec,
        report.recorder_overhead.repeats
    );
    eprintln!("noc-bench: wrote {out}");

    if report.exec_sweep.iter().any(|e| !e.fingerprint_ok) {
        eprintln!("noc-bench: FAIL — execution modes disagree on the simulation");
        return ExitCode::FAILURE;
    }
    if report.topo_scaling.iter().any(|t| !t.fingerprint_ok) {
        eprintln!("noc-bench: FAIL — generated-topology runs disagree across exec modes");
        return ExitCode::FAILURE;
    }
    if report.txn_workloads.iter().any(|t| !t.fingerprint_ok) {
        eprintln!("noc-bench: FAIL — transaction runs disagree across exec modes");
        return ExitCode::FAILURE;
    }
    if report.txn_workloads.iter().any(|t| t.transactions == 0) {
        eprintln!("noc-bench: FAIL — a transaction point completed nothing");
        return ExitCode::FAILURE;
    }
    if let Some(limit) = check_overhead {
        if report.overhead.overhead_pct > limit {
            eprintln!(
                "noc-bench: FAIL — metrics overhead {:.2}% exceeds the {limit}% budget",
                report.overhead.overhead_pct
            );
            return ExitCode::FAILURE;
        }
        if report.recorder_overhead.overhead_pct > limit {
            eprintln!(
                "noc-bench: FAIL — flight-recorder overhead {:.2}% exceeds the {limit}% budget",
                report.recorder_overhead.overhead_pct
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "noc-bench: overhead within the {limit}% budget (metrics {:.2}%, recorder {:.2}%)",
            report.overhead.overhead_pct, report.recorder_overhead.overhead_pct
        );
    }
    ExitCode::SUCCESS
}
