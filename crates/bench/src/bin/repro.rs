//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [experiment-id ...]
//! ```
//!
//! With no ids, runs everything in paper order. Results are printed as
//! aligned tables with PASS/FAIL shape checks and also written as JSON
//! to `results/<id>.json`.

use noc_experiments::{all_experiments, Scale};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let experiments = all_experiments();
    let selected: Vec<_> = if wanted.is_empty() {
        experiments
    } else {
        experiments
            .into_iter()
            .filter(|(id, _)| wanted.iter().any(|w| w.as_str() == *id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; known ids:");
        for (id, _) in all_experiments() {
            eprintln!("  {id}");
        }
        std::process::exit(2);
    }

    let _ = std::fs::create_dir_all("results");
    let mut failures = 0usize;
    for (id, runner) in selected {
        let start = Instant::now();
        let result = runner(scale);
        let elapsed = start.elapsed();
        println!("{result}");
        println!("  ({id} completed in {:.1?}, scale {scale:?})\n", elapsed);
        failures += result.notes.iter().filter(|n| n.ends_with("FAIL")).count();
        if let Ok(json) = serde_json::to_string_pretty(&result) {
            let _ = std::fs::write(format!("results/{id}.json"), json);
        }
    }
    if failures > 0 {
        println!("!! {failures} shape check(s) FAILED");
        std::process::exit(1);
    }
    println!("all shape checks passed");
}
