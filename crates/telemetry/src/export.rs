//! Machine-readable exports of the observatory's snapshot stream.
//!
//! Two formats, both derived from the same deterministic
//! [`MetricsSnapshot`] series:
//!
//! * **JSONL** ([`snapshots_jsonl`]) — one JSON object per snapshot,
//!   one per line, for offline time-series analysis. Byte-identical
//!   across execution modes because the snapshots are.
//! * **Prometheus text exposition** ([`prometheus_text`]) — the
//!   current state of the network as `noc_*` metrics with ring/bridge
//!   labels, ready for a scrape endpoint or `promtool` ingestion.

use crate::flowstats::FlowRecord;
use crate::metrics::MetricsSnapshot;
use crate::txnstats::TxnSnapshot;
use crate::waitgraph::{WaitStats, WaitVerdict, WAIT_CLASS_NAMES};
use std::fmt::Write as _;

/// `writeln!` into a `String`, made explicit about infallibility
/// instead of discarding the `fmt::Result`.
macro_rules! line {
    ($out:expr, $($arg:tt)*) => {
        writeln!($out, $($arg)*).expect("writing to a String cannot fail")
    };
}

/// Escape a string for use inside a Prometheus label value, per the
/// text exposition format (version 0.0.4): backslash, double quote and
/// line feed must be written as `\\`, `\"` and `\n`. Everything the
/// exporters interpolate into `{label="..."}` positions goes through
/// this — ring and workload names come from user configs and may
/// contain anything.
pub fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render a merged flow top-K as Prometheus text exposition, one series
/// per (src, dst) pair per metric. `name_of` maps node ids to label
/// values (device names, typically); the result is escaped with
/// [`escape_label_value`], so hostile names cannot break the format.
pub fn prometheus_flows(flows: &[FlowRecord], name_of: impl Fn(u32) -> String) -> String {
    let mut out = String::new();
    let w = &mut out;
    type FlowMetric = (&'static str, &'static str, fn(&FlowRecord) -> u64);
    let metrics: [FlowMetric; 5] = [
        (
            "flow_delivered_total",
            "Flits delivered on the flow.",
            |f| f.delivered,
        ),
        (
            "flow_latency_cycles_total",
            "Cumulative end-to-end latency of delivered flits.",
            |f| f.latency_sum,
        ),
        (
            "flow_deflections_total",
            "Deflections suffered by the flow.",
            |f| f.deflections,
        ),
        (
            "flow_etag_laps_total",
            "Extra laps flown after an E-tag reservation.",
            |f| f.etag_laps,
        ),
        (
            "flow_itag_wait_cycles_total",
            "Cycles spent starving at inject-queue heads.",
            |f| f.itag_waits,
        ),
    ];
    for (name, help, get) in metrics {
        line!(w, "# HELP noc_{name} {help}");
        line!(w, "# TYPE noc_{name} counter");
        for f in flows {
            line!(
                w,
                "noc_{name}{{src=\"{}\",dst=\"{}\"}} {}",
                escape_label_value(&name_of(f.src)),
                escape_label_value(&name_of(f.dst)),
                get(f)
            );
        }
    }
    out
}

/// Render a snapshot series as JSON Lines: one snapshot object per
/// line, in order. Returns an empty string for an empty series.
pub fn snapshots_jsonl(snapshots: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        let line = serde_json::to_string(snap).expect("snapshot serializes");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Render the latest state as Prometheus text exposition (version
/// 0.0.4): cumulative counters as `noc_*_total`, instantaneous ring
/// and bridge state as labelled gauges, plus window-derived rates.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;

    line!(
        w,
        "# HELP noc_sample_cycle Cycle of the latest metrics sample."
    );
    line!(w, "# TYPE noc_sample_cycle gauge");
    line!(w, "noc_sample_cycle {}", snap.cycle);
    line!(w, "# HELP noc_in_flight Flits inside the network.");
    line!(w, "# TYPE noc_in_flight gauge");
    line!(w, "noc_in_flight {}", snap.in_flight);

    for (name, value) in snap.cumulative.fields() {
        line!(w, "# HELP noc_{name}_total Cumulative {name} count.");
        line!(w, "# TYPE noc_{name}_total counter");
        line!(w, "noc_{name}_total {value}");
    }

    line!(
        w,
        "# HELP noc_injection_success_rate Injection wins / attempts over the last window."
    );
    line!(w, "# TYPE noc_injection_success_rate gauge");
    line!(
        w,
        "noc_injection_success_rate {}",
        snap.totals.injection_success_rate()
    );
    line!(
        w,
        "# HELP noc_deflection_rate Deflections / ejection attempts over the last window."
    );
    line!(w, "# TYPE noc_deflection_rate gauge");
    line!(w, "noc_deflection_rate {}", snap.totals.deflection_rate());

    type RingGauge = (
        &'static str,
        &'static str,
        fn(&crate::metrics::RingGauges) -> u64,
    );
    let ring_gauges: [RingGauge; 7] = [
        ("ring_occupancy", "Flits riding the ring.", |g| g.occupancy),
        ("ring_capacity", "Slot capacity of the ring.", |g| {
            g.capacity
        }),
        (
            "ring_itag_slots",
            "Slots reserved by circulating I-tags.",
            |g| g.itag_slots,
        ),
        (
            "ring_inject_backlog",
            "Flits waiting in inject queues.",
            |g| g.inject_backlog,
        ),
        (
            "ring_eject_backlog",
            "Flits waiting in eject queues.",
            |g| g.eject_backlog,
        ),
        (
            "ring_etag_backlog",
            "Outstanding E-tag reservations.",
            |g| g.etag_backlog,
        ),
        (
            "ring_max_starve",
            "Largest current injection wait (cycles).",
            |g| g.max_starve,
        ),
    ];
    for (name, help, get) in ring_gauges {
        line!(w, "# HELP noc_{name} {help}");
        line!(w, "# TYPE noc_{name} gauge");
        for r in &snap.rings {
            line!(w, "noc_{name}{{ring=\"{}\"}} {}", r.ring, get(&r.gauges));
        }
    }

    line!(
        w,
        "# HELP noc_bridge_tx_pipe Bridge-side outgoing pipeline occupancy."
    );
    line!(w, "# TYPE noc_bridge_tx_pipe gauge");
    for b in snap.bridges() {
        line!(
            w,
            "noc_bridge_tx_pipe{{bridge=\"{}\",side=\"{}\"}} {}",
            b.bridge,
            b.side,
            b.tx_pipe
        );
    }
    line!(
        w,
        "# HELP noc_bridge_in_drm Whether the bridge side is in deadlock resolution mode."
    );
    line!(w, "# TYPE noc_bridge_in_drm gauge");
    for b in snap.bridges() {
        line!(
            w,
            "noc_bridge_in_drm{{bridge=\"{}\",side=\"{}\"}} {}",
            b.bridge,
            b.side,
            u8::from(b.in_drm)
        );
    }
    line!(
        w,
        "# HELP noc_bridge_drm_entries_total DRM entries on the bridge side since start."
    );
    line!(w, "# TYPE noc_bridge_drm_entries_total counter");
    for b in snap.bridges() {
        line!(
            w,
            "noc_bridge_drm_entries_total{{bridge=\"{}\",side=\"{}\"}} {}",
            b.bridge,
            b.side,
            b.drm_entries
        );
    }
    out
}

/// Render the latest transaction-layer snapshot as Prometheus text
/// exposition (version 0.0.4) — the scrape-endpoint counterpart of
/// [`txn_snapshots_jsonl`](crate::txn_snapshots_jsonl). Completion
/// totals export as a counter, the windowed percentiles as `quantile`-
/// labelled gauges (the summary convention, minus the `_sum`/`_count`
/// series a streaming summary cannot provide), and the in-flight /
/// window-occupancy gauges directly.
pub fn prometheus_txn(snap: &TxnSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;

    line!(
        w,
        "# HELP noc_txn_sample_cycle Cycle of the latest transaction sample."
    );
    line!(w, "# TYPE noc_txn_sample_cycle gauge");
    line!(w, "noc_txn_sample_cycle {}", snap.at);
    line!(
        w,
        "# HELP noc_txn_completed_total Transactions completed since start."
    );
    line!(w, "# TYPE noc_txn_completed_total counter");
    line!(w, "noc_txn_completed_total {}", snap.completed_total);
    line!(
        w,
        "# HELP noc_txn_window_completed Transactions completed in the last window."
    );
    line!(w, "# TYPE noc_txn_window_completed gauge");
    line!(w, "noc_txn_window_completed {}", snap.completed_delta);

    line!(
        w,
        "# HELP noc_txn_latency_cycles Windowed completion-latency percentiles."
    );
    line!(w, "# TYPE noc_txn_latency_cycles gauge");
    let quantiles: [(&str, u64); 4] = [
        ("0.5", snap.p50),
        ("0.95", snap.p95),
        ("0.99", snap.p99),
        ("1", snap.max),
    ];
    for (q, v) in quantiles {
        line!(w, "noc_txn_latency_cycles{{quantile=\"{q}\"}} {v}");
    }

    line!(
        w,
        "# HELP noc_txn_inflight Transactions in flight at sample time."
    );
    line!(w, "# TYPE noc_txn_inflight gauge");
    line!(w, "noc_txn_inflight {}", snap.inflight_txns);
    line!(
        w,
        "# HELP noc_txn_window_occupancy Non-posted window slots occupied, summed over endpoints."
    );
    line!(w, "# TYPE noc_txn_window_occupancy gauge");
    line!(w, "noc_txn_window_occupancy {}", snap.window_occupancy);
    out
}

/// Render the latest wait-graph gauges as Prometheus text exposition
/// (version 0.0.4) — the scrape surface of the stall-forensics
/// detector. Blocked-holder counts export per resource class, the
/// verdict as a one-hot state set, and the freeze age directly. On a
/// fast-path sample (no ring/escape freeze, so no edge build) the
/// blocked gauges and SCC count read 0 by construction.
pub fn prometheus_wait(stats: &WaitStats) -> String {
    let mut out = String::new();
    let w = &mut out;

    line!(
        w,
        "# HELP noc_wait_sample_cycle Cycle of the latest wait-graph sample."
    );
    line!(w, "# TYPE noc_wait_sample_cycle gauge");
    line!(w, "noc_wait_sample_cycle {}", stats.cycle);

    line!(
        w,
        "# HELP noc_wait_blocked Resources of the class currently waiting on another resource."
    );
    line!(w, "# TYPE noc_wait_blocked gauge");
    for (i, class) in WAIT_CLASS_NAMES.iter().enumerate() {
        line!(
            w,
            "noc_wait_blocked{{class=\"{class}\"}} {}",
            stats.blocked[i]
        );
    }

    line!(
        w,
        "# HELP noc_wait_oldest_frozen_cycles Cycles since the oldest frozen resource last progressed."
    );
    line!(w, "# TYPE noc_wait_oldest_frozen_cycles gauge");
    line!(w, "noc_wait_oldest_frozen_cycles {}", stats.oldest_frozen);

    line!(
        w,
        "# HELP noc_wait_cyclic_sccs Cyclic strongly connected components in the wait graph."
    );
    line!(w, "# TYPE noc_wait_cyclic_sccs gauge");
    line!(w, "noc_wait_cyclic_sccs {}", stats.cyclic_sccs);

    line!(
        w,
        "# HELP noc_wait_verdict One-hot detector verdict for the sample."
    );
    line!(w, "# TYPE noc_wait_verdict gauge");
    for v in [
        WaitVerdict::Progressing,
        WaitVerdict::TransientCycle,
        WaitVerdict::Wedged,
    ] {
        line!(
            w,
            "noc_wait_verdict{{verdict=\"{v}\"}} {}",
            u8::from(stats.verdict == v)
        );
    }
    out
}

/// Render a wait-gauge series as JSON Lines, one [`WaitStats`] row per
/// line — the compact time-series twin of
/// [`wait_graphs_jsonl`](crate::waitgraph::wait_graphs_jsonl) (which
/// carries the full per-sample graphs).
pub fn wait_stats_jsonl(stats: &[WaitStats]) -> String {
    let mut out = String::new();
    for s in stats {
        out.push_str(&serde_json::to_string(s).expect("stats serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BridgeGauges, MetricsRegistry, RingGauges, RingWindow, WindowCounters};
    use serde::Value;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new(32);
        for i in 1..=3u64 {
            reg.commit(
                i * 32,
                32,
                2,
                vec![RingWindow {
                    ring: 0,
                    counters: WindowCounters {
                        enqueued: 4,
                        injected: 4,
                        delivered: 3,
                        delivered_bytes: 192,
                        ..WindowCounters::default()
                    },
                    gauges: RingGauges {
                        occupancy: 2,
                        capacity: 16,
                        ..RingGauges::default()
                    },
                    bridges: vec![BridgeGauges {
                        bridge: 0,
                        side: 0,
                        ring: 0,
                        tx_pipe: 1,
                        ..BridgeGauges::default()
                    }],
                    ..RingWindow::default()
                }],
            );
        }
        reg
    }

    #[test]
    fn jsonl_is_one_valid_object_per_snapshot() {
        let reg = sample_registry();
        let text = snapshots_jsonl(reg.snapshots());
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("cycle").is_some(), "{line}");
            assert!(v.get("totals").is_some(), "{line}");
        }
        assert!(snapshots_jsonl(&[]).is_empty());
    }

    #[test]
    fn prometheus_exposition_has_counters_and_labelled_gauges() {
        let reg = sample_registry();
        let text = prometheus_text(reg.last().expect("non-empty"));
        assert!(text.contains("noc_delivered_total 9"), "{text}");
        assert!(text.contains("noc_delivered_bytes_total 576"), "{text}");
        assert!(text.contains("noc_ring_occupancy{ring=\"0\"} 2"), "{text}");
        assert!(
            text.contains("noc_bridge_tx_pipe{bridge=\"0\",side=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("noc_injection_success_rate 1"), "{text}");
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
        }
        // Every metric has HELP and TYPE headers.
        for needed in [
            "# HELP noc_sample_cycle",
            "# TYPE noc_deflection_rate gauge",
        ] {
            assert!(text.contains(needed), "{needed} missing:\n{text}");
        }
    }

    #[test]
    fn txn_exposition_has_counter_quantiles_and_gauges() {
        let mut reg = crate::TxnRegistry::new(32);
        for v in [100, 200, 300, 4000] {
            reg.record(v);
        }
        reg.sample(noc_sim::Cycle(32), 3, 7);
        let text = prometheus_txn(reg.snapshots().last().expect("sampled"));
        assert!(text.contains("noc_txn_sample_cycle 32"), "{text}");
        assert!(text.contains("noc_txn_completed_total 4"), "{text}");
        assert!(text.contains("noc_txn_window_completed 4"), "{text}");
        assert!(
            text.contains("noc_txn_latency_cycles{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("noc_txn_inflight 3"), "{text}");
        assert!(text.contains("noc_txn_window_occupancy 7"), "{text}");
        // Format discipline: every non-comment line is `name value`,
        // every metric has HELP and TYPE headers.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
        }
        assert_eq!(
            text.lines().filter(|l| l.starts_with("# TYPE")).count(),
            6,
            "{text}"
        );
    }

    #[test]
    fn wait_exposition_has_class_gauges_and_one_hot_verdict() {
        let stats = WaitStats {
            cycle: 96,
            verdict: WaitVerdict::Wedged,
            blocked: [2, 1, 3, 0],
            oldest_frozen: 128,
            cyclic_sccs: 1,
        };
        let text = prometheus_wait(&stats);
        assert!(text.contains("noc_wait_sample_cycle 96"), "{text}");
        assert!(
            text.contains("noc_wait_blocked{class=\"ring\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("noc_wait_blocked{class=\"reassembly\"} 0"),
            "{text}"
        );
        assert!(
            text.contains("noc_wait_verdict{verdict=\"wedged\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("noc_wait_verdict{verdict=\"progressing\"} 0"),
            "{text}"
        );
        assert!(text.contains("noc_wait_oldest_frozen_cycles 128"), "{text}");
        assert!(text.contains("noc_wait_cyclic_sccs 1"), "{text}");
        // Format discipline: every non-comment line is `name value`,
        // every metric has HELP and TYPE headers.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
        }
        assert_eq!(
            text.lines().filter(|l| l.starts_with("# TYPE")).count(),
            5,
            "{text}"
        );

        let jsonl = wait_stats_jsonl(&[stats, stats]);
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("blocked").is_some(), "{line}");
            assert!(v.get("verdict").is_some(), "{line}");
        }
        assert!(wait_stats_jsonl(&[]).is_empty());
    }

    #[test]
    fn label_values_are_escaped_per_exposition_format() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");

        // A hostile workload/ring name survives the flow exporter
        // without breaking the line structure.
        let flows = vec![FlowRecord {
            src: 0,
            dst: 1,
            delivered: 7,
            latency_sum: 21,
            ..FlowRecord::default()
        }];
        let hostile = |id: u32| {
            if id == 0 {
                "evil\"ring\\one\nx".to_string()
            } else {
                "dst".to_string()
            }
        };
        let text = prometheus_flows(&flows, hostile);
        assert!(
            text.contains(
                "noc_flow_delivered_total{src=\"evil\\\"ring\\\\one\\nx\",dst=\"dst\"} 7"
            ),
            "{text}"
        );
        // No raw newline or quote leaked into a label: every
        // non-comment line still splits into exactly two fields, and
        // the line count is 5 metrics × (2 headers + 1 series).
        assert_eq!(text.lines().count(), 15, "{text}");
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split_whitespace().count(), 2, "{line}");
        }
    }
}
