//! Per-flow accounting: deterministic Space-Saving top-K tables keyed
//! by `(src, dst)` node pair.
//!
//! Deflection-routed rings fail in flow-shaped ways: a handful of
//! src→dst pairs concentrate the deflections, E-tag laps and I-tag
//! waits while everything else flows normally. A [`FlowTable`] tracks
//! the heaviest pairs with bounded memory using the Space-Saving
//! algorithm (Metwally et al.): a fixed number of entries, and when a
//! new pair arrives with the table full, the entry with the smallest
//! weight is *recycled* — its counts carry over as the new entry's
//! `overcount` error bound, which keeps the classic guarantee that any
//! pair with true weight above `total/k` is present in the table.
//!
//! Determinism is load-bearing here (the engine's snapshot stream must
//! stay byte-identical across execution modes), so every tie is broken
//! structurally: entries live in a `Vec` in insertion order, lookups
//! scan that `Vec`, and the eviction scan takes the *first*
//! minimal-weight entry. Sorting for presentation uses a total order
//! on `(weight desc, src asc, dst asc)`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Accumulated statistics of one src→dst flow.
///
/// `weight = delivered + deflections` is the Space-Saving frequency
/// estimate: it grows both when the flow makes progress and when it
/// churns, so a wedged flow (deflecting forever, delivering nothing)
/// still rises to the top of the table — exactly the flow a postmortem
/// needs to name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowRecord {
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Flits delivered to the destination device.
    pub delivered: u64,
    /// Sum of end-to-end latencies of the delivered flits (cycles).
    pub latency_sum: u64,
    /// Deflections charged to this flow (at deflection time, not
    /// delivery time, so stalled flows accumulate them too).
    pub deflections: u64,
    /// Extra laps flown after an E-tag reservation was already placed.
    pub etag_laps: u64,
    /// I-tag wait cycles of delivered flits (starving-head cycles).
    pub itag_waits: u64,
    /// Space-Saving error bound: counts inherited from the entry this
    /// one recycled. The flow's true weight is within
    /// `[weight - overcount, weight]`.
    pub overcount: u64,
}

impl FlowRecord {
    /// The Space-Saving frequency estimate this table ranks by.
    pub fn weight(&self) -> u64 {
        self.delivered + self.deflections
    }

    /// Mean end-to-end latency of the delivered flits, `0.0` when
    /// nothing was delivered (guards the wedged-flow case).
    pub fn mean_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }

    /// Presentation order: weight descending, then `(src, dst)`
    /// ascending — a total order, so sorts are deterministic.
    pub fn cmp_for_rank(&self, other: &FlowRecord) -> std::cmp::Ordering {
        other
            .weight()
            .cmp(&self.weight())
            .then(self.src.cmp(&other.src))
            .then(self.dst.cmp(&other.dst))
    }
}

/// A bounded Space-Saving table of the heaviest src→dst flows.
///
/// There is deliberately no hash index: the table sits on the engine's
/// per-tick flush path where most arrivals are *misses* (far more
/// distinct flows exist than `capacity` slots), and every miss needs
/// the minimum-weight entry anyway. A single linear pass over the
/// (small, contiguous) entry array answers both questions — match or
/// first minimum — cheaper than any lookup structure plus a separate
/// eviction scan, and with nothing whose iteration order could leak
/// into results.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// Entries in insertion order (never reordered; eviction recycles
    /// in place). Bounded by `capacity`.
    entries: Vec<FlowRecord>,
    capacity: usize,
}

/// Accumulated per-flow counters for one batch of observations,
/// applied in a single table lookup via [`FlowTable::apply`]. Batching
/// a tick's events per flow is what keeps the accounting hot path
/// cheap under deflection storms (hundreds of events, few flows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowDelta {
    /// Flits delivered.
    pub delivered: u64,
    /// Summed end-to-end latency of the delivered flits (cycles).
    pub latency_sum: u64,
    /// Summed I-tag wait cycles of the delivered flits.
    pub itag_waits: u64,
    /// Deflections charged.
    pub deflections: u64,
    /// Deflections that defeated an existing E-tag reservation.
    pub etag_laps: u64,
}

impl FlowDelta {
    /// Fold one event into the delta.
    pub fn add(&mut self, event: FlowEvent) {
        match event {
            FlowEvent::Delivered { latency, itag_wait } => {
                self.delivered += 1;
                self.latency_sum += latency;
                self.itag_waits += itag_wait;
            }
            FlowEvent::Deflected { extra_lap } => {
                self.deflections += 1;
                if extra_lap {
                    self.etag_laps += 1;
                }
            }
        }
    }

    /// Fold another delta into this one (field-wise sum).
    pub fn merge(&mut self, other: &FlowDelta) {
        self.delivered += other.delivered;
        self.latency_sum += other.latency_sum;
        self.itag_waits += other.itag_waits;
        self.deflections += other.deflections;
        self.etag_laps += other.etag_laps;
    }
}

/// One flow observation, applied to the flow's entry.
#[derive(Debug, Clone, Copy)]
pub enum FlowEvent {
    /// The flit reached its destination device.
    Delivered {
        /// End-to-end latency of the delivered flit (cycles).
        latency: u64,
        /// Cycles the flit spent as a starving inject-queue head.
        itag_wait: u64,
    },
    /// The flit was deflected past its eject point. `extra_lap` is true
    /// when an E-tag reservation was already in place (the deflection
    /// defeats the one-lap guarantee once more).
    Deflected {
        /// Whether this deflection happened with an E-tag already set.
        extra_lap: bool,
    },
}

impl FlowTable {
    /// A table tracking at most `capacity` flows (0 disables tracking:
    /// every record call is a no-op and the table stays empty).
    pub fn new(capacity: usize) -> Self {
        FlowTable {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of flows retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of flows currently tracked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table tracks no flows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Apply one observation for `src → dst`.
    pub fn record(&mut self, src: u32, dst: u32, event: FlowEvent) {
        let mut delta = FlowDelta::default();
        delta.add(event);
        self.apply(src, dst, &delta);
    }

    /// Apply a batch of observations for `src → dst` in one lookup.
    /// Equivalent to recording each folded event individually: the
    /// entry (and any eviction) is resolved once up front, then every
    /// counter is summed — the same final state per-event recording
    /// reaches, since increments to an existing entry commute.
    pub fn apply(&mut self, src: u32, dst: u32, delta: &FlowDelta) {
        if self.capacity == 0 {
            return;
        }
        let slot = self.slot_for(src, dst);
        let e = &mut self.entries[slot];
        e.delivered += delta.delivered;
        e.latency_sum += delta.latency_sum;
        e.itag_waits += delta.itag_waits;
        e.deflections += delta.deflections;
        e.etag_laps += delta.etag_laps;
    }

    /// Find or create the entry for `(src, dst)`, evicting the first
    /// minimal-weight entry when the table is full (Space-Saving).
    ///
    /// One pass answers both questions the algorithm can ask: a strict
    /// `<` comparison keeps the *first* minimal-weight entry, so
    /// eviction stays deterministic — no dependence on hash order or
    /// arrival history.
    fn slot_for(&mut self, src: u32, dst: u32) -> usize {
        let mut victim = 0usize;
        let mut victim_weight = u64::MAX;
        for (i, e) in self.entries.iter().enumerate() {
            if e.src == src && e.dst == dst {
                return i;
            }
            let w = e.weight();
            if w < victim_weight {
                victim_weight = w;
                victim = i;
            }
        }
        if self.entries.len() < self.capacity {
            let i = self.entries.len();
            self.entries.push(FlowRecord {
                src,
                dst,
                ..FlowRecord::default()
            });
            return i;
        }
        let old = self.entries[victim];
        // Space-Saving recycle: the newcomer inherits the victim's
        // weight as its own (delivered side, arbitrarily but
        // consistently) and records it as the error bound.
        self.entries[victim] = FlowRecord {
            src,
            dst,
            delivered: old.weight(),
            overcount: old.weight() + old.overcount,
            ..FlowRecord::default()
        };
        victim
    }

    /// The tracked flows ranked for presentation: weight descending,
    /// `(src, dst)` ascending.
    pub fn ranked(&self) -> Vec<FlowRecord> {
        let mut v = self.entries.clone();
        v.sort_by(FlowRecord::cmp_for_rank);
        v
    }

    /// The raw entries in insertion order (deterministic, unranked).
    pub fn entries(&self) -> &[FlowRecord] {
        &self.entries
    }
}

/// Merge per-ring flow tables (given in a fixed order) into one ranked
/// top-`k` list. Entries for the same `(src, dst)` pair are summed —
/// a pair can appear in several tables when its deflections and its
/// delivery happen on different rings.
pub fn merge_ranked(tables: &[&FlowTable], k: usize) -> Vec<FlowRecord> {
    let mut by_key: HashMap<(u32, u32), FlowRecord> = HashMap::new();
    for t in tables {
        for e in t.entries() {
            let m = by_key.entry((e.src, e.dst)).or_insert(FlowRecord {
                src: e.src,
                dst: e.dst,
                ..FlowRecord::default()
            });
            m.delivered += e.delivered;
            m.latency_sum += e.latency_sum;
            m.deflections += e.deflections;
            m.etag_laps += e.etag_laps;
            m.itag_waits += e.itag_waits;
            m.overcount += e.overcount;
        }
    }
    let mut v: Vec<FlowRecord> = by_key.into_values().collect();
    v.sort_by(FlowRecord::cmp_for_rank);
    v.truncate(k);
    v
}

/// Render ranked flows as a fixed-width ASCII table. `name_of` maps a
/// node id to a display name (pass `|id| id.to_string()` when no
/// topology is at hand). All ratios are guarded against empty flows.
pub fn flow_table_ascii(flows: &[FlowRecord], name_of: impl Fn(u32) -> String) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "{:<24} {:>9} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "flow (src -> dst)", "delivered", "mean-lat", "deflect", "e-laps", "i-wait", "±err"
    )
    .expect("writing to a String cannot fail");
    for f in flows {
        writeln!(
            out,
            "{:<24} {:>9} {:>10.1} {:>9} {:>9} {:>9} {:>9}",
            format!("{} -> {}", name_of(f.src), name_of(f.dst)),
            f.delivered,
            f.mean_latency(),
            f.deflections,
            f.etag_laps,
            f.itag_waits,
            f.overcount,
        )
        .expect("writing to a String cannot fail");
    }
    if flows.is_empty() {
        out.push_str("(no flows observed)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deliver(t: &mut FlowTable, src: u32, dst: u32, n: u64) {
        for _ in 0..n {
            t.record(
                src,
                dst,
                FlowEvent::Delivered {
                    latency: 10,
                    itag_wait: 1,
                },
            );
        }
    }

    #[test]
    fn accumulates_per_flow() {
        let mut t = FlowTable::new(4);
        deliver(&mut t, 0, 1, 3);
        t.record(0, 1, FlowEvent::Deflected { extra_lap: false });
        t.record(0, 1, FlowEvent::Deflected { extra_lap: true });
        let r = t.ranked();
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].delivered, 3);
        assert_eq!(r[0].latency_sum, 30);
        assert_eq!(r[0].deflections, 2);
        assert_eq!(r[0].etag_laps, 1);
        assert_eq!(r[0].itag_waits, 3);
        assert_eq!(r[0].weight(), 5);
        assert!((r[0].mean_latency() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = FlowTable::new(0);
        deliver(&mut t, 0, 1, 100);
        assert!(t.is_empty());
        assert!(t.ranked().is_empty());
    }

    #[test]
    fn eviction_recycles_minimum_and_tracks_overcount() {
        let mut t = FlowTable::new(2);
        deliver(&mut t, 0, 1, 5);
        deliver(&mut t, 2, 3, 1);
        // Table full; a new pair recycles (2,3) — the minimum.
        deliver(&mut t, 4, 5, 1);
        assert_eq!(t.len(), 2);
        let r = t.ranked();
        assert_eq!((r[0].src, r[0].dst), (0, 1));
        assert_eq!((r[1].src, r[1].dst), (4, 5));
        // Inherited weight 1 + its own delivery, error bound 1.
        assert_eq!(r[1].weight(), 2);
        assert_eq!(r[1].overcount, 1);
    }

    #[test]
    fn heavy_flow_survives_churn() {
        // Space-Saving guarantee: a flow holding > total/k of the
        // weight cannot be evicted by a stream of one-off flows.
        let mut t = FlowTable::new(8);
        deliver(&mut t, 0, 1, 1000);
        for i in 0..500u32 {
            deliver(&mut t, 10 + i, 2, 1);
        }
        let r = t.ranked();
        assert_eq!((r[0].src, r[0].dst), (0, 1));
        assert!(r[0].weight() >= 1000);
    }

    #[test]
    fn eviction_tie_breaks_by_insertion_order() {
        let mut t = FlowTable::new(2);
        deliver(&mut t, 0, 1, 1);
        deliver(&mut t, 2, 3, 1);
        // Both weigh 1: the first-inserted (0,1) must be recycled.
        deliver(&mut t, 4, 5, 1);
        let keys: Vec<(u32, u32)> = t.entries().iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(keys, vec![(4, 5), (2, 3)]);
    }

    #[test]
    fn merge_sums_across_tables_and_ranks() {
        let mut a = FlowTable::new(4);
        let mut b = FlowTable::new(4);
        deliver(&mut a, 0, 1, 2);
        a.record(7, 8, FlowEvent::Deflected { extra_lap: false });
        deliver(&mut b, 0, 1, 3);
        deliver(&mut b, 5, 6, 4);
        let merged = merge_ranked(&[&a, &b], 2);
        assert_eq!(merged.len(), 2);
        assert_eq!((merged[0].src, merged[0].dst), (0, 1));
        assert_eq!(merged[0].delivered, 5);
        assert_eq!((merged[1].src, merged[1].dst), (5, 6));
    }

    #[test]
    fn ascii_table_renders_and_guards_empty_flows() {
        let mut t = FlowTable::new(4);
        t.record(0, 1, FlowEvent::Deflected { extra_lap: false });
        let s = flow_table_ascii(&t.ranked(), |id| format!("n{id}"));
        assert!(s.contains("n0 -> n1"), "{s}");
        assert!(s.contains("0.0"), "wedged flow mean latency: {s}");
        let empty = flow_table_ascii(&[], |id| id.to_string());
        assert!(empty.contains("no flows"), "{empty}");
    }
}
