//! # noc-telemetry — flit-lifecycle tracing with a zero-cost off switch
//!
//! The network engine in `noc-core` answers *what* happened through its
//! aggregate [`NetStats`](../noc_core/stats/struct.NetStats.html)
//! counters; this crate answers *why*. Every mechanism of the paper's
//! §4 — injection arbitration losses, I-tag reservations and claims,
//! E-tag deflections, bridge backpressure, SWAP firings — emits a
//! [`FlitEvent`] stamped with its cycle, ring/station/lane coordinates
//! and flit id ([`TraceRecord`]), into whatever [`TraceSink`] the
//! network was built with.
//!
//! The disabled path costs nothing: [`NullSink`] sets
//! [`TraceSink::ENABLED`] to `false`, and every emission site in the
//! engine is guarded by that associated constant, so monomorphization
//! deletes the event construction *and* the branch. A
//! `Network<NullSink>` (the default) compiles to the same tick loop as
//! a network with no telemetry at all.
//!
//! # Sinks
//!
//! * [`NullSink`] — the off switch; all emission compiled away.
//! * [`RingBufferSink`] — bounded in-memory buffer (oldest records
//!   dropped) plus never-dropping [`EventCounts`]; the workhorse for
//!   tests and short diagnostics runs.
//! * [`JsonlSink`] — streams one JSON object per record to any
//!   `io::Write`, for offline analysis of unbounded runs.
//!
//! # Derived views
//!
//! * [`LatencyView`] — log2-bucketed end-to-end and in-network latency
//!   histograms per flit class, reported as p50/p95/p99/max.
//! * [`Heatmap`] — per-(ring, station) event intensity (deflections,
//!   I-tags, …), ready for `noc_core::render::ascii_heatmap`.
//! * [`UtilizationTimeline`] — per-ring occupancy over time from the
//!   engine's periodic `RingUtil` samples.
//! * [`chrome_trace`] — a Chrome `trace_event` JSON export: one lane
//!   per flit, spans from enqueue to delivery, instants for
//!   deflections/tags/SWAPs, counter tracks for ring occupancy. Load
//!   it in `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! # Observatory
//!
//! Beyond post-hoc tracing, the crate hosts the *online* observability
//! layer: the engine samples every ring into a [`MetricsSnapshot`]
//! (window counter deltas + instantaneous gauges) every N cycles and
//! commits them to a [`MetricsRegistry`] at a deterministic phase
//! barrier, so the snapshot stream is bit-identical across sequential
//! and parallel execution. A [`HealthMonitor`] turns the stream into
//! cycle-stamped watchdog verdicts (starvation onset, congestion knee,
//! SWAP storms, liveness stalls), and the exporters render it as JSONL
//! ([`snapshots_jsonl`]) or Prometheus text ([`prometheus_text`]).
//!
//! # Flight recorder and postmortems
//!
//! The attribution layer turns verdicts into evidence. Each ring shard
//! keeps a deterministic Space-Saving [`FlowTable`] of its heaviest
//! (src, dst) flows — delivered flits, cumulative latency, deflections,
//! extra E-tag laps, I-tag wait cycles — plus a per-link utilization
//! row. A bounded [`FlightRecorder`] retains the last R snapshots and
//! last T trace events, and when a watchdog latches (or on an explicit
//! dump) the engine freezes everything into a [`PostmortemBundle`]:
//! recent history, flow top-K, link heat, fired rules, and the config +
//! seed + execution mode needed for deterministic replay, serialized as
//! kind-tagged JSONL.
//!
//! # Example
//!
//! ```
//! use noc_telemetry::{FlitEvent, RingBufferSink, TraceRecord, TraceSink, NO_LANE};
//!
//! let mut sink = RingBufferSink::new(1024);
//! sink.emit(TraceRecord {
//!     cycle: 3,
//!     flit: 0,
//!     ring: 0,
//!     station: 2,
//!     lane: NO_LANE,
//!     event: FlitEvent::Enqueued { node: 7, class: 0 },
//! });
//! assert_eq!(sink.counts().enqueued, 1);
//! ```

pub mod chrome;
pub mod critical;
pub mod event;
pub mod export;
pub mod flowstats;
pub mod health;
pub mod metrics;
pub mod postmortem;
pub mod recorder;
pub mod sink;
pub mod spans;
pub mod txnstats;
pub mod views;
pub mod waitgraph;

pub use chrome::{chrome_trace, spans_chrome_trace};
pub use critical::{
    breakdown_table, critical_path, CriticalLink, CriticalPath, LatencyBreakdown, PhaseCycles,
    PHASE_NAMES,
};
pub use event::{EventCounts, FlitEvent, TraceRecord, NO_FLIT, NO_LANE};
pub use export::{
    escape_label_value, prometheus_flows, prometheus_text, prometheus_txn, prometheus_wait,
    snapshots_jsonl, wait_stats_jsonl,
};
pub use flowstats::{flow_table_ascii, merge_ranked, FlowDelta, FlowEvent, FlowRecord, FlowTable};
pub use health::{HealthConfig, HealthMonitor, HealthRule, Severity, Verdict};
pub use metrics::{
    BridgeGauges, MetricsRegistry, MetricsSnapshot, RingGauges, RingWindow, WindowCounters,
};
pub use postmortem::{link_heat_ascii, BundleEnv, BundleMeta, PostmortemBundle};
pub use recorder::{FlightRecorder, RecorderConfig};
pub use sink::{JsonlSink, NullSink, RingBufferSink, TraceBuffer, TraceSink};
pub use spans::{
    span_trees_jsonl, FlitSpan, NullSpanSink, PacketSpan, SpanCollector, SpanRole, SpanSink,
    TailExemplars, TxnSpanTree, SPAN_OP_NAMES,
};
pub use txnstats::{txn_snapshots_jsonl, TxnRegistry, TxnSnapshot};
pub use views::{Heatmap, LatencyView, UtilizationTimeline};
pub use waitgraph::{
    cyclic_sccs, wait_graphs_jsonl, ResourceId, WaitEdge, WaitGraphConfig, WaitGraphSample,
    WaitGraphTracker, WaitNode, WaitStats, WaitVerdict, WedgeReport, WAIT_CLASS_NAMES,
};
