//! Critical-path reduction: from a span tree to a per-phase latency
//! attribution that sums exactly to the completion latency.
//!
//! A transaction's completion is triggered by one packet's reassembly,
//! which was staged when its parent packet finished, and so on back to
//! the packets staged at submit time. Walking [`TxnSpanTree::final_packet`]
//! through the `parent` links yields the transaction's **critical
//! chain** — the dependency path whose last link determined the
//! completion cycle. Each link is delimited by engine timestamps, so it
//! decomposes into contiguous, non-overlapping phases:
//!
//! | phase | cycles | what it is |
//! |---|---|---|
//! | `staging` | staged → enqueued | admission-queue wait (pump backpressure) |
//! | `inject` | enqueued → injected | inject-queue wait at the source (I-tag territory) |
//! | `ring` | hops − recirc | productive ring traversal |
//! | `recirc` | recirc cycles | deflection re-circulation (E-tag territory) |
//! | `bridge` | residence − hops | bridge pipelines, escape buffers, foreign-ring inject and eject-queue dwell |
//!
//! A ring flit advances every cycle, so `hops` is exactly its on-ring
//! cycles and the residue `delivered − injected − hops` is exactly its
//! off-ring (bridge/buffer) time; `recirc` is the engine's own count of
//! cycles between a refused ejection and the eventual successful one.
//! Chain links join without gaps (responses and relays are staged in
//! the same cycle their parent completed), so
//! `sum(phases) == completed_at − issued_at` — the reconciliation the
//! `trace-report` gate checks against the [`TxnRegistry`](crate::TxnRegistry).

use crate::spans::{SpanRole, TxnSpanTree};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Phase names, in [`PhaseCycles::as_array`] order.
pub const PHASE_NAMES: [&str; 5] = ["staging", "inject", "ring", "recirc", "bridge"];

/// Cycles attributed to each phase of the critical chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCycles {
    /// Admission-queue wait: packet staged but flits not yet pumped
    /// into the network's inject queues.
    pub staging: u64,
    /// Source inject-queue wait: flit enqueued but not yet on a ring.
    pub inject: u64,
    /// Productive ring traversal (hops minus re-circulation).
    pub ring: u64,
    /// Deflection re-circulation: ring cycles spent lapping past a
    /// refusing eject point.
    pub recirc: u64,
    /// Off-ring residence: bridge pipelines, escape buffers,
    /// foreign-ring inject queues and eject-queue dwell.
    pub bridge: u64,
}

impl PhaseCycles {
    /// Total cycles across all phases.
    pub fn total(&self) -> u64 {
        self.staging + self.inject + self.ring + self.recirc + self.bridge
    }

    /// Values in [`PHASE_NAMES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [
            self.staging,
            self.inject,
            self.ring,
            self.recirc,
            self.bridge,
        ]
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, other: &PhaseCycles) {
        self.staging += other.staging;
        self.inject += other.inject;
        self.ring += other.ring;
        self.recirc += other.recirc;
        self.bridge += other.bridge;
    }
}

/// One link of the critical chain with its phase decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalLink {
    /// Packet id of this link.
    pub packet: u64,
    /// Role the packet played (request / response / relay).
    pub role: SpanRole,
    /// Cycle the link opened (parent completion, or issue for the
    /// first link).
    pub from: u64,
    /// Cycle the link closed (this packet's reassembly completion).
    pub until: u64,
    /// Phase decomposition of the link's cycles.
    pub phases: PhaseCycles,
}

/// A transaction reduced to its longest dependency chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Transaction id.
    pub txn: u64,
    /// End-to-end completion latency.
    pub total: u64,
    /// Chain links, issue-side first.
    pub links: Vec<CriticalLink>,
    /// Phase totals over the whole chain; `phases.total() == total`
    /// whenever the tree's timestamps are engine-consistent.
    pub phases: PhaseCycles,
}

impl CriticalPath {
    /// Whether the phase decomposition accounts for every cycle of the
    /// completion latency — the reconciliation invariant.
    pub fn reconciles(&self) -> bool {
        self.phases.total() == self.total
    }
}

/// Reduce a finished span tree to its critical chain.
///
/// Walks `final_packet` back through `parent` links, then decomposes
/// each link using its critical flit's timestamps. Malformed trees
/// (dangling parents, cyclic links) terminate the walk instead of
/// panicking: spans are diagnostics and must never kill a run.
pub fn critical_path(tree: &TxnSpanTree) -> CriticalPath {
    let mut chain = Vec::new();
    let mut cursor = Some(tree.final_packet);
    while let Some(id) = cursor {
        let Some(span) = tree.packet(id) else { break };
        cursor = span.parent;
        chain.push(span);
        if chain.len() > tree.packets.len() {
            break; // cycle guard
        }
    }
    chain.reverse();

    let mut links = Vec::with_capacity(chain.len());
    let mut phases = PhaseCycles::default();
    let mut opened = tree.issued_at;
    for span in chain {
        let crit = &span.crit;
        // Any slack between the parent's completion and this packet's
        // staging cycle is admission wait too (there is none for the
        // fabric's same-cycle staging, but the reduction stays total
        // for any well-formed tree).
        let staging = crit.enqueued_at.saturating_sub(opened);
        let inject = crit.injected_at.saturating_sub(crit.enqueued_at);
        let residence = crit.delivered_at.saturating_sub(crit.injected_at);
        let on_ring = u64::from(crit.hops).min(residence);
        let recirc = u64::from(crit.recirc_cycles).min(on_ring);
        let link = CriticalLink {
            packet: span.packet,
            role: span.role,
            from: opened,
            until: span.reassembled_at,
            phases: PhaseCycles {
                staging,
                inject,
                ring: on_ring - recirc,
                recirc,
                bridge: residence - on_ring,
            },
        };
        phases.add(&link.phases);
        opened = span.reassembled_at;
        links.push(link);
    }
    CriticalPath {
        txn: tree.txn,
        total: tree.latency(),
        links,
        phases,
    }
}

/// Aggregated per-phase latency profile over many transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Transactions aggregated.
    pub txns: u64,
    /// Sum of completion latencies.
    pub total: u64,
    /// Sum of per-phase attributions.
    pub phases: PhaseCycles,
}

impl LatencyBreakdown {
    /// Fold one transaction's critical path into the profile.
    pub fn add(&mut self, path: &CriticalPath) {
        self.txns += 1;
        self.total += path.total;
        self.phases.add(&path.phases);
    }

    /// Build a profile from a batch of trees.
    pub fn of(trees: &[TxnSpanTree]) -> Self {
        let mut out = LatencyBreakdown::default();
        for t in trees {
            out.add(&critical_path(t));
        }
        out
    }

    /// Fraction of the total attributed to the phase at `idx` (in
    /// [`PHASE_NAMES`] order); 0 for an empty profile.
    pub fn share(&self, idx: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.phases.as_array()[idx] as f64 / self.total as f64
    }

    /// Whether every aggregated cycle is attributed to a phase.
    pub fn reconciles(&self) -> bool {
        self.phases.total() == self.total
    }

    /// Mean completion latency.
    pub fn mean_latency(&self) -> f64 {
        if self.txns == 0 {
            0.0
        } else {
            self.total as f64 / self.txns as f64
        }
    }
}

/// Render labelled breakdown profiles as an aligned ASCII table: one
/// row per profile, one column per phase (cycles and share), plus the
/// transaction count and mean latency.
pub fn breakdown_table(rows: &[(&str, &LatencyBreakdown)]) -> String {
    let label_w = rows
        .iter()
        .map(|(l, _)| l.len())
        .chain(std::iter::once("profile".len()))
        .max()
        .unwrap_or(7);
    let mut out = String::new();
    let w = &mut out;
    write!(w, "{:label_w$}  {:>8}  {:>10}", "profile", "txns", "mean").expect("String write");
    for name in PHASE_NAMES {
        write!(w, "  {name:>16}").expect("String write");
    }
    w.push('\n');
    for (label, b) in rows {
        write!(
            w,
            "{:label_w$}  {:>8}  {:>10.1}",
            label,
            b.txns,
            b.mean_latency()
        )
        .expect("String write");
        for (idx, cycles) in b.phases.as_array().into_iter().enumerate() {
            let cell = format!("{} ({:.1}%)", cycles, 100.0 * b.share(idx));
            write!(w, "  {cell:>16}").expect("String write");
        }
        w.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{FlitSpan, PacketSpan, TxnSpanTree};

    /// A two-link tree: request staged at issue (cycle 100), critical
    /// request flit enqueued at 104, injected at 110, delivered at 130
    /// after 15 hops of which 4 were re-circulation; response staged at
    /// 130, completing at 150 with 12 hops, no deflections, 2 cycles
    /// off-ring.
    fn two_link_tree() -> TxnSpanTree {
        let req = PacketSpan {
            packet: 7,
            parent: None,
            role: SpanRole::Request,
            src: 0,
            dst: 5,
            class: 0,
            bytes: 256,
            flits: 5,
            staged_at: 100,
            first_flit_at: 118,
            reassembled_at: 130,
            hops: 60,
            deflections: 6,
            recirc_cycles: 11,
            etag_laps: 1,
            itag_wait: 9,
            bridge_crossings: 5,
            crit: FlitSpan {
                enqueued_at: 104,
                injected_at: 110,
                delivered_at: 130,
                hops: 15,
                deflections: 2,
                recirc_cycles: 4,
                etag_laps: 0,
                itag_wait: 6,
                bridge_crossings: 1,
            },
        };
        let resp = PacketSpan {
            packet: 9,
            parent: Some(7),
            role: SpanRole::Response,
            src: 5,
            dst: 0,
            class: 1,
            bytes: 0,
            flits: 1,
            staged_at: 130,
            first_flit_at: 150,
            reassembled_at: 150,
            hops: 12,
            deflections: 0,
            recirc_cycles: 0,
            etag_laps: 0,
            itag_wait: 2,
            bridge_crossings: 1,
            crit: FlitSpan {
                enqueued_at: 133,
                injected_at: 136,
                delivered_at: 150,
                hops: 12,
                deflections: 0,
                recirc_cycles: 0,
                etag_laps: 0,
                itag_wait: 2,
                bridge_crossings: 1,
            },
        };
        TxnSpanTree {
            txn: 42,
            op: 2,
            src: 0,
            dst: 5,
            bytes: 256,
            issued_at: 100,
            req_done_at: Some(130),
            completed_at: 150,
            window_occupancy: 3,
            final_packet: 9,
            packets: vec![req, resp],
        }
    }

    #[test]
    fn phases_sum_to_completion_latency() {
        let tree = two_link_tree();
        let path = critical_path(&tree);
        assert_eq!(path.total, 50);
        assert_eq!(path.links.len(), 2);
        assert!(path.reconciles(), "{path:?}");

        // Link 1: staged 100, enq 104, inj 110, delivered 130 with 15
        // hops / 4 recirc → 4 staging, 6 inject, 11 ring, 4 recirc,
        // 5 bridge.
        let l = &path.links[0];
        assert_eq!(l.phases.as_array(), [4, 6, 11, 4, 5]);
        assert_eq!((l.from, l.until), (100, 130));
        // Link 2: opened 130, enq 133, inj 136, delivered 150, 12 hops
        // all productive → 3 staging, 3 inject, 12 ring, 0, 2 bridge.
        let l = &path.links[1];
        assert_eq!(l.phases.as_array(), [3, 3, 12, 0, 2]);
        assert_eq!(path.phases.total(), 50);
    }

    #[test]
    fn reduction_survives_malformed_parent_links() {
        let mut tree = two_link_tree();
        // Dangling parent: the walk stops at the dangling link but the
        // response link itself is still attributed.
        tree.packets[1].parent = Some(999);
        let path = critical_path(&tree);
        assert_eq!(path.links.len(), 1);
        assert_eq!(path.links[0].packet, 9);

        // Self-cycle: terminates, does not hang.
        tree.packets[1].parent = Some(9);
        let path = critical_path(&tree);
        assert!(path.links.len() <= tree.packets.len() + 1);
    }

    #[test]
    fn breakdown_aggregates_and_renders() {
        let tree = two_link_tree();
        let mut b = LatencyBreakdown::default();
        b.add(&critical_path(&tree));
        b.add(&critical_path(&tree));
        assert_eq!(b.txns, 2);
        assert_eq!(b.total, 100);
        assert!(b.reconciles());
        assert!((b.mean_latency() - 50.0).abs() < 1e-9);
        assert!((b.share(2) - 46.0 / 100.0).abs() < 1e-9, "ring share");

        let table = breakdown_table(&[("all", &b), ("tail", &b)]);
        assert!(table.contains("staging"), "{table}");
        assert!(table.contains("46 (46.0%)"), "{table}");
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn empty_profile_is_inert() {
        let b = LatencyBreakdown::default();
        assert!(b.reconciles());
        assert_eq!(b.share(0), 0.0);
        assert_eq!(b.mean_latency(), 0.0);
    }
}
