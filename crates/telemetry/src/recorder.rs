//! The flight recorder: bounded retention of the recent past.
//!
//! A [`FlightRecorder`] keeps two fixed-size rings — the last R
//! committed [`MetricsSnapshot`]s and the last T flit-lifecycle
//! [`TraceRecord`]s — so that when a health watchdog latches, the
//! postmortem bundle can include what the network looked like in the
//! windows *leading up to* the verdict, not just at the moment of it.
//! Memory is bounded by construction; a recorder attached to a
//! year-long run costs the same as one attached to a test.
//!
//! The event ring only fills when the network runs with a real
//! [`TraceSink`](crate::TraceSink) (the engine tees the per-shard trace
//! buffers into the recorder at the same deterministic ring-order drain
//! that feeds the sink). Under `NullSink` the ring stays empty and the
//! tee is compiled away with the rest of the telemetry path.

use crate::event::TraceRecord;
use crate::metrics::MetricsSnapshot;
use std::collections::VecDeque;

/// Sizing for the flight recorder and the flow-attribution layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Snapshots retained (R): the visible history of a bundle.
    pub snapshot_window: usize,
    /// Trace events retained (T) when a tracing sink is attached.
    pub event_window: usize,
    /// Flows tracked per ring shard (Space-Saving capacity), and the
    /// cut applied when tables are merged for a bundle.
    pub flow_top_k: usize,
    /// Sampling windows between in-flight charge sweeps (1 = every
    /// window). Deliveries are always accounted exactly at the next
    /// window; the sweep that attributes a *circulating* flit's
    /// deflections and samples link occupancy only runs every
    /// `charge_stride`-th window — plus, forced, right before any
    /// watchdog bundle capture and at `finish_metrics`, so frozen
    /// tables never lag.
    pub charge_stride: usize,
    /// Watchdog-triggered bundles kept per run. Explicit
    /// `dump_postmortem` calls are not counted against this.
    pub max_bundles: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            snapshot_window: 32,
            event_window: 4096,
            flow_top_k: 16,
            charge_stride: 8,
            max_bundles: 4,
        }
    }
}

/// Fixed-size recent-history rings for snapshots and trace events.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cfg: RecorderConfig,
    snapshots: VecDeque<MetricsSnapshot>,
    events: VecDeque<TraceRecord>,
    /// Totals pushed (not retained) — tells a bundle reader how much
    /// history scrolled past the window.
    snapshots_seen: u64,
    events_seen: u64,
}

impl FlightRecorder {
    /// A recorder with the given retention limits.
    pub fn new(cfg: RecorderConfig) -> Self {
        FlightRecorder {
            snapshots: VecDeque::with_capacity(cfg.snapshot_window.min(1024)),
            events: VecDeque::with_capacity(cfg.event_window.min(4096)),
            cfg,
            snapshots_seen: 0,
            events_seen: 0,
        }
    }

    /// The retention limits in effect.
    pub fn config(&self) -> &RecorderConfig {
        &self.cfg
    }

    /// Retain a committed snapshot, evicting the oldest past R.
    pub fn record_snapshot(&mut self, snap: MetricsSnapshot) {
        self.snapshots_seen += 1;
        if self.cfg.snapshot_window == 0 {
            return;
        }
        if self.snapshots.len() == self.cfg.snapshot_window {
            self.snapshots.pop_front();
        }
        self.snapshots.push_back(snap);
    }

    /// Retain a trace event, evicting the oldest past T.
    pub fn record_event(&mut self, record: TraceRecord) {
        self.events_seen += 1;
        if self.cfg.event_window == 0 {
            return;
        }
        if self.events.len() == self.cfg.event_window {
            self.events.pop_front();
        }
        self.events.push_back(record);
    }

    /// Retained snapshots, oldest first.
    pub fn snapshots(&self) -> impl Iterator<Item = &MetricsSnapshot> {
        self.snapshots.iter()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceRecord> {
        self.events.iter()
    }

    /// Snapshots ever pushed (retained or scrolled off).
    pub fn snapshots_seen(&self) -> u64 {
        self.snapshots_seen
    }

    /// Events ever pushed (retained or scrolled off).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlitEvent, NO_LANE};

    fn snap(seq: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            seq,
            cycle: seq * 32,
            ..MetricsSnapshot::default()
        }
    }

    fn event(cycle: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            flit: 0,
            ring: 0,
            station: 0,
            lane: NO_LANE,
            event: FlitEvent::Injected { node: 0 },
        }
    }

    #[test]
    fn rings_retain_the_most_recent() {
        let mut r = FlightRecorder::new(RecorderConfig {
            snapshot_window: 3,
            event_window: 2,
            ..RecorderConfig::default()
        });
        for i in 0..10 {
            r.record_snapshot(snap(i));
            r.record_event(event(i));
        }
        let seqs: Vec<u64> = r.snapshots().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![8, 9]);
        assert_eq!(r.snapshots_seen(), 10);
        assert_eq!(r.events_seen(), 10);
    }

    #[test]
    fn zero_windows_retain_nothing_but_count() {
        let mut r = FlightRecorder::new(RecorderConfig {
            snapshot_window: 0,
            event_window: 0,
            ..RecorderConfig::default()
        });
        r.record_snapshot(snap(0));
        r.record_event(event(0));
        assert_eq!(r.snapshots().count(), 0);
        assert_eq!(r.events().count(), 0);
        assert_eq!(r.snapshots_seen(), 1);
    }
}
