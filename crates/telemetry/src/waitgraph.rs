//! Typed resource wait-for graphs: online stall forensics for the
//! transaction fabric.
//!
//! # The model
//!
//! Four resource classes can block progress in the layered fabric:
//!
//! * **ring slots** — a deflection ring holds at most `stations ×
//!   lanes` flits; a full ring admits nothing until a resident flit
//!   ejects locally (bridge injection consumes free slots, only
//!   ejection creates them);
//! * **bridge escape buffers** — the bounded pipe (`tx` + peer
//!   backlog) plus the DRM escape `reserved` slots of one bridge side;
//! * **in-flight windows** — a device's bounded non-posted window,
//!   held from submit until the response reassembles back;
//! * **reassembly buffers** — the per-endpoint partial-packet store, a
//!   pinned entry per packet awaiting its missing sequence numbers.
//!
//! A [`WaitGraphSample`] is a snapshot of those resources as typed
//! nodes plus *wait edges*: `from` (a held resource) → `holder` (the
//! transaction or packet occupying it) → `to` (the resource it cannot
//! release `from` without). Edges are contributed by the owners of the
//! state — the core engine reports ring transit and escape pipes, the
//! transaction fabric reports window holders and pinned reassemblies —
//! and deduplicated per `(from, to)` pair keeping the smallest holder
//! id as the deterministic representative.
//!
//! # Verdicts
//!
//! A deterministic Tarjan SCC pass classifies each sample:
//!
//! * [`WaitVerdict::Progressing`] — the graph is acyclic;
//! * [`WaitVerdict::TransientCycle`] — a cycle exists, but at least
//!   one member resource still shows progress (cycles are *normal*
//!   under load: a saturated torus loop waits on itself while flits
//!   drain through it);
//! * [`WaitVerdict::Wedged`] — some cycle's members **all** show zero
//!   progress-counter delta over
//!   [`WaitGraphConfig::freeze_windows`] consecutive samples. Frozen
//!   occupancy alone is not enough — a full ring under heavy load
//!   keeps constant occupancy while moving thousands of flits — so
//!   freezing is judged on monotone progress counters (injections,
//!   deliveries, crossings, reassembled flits, window completions).
//!
//! On the first `Wedged` verdict the tracker freezes a
//! [`WedgeReport`]: the cyclic chain as resource → holder → resource
//! triples, the pinned feeder edges (windows and reassembly buffers
//! waiting *into* the cycle), per-resource occupancy history, and the
//! holder transaction/packet ids for exemplar lookup.
//!
//! # Determinism
//!
//! Samples are built between engine ticks from settled, owner-held
//! state (the same argument as the metrics snapshots of DESIGN.md §11:
//! shards are owned by the network at every barrier), on the
//! observatory's sample schedule. Nodes and edges are sorted, the SCC
//! pass iterates sorted adjacency, and history is keyed by `BTreeMap`
//! — the sampled stream is byte-identical across
//! `Sequential/Parallel(n)` × `Fast/Reference` × epoch `K` (each `K`
//! against its own `K`-golden, the workspace's lockstep convention).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// One blocking resource. Variant order defines the canonical sort
/// order of nodes in a sample (rings, escapes, windows, reassembly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceId {
    /// The slot pool of one deflection ring.
    Ring {
        /// Ring id.
        ring: u16,
    },
    /// One bridge side's transfer resource: the bounded `tx` pipe plus
    /// its DRM escape buffers, carrying flits *out of* that side's
    /// ring.
    Escape {
        /// Bridge id.
        bridge: u32,
        /// Side (0 or 1).
        side: u8,
    },
    /// One device's non-posted in-flight window.
    Window {
        /// Device node id.
        node: u32,
    },
    /// One endpoint's reassembly buffer.
    Reassembly {
        /// Device node id.
        node: u32,
    },
}

impl ResourceId {
    /// Index of the resource's class (ring 0, escape 1, window 2,
    /// reassembly 3) — the axis of the per-class blocked gauges.
    pub fn class(&self) -> usize {
        match self {
            ResourceId::Ring { .. } => 0,
            ResourceId::Escape { .. } => 1,
            ResourceId::Window { .. } => 2,
            ResourceId::Reassembly { .. } => 3,
        }
    }
}

/// Kebab-case names of the four resource classes, indexed by
/// [`ResourceId::class`].
pub const WAIT_CLASS_NAMES: [&str; 4] = ["ring", "escape", "window", "reassembly"];

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceId::Ring { ring } => write!(f, "ring:r{ring}"),
            ResourceId::Escape { bridge, side } => write!(f, "escape:b{bridge}.s{side}"),
            ResourceId::Window { node } => write!(f, "window:n{node}"),
            ResourceId::Reassembly { node } => write!(f, "reassembly:n{node}"),
        }
    }
}

/// One sampled resource: occupancy, capacity and a monotone progress
/// counter (what moved through it since construction).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitNode {
    /// The resource.
    pub id: ResourceId,
    /// Units currently held (flits for rings/escapes, transactions for
    /// windows, open packets for reassembly buffers).
    pub occupancy: u64,
    /// Capacity in the same units; `0` means unbounded.
    pub capacity: u64,
    /// Monotone progress counter. A resource whose occupancy is
    /// non-zero while this counter stops advancing is *frozen*.
    pub progress: u64,
}

/// One wait edge: the holder of `from` cannot release it until `to`
/// frees up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WaitEdge {
    /// The held resource.
    pub from: ResourceId,
    /// The wanted resource.
    pub to: ResourceId,
    /// Representative holder: the smallest transaction or packet id
    /// occupying `from` while waiting on `to`.
    pub holder: u64,
}

/// Classification of one sampled wait graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitVerdict {
    /// Acyclic: every chain of waits bottoms out in a free resource.
    Progressing,
    /// Cyclic, but at least one cycle member still makes progress.
    TransientCycle,
    /// A cycle whose members all froze for the configured number of
    /// consecutive samples: a deadlock certificate.
    Wedged,
}

impl fmt::Display for WaitVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WaitVerdict::Progressing => "progressing",
            WaitVerdict::TransientCycle => "transient-cycle",
            WaitVerdict::Wedged => "wedged",
        })
    }
}

/// One committed wait-graph sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WaitGraphSample {
    /// Cycle the sample was stamped at.
    pub cycle: u64,
    /// Resources, sorted by [`ResourceId`].
    pub nodes: Vec<WaitNode>,
    /// Wait edges, sorted, deduplicated per `(from, to)`.
    pub edges: Vec<WaitEdge>,
    /// The verdict for this sample.
    pub verdict: WaitVerdict,
    /// Members of cyclic SCCs (sorted). Empty when progressing.
    pub cyclic: Vec<ResourceId>,
    /// The wedged set: members of frozen cycles plus every resource
    /// that transitively waits into one (sorted). Empty unless the
    /// verdict is [`WaitVerdict::Wedged`].
    pub wedged: Vec<ResourceId>,
}

/// Aggregate gauges of one sample — the Prometheus/JSONL surface and
/// the diagnostics stall summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitStats {
    /// Sample cycle.
    pub cycle: u64,
    /// Verdict.
    pub verdict: WaitVerdict,
    /// Resources with at least one out-edge (blocked holders), per
    /// class, indexed like [`WAIT_CLASS_NAMES`].
    pub blocked: [u64; 4],
    /// Cycles since the oldest currently-frozen resource last made
    /// progress.
    pub oldest_frozen: u64,
    /// Number of cyclic SCCs in the sample.
    pub cyclic_sccs: u64,
}

impl WaitGraphSample {
    /// Reduce the sample to its gauge surface. `oldest_frozen` needs
    /// the tracker's history, so it is stamped by
    /// [`WaitGraphTracker::ingest`]; recomputing here yields 0.
    pub fn stats(&self) -> WaitStats {
        let mut blocked = [0u64; 4];
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if seen.insert(e.from) {
                blocked[e.from.class()] += 1;
            }
        }
        WaitStats {
            cycle: self.cycle,
            verdict: self.verdict,
            blocked,
            oldest_frozen: 0,
            cyclic_sccs: count_cyclic_sccs(&self.nodes, &self.edges) as u64,
        }
    }
}

/// Tarjan's strongly-connected-components algorithm over the sorted
/// node list, iterative (explicit stack) and deterministic: nodes are
/// visited in sorted [`ResourceId`] order and adjacency lists are
/// sorted. Returns each SCC as a sorted member list; single nodes
/// without a self-edge are filtered out (they cannot be cyclic).
pub fn cyclic_sccs(nodes: &[WaitNode], edges: &[WaitEdge]) -> Vec<Vec<ResourceId>> {
    let index_of: BTreeMap<ResourceId, usize> =
        nodes.iter().enumerate().map(|(i, n)| (n.id, i)).collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_edge = vec![false; n];
    for e in edges {
        let (Some(&f), Some(&t)) = (index_of.get(&e.from), index_of.get(&e.to)) else {
            continue; // edge to a resource not sampled as a node
        };
        if f == t {
            self_edge[f] = true;
        }
        adj[f].push(t);
    }
    for a in &mut adj {
        a.sort_unstable();
        a.dedup();
    }

    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out: Vec<Vec<ResourceId>> = Vec::new();
    // (node, next adjacency offset) — the explicit DFS frame.
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        frames.push((start, 0));
        while let Some(&mut (v, ref mut ai)) = frames.last_mut() {
            if *ai == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(*ai) {
                *ai += 1;
                if index[w] == UNVISITED {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            // v is exhausted: close its frame.
            frames.pop();
            if let Some(&mut (p, _)) = frames.last_mut() {
                low[p] = low[p].min(low[v]);
            }
            if low[v] == index[v] {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w] = false;
                    scc.push(nodes[w].id);
                    if w == v {
                        break;
                    }
                }
                if scc.len() > 1 || self_edge[v] {
                    scc.sort_unstable();
                    out.push(scc);
                }
            }
        }
    }
    // Canonical order: by smallest member.
    out.sort();
    out
}

fn count_cyclic_sccs(nodes: &[WaitNode], edges: &[WaitEdge]) -> usize {
    cyclic_sccs(nodes, edges).len()
}

/// The frozen deadlock certificate emitted on the first
/// [`WaitVerdict::Wedged`] sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WedgeReport {
    /// Cycle the wedge latched at.
    pub cycle: u64,
    /// Consecutive frozen samples required before latching.
    pub freeze_windows: u32,
    /// The cyclic chain: wait edges internal to the frozen SCCs,
    /// sorted — each a `resource → holder → wanted-resource` triple.
    pub chain: Vec<WaitEdge>,
    /// Feeder edges: waits from outside the frozen cycles into the
    /// wedged set (typically windows and reassembly buffers pinned
    /// behind the cycle), sorted.
    pub pinned: Vec<WaitEdge>,
    /// Recent occupancy history (oldest first) per wedged-set
    /// resource, sorted by resource.
    pub occupancy: Vec<(ResourceId, Vec<u64>)>,
    /// Holder transaction/packet ids of every wedged-set edge, sorted
    /// and deduplicated — the keys for span-tree exemplar lookup.
    pub holders: Vec<u64>,
}

impl WedgeReport {
    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        let mut out = format!(
            "wedge @ cycle {} (frozen {} samples)\n  cycle chain:\n",
            self.cycle, self.freeze_windows
        );
        for e in &self.chain {
            out.push_str(&format!("    {} -[{}]-> {}\n", e.from, e.holder, e.to));
        }
        out.push_str("  pinned behind it:\n");
        for e in &self.pinned {
            out.push_str(&format!("    {} -[{}]-> {}\n", e.from, e.holder, e.to));
        }
        out
    }
}

/// Tracker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitGraphConfig {
    /// Consecutive samples a cycle's members must all be frozen
    /// (non-empty, zero progress delta) before the verdict escalates
    /// to [`WaitVerdict::Wedged`].
    pub freeze_windows: u32,
    /// Bound on retained samples (oldest evicted first).
    pub max_samples: usize,
    /// Occupancy-history depth kept per resource for the wedge report.
    pub history: usize,
}

impl Default for WaitGraphConfig {
    fn default() -> Self {
        WaitGraphConfig {
            freeze_windows: 4,
            max_samples: 4096,
            history: 8,
        }
    }
}

/// Per-resource progress memory.
#[derive(Debug, Clone, Default)]
struct ResourceTrack {
    last_progress: u64,
    /// Consecutive samples with occupancy > 0 and no progress.
    frozen_streak: u32,
    /// Cycle the current frozen streak started at.
    frozen_since: u64,
    /// Recent occupancies, oldest first, bounded by config.
    occupancy: VecDeque<u64>,
}

/// Online wait-graph classifier: ingest one built graph per
/// observatory sample, maintain per-resource freeze streaks, emit the
/// verdict stream and latch a [`WedgeReport`] on the first wedge.
#[derive(Debug, Clone)]
pub struct WaitGraphTracker {
    cfg: WaitGraphConfig,
    /// Per-resource streak state, sorted by id (merged against the
    /// sorted node list in one linear pass per sample).
    tracks: Vec<(ResourceId, ResourceTrack)>,
    samples: VecDeque<WaitGraphSample>,
    stats: Vec<WaitStats>,
    report: Option<WedgeReport>,
}

impl WaitGraphTracker {
    /// A tracker with the given config.
    pub fn new(cfg: WaitGraphConfig) -> Self {
        assert!(cfg.freeze_windows > 0, "freeze_windows must be positive");
        assert!(cfg.history > 0, "history must be positive");
        WaitGraphTracker {
            cfg,
            tracks: Vec::new(),
            samples: VecDeque::new(),
            stats: Vec::new(),
            report: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WaitGraphConfig {
        &self.cfg
    }

    /// Ingest one raw graph (`nodes` sorted by id, `edges` arbitrary)
    /// stamped at `cycle`; classify it, update freeze streaks, retain
    /// the sample and return a reference to it.
    pub fn ingest(
        &mut self,
        cycle: u64,
        nodes: Vec<WaitNode>,
        edges: Vec<WaitEdge>,
    ) -> &WaitGraphSample {
        let (_, oldest_frozen) = self.update_tracks(cycle, &nodes);
        self.classify(cycle, nodes, edges, oldest_frozen)
    }

    /// Like [`WaitGraphTracker::ingest`], but edge construction is
    /// deferred: `edges_fn` is only invoked once some ring or escape
    /// resource has been frozen for the configured latch threshold.
    /// Every wait cycle in this system passes through a ring or escape
    /// node (nothing waits *on* a window, and a reassembly buffer
    /// never waits on another one), and a wedge verdict requires every
    /// cycle member — so in particular that ring or escape — to carry
    /// a streak of at least `freeze_windows`. A sample where no
    /// ring/escape has reached the threshold therefore cannot latch;
    /// it is committed as [`WaitVerdict::Progressing`] with no edges,
    /// skipping the expensive packet-placement census and SCC pass.
    /// Latch timing is identical to the eager form (streaks depend
    /// only on nodes); the trade is that transient cycles among
    /// still-progressing resources go unreported until something
    /// actually approaches the wedge threshold — which is when they
    /// matter.
    pub fn ingest_lazy(
        &mut self,
        cycle: u64,
        nodes: Vec<WaitNode>,
        edges_fn: impl FnOnce() -> Vec<WaitEdge>,
    ) -> &WaitGraphSample {
        let (escalate, oldest_frozen) = self.update_tracks(cycle, &nodes);
        if escalate {
            let edges = edges_fn();
            return self.classify(cycle, nodes, edges, oldest_frozen);
        }
        let sample = WaitGraphSample {
            cycle,
            nodes,
            edges: Vec::new(),
            verdict: WaitVerdict::Progressing,
            cyclic: Vec::new(),
            wedged: Vec::new(),
        };
        let stats = WaitStats {
            cycle,
            verdict: WaitVerdict::Progressing,
            blocked: [0; 4],
            oldest_frozen,
            cyclic_sccs: 0,
        };
        self.push_sample(sample, stats)
    }

    /// Update per-resource freeze streaks from the sampled progress
    /// counters. Returns whether any ring or escape resource has been
    /// frozen for `freeze_windows` samples (the lazy path's escalation
    /// trigger) and the age of the oldest freeze. `tracks` is kept
    /// sorted by [`ResourceId`] and merged against the (sorted) node
    /// list in one linear pass.
    fn update_tracks(&mut self, cycle: u64, nodes: &[WaitNode]) -> (bool, u64) {
        debug_assert!(nodes.windows(2).all(|w| w[0].id < w[1].id), "nodes sorted");
        let mut escalate = false;
        let mut oldest = 0u64;
        let mut ti = 0usize;
        for n in nodes {
            while ti < self.tracks.len() && self.tracks[ti].0 < n.id {
                ti += 1;
            }
            if ti >= self.tracks.len() || self.tracks[ti].0 != n.id {
                self.tracks.insert(ti, (n.id, ResourceTrack::default()));
            }
            let t = &mut self.tracks[ti].1;
            if n.occupancy > 0 && n.progress == t.last_progress && !t.occupancy.is_empty() {
                if t.frozen_streak == 0 {
                    t.frozen_since = cycle;
                }
                t.frozen_streak += 1;
            } else {
                t.frozen_streak = 0;
                t.frozen_since = cycle;
            }
            t.last_progress = n.progress;
            t.occupancy.push_back(n.occupancy);
            while t.occupancy.len() > self.cfg.history {
                t.occupancy.pop_front();
            }
            if t.frozen_streak > 0 {
                oldest = oldest.max(cycle.saturating_sub(t.frozen_since));
                if t.frozen_streak >= self.cfg.freeze_windows
                    && matches!(n.id, ResourceId::Ring { .. } | ResourceId::Escape { .. })
                {
                    escalate = true;
                }
            }
            ti += 1;
        }
        (escalate, oldest)
    }

    /// The track for `id`, if the resource has ever been sampled.
    fn track(&self, id: &ResourceId) -> Option<&ResourceTrack> {
        self.tracks
            .binary_search_by(|(r, _)| r.cmp(id))
            .ok()
            .map(|i| &self.tracks[i].1)
    }

    /// Full classification: canonicalize edges, run the SCC pass,
    /// derive the verdict and gauges, latch the report on the first
    /// wedge, and commit the sample.
    fn classify(
        &mut self,
        cycle: u64,
        nodes: Vec<WaitNode>,
        mut edges: Vec<WaitEdge>,
        oldest_frozen: u64,
    ) -> &WaitGraphSample {
        // Canonical edges: dedup per (from, to) keeping the smallest
        // holder as representative.
        edges.sort_unstable();
        edges.dedup_by(|b, a| a.from == b.from && a.to == b.to);

        let sccs = cyclic_sccs(&nodes, &edges);
        let cyclic: Vec<ResourceId> = {
            let mut v: Vec<ResourceId> = sccs.iter().flatten().copied().collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let frozen_sccs: Vec<&Vec<ResourceId>> = sccs
            .iter()
            .filter(|scc| {
                scc.iter().all(|r| {
                    self.track(r)
                        .is_some_and(|t| t.frozen_streak >= self.cfg.freeze_windows)
                })
            })
            .collect();

        let (verdict, wedged) = if !frozen_sccs.is_empty() {
            // Wedged set: frozen-cycle members plus reverse reachability
            // (everything transitively waiting into a frozen cycle).
            let mut wedged: BTreeSet<ResourceId> =
                frozen_sccs.iter().flat_map(|s| s.iter()).copied().collect();
            loop {
                let before = wedged.len();
                for e in &edges {
                    if wedged.contains(&e.to) {
                        wedged.insert(e.from);
                    }
                }
                if wedged.len() == before {
                    break;
                }
            }
            (WaitVerdict::Wedged, wedged.into_iter().collect())
        } else if !cyclic.is_empty() {
            (WaitVerdict::TransientCycle, Vec::new())
        } else {
            (WaitVerdict::Progressing, Vec::new())
        };

        // Blocked holders per class: edges are sorted, so distinct
        // `from` resources appear as runs — no set needed.
        let mut blocked = [0u64; 4];
        let mut prev_from: Option<ResourceId> = None;
        for e in &edges {
            if prev_from != Some(e.from) {
                blocked[e.from.class()] += 1;
                prev_from = Some(e.from);
            }
        }
        let stats = WaitStats {
            cycle,
            verdict,
            blocked,
            oldest_frozen,
            cyclic_sccs: sccs.len() as u64,
        };

        let sample = WaitGraphSample {
            cycle,
            nodes,
            edges,
            verdict,
            cyclic,
            wedged,
        };
        if verdict == WaitVerdict::Wedged && self.report.is_none() {
            self.report = Some(self.freeze_report(&sample, &frozen_sccs));
        }
        self.push_sample(sample, stats)
    }

    fn push_sample(&mut self, sample: WaitGraphSample, stats: WaitStats) -> &WaitGraphSample {
        self.stats.push(stats);
        self.samples.push_back(sample);
        while self.samples.len() > self.cfg.max_samples {
            self.samples.pop_front();
        }
        self.samples.back().expect("just pushed")
    }

    fn freeze_report(
        &self,
        sample: &WaitGraphSample,
        frozen_sccs: &[&Vec<ResourceId>],
    ) -> WedgeReport {
        let in_cycle: BTreeSet<ResourceId> =
            frozen_sccs.iter().flat_map(|s| s.iter()).copied().collect();
        let wedged: BTreeSet<ResourceId> = sample.wedged.iter().copied().collect();
        let chain: Vec<WaitEdge> = sample
            .edges
            .iter()
            .filter(|e| in_cycle.contains(&e.from) && in_cycle.contains(&e.to))
            .copied()
            .collect();
        let pinned: Vec<WaitEdge> = sample
            .edges
            .iter()
            .filter(|e| !in_cycle.contains(&e.from) && wedged.contains(&e.to))
            .copied()
            .collect();
        let occupancy: Vec<(ResourceId, Vec<u64>)> = wedged
            .iter()
            .map(|r| {
                let hist = self
                    .track(r)
                    .map(|t| t.occupancy.iter().copied().collect())
                    .unwrap_or_default();
                (*r, hist)
            })
            .collect();
        let mut holders: Vec<u64> = chain
            .iter()
            .chain(pinned.iter())
            .map(|e| e.holder)
            .collect();
        holders.sort_unstable();
        holders.dedup();
        WedgeReport {
            cycle: sample.cycle,
            freeze_windows: self.cfg.freeze_windows,
            chain,
            pinned,
            occupancy,
            holders,
        }
    }

    /// Retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &WaitGraphSample> {
        self.samples.iter()
    }

    /// The most recent sample.
    pub fn last(&self) -> Option<&WaitGraphSample> {
        self.samples.back()
    }

    /// Per-sample gauge stream (never evicted; one row per ingest).
    pub fn stats(&self) -> &[WaitStats] {
        &self.stats
    }

    /// Whether a wedge has latched.
    pub fn latched(&self) -> bool {
        self.report.is_some()
    }

    /// The frozen report, if a wedge latched.
    pub fn report(&self) -> Option<&WedgeReport> {
        self.report.as_ref()
    }
}

/// Serialize samples as one JSON object per line — the export twin of
/// [`snapshots_jsonl`](crate::export::snapshots_jsonl).
pub fn wait_graphs_jsonl<'a>(samples: impl IntoIterator<Item = &'a WaitGraphSample>) -> String {
    let mut out = String::new();
    for s in samples {
        out.push_str(&serde_json::to_string(s).expect("samples serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(id: ResourceId, occ: u64, progress: u64) -> WaitNode {
        WaitNode {
            id,
            occupancy: occ,
            capacity: 8,
            progress,
        }
    }

    fn ring(r: u16) -> ResourceId {
        ResourceId::Ring { ring: r }
    }

    fn edge(from: ResourceId, to: ResourceId, holder: u64) -> WaitEdge {
        WaitEdge { from, to, holder }
    }

    /// The canonical 3-resource cycle used by the latch tests.
    fn cycle_graph(progress: u64) -> (Vec<WaitNode>, Vec<WaitEdge>) {
        let nodes = vec![
            node(ring(0), 4, progress),
            node(ring(1), 4, progress),
            node(ring(2), 4, progress),
        ];
        let edges = vec![
            edge(ring(0), ring(1), 10),
            edge(ring(1), ring(2), 11),
            edge(ring(2), ring(0), 12),
        ];
        (nodes, edges)
    }

    #[test]
    fn tarjan_finds_the_cycle_and_ignores_chains() {
        let nodes = vec![
            node(ring(0), 1, 0),
            node(ring(1), 1, 0),
            node(ring(2), 1, 0),
            node(ring(3), 1, 0),
        ];
        // 3 → 0 → 1 → 2 → 0: cycle {0,1,2}, 3 is a feeder.
        let edges = vec![
            edge(ring(3), ring(0), 1),
            edge(ring(0), ring(1), 2),
            edge(ring(1), ring(2), 3),
            edge(ring(2), ring(0), 4),
        ];
        let sccs = cyclic_sccs(&nodes, &edges);
        assert_eq!(sccs, vec![vec![ring(0), ring(1), ring(2)]]);
    }

    #[test]
    fn self_edge_counts_as_cyclic() {
        let nodes = vec![node(ring(0), 1, 0), node(ring(1), 1, 0)];
        let edges = vec![edge(ring(0), ring(0), 7)];
        assert_eq!(cyclic_sccs(&nodes, &edges), vec![vec![ring(0)]]);
    }

    #[test]
    fn frozen_cycle_latches_after_w_windows() {
        let cfg = WaitGraphConfig {
            freeze_windows: 3,
            ..WaitGraphConfig::default()
        };
        let mut tr = WaitGraphTracker::new(cfg);
        // Sample 0 establishes history (no streak yet), then the
        // progress counter stops dead.
        for i in 0..5u64 {
            let (nodes, edges) = cycle_graph(42); // progress constant
            let s = tr.ingest(i * 32, nodes, edges);
            if i < 3 {
                assert_eq!(
                    s.verdict,
                    WaitVerdict::TransientCycle,
                    "sample {i} latched early"
                );
                assert!(!tr.latched());
            } else {
                assert_eq!(s.verdict, WaitVerdict::Wedged, "sample {i} failed to latch");
            }
        }
        assert!(tr.latched());
        let rep = tr.report().expect("latched");
        assert_eq!(rep.chain.len(), 3);
        assert_eq!(rep.holders, vec![10, 11, 12]);
        assert!(rep.render().contains("ring:r0 -[10]-> ring:r1"));
    }

    #[test]
    fn transient_cycle_with_progress_never_latches() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig {
            freeze_windows: 2,
            ..WaitGraphConfig::default()
        });
        for i in 0..10u64 {
            // Progress advances every sample: the cycle is live.
            let (nodes, edges) = cycle_graph(100 + i);
            let s = tr.ingest(i * 32, nodes, edges);
            assert_eq!(s.verdict, WaitVerdict::TransientCycle);
        }
        assert!(!tr.latched());
        assert!(tr.report().is_none());
    }

    #[test]
    fn one_live_member_keeps_the_cycle_transient() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig {
            freeze_windows: 2,
            ..WaitGraphConfig::default()
        });
        for i in 0..10u64 {
            let (mut nodes, edges) = cycle_graph(42);
            nodes[1].progress = 42 + i; // ring 1 still moves
            let s = tr.ingest(i * 32, nodes, edges);
            assert_ne!(s.verdict, WaitVerdict::Wedged, "sample {i}");
        }
        assert!(!tr.latched());
    }

    #[test]
    fn wedged_set_includes_feeders_and_report_pins_them() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig {
            freeze_windows: 2,
            ..WaitGraphConfig::default()
        });
        let win = ResourceId::Window { node: 9 };
        let rea = ResourceId::Reassembly { node: 5 };
        for i in 0..4u64 {
            let (mut nodes, mut edges) = cycle_graph(42);
            nodes.sort_by_key(|n| n.id);
            let mut all = vec![node(win, 2, 7), node(rea, 1, 3)];
            all.extend(nodes);
            all.sort_by_key(|n| n.id);
            // window → reassembly → ring 0 (a feeder chain).
            edges.push(edge(win, rea, 77));
            edges.push(edge(rea, ring(0), 55));
            let s = tr.ingest(i * 32, all, edges);
            if i >= 2 {
                assert_eq!(s.verdict, WaitVerdict::Wedged);
                assert!(s.wedged.contains(&win), "window reached into the wedge");
                assert!(s.wedged.contains(&rea));
            }
        }
        let rep = tr.report().expect("latched");
        assert_eq!(rep.chain.len(), 3, "cycle edges only");
        assert_eq!(rep.pinned.len(), 2, "both feeder edges pinned");
        assert!(rep.holders.contains(&77) && rep.holders.contains(&55));
        let occ_ids: Vec<ResourceId> = rep.occupancy.iter().map(|(r, _)| *r).collect();
        assert!(occ_ids.contains(&win) && occ_ids.contains(&rea));
    }

    #[test]
    fn occupancy_freeze_without_progress_freeze_is_not_a_wedge() {
        // A full ring moving traffic: occupancy constant, progress
        // advancing. Must never latch.
        let mut tr = WaitGraphTracker::new(WaitGraphConfig {
            freeze_windows: 2,
            ..WaitGraphConfig::default()
        });
        for i in 0..8u64 {
            let (mut nodes, edges) = cycle_graph(0);
            for n in &mut nodes {
                n.occupancy = 8; // pinned at capacity
                n.progress = i * 100; // but flits flow through
            }
            let s = tr.ingest(i * 32, nodes, edges);
            assert_ne!(s.verdict, WaitVerdict::Wedged);
        }
        assert!(!tr.latched());
    }

    #[test]
    fn edges_dedup_to_smallest_holder() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig::default());
        let nodes = vec![node(ring(0), 1, 0), node(ring(1), 1, 0)];
        let edges = vec![
            edge(ring(0), ring(1), 20),
            edge(ring(0), ring(1), 5),
            edge(ring(0), ring(1), 11),
        ];
        let s = tr.ingest(0, nodes, edges);
        assert_eq!(s.edges.len(), 1);
        assert_eq!(s.edges[0].holder, 5);
    }

    #[test]
    fn samples_round_trip_through_jsonl() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig::default());
        let (nodes, edges) = cycle_graph(1);
        tr.ingest(32, nodes, edges);
        let jsonl = wait_graphs_jsonl(tr.samples());
        let line = jsonl.lines().next().expect("one sample");
        let back: WaitGraphSample = serde_json::from_str(line).expect("parses");
        assert_eq!(&back, tr.last().expect("retained"));
    }

    #[test]
    fn stats_count_blocked_per_class() {
        let mut tr = WaitGraphTracker::new(WaitGraphConfig::default());
        let win = ResourceId::Window { node: 1 };
        let mut nodes = vec![node(ring(0), 1, 0), node(ring(1), 1, 0), node(win, 1, 0)];
        nodes.sort_by_key(|n| n.id);
        let edges = vec![edge(ring(0), ring(1), 1), edge(win, ring(0), 2)];
        tr.ingest(0, nodes, edges);
        let st = tr.stats().last().expect("one row");
        assert_eq!(st.blocked[0], 1, "one ring blocked");
        assert_eq!(st.blocked[2], 1, "one window blocked");
        assert_eq!(st.cyclic_sccs, 0);
    }
}
