//! Health watchdogs: explainable, cycle-stamped verdicts over the
//! snapshot stream.
//!
//! A [`HealthMonitor`] consumes [`MetricsSnapshot`]s in order and
//! evaluates four rules, each tied to one of the paper's §4 guarantees:
//!
//! * **Starvation onset** — a ring's I-tag placement rate (or the
//!   largest current injection wait) exceeds its threshold: the
//!   starvation-relief mechanism is being leaned on hard.
//! * **Congestion knee** — the windowed deflection rate is both high
//!   and rising across the last few snapshots: the network is past the
//!   non-linear degradation point of deflection routing.
//! * **SWAP storm** — one RBRG-L2 side re-entered deadlock resolution
//!   mode repeatedly within a single window: the inter-die dependency
//!   cycle keeps reforming.
//! * **Liveness stall** — no flit was delivered for K cycles while
//!   flits are in flight: if this fires, the E-tag one-lap guarantee is
//!   being defeated (in practice: a device stopped draining its eject
//!   queue, or an engine bug).
//!
//! Rules latch on a rising edge: a verdict is emitted when a condition
//! first becomes true and not again until it has cleared. Evaluation is
//! a pure function of the snapshot stream, so verdicts are exactly as
//! deterministic as the snapshots themselves.

use crate::metrics::MetricsSnapshot;
use crate::waitgraph::{WaitGraphSample, WaitVerdict};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Thresholds for the watchdog rules. Defaults are deliberately
/// conservative: quiet on the repository's standard workloads, loud on
/// genuine pathologies (the regression tests hold both directions).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthConfig {
    /// Starvation onset: I-tags placed per cycle on one ring.
    pub starvation_itag_rate: f64,
    /// Starvation onset: absolute current injection wait (cycles) of
    /// any single node.
    pub starvation_max_wait: u64,
    /// Congestion knee: snapshots in the slope window.
    pub knee_window: usize,
    /// Congestion knee: minimum deflection rate before the slope is
    /// even considered (keeps cold-start noise out).
    pub knee_min_rate: f64,
    /// Congestion knee: deflection-rate increase per snapshot that
    /// counts as "rising".
    pub knee_slope: f64,
    /// SWAP storm: DRM entries on one bridge side within one window.
    pub swap_storm_entries: u64,
    /// Liveness: cycles without any delivery (while flits are in
    /// flight) before the stall verdict fires.
    pub liveness_cycles: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            starvation_itag_rate: 0.25,
            starvation_max_wait: 512,
            knee_window: 4,
            knee_min_rate: 0.5,
            knee_slope: 0.05,
            swap_storm_entries: 3,
            liveness_cycles: 512,
        }
    }
}

/// Which watchdog fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HealthRule {
    /// Per-ring I-tag pressure above threshold.
    StarvationOnset,
    /// Deflection rate high and rising.
    CongestionKnee,
    /// Repeated DRM entries on one bridge side.
    SwapStorm,
    /// No deliveries for K cycles with flits in flight.
    LivenessStall,
    /// The wait-graph detector certified a frozen cyclic wait: a
    /// resource cycle whose members all stopped making progress.
    DeadlockSuspected,
}

impl fmt::Display for HealthRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HealthRule::StarvationOnset => "starvation-onset",
            HealthRule::CongestionKnee => "congestion-knee",
            HealthRule::SwapStorm => "swap-storm",
            HealthRule::LivenessStall => "liveness-stall",
            HealthRule::DeadlockSuspected => "deadlock-suspected",
        })
    }
}

/// How bad a verdict is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Degraded but progressing.
    Warning,
    /// Forward progress is in doubt.
    Critical,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "WARN",
            Severity::Critical => "CRIT",
        })
    }
}

/// One cycle-stamped watchdog finding: which rule fired where, the
/// observed value against its threshold, and a human-readable
/// explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// Cycle of the snapshot that triggered the rule.
    pub cycle: u64,
    /// The rule that fired.
    pub rule: HealthRule,
    /// Severity of the finding.
    pub severity: Severity,
    /// Ring the finding is about, if ring-scoped.
    pub ring: Option<u16>,
    /// `(bridge, side)` the finding is about, if bridge-scoped.
    pub bridge: Option<(u16, u8)>,
    /// The observed value that crossed the threshold.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
    /// Explanation of what was observed and why it matters.
    pub message: String,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} cycle {:>8}] {}: {}",
            self.severity, self.cycle, self.rule, self.message
        )
    }
}

/// Runs the watchdog rules over a snapshot stream. Feed every snapshot
/// to [`HealthMonitor::observe`] in order; collected verdicts stay
/// available on [`HealthMonitor::verdicts`].
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    verdicts: Vec<Verdict>,
    /// Rings currently latched for starvation.
    starving: BTreeSet<u16>,
    /// Deflection rates of the most recent snapshots (≤ knee_window).
    rate_history: VecDeque<f64>,
    knee_latched: bool,
    /// Previous monotonic DRM-entry reading per (bridge, side).
    drm_prev: BTreeMap<(u16, u8), u64>,
    /// Bridge sides currently latched for SWAP storms.
    storming: BTreeSet<(u16, u8)>,
    /// Cycle of the last snapshot that showed progress (deliveries, or
    /// nothing left in flight).
    last_progress_cycle: u64,
    stall_latched: bool,
    /// Whether the wait-graph deadlock verdict is currently latched.
    deadlock_latched: bool,
}

impl HealthMonitor {
    /// Create a monitor with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthMonitor {
            cfg,
            verdicts: Vec::new(),
            starving: BTreeSet::new(),
            rate_history: VecDeque::new(),
            knee_latched: false,
            drm_prev: BTreeMap::new(),
            storming: BTreeSet::new(),
            last_progress_cycle: 0,
            stall_latched: false,
            deadlock_latched: false,
        }
    }

    /// The thresholds in effect.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Evaluate every rule against the next snapshot. Returns how many
    /// new verdicts fired.
    pub fn observe(&mut self, snap: &MetricsSnapshot) -> usize {
        let before = self.verdicts.len();
        self.check_starvation(snap);
        self.check_knee(snap);
        self.check_swap_storm(snap);
        self.check_liveness(snap);
        self.verdicts.len() - before
    }

    /// Evaluate the `deadlock-suspected` rule against one wait-graph
    /// sample from the stall-forensics detector. Rising-edge latched
    /// like the snapshot rules: fires on the first
    /// [`WaitVerdict::Wedged`] sample, stays silent while wedged, and
    /// re-arms if a later sample shows the cycle broke. Returns how
    /// many new verdicts fired (0 or 1).
    pub fn observe_wait(&mut self, sample: &WaitGraphSample) -> usize {
        if sample.verdict != WaitVerdict::Wedged {
            self.deadlock_latched = false;
            return 0;
        }
        if self.deadlock_latched {
            return 0;
        }
        self.deadlock_latched = true;
        let cycle_len = sample.cyclic.len();
        let chain: Vec<String> = sample
            .edges
            .iter()
            .filter(|e| sample.cyclic.contains(&e.from) && sample.cyclic.contains(&e.to))
            .map(|e| format!("{} -[{}]-> {}", e.from, e.holder, e.to))
            .collect();
        self.verdicts.push(Verdict {
            cycle: sample.cycle,
            rule: HealthRule::DeadlockSuspected,
            severity: Severity::Critical,
            ring: None,
            bridge: None,
            value: cycle_len as f64,
            threshold: 0.0,
            message: format!(
                "wait-graph cycle of {cycle_len} resource(s) frozen ({} pinned behind \
                 it): {}; SWAP resolves intra-bridge deadlock only — this cyclic wait \
                 spans resources it cannot reorder",
                sample.wedged.len().saturating_sub(cycle_len),
                chain.join(", ")
            ),
        });
        1
    }

    fn check_starvation(&mut self, snap: &MetricsSnapshot) {
        for r in &snap.rings {
            let rate = if snap.window == 0 {
                0.0
            } else {
                r.counters.itags_placed as f64 / snap.window as f64
            };
            let wait = r.gauges.max_starve;
            let rate_high = rate > self.cfg.starvation_itag_rate;
            let wait_high = wait >= self.cfg.starvation_max_wait;
            if rate_high || wait_high {
                if self.starving.insert(r.ring) {
                    let (value, threshold, what) = if rate_high {
                        (
                            rate,
                            self.cfg.starvation_itag_rate,
                            format!("I-tag rate {rate:.3}/cycle"),
                        )
                    } else {
                        (
                            wait as f64,
                            self.cfg.starvation_max_wait as f64,
                            format!("a node has waited {wait} cycles to inject"),
                        )
                    };
                    self.verdicts.push(Verdict {
                        cycle: snap.cycle,
                        rule: HealthRule::StarvationOnset,
                        severity: Severity::Warning,
                        ring: Some(r.ring),
                        bridge: None,
                        value,
                        threshold,
                        message: format!(
                            "ring {}: {what} (threshold {threshold}); injection \
                             starvation relief is under sustained pressure",
                            r.ring
                        ),
                    });
                }
            } else {
                self.starving.remove(&r.ring);
            }
        }
    }

    fn check_knee(&mut self, snap: &MetricsSnapshot) {
        let rate = snap.totals.deflection_rate();
        if self.rate_history.len() == self.cfg.knee_window.max(2) {
            self.rate_history.pop_front();
        }
        self.rate_history.push_back(rate);
        if self.rate_history.len() < self.cfg.knee_window.max(2) {
            return;
        }
        let first = *self.rate_history.front().expect("non-empty");
        let slope = (rate - first) / (self.rate_history.len() - 1) as f64;
        if rate >= self.cfg.knee_min_rate && slope >= self.cfg.knee_slope {
            if !self.knee_latched {
                self.knee_latched = true;
                self.verdicts.push(Verdict {
                    cycle: snap.cycle,
                    rule: HealthRule::CongestionKnee,
                    severity: Severity::Warning,
                    ring: None,
                    bridge: None,
                    value: slope,
                    threshold: self.cfg.knee_slope,
                    message: format!(
                        "deflection rate {rate:.3} rising {slope:+.3}/window over the \
                         last {} windows; the network is past the congestion knee",
                        self.rate_history.len()
                    ),
                });
            }
        } else if rate < self.cfg.knee_min_rate {
            self.knee_latched = false;
        }
    }

    fn check_swap_storm(&mut self, snap: &MetricsSnapshot) {
        for b in snap.bridges() {
            let key = (b.bridge, b.side);
            let prev = self.drm_prev.insert(key, b.drm_entries).unwrap_or(0);
            let delta = b.drm_entries.saturating_sub(prev);
            if delta >= self.cfg.swap_storm_entries {
                if self.storming.insert(key) {
                    self.verdicts.push(Verdict {
                        cycle: snap.cycle,
                        rule: HealthRule::SwapStorm,
                        severity: Severity::Warning,
                        ring: Some(b.ring),
                        bridge: Some(key),
                        value: delta as f64,
                        threshold: self.cfg.swap_storm_entries as f64,
                        message: format!(
                            "bridge {} side {} re-entered deadlock resolution {delta} \
                             times in one window; the cross-die dependency cycle keeps \
                             reforming",
                            b.bridge, b.side
                        ),
                    });
                }
            } else {
                self.storming.remove(&key);
            }
        }
    }

    fn check_liveness(&mut self, snap: &MetricsSnapshot) {
        if snap.totals.delivered > 0 || snap.in_flight == 0 {
            self.last_progress_cycle = snap.cycle;
            self.stall_latched = false;
            return;
        }
        let stalled_for = snap.cycle - self.last_progress_cycle;
        if stalled_for >= self.cfg.liveness_cycles && !self.stall_latched {
            self.stall_latched = true;
            self.verdicts.push(Verdict {
                cycle: snap.cycle,
                rule: HealthRule::LivenessStall,
                severity: Severity::Critical,
                ring: None,
                bridge: None,
                value: stalled_for as f64,
                threshold: self.cfg.liveness_cycles as f64,
                message: format!(
                    "no delivery for {stalled_for} cycles with {} flits in flight; \
                     a device stopped draining its eject queue or the E-tag one-lap \
                     guarantee is being defeated",
                    snap.in_flight
                ),
            });
        }
    }

    /// Every verdict fired so far, in firing order.
    pub fn verdicts(&self) -> &[Verdict] {
        &self.verdicts
    }

    /// Whether no rule has ever fired.
    pub fn is_healthy(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Render the verdict log as a human-readable report.
    pub fn report(&self) -> String {
        if self.verdicts.is_empty() {
            return "health: OK — no watchdog fired\n".to_string();
        }
        let mut out = format!("health: {} verdict(s)\n", self.verdicts.len());
        for v in &self.verdicts {
            out.push_str(&format!("  {v}\n"));
        }
        out
    }
}

impl Default for HealthMonitor {
    fn default() -> Self {
        Self::new(HealthConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{BridgeGauges, RingGauges, RingWindow, WindowCounters};

    fn snap(cycle: u64, window: u64, in_flight: u64, rings: Vec<RingWindow>) -> MetricsSnapshot {
        let mut totals = WindowCounters::default();
        for r in &rings {
            totals.add(&r.counters);
        }
        MetricsSnapshot {
            seq: 0,
            cycle,
            window,
            in_flight,
            totals,
            cumulative: totals,
            rings,
        }
    }

    fn ring(id: u16, counters: WindowCounters) -> RingWindow {
        RingWindow {
            ring: id,
            counters,
            ..RingWindow::default()
        }
    }

    #[test]
    fn starvation_latches_per_ring() {
        let mut m = HealthMonitor::default();
        let hot = WindowCounters {
            itags_placed: 32,
            delivered: 1,
            ..WindowCounters::default()
        };
        let s = snap(
            64,
            64,
            5,
            vec![ring(0, hot), ring(1, WindowCounters::default())],
        );
        assert_eq!(m.observe(&s), 1);
        assert_eq!(m.verdicts()[0].rule, HealthRule::StarvationOnset);
        assert_eq!(m.verdicts()[0].ring, Some(0));
        // Still starving: latched, no second verdict.
        assert_eq!(m.observe(&snap(128, 64, 5, vec![ring(0, hot)])), 0);
        // Recovers, then starves again: fires again.
        let quiet = WindowCounters {
            delivered: 4,
            ..WindowCounters::default()
        };
        assert_eq!(m.observe(&snap(192, 64, 5, vec![ring(0, quiet)])), 0);
        assert_eq!(m.observe(&snap(256, 64, 5, vec![ring(0, hot)])), 1);
    }

    #[test]
    fn knee_requires_high_and_rising() {
        let mut m = HealthMonitor::default();
        let at = |deflections, delivered| WindowCounters {
            deflections,
            delivered,
            ..WindowCounters::default()
        };
        // Rising from 0.0 to 0.75 over four windows: fires once at the top.
        let mut fired = 0;
        for (i, (d, ok)) in [(0, 10), (20, 10), (60, 10), (90, 10)].iter().enumerate() {
            fired += m.observe(&snap(
                (i as u64 + 1) * 64,
                64,
                50,
                vec![ring(0, at(*d, *ok))],
            ));
        }
        assert_eq!(fired, 1);
        assert_eq!(m.verdicts()[0].rule, HealthRule::CongestionKnee);
        // Stays saturated (high but flat): latched, silent.
        assert_eq!(m.observe(&snap(320, 64, 50, vec![ring(0, at(90, 10))])), 0);
    }

    #[test]
    fn flat_high_rate_alone_is_not_a_knee() {
        let mut m = HealthMonitor::default();
        let sat = WindowCounters {
            deflections: 90,
            delivered: 10,
            ..WindowCounters::default()
        };
        // History fills already at the plateau — no slope, no verdict.
        let mut fired = 0;
        for i in 1..=6u64 {
            fired += m.observe(&snap(i * 64, 64, 50, vec![ring(0, sat)]));
        }
        assert_eq!(fired, 0, "{:?}", m.verdicts());
    }

    #[test]
    fn swap_storm_watches_per_side_deltas() {
        let mut m = HealthMonitor::default();
        let side = |drm_entries| RingWindow {
            ring: 0,
            counters: WindowCounters {
                delivered: 1,
                ..WindowCounters::default()
            },
            gauges: RingGauges::default(),
            bridges: vec![BridgeGauges {
                bridge: 2,
                side: 1,
                ring: 0,
                drm_entries,
                ..BridgeGauges::default()
            }],
            ..RingWindow::default()
        };
        // First observation: the whole monotonic count is the delta.
        assert_eq!(m.observe(&snap(64, 64, 3, vec![side(1)])), 0);
        assert_eq!(m.observe(&snap(128, 64, 3, vec![side(2)])), 0);
        // +3 in one window: storm.
        assert_eq!(m.observe(&snap(192, 64, 3, vec![side(5)])), 1);
        let v = &m.verdicts()[0];
        assert_eq!(v.rule, HealthRule::SwapStorm);
        assert_eq!(v.bridge, Some((2, 1)));
    }

    #[test]
    fn liveness_fires_once_and_recovers() {
        let cfg = HealthConfig {
            liveness_cycles: 128,
            ..HealthConfig::default()
        };
        let mut m = HealthMonitor::new(cfg);
        let idle = |cycle, in_flight| snap(cycle, 64, in_flight, vec![]);
        assert_eq!(m.observe(&idle(64, 4)), 0); // below K
        assert_eq!(m.observe(&idle(128, 4)), 1); // 128 cycles stalled
        assert_eq!(m.verdicts()[0].rule, HealthRule::LivenessStall);
        assert_eq!(m.verdicts()[0].severity, Severity::Critical);
        assert_eq!(m.observe(&idle(192, 4)), 0); // latched
                                                 // Delivery resumes → unlatched; a fresh stall fires again.
        let progress = snap(
            256,
            64,
            4,
            vec![ring(
                0,
                WindowCounters {
                    delivered: 1,
                    ..WindowCounters::default()
                },
            )],
        );
        assert_eq!(m.observe(&progress), 0);
        assert_eq!(m.observe(&idle(512, 4)), 1);
    }

    #[test]
    fn empty_network_never_stalls() {
        let mut m = HealthMonitor::default();
        for i in 1..100u64 {
            assert_eq!(m.observe(&snap(i * 64, 64, 0, vec![])), 0);
        }
        assert!(m.is_healthy());
        assert!(m.report().contains("OK"));
    }

    #[test]
    fn deadlock_suspected_latches_on_wedged_and_rearms() {
        use crate::waitgraph::{ResourceId, WaitEdge, WaitGraphSample, WaitVerdict};
        let ring = |r| ResourceId::Ring { ring: r };
        let wedged = WaitGraphSample {
            cycle: 320,
            nodes: vec![],
            edges: vec![
                WaitEdge {
                    from: ring(0),
                    to: ring(1),
                    holder: 7,
                },
                WaitEdge {
                    from: ring(1),
                    to: ring(0),
                    holder: 9,
                },
            ],
            verdict: WaitVerdict::Wedged,
            cyclic: vec![ring(0), ring(1)],
            wedged: vec![ring(0), ring(1)],
        };
        let clear = WaitGraphSample {
            verdict: WaitVerdict::Progressing,
            cyclic: vec![],
            wedged: vec![],
            ..wedged.clone()
        };
        let mut m = HealthMonitor::default();
        assert_eq!(m.observe_wait(&clear), 0);
        assert_eq!(m.observe_wait(&wedged), 1);
        assert_eq!(m.observe_wait(&wedged), 0, "latched");
        let v = &m.verdicts()[0];
        assert_eq!(v.rule, HealthRule::DeadlockSuspected);
        assert_eq!(v.severity, Severity::Critical);
        assert!(
            v.message.contains("ring:r0 -[7]-> ring:r1"),
            "{}",
            v.message
        );
        // Cycle breaks, then reforms: fires again.
        assert_eq!(m.observe_wait(&clear), 0);
        assert_eq!(m.observe_wait(&wedged), 1);
    }

    #[test]
    fn report_renders_verdicts() {
        let mut m = HealthMonitor::new(HealthConfig {
            liveness_cycles: 64,
            ..HealthConfig::default()
        });
        m.observe(&snap(64, 64, 9, vec![]));
        let r = m.report();
        assert!(r.contains("liveness-stall"), "{r}");
        assert!(r.contains("CRIT"), "{r}");
        assert!(r.contains("9 flits in flight"), "{r}");
    }
}
