//! Postmortem bundles: everything a latched health verdict needs to be
//! debugged offline, in one self-contained artifact.
//!
//! A [`PostmortemBundle`] collects the recent past (the flight
//! recorder's retained snapshots and events), the attribution layer
//! (flow top-K and the per-link heat matrix), the fired watchdog
//! verdicts, and the run's identity (engine config + seed, execution
//! and tick mode) — enough to understand the pathology *and* to replay
//! the run deterministically.
//!
//! # Serialization and byte-identity
//!
//! [`PostmortemBundle::to_jsonl`] renders one `{"kind": ...}` object
//! per line. Everything the simulation produced is byte-identical
//! across `Sequential`/`Parallel(n)` and `Fast`/`Reference` execution —
//! except the execution mode itself, which the bundle must record for
//! replay. That mode-dependent data is confined to the single
//! `"kind":"env"` line; [`PostmortemBundle::comparable_jsonl`] is the
//! same rendering with that line removed, and the determinism tests
//! hold it byte-identical across every mode combination.

use crate::flowstats::{flow_table_ascii, FlowRecord};
use crate::health::Verdict;
use crate::metrics::MetricsSnapshot;
use crate::spans::TxnSpanTree;
use crate::waitgraph::WedgeReport;
use crate::TraceRecord;
use serde::{Deserialize, Serialize, Value};

/// Identity and provenance of a bundle: why and when it was captured,
/// what it covers, and the engine configuration (seed included) needed
/// to replay the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleMeta {
    /// Why the bundle was captured: `"watchdog: ..."` for latched
    /// verdicts, or the label passed to an explicit dump.
    pub reason: String,
    /// Cycle the bundle was captured at.
    pub cycle: u64,
    /// Stations per ring, ascending ring id — makes the bundle
    /// self-contained for rendering heatmaps without the topology.
    pub stations: Vec<u16>,
    /// Flow-table cut applied when merging per-ring tables.
    pub flow_top_k: usize,
    /// Snapshots ever committed (retained or scrolled off the ring).
    pub snapshots_seen: u64,
    /// Trace events ever recorded (retained or scrolled off).
    pub events_seen: u64,
    /// The engine configuration as a JSON tree, including the
    /// deterministic seed.
    pub config: Value,
}

/// The execution environment: the only mode-dependent bytes in a
/// bundle, confined to their own JSONL line (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleEnv {
    /// How the per-ring phase was executed (`Sequential`,
    /// `Parallel(n)`).
    pub exec_mode: String,
    /// Which sweep implementation ran (`Fast`, `Reference`).
    pub tick_mode: String,
}

/// A self-contained postmortem of one network run. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct PostmortemBundle {
    /// Capture identity and replay provenance.
    pub meta: BundleMeta,
    /// Execution environment (mode-dependent; excluded from
    /// byte-identity comparisons).
    pub env: BundleEnv,
    /// Every watchdog verdict fired up to the capture, in firing order.
    pub verdicts: Vec<Verdict>,
    /// Merged flow top-K: the heaviest src→dst pairs with delivery,
    /// latency, deflection, E-tag-lap and I-tag-wait attribution.
    pub flows: Vec<FlowRecord>,
    /// Per-ring link heat: cumulative flit traversals of each
    /// station's incoming link, `links[ring][station]`.
    pub links: Vec<Vec<u64>>,
    /// The flight recorder's retained snapshots, oldest first.
    pub snapshots: Vec<MetricsSnapshot>,
    /// The flight recorder's retained flit-lifecycle events, oldest
    /// first (empty when the network ran without a tracing sink).
    pub events: Vec<TraceRecord>,
    /// Tail exemplars from the transaction layer: the K slowest
    /// transactions' full span trees at capture time, slowest first —
    /// causal context for the latched verdict (empty when the run had
    /// no transaction layer or span tracing was off).
    pub txn_exemplars: Vec<TxnSpanTree>,
    /// Wedge reports from the stall-forensics detector: the frozen
    /// cyclic-wait certificates latched before capture (empty when the
    /// detector was off or nothing wedged).
    pub wedges: Vec<WedgeReport>,
}

/// Wrapper for the `"kind":"links"` line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct LinksLine {
    cells: Vec<Vec<u64>>,
}

/// Serialize `value` as one JSONL line with a leading `"kind"` tag.
fn kind_line(kind: &str, value: &impl Serialize) -> String {
    let inner = match value.to_value() {
        Value::Object(entries) => entries,
        other => vec![("value".to_string(), other)],
    };
    let mut entries = vec![("kind".to_string(), Value::Str(kind.to_string()))];
    entries.extend(inner);
    serde_json::to_string(&Value::Object(entries)).expect("bundle line serializes")
}

impl PostmortemBundle {
    /// Render the bundle as JSON Lines: one `meta` line, one `env`
    /// line, then one line per verdict, flow, the link matrix, each
    /// snapshot and each event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&kind_line("meta", &self.meta));
        out.push('\n');
        out.push_str(&kind_line("env", &self.env));
        out.push('\n');
        for v in &self.verdicts {
            out.push_str(&kind_line("verdict", v));
            out.push('\n');
        }
        for f in &self.flows {
            out.push_str(&kind_line("flow", f));
            out.push('\n');
        }
        out.push_str(&kind_line(
            "links",
            &LinksLine {
                cells: self.links.clone(),
            },
        ));
        out.push('\n');
        for s in &self.snapshots {
            out.push_str(&kind_line("snapshot", s));
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&kind_line("event", e));
            out.push('\n');
        }
        for t in &self.txn_exemplars {
            out.push_str(&kind_line("txn_exemplar", t));
            out.push('\n');
        }
        for w in &self.wedges {
            out.push_str(&kind_line("wedge", w));
            out.push('\n');
        }
        out
    }

    /// [`PostmortemBundle::to_jsonl`] with the `"kind":"env"` line
    /// removed: the mode-independent bytes the determinism tests
    /// compare across execution modes.
    pub fn comparable_jsonl(&self) -> String {
        self.to_jsonl()
            .lines()
            .filter(|l| !l.starts_with("{\"kind\":\"env\""))
            .map(|l| format!("{l}\n"))
            .collect()
    }

    /// Parse a bundle back from its [`PostmortemBundle::to_jsonl`]
    /// rendering.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON, unknown `kind` tags, or a missing
    /// `meta`/`env`/`links` line.
    pub fn from_jsonl(text: &str) -> Result<Self, serde_json::Error> {
        let mut meta = None;
        let mut env = None;
        let mut verdicts = Vec::new();
        let mut flows = Vec::new();
        let mut links = None;
        let mut snapshots = Vec::new();
        let mut events = Vec::new();
        let mut txn_exemplars = Vec::new();
        let mut wedges = Vec::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v: Value = serde_json::from_str(line)?;
            let kind = v
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| serde_json::Error("bundle line without kind".into()))?;
            // The extra "kind" key is ignored by the typed parses.
            match kind {
                "meta" => meta = Some(serde_json::from_value::<BundleMeta>(&v)?),
                "env" => env = Some(serde_json::from_value::<BundleEnv>(&v)?),
                "verdict" => verdicts.push(serde_json::from_value::<Verdict>(&v)?),
                "flow" => flows.push(serde_json::from_value::<FlowRecord>(&v)?),
                "links" => links = Some(serde_json::from_value::<LinksLine>(&v)?.cells),
                "snapshot" => snapshots.push(serde_json::from_value::<MetricsSnapshot>(&v)?),
                "event" => events.push(serde_json::from_value::<TraceRecord>(&v)?),
                "txn_exemplar" => txn_exemplars.push(serde_json::from_value::<TxnSpanTree>(&v)?),
                "wedge" => wedges.push(serde_json::from_value::<WedgeReport>(&v)?),
                other => {
                    return Err(serde_json::Error(format!(
                        "unknown bundle line kind {other:?}"
                    )))
                }
            }
        }
        Ok(PostmortemBundle {
            meta: meta.ok_or_else(|| serde_json::Error("bundle without meta line".into()))?,
            env: env.ok_or_else(|| serde_json::Error("bundle without env line".into()))?,
            verdicts,
            flows,
            links: links.ok_or_else(|| serde_json::Error("bundle without links line".into()))?,
            snapshots,
            events,
            txn_exemplars,
            wedges,
        })
    }

    /// Human-readable postmortem: the trigger, the fired rules, the
    /// flow attribution table and the per-link heat rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "postmortem @ cycle {} — {}\n  modes: {} / {}\n",
            self.meta.cycle, self.meta.reason, self.env.exec_mode, self.env.tick_mode
        );
        out.push_str(&format!(
            "  history: {} snapshot(s) retained of {} seen, {} event(s) of {}\n",
            self.snapshots.len(),
            self.meta.snapshots_seen,
            self.events.len(),
            self.meta.events_seen
        ));
        if self.verdicts.is_empty() {
            out.push_str("  verdicts: none\n");
        } else {
            out.push_str(&format!("  verdicts: {}\n", self.verdicts.len()));
            for v in &self.verdicts {
                out.push_str(&format!("    {v}\n"));
            }
        }
        if !self.txn_exemplars.is_empty() {
            out.push_str(&format!(
                "  txn exemplars: {} (slowest: txn {} at {} cycles)\n",
                self.txn_exemplars.len(),
                self.txn_exemplars[0].txn,
                self.txn_exemplars[0].latency()
            ));
        }
        for w in &self.wedges {
            out.push('\n');
            out.push_str(&w.render());
        }
        out.push_str("\nflow attribution (top flows by delivered + deflections):\n");
        out.push_str(&flow_table_ascii(&self.flows, |id| format!("n{id}")));
        out.push('\n');
        out.push_str(&link_heat_ascii(
            "link utilization (flit traversals per incoming link)",
            &self.meta.stations,
            &self.links,
        ));
        out
    }
}

/// Intensity ramp shared by the bundle's standalone heat rendering
/// (blank = zero, `@` = hottest).
const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Render a per-(ring, station) matrix as ASCII heat rows without
/// needing a topology — `stations[r]` gives row r's width. The scale is
/// normalized to the hottest cell; an all-zero matrix (idle network)
/// renders as blank cells with a `max 0` scale instead of dividing by
/// zero.
pub fn link_heat_ascii(title: &str, stations: &[u16], cells: &[Vec<u64>]) -> String {
    let max = cells.iter().flatten().copied().max().unwrap_or(0);
    let mut out = format!("{title} (max {max})\n");
    for (r, row) in cells.iter().enumerate() {
        let width = stations.get(r).copied().unwrap_or(row.len() as u16) as usize;
        out.push_str(&format!("ring {r:>2} |"));
        for s in 0..width {
            let v = row.get(s).copied().unwrap_or(0);
            // Guard: max == 0 (idle window) maps every cell to blank.
            let idx = if max == 0 || v == 0 {
                usize::from(v != 0)
            } else {
                (v as usize * (RAMP.len() - 1)).div_ceil(max as usize)
            };
            out.push(RAMP[idx.min(RAMP.len() - 1)]);
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::{HealthRule, Severity};
    use crate::metrics::MetricsSnapshot;
    use crate::waitgraph::{ResourceId, WaitEdge};

    fn sample_bundle() -> PostmortemBundle {
        PostmortemBundle {
            meta: BundleMeta {
                reason: "watchdog: CRIT:liveness-stall".into(),
                cycle: 640,
                stations: vec![8, 6],
                flow_top_k: 8,
                snapshots_seen: 10,
                events_seen: 0,
                config: Value::Object(vec![("seed".into(), Value::UInt(42))]),
            },
            env: BundleEnv {
                exec_mode: "Parallel(4)".into(),
                tick_mode: "Fast".into(),
            },
            verdicts: vec![Verdict {
                cycle: 640,
                rule: HealthRule::LivenessStall,
                severity: Severity::Critical,
                ring: None,
                bridge: None,
                value: 512.0,
                threshold: 512.0,
                message: "no delivery for 512 cycles".into(),
            }],
            flows: vec![FlowRecord {
                src: 1,
                dst: 5,
                delivered: 2,
                latency_sum: 40,
                deflections: 100,
                etag_laps: 90,
                itag_waits: 3,
                overcount: 0,
            }],
            links: vec![vec![0, 4, 9, 0, 0, 0, 0, 0], vec![0; 6]],
            snapshots: vec![MetricsSnapshot {
                seq: 9,
                cycle: 640,
                ..MetricsSnapshot::default()
            }],
            events: Vec::new(),
            txn_exemplars: vec![TxnSpanTree {
                txn: 17,
                op: 1,
                src: 1,
                dst: 5,
                bytes: 4096,
                issued_at: 10,
                req_done_at: None,
                completed_at: 630,
                window_occupancy: 4,
                final_packet: 3,
                packets: Vec::new(),
            }],
            wedges: vec![WedgeReport {
                cycle: 640,
                freeze_windows: 4,
                chain: vec![WaitEdge {
                    from: ResourceId::Ring { ring: 0 },
                    to: ResourceId::Escape { bridge: 0, side: 1 },
                    holder: 12,
                }],
                pinned: vec![WaitEdge {
                    from: ResourceId::Window { node: 3 },
                    to: ResourceId::Ring { ring: 0 },
                    holder: 17,
                }],
                occupancy: vec![(ResourceId::Ring { ring: 0 }, vec![32, 32, 32])],
                holders: vec![12, 17],
            }],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let b = sample_bundle();
        let text = b.to_jsonl();
        let back = PostmortemBundle::from_jsonl(&text).expect("parses");
        assert_eq!(b, back);
        // Every line is a kind-tagged JSON object.
        for line in text.lines() {
            let v: Value = serde_json::from_str(line).expect("valid JSON");
            assert!(v.get("kind").is_some(), "{line}");
        }
    }

    #[test]
    fn env_line_is_the_only_mode_dependent_line() {
        let a = sample_bundle();
        let mut b = sample_bundle();
        b.env = BundleEnv {
            exec_mode: "Sequential".into(),
            tick_mode: "Reference".into(),
        };
        assert_ne!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.comparable_jsonl(), b.comparable_jsonl());
        // The env line itself is still present in the full rendering.
        assert!(a.to_jsonl().contains("{\"kind\":\"env\""));
        assert!(!a.comparable_jsonl().contains("{\"kind\":\"env\""));
    }

    #[test]
    fn render_names_the_flow_and_the_trigger() {
        let r = sample_bundle().render();
        assert!(r.contains("liveness-stall"), "{r}");
        assert!(r.contains("n1 -> n5"), "{r}");
        assert!(r.contains("link utilization"), "{r}");
        assert!(r.contains("Parallel(4)"), "{r}");
        assert!(
            r.contains("txn exemplars: 1 (slowest: txn 17 at 620 cycles)"),
            "{r}"
        );
    }

    #[test]
    fn exemplar_lines_round_trip_and_stay_comparable() {
        let b = sample_bundle();
        let text = b.to_jsonl();
        assert!(text.contains("{\"kind\":\"txn_exemplar\""), "{text}");
        let back = PostmortemBundle::from_jsonl(&text).expect("parses");
        assert_eq!(back.txn_exemplars, b.txn_exemplars);
        // Exemplars are simulation output: they stay in the comparable
        // rendering the determinism tests diff across engine variants.
        assert!(b.comparable_jsonl().contains("{\"kind\":\"txn_exemplar\""));
        // Pre-PR 9 bundles (no exemplar lines) still parse.
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("{\"kind\":\"txn_exemplar\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = PostmortemBundle::from_jsonl(&old).expect("old bundles parse");
        assert!(back.txn_exemplars.is_empty());
    }

    #[test]
    fn wedge_lines_round_trip_and_old_bundles_parse() {
        let b = sample_bundle();
        let text = b.to_jsonl();
        assert!(text.contains("{\"kind\":\"wedge\""), "{text}");
        let back = PostmortemBundle::from_jsonl(&text).expect("parses");
        assert_eq!(back.wedges, b.wedges);
        // Wedge reports are simulation output: comparable across modes.
        assert!(b.comparable_jsonl().contains("{\"kind\":\"wedge\""));
        // Rendered postmortem names the cycle chain.
        let r = b.render();
        assert!(r.contains("ring:r0 -[12]-> escape:b0.s1"), "{r}");
        // Pre-PR 10 bundles (no wedge lines) still parse.
        let old: String = text
            .lines()
            .filter(|l| !l.starts_with("{\"kind\":\"wedge\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let back = PostmortemBundle::from_jsonl(&old).expect("old bundles parse");
        assert!(back.wedges.is_empty());
    }

    #[test]
    fn link_heat_guards_all_zero_matrices() {
        let s = link_heat_ascii("idle", &[4, 4], &[vec![0; 4], vec![0; 4]]);
        assert!(s.contains("max 0"), "{s}");
        assert!(s.contains("|    |"), "all cells blank: {s}");
        // Hot matrix scales to the ramp.
        let hot = link_heat_ascii("hot", &[3], &[vec![0, 5, 10]]);
        assert!(hot.contains('@'), "{hot}");
    }

    #[test]
    fn missing_meta_is_an_error() {
        assert!(PostmortemBundle::from_jsonl(
            "{\"kind\":\"env\",\"exec_mode\":\"Sequential\",\"tick_mode\":\"Fast\"}\n"
        )
        .is_err());
        assert!(PostmortemBundle::from_jsonl("{\"nokind\":1}\n").is_err());
    }
}
