//! Trace sinks: where emitted records go.
//!
//! The engine is generic over one of these; the associated
//! [`TraceSink::ENABLED`] constant is the zero-cost off switch. Every
//! emission site in the engine reads
//!
//! ```ignore
//! if S::ENABLED {
//!     self.sink.emit(TraceRecord { .. });
//! }
//! ```
//!
//! so for [`NullSink`] (`ENABLED = false`) the record construction and
//! the branch are both deleted at monomorphization — the disabled tick
//! loop is bit-identical to one compiled without telemetry.

use crate::event::{EventCounts, TraceRecord};
use std::collections::VecDeque;
use std::io;

/// Destination for engine trace records.
pub trait TraceSink {
    /// Compile-time switch read at every emission site. Leave `true`
    /// for real sinks; [`NullSink`] overrides it to `false`.
    const ENABLED: bool = true;

    /// Accept one record.
    fn emit(&mut self, record: TraceRecord);

    /// Flush buffered output (end of run). Default: nothing.
    fn flush(&mut self) {}
}

/// A plain per-shard staging buffer for trace records.
///
/// The sharded engine cannot hand every ring a `&mut` to the one
/// [`TraceSink`], so each shard appends its records here during its
/// (possibly parallel) phase, and the engine drains the buffers into
/// the real sink **in ring order** at the tick's merge barrier. Records
/// within one shard keep their emission order, and the drain order is
/// fixed, so the sink observes a deterministic stream regardless of
/// execution mode or thread count.
///
/// # Example
///
/// ```
/// use noc_telemetry::{FlitEvent, RingBufferSink, TraceBuffer, TraceRecord, NO_LANE};
/// let mut buf = TraceBuffer::default();
/// buf.push(TraceRecord {
///     cycle: 0,
///     flit: 0,
///     ring: 1,
///     station: 2,
///     lane: NO_LANE,
///     event: FlitEvent::Injected { node: 9 },
/// });
/// let mut sink = RingBufferSink::new(16);
/// buf.drain_into(&mut sink);
/// assert!(buf.is_empty());
/// assert_eq!(sink.counts().injected, 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    records: Vec<TraceRecord>,
}

impl TraceBuffer {
    /// Append one record.
    #[inline]
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Emit all buffered records into `sink` in push order, leaving the
    /// buffer empty (capacity retained for the next tick).
    pub fn drain_into<S: TraceSink>(&mut self, sink: &mut S) {
        for record in self.records.drain(..) {
            sink.emit(record);
        }
    }

    /// The buffered records in push order, without draining — lets the
    /// flight recorder tee the buffer before it drains into the sink.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The off switch: drops everything, compiled to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _record: TraceRecord) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` records
/// (oldest dropped first) plus never-dropping [`EventCounts`], so
/// count-based reconciliation stays exact even when the buffer wraps.
///
/// # Example
///
/// ```
/// use noc_telemetry::{FlitEvent, RingBufferSink, TraceRecord, TraceSink, NO_LANE};
/// let mut s = RingBufferSink::new(2);
/// for i in 0..3 {
///     s.emit(TraceRecord {
///         cycle: i,
///         flit: i,
///         ring: 0,
///         station: 0,
///         lane: NO_LANE,
///         event: FlitEvent::Injected { node: 0 },
///     });
/// }
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.dropped(), 1);
/// assert_eq!(s.counts().injected, 3);
/// ```
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    records: VecDeque<TraceRecord>,
    counts: EventCounts,
    dropped: u64,
}

impl RingBufferSink {
    /// Create a sink retaining at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBufferSink {
            capacity,
            records: VecDeque::with_capacity(capacity.min(4096)),
            counts: EventCounts::default(),
            dropped: 0,
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Retained records as a contiguous vector (oldest first).
    pub fn to_vec(&self) -> Vec<TraceRecord> {
        self.records.iter().copied().collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Never-dropping per-kind totals.
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Drop retained records (totals are kept).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, record: TraceRecord) {
        self.counts.record(&record.event);
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }
}

/// Streams records as JSON Lines (one object per line) to any writer —
/// the unbounded-run counterpart of [`RingBufferSink`]. Also keeps
/// [`EventCounts`] for cheap end-of-run reconciliation.
///
/// # Error handling
///
/// Emission must never kill a run, so write failures are not
/// propagated from [`TraceSink::emit`]. They are *not* swallowed
/// either: every failed record is counted ([`JsonlSink::errors`]) and
/// the **first** I/O error is kept as a sticky state
/// ([`JsonlSink::error`]) that [`JsonlSink::finish`] surfaces — so a
/// truncated trace (disk full, broken pipe) becomes a hard failure at
/// end of run instead of a silently incomplete file.
///
/// # Example
///
/// ```
/// use noc_telemetry::{FlitEvent, JsonlSink, TraceRecord, TraceSink, NO_LANE};
/// let mut s = JsonlSink::new(Vec::new());
/// s.emit(TraceRecord {
///     cycle: 1,
///     flit: 0,
///     ring: 0,
///     station: 5,
///     lane: 0,
///     event: FlitEvent::Deflected { target: 3 },
/// });
/// s.finish().expect("no I/O error on a Vec");
/// let text = String::from_utf8(s.into_inner()).unwrap();
/// assert!(text.contains("Deflected"));
/// assert!(text.ends_with('\n'));
/// ```
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    writer: W,
    counts: EventCounts,
    /// Records that failed to serialize or write.
    errors: u64,
    /// First I/O error encountered, surfaced by [`JsonlSink::finish`].
    error: Option<io::Error>,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wrap a writer. Use a `BufWriter` for file targets.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            counts: EventCounts::default(),
            errors: 0,
            error: None,
        }
    }

    /// Per-kind totals of everything emitted.
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }

    /// Records lost to serialization or I/O errors.
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// The sticky first I/O error, if any write or flush has failed.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Keep the first I/O failure as the sticky error state.
    fn record_io_error(&mut self, e: io::Error) {
        self.errors += 1;
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Flush and surface the sticky error state: `Err` with the first
    /// I/O error if any record or flush failed since construction.
    /// Call at end of run; a dropped trace line means the file on disk
    /// is incomplete and should not be trusted.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Err(e) = self.writer.flush() {
            self.record_io_error(e);
        }
        match self.error.take() {
            Some(e) => Err(e),
            None if self.errors > 0 => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} record(s) failed to serialize", self.errors),
            )),
            None => Ok(()),
        }
    }

    /// Unwrap the inner writer (flushing is the caller's concern —
    /// prefer [`JsonlSink::finish`] first).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: io::Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, record: TraceRecord) {
        self.counts.record(&record.event);
        match serde_json::to_string(&record) {
            Ok(line) => {
                if let Err(e) = writeln!(self.writer, "{line}") {
                    self.record_io_error(e);
                }
            }
            Err(_) => self.errors += 1,
        }
    }

    fn flush(&mut self) {
        if let Err(e) = self.writer.flush() {
            self.record_io_error(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FlitEvent, NO_LANE};

    fn rec(cycle: u64, event: FlitEvent) -> TraceRecord {
        TraceRecord {
            cycle,
            flit: cycle,
            ring: 0,
            station: 0,
            lane: NO_LANE,
            event,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        // Read through the trait to keep the constant assertion from
        // being, well, constant-folded by clippy.
        fn enabled<S: TraceSink>(_: &S) -> bool {
            S::ENABLED
        }
        assert!(!enabled(&NullSink));
        let mut s = NullSink;
        s.emit(rec(0, FlitEvent::Injected { node: 0 }));
        s.flush();
    }

    #[test]
    fn ring_buffer_drops_oldest_keeps_counts() {
        let mut s = RingBufferSink::new(3);
        for i in 0..5 {
            s.emit(rec(i, FlitEvent::Deflected { target: 1 }));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        assert_eq!(s.counts().deflected, 5);
        let cycles: Vec<u64> = s.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.counts().deflected, 5, "totals survive clear");
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(rec(1, FlitEvent::Injected { node: 4 }));
        s.emit(rec(2, FlitEvent::Delivered { node: 5, class: 3 }));
        s.flush();
        assert_eq!(s.counts().delivered, 1);
        assert_eq!(s.errors(), 0);
        assert!(s.finish().is_ok());
        let text = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{')));
    }

    /// A writer that accepts `good_for` bytes, then fails every write
    /// (and every flush) with `ErrorKind::Other` — a stand-in for a
    /// full disk or broken pipe mid-run.
    struct FailingWriter {
        good_for: usize,
        written: usize,
        flush_fails: bool,
    }

    impl io::Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written + buf.len() > self.good_for {
                return Err(io::Error::other("disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            if self.flush_fails {
                Err(io::Error::other("flush failed"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn jsonl_write_failure_is_sticky_and_surfaced_by_finish() {
        let mut s = JsonlSink::new(FailingWriter {
            good_for: 0,
            written: 0,
            flush_fails: false,
        });
        s.emit(rec(1, FlitEvent::Injected { node: 4 }));
        s.emit(rec(2, FlitEvent::Injected { node: 5 }));
        // emit never panics or propagates, but the failures are counted
        // and the first error is latched.
        assert_eq!(s.errors(), 2);
        assert_eq!(s.error().expect("sticky error").to_string(), "disk full");
        assert_eq!(s.counts().injected, 2, "counts still track emissions");
        let err = s.finish().expect_err("finish surfaces the failure");
        assert_eq!(err.to_string(), "disk full", "first error wins");
    }

    #[test]
    fn jsonl_flush_failure_is_surfaced_by_finish() {
        let mut s = JsonlSink::new(FailingWriter {
            good_for: usize::MAX,
            written: 0,
            flush_fails: true,
        });
        s.emit(rec(1, FlitEvent::Injected { node: 4 }));
        assert_eq!(s.errors(), 0, "the write itself succeeded");
        let err = s.finish().expect_err("flush failure must not vanish");
        assert_eq!(err.to_string(), "flush failed");
        assert_eq!(s.errors(), 1);
    }
}
