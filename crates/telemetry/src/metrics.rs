//! Windowed metrics: the data model of the `noc-observatory` layer.
//!
//! The engine samples each ring shard every N cycles *inside* the
//! per-ring phase — where the shard owns all of its state — and merges
//! the per-ring samples into one [`MetricsSnapshot`] at the tick's
//! phase barrier, in ascending ring order. Because sampling reads only
//! shard-local state and the merge order is fixed, the snapshot stream
//! is bit-identical across sequential and parallel execution for every
//! thread count (the same argument that makes the trace stream
//! deterministic; see DESIGN.md §11).
//!
//! A snapshot carries two kinds of data:
//!
//! * **window counters** ([`WindowCounters`]) — deltas of the engine's
//!   monotonic `NetStats` counters over the sample window. Windows
//!   partition the counter timeline exactly: summing every window of a
//!   run (including the final partial window flushed by
//!   `Network::finish_metrics`) reproduces the end-of-run `NetStats`
//!   totals counter for counter. The reconciliation tests hold the
//!   engine to this.
//! * **gauges** ([`RingGauges`], [`BridgeGauges`]) — instantaneous
//!   state at the sample cycle: ring occupancy, I-tag slots, queue
//!   backlogs, the distribution of current injection-wait times, and
//!   per-bridge-side pipeline occupancy / escape buffers / DRM state.

use crate::flowstats::FlowRecord;
use serde::{Deserialize, Serialize};

/// Number of log2 buckets in [`RingGauges::starve_buckets`]: bucket `i`
/// counts nodes whose current injection wait is in `[2^i, 2^(i+1))`
/// cycles, with the last bucket open-ended.
pub const STARVE_BUCKETS: usize = 8;

/// Deltas of the engine's monotonic counters over one sample window.
///
/// Field set and semantics mirror `noc_core::NetStats` one to one, so
/// windows sum exactly to the run totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowCounters {
    /// Flits accepted into inject queues.
    pub enqueued: u64,
    /// Flits that won a ring slot (or the zero-hop local path).
    pub injected: u64,
    /// Injection attempts that lost arbitration (one per head flit per
    /// losing cycle): the denominator half of the injection success
    /// rate, and the raw signal behind I-tag placement.
    pub inject_losses: u64,
    /// Flits delivered to a device eject queue.
    pub delivered: u64,
    /// Payload bytes delivered to devices.
    pub delivered_bytes: u64,
    /// Deflections (failed ejections that sent a flit onward).
    pub deflections: u64,
    /// I-tags placed on passing slots.
    pub itags_placed: u64,
    /// E-tag reservations created (each one is a forced extra lap).
    pub etags_placed: u64,
    /// Times an RBRG-L2 side entered deadlock resolution mode.
    pub drm_entries: u64,
    /// SWAP operations performed during DRM.
    pub swaps: u64,
    /// Flits that crossed a bridge.
    pub bridge_crossings: u64,
}

impl WindowCounters {
    /// Accumulate another window (or ring share) into this one.
    pub fn add(&mut self, other: &WindowCounters) {
        self.enqueued += other.enqueued;
        self.injected += other.injected;
        self.inject_losses += other.inject_losses;
        self.delivered += other.delivered;
        self.delivered_bytes += other.delivered_bytes;
        self.deflections += other.deflections;
        self.itags_placed += other.itags_placed;
        self.etags_placed += other.etags_placed;
        self.drm_entries += other.drm_entries;
        self.swaps += other.swaps;
        self.bridge_crossings += other.bridge_crossings;
    }

    /// The delta from `base` to `self`, where both are cumulative
    /// counter readings and `base` was taken earlier.
    pub fn delta_since(&self, base: &WindowCounters) -> WindowCounters {
        WindowCounters {
            enqueued: self.enqueued - base.enqueued,
            injected: self.injected - base.injected,
            inject_losses: self.inject_losses - base.inject_losses,
            delivered: self.delivered - base.delivered,
            delivered_bytes: self.delivered_bytes - base.delivered_bytes,
            deflections: self.deflections - base.deflections,
            itags_placed: self.itags_placed - base.itags_placed,
            etags_placed: self.etags_placed - base.etags_placed,
            drm_entries: self.drm_entries - base.drm_entries,
            swaps: self.swaps - base.swaps,
            bridge_crossings: self.bridge_crossings - base.bridge_crossings,
        }
    }

    /// Fraction of injection attempts that won a slot this window
    /// (`1.0` when nothing tried to inject).
    pub fn injection_success_rate(&self) -> f64 {
        let attempts = self.injected + self.inject_losses;
        if attempts == 0 {
            1.0
        } else {
            self.injected as f64 / attempts as f64
        }
    }

    /// Fraction of ejection attempts that deflected this window:
    /// `deflections / (deflections + delivered)`, the congestion signal
    /// the knee watchdog watches. `0.0` when nothing reached an exit.
    pub fn deflection_rate(&self) -> f64 {
        let attempts = self.deflections + self.delivered;
        if attempts == 0 {
            0.0
        } else {
            self.deflections as f64 / attempts as f64
        }
    }

    /// Every field as `(name, value)` pairs, in declaration order —
    /// shared by the exporters and reconciliation tests.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("enqueued", self.enqueued),
            ("injected", self.injected),
            ("inject_losses", self.inject_losses),
            ("delivered", self.delivered),
            ("delivered_bytes", self.delivered_bytes),
            ("deflections", self.deflections),
            ("itags_placed", self.itags_placed),
            ("etags_placed", self.etags_placed),
            ("drm_entries", self.drm_entries),
            ("swaps", self.swaps),
            ("bridge_crossings", self.bridge_crossings),
        ]
    }
}

/// Instantaneous per-ring state at a sample cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingGauges {
    /// Flits currently riding the ring.
    pub occupancy: u64,
    /// Slot capacity of the ring (stations × lanes).
    pub capacity: u64,
    /// Slots currently reserved by circulating I-tags.
    pub itag_slots: u64,
    /// Flits waiting in inject queues on this ring.
    pub inject_backlog: u64,
    /// Flits sitting in eject queues (delivered but not yet popped, or
    /// awaiting bridge intake).
    pub eject_backlog: u64,
    /// Outstanding E-tag reservations on this ring.
    pub etag_backlog: u64,
    /// Largest current consecutive-injection-failure count of any node.
    pub max_starve: u64,
    /// Nodes whose current wait reached the I-tag threshold.
    pub starving_nodes: u64,
    /// Log2 distribution of current injection waits over nodes with a
    /// non-zero wait (the live I-tag wait distribution).
    pub starve_buckets: [u64; STARVE_BUCKETS],
}

impl RingGauges {
    /// Record one node's current injection wait into the distribution.
    pub fn record_starve(&mut self, starve: u64) {
        if starve == 0 {
            return;
        }
        let bucket = (63 - starve.leading_zeros() as usize).min(STARVE_BUCKETS - 1);
        self.starve_buckets[bucket] += 1;
    }
}

/// Instantaneous state of one bridge side at a sample cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BridgeGauges {
    /// Bridge id.
    pub bridge: u16,
    /// Which side (0 = a, 1 = b).
    pub side: u8,
    /// Ring this side sits on.
    pub ring: u16,
    /// Outgoing pipeline occupancy as capacity checks see it
    /// (peer inbox backlog + staged Tx).
    pub tx_pipe: u32,
    /// Flits in flight toward this side's endpoint.
    pub rx_depth: u32,
    /// Occupied reserved escape buffers (SWAP/escape mode).
    pub reserved: u32,
    /// Whether this side is currently in deadlock resolution mode.
    pub in_drm: bool,
    /// Monotonic count of DRM entries on this side since construction —
    /// consecutive-snapshot deltas feed the SWAP-storm watchdog.
    pub drm_entries: u64,
}

/// One ring's contribution to a snapshot: its window counters, its
/// gauges, and the gauges of every bridge side it owns.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingWindow {
    /// Ring id.
    pub ring: u16,
    /// Counter deltas attributed to this ring over the window.
    pub counters: WindowCounters,
    /// Instantaneous ring state.
    pub gauges: RingGauges,
    /// Instantaneous state of the bridge sides on this ring, ascending
    /// `(bridge, side)` within the ring.
    pub bridges: Vec<BridgeGauges>,
    /// Heaviest flows delivering or deflecting on this ring, ranked
    /// (cumulative since flow accounting was enabled, not per-window —
    /// a Space-Saving table has no meaningful window delta). Empty
    /// unless the flight recorder's flow accounting is on.
    #[serde(default)]
    pub flows: Vec<FlowRecord>,
    /// Flits observed sitting on each station's ring slot at sampling
    /// boundaries (lanes summed, cumulative across windows), index =
    /// station. An occupancy *sample*, not an exact traversal count —
    /// the sum over windows approximates relative link load without
    /// putting accounting work on every tick. Empty unless flow
    /// accounting is on.
    #[serde(default)]
    pub links: Vec<u64>,
}

/// One deterministic sample of the whole network.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Snapshot sequence number (0-based, per registry).
    pub seq: u64,
    /// Cycle the sample was taken at (end of that tick's per-ring
    /// phase).
    pub cycle: u64,
    /// Cycles covered by the window counters (the sample period, or the
    /// remainder for the final flush).
    pub window: u64,
    /// Flits inside the network at the sample cycle.
    pub in_flight: u64,
    /// Window counter deltas summed over all rings.
    pub totals: WindowCounters,
    /// Cumulative counters since the registry was enabled (running sum
    /// of all windows including this one) — the monotonic series
    /// Prometheus `_total` metrics export.
    pub cumulative: WindowCounters,
    /// Per-ring windows, ascending ring id.
    pub rings: Vec<RingWindow>,
}

impl MetricsSnapshot {
    /// All bridge-side gauges in the snapshot, in ring order.
    pub fn bridges(&self) -> impl Iterator<Item = &BridgeGauges> {
        self.rings.iter().flat_map(|r| r.bridges.iter())
    }

    /// Delivered flits per cycle over the window.
    pub fn delivery_rate(&self) -> f64 {
        if self.window == 0 {
            0.0
        } else {
            self.totals.delivered as f64 / self.window as f64
        }
    }
}

/// Collects the deterministic snapshot series of one network run.
///
/// The registry itself is engine-agnostic: the engine samples its
/// shards, hands the per-ring windows to [`MetricsRegistry::commit`]
/// in ascending ring order, and the registry derives totals, the
/// cumulative series and sequence numbers.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    period: u64,
    cumulative: WindowCounters,
    snapshots: Vec<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// Create a registry sampling every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "metrics period must be positive");
        MetricsRegistry {
            period,
            cumulative: WindowCounters::default(),
            snapshots: Vec::new(),
        }
    }

    /// The configured sample period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Fold a set of per-ring windows (ascending ring id) into the next
    /// snapshot and return it.
    pub fn commit(
        &mut self,
        cycle: u64,
        window: u64,
        in_flight: u64,
        rings: Vec<RingWindow>,
    ) -> &MetricsSnapshot {
        let mut totals = WindowCounters::default();
        for r in &rings {
            totals.add(&r.counters);
        }
        self.cumulative.add(&totals);
        let snap = MetricsSnapshot {
            seq: self.snapshots.len() as u64,
            cycle,
            window,
            in_flight,
            totals,
            cumulative: self.cumulative,
            rings,
        };
        self.snapshots.push(snap);
        self.snapshots.last().expect("just pushed")
    }

    /// Every snapshot committed so far, in order.
    pub fn snapshots(&self) -> &[MetricsSnapshot] {
        &self.snapshots
    }

    /// The most recent snapshot.
    pub fn last(&self) -> Option<&MetricsSnapshot> {
        self.snapshots.last()
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether no snapshot has been committed yet.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Sum of every window committed so far — equals the cumulative
    /// counters of the last snapshot, and (after the final flush) the
    /// run's `NetStats` totals.
    pub fn summed(&self) -> WindowCounters {
        self.cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(enqueued: u64, delivered: u64, deflections: u64) -> WindowCounters {
        WindowCounters {
            enqueued,
            delivered,
            deflections,
            ..WindowCounters::default()
        }
    }

    #[test]
    fn windows_sum_and_subtract() {
        let a = win(10, 7, 3);
        let b = win(4, 2, 0);
        let mut sum = a;
        sum.add(&b);
        assert_eq!(sum.enqueued, 14);
        assert_eq!(sum.delta_since(&a), b);
    }

    #[test]
    fn rates_are_guarded_against_empty_windows() {
        let z = WindowCounters::default();
        assert_eq!(z.injection_success_rate(), 1.0);
        assert_eq!(z.deflection_rate(), 0.0);
        let w = WindowCounters {
            injected: 3,
            inject_losses: 1,
            delivered: 1,
            deflections: 3,
            ..WindowCounters::default()
        };
        assert_eq!(w.injection_success_rate(), 0.75);
        assert_eq!(w.deflection_rate(), 0.75);
    }

    #[test]
    fn starve_distribution_buckets_log2() {
        let mut g = RingGauges::default();
        g.record_starve(0); // ignored
        g.record_starve(1); // bucket 0
        g.record_starve(3); // bucket 1
        g.record_starve(200); // bucket 7 (open-ended)
        assert_eq!(g.starve_buckets[0], 1);
        assert_eq!(g.starve_buckets[1], 1);
        assert_eq!(g.starve_buckets[7], 1);
    }

    #[test]
    fn registry_derives_totals_and_cumulative() {
        let mut reg = MetricsRegistry::new(16);
        assert!(reg.is_empty());
        let rings = vec![
            RingWindow {
                ring: 0,
                counters: win(5, 2, 1),
                ..RingWindow::default()
            },
            RingWindow {
                ring: 1,
                counters: win(1, 1, 0),
                ..RingWindow::default()
            },
        ];
        let snap = reg.commit(16, 16, 3, rings);
        assert_eq!(snap.seq, 0);
        assert_eq!(snap.totals, win(6, 3, 1));
        assert_eq!(snap.cumulative, win(6, 3, 1));
        let snap = reg.commit(
            32,
            16,
            0,
            vec![RingWindow {
                ring: 0,
                counters: win(0, 3, 0),
                ..RingWindow::default()
            }],
        );
        assert_eq!(snap.seq, 1);
        assert_eq!(snap.cumulative, win(6, 6, 1));
        assert_eq!(reg.summed(), win(6, 6, 1));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.last().expect("two").cycle, 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_is_rejected() {
        let _ = MetricsRegistry::new(0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut reg = MetricsRegistry::new(8);
        reg.commit(
            8,
            8,
            1,
            vec![RingWindow {
                ring: 0,
                counters: win(2, 1, 0),
                gauges: RingGauges {
                    occupancy: 1,
                    capacity: 16,
                    ..RingGauges::default()
                },
                bridges: vec![BridgeGauges {
                    bridge: 0,
                    side: 1,
                    ring: 0,
                    tx_pipe: 2,
                    rx_depth: 0,
                    reserved: 0,
                    in_drm: false,
                    drm_entries: 0,
                }],
                ..RingWindow::default()
            }],
        );
        let text = serde_json::to_string(reg.last().expect("one")).expect("serializes");
        let back: MetricsSnapshot = serde_json::from_str(&text).expect("parses");
        assert_eq!(&back, reg.last().expect("one"));
    }
}
