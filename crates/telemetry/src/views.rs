//! Derived views over recorded traces: latency distributions,
//! per-station heatmaps and per-ring utilization timelines.

use crate::event::{FlitEvent, TraceRecord};
use noc_sim::Histogram;
use std::collections::HashMap;

/// Human name of a flit-class index (mirrors
/// `noc_core::FlitClass::index()`).
pub const CLASS_NAMES: [&str; 4] = ["REQ", "RSP", "SNP", "DAT"];

/// Per-class latency distributions reconstructed from a trace:
/// end-to-end (enqueue → delivery) and in-network (injection →
/// delivery), reported as p50/p95/p99/max rather than a bare mean.
///
/// # Example
///
/// ```
/// use noc_telemetry::{FlitEvent, LatencyView, TraceRecord, NO_LANE};
/// let stamp = |cycle, flit, event| TraceRecord {
///     cycle, flit, ring: 0, station: 0, lane: NO_LANE, event,
/// };
/// let records = vec![
///     stamp(0, 7, FlitEvent::Enqueued { node: 0, class: 3 }),
///     stamp(2, 7, FlitEvent::Injected { node: 0 }),
///     stamp(12, 7, FlitEvent::Delivered { node: 1, class: 3 }),
/// ];
/// let view = LatencyView::from_records(records.iter());
/// assert_eq!(view.total[3].count(), 1);
/// assert_eq!(view.total[3].max(), 12);
/// assert_eq!(view.network[3].max(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyView {
    /// End-to-end latency per class (log2-bucketed).
    pub total: [Histogram; 4],
    /// In-network latency per class (log2-bucketed).
    pub network: [Histogram; 4],
}

impl LatencyView {
    /// Empty view.
    pub fn new() -> Self {
        let h = |n: &str| Histogram::new(n);
        LatencyView {
            total: [
                h("telemetry.total.req"),
                h("telemetry.total.rsp"),
                h("telemetry.total.snp"),
                h("telemetry.total.dat"),
            ],
            network: [
                h("telemetry.network.req"),
                h("telemetry.network.rsp"),
                h("telemetry.network.snp"),
                h("telemetry.network.dat"),
            ],
        }
    }

    /// Reconstruct latencies by pairing each flit's `Enqueued` /
    /// `Injected` stamps with its `Delivered` stamp. Flits whose
    /// enqueue record was evicted from a bounded buffer are skipped
    /// (their lifetime cannot be reconstructed).
    pub fn from_records<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> Self {
        let mut view = Self::new();
        let mut enqueued: HashMap<u64, u64> = HashMap::new();
        let mut injected: HashMap<u64, u64> = HashMap::new();
        for r in records {
            match r.event {
                FlitEvent::Enqueued { .. } => {
                    enqueued.insert(r.flit, r.cycle);
                }
                FlitEvent::Injected { .. } => {
                    injected.entry(r.flit).or_insert(r.cycle);
                }
                FlitEvent::Delivered { class, .. } => {
                    let i = (class as usize).min(3);
                    if let Some(&e) = enqueued.get(&r.flit) {
                        view.total[i].record(r.cycle - e);
                    }
                    if let Some(&j) = injected.get(&r.flit) {
                        view.network[i].record(r.cycle - j);
                    }
                    enqueued.remove(&r.flit);
                    injected.remove(&r.flit);
                }
                _ => {}
            }
        }
        view
    }

    /// Render an aligned percentile table over the non-empty classes.
    pub fn summary_table(&self, title: &str) -> String {
        let mut out = format!("{title}\n  class   n      p50    p95    p99    max\n");
        for (i, name) in CLASS_NAMES.iter().enumerate() {
            let h = &self.total[i];
            if h.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<5} {:>5} {:>6} {:>6} {:>6} {:>6}\n",
                name,
                h.count(),
                h.percentile(0.50),
                h.percentile(0.95),
                h.percentile(0.99),
                h.max()
            ));
        }
        out
    }
}

impl Default for LatencyView {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-(ring, station) event intensity, e.g. where deflections or
/// I-tag placements cluster. The cell grid feeds
/// `noc_core::render::ascii_heatmap`.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    cells: Vec<Vec<u64>>,
}

impl Heatmap {
    /// Empty heatmap with no preallocated shape (grows on record).
    pub fn new() -> Self {
        Self::default()
    }

    /// Preallocate one row per ring with the given station counts, so
    /// rings that never saw an event still render at full width.
    pub fn with_shape(stations_per_ring: &[u16]) -> Self {
        Heatmap {
            cells: stations_per_ring
                .iter()
                .map(|&n| vec![0u64; n as usize])
                .collect(),
        }
    }

    /// Count one event at (`ring`, `station`), growing the grid as
    /// needed.
    pub fn record(&mut self, ring: u16, station: u16) {
        let r = ring as usize;
        if self.cells.len() <= r {
            self.cells.resize(r + 1, Vec::new());
        }
        let s = station as usize;
        if self.cells[r].len() <= s {
            self.cells[r].resize(s + 1, 0);
        }
        self.cells[r][s] += 1;
    }

    /// Heatmap of deflections per station.
    pub fn deflections<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> Self {
        Self::filtered(records, |e| matches!(e, FlitEvent::Deflected { .. }))
    }

    /// Heatmap of I-tag placements per station.
    pub fn itags<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> Self {
        Self::filtered(records, |e| matches!(e, FlitEvent::ITagSet { .. }))
    }

    /// Heatmap of the records matching `pred`.
    pub fn filtered<'a, I, F>(records: I, pred: F) -> Self
    where
        I: IntoIterator<Item = &'a TraceRecord>,
        F: Fn(&FlitEvent) -> bool,
    {
        let mut h = Self::new();
        for r in records {
            if pred(&r.event) {
                h.record(r.ring, r.station);
            }
        }
        h
    }

    /// The cell grid, `cells()[ring][station]`.
    pub fn cells(&self) -> &[Vec<u64>] {
        &self.cells
    }

    /// Cells scaled to `[0, 1]` by the hottest cell. An all-zero map
    /// (idle network, empty trace window) normalizes to all zeros
    /// instead of dividing by zero.
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        let max = self.max();
        self.cells
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&v| if max == 0 { 0.0 } else { v as f64 / max as f64 })
                    .collect()
            })
            .collect()
    }

    /// Largest cell value (0 when empty).
    pub fn max(&self) -> u64 {
        self.cells
            .iter()
            .flat_map(|row| row.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Sum of all cells.
    pub fn total(&self) -> u64 {
        self.cells.iter().flat_map(|row| row.iter()).sum()
    }
}

/// Per-ring occupancy over time, from the engine's periodic
/// `RingUtil` samples.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTimeline {
    /// `rings[r]` = (cycle, occupied) samples, in emission order.
    rings: Vec<Vec<(u64, u16)>>,
    /// Slot capacity per ring (0 until first sample).
    capacity: Vec<u16>,
}

impl UtilizationTimeline {
    /// Collect every `RingUtil` sample in `records`.
    pub fn from_records<'a, I: IntoIterator<Item = &'a TraceRecord>>(records: I) -> Self {
        let mut t = Self::default();
        for r in records {
            if let FlitEvent::RingUtil { occupied, capacity } = r.event {
                let ri = r.ring as usize;
                if t.rings.len() <= ri {
                    t.rings.resize(ri + 1, Vec::new());
                    t.capacity.resize(ri + 1, 0);
                }
                t.rings[ri].push((r.cycle, occupied));
                t.capacity[ri] = capacity;
            }
        }
        t
    }

    /// Number of rings seen.
    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    /// Samples for ring `ring`: `(cycle, occupied_slots)`.
    pub fn samples(&self, ring: usize) -> &[(u64, u16)] {
        self.rings.get(ring).map_or(&[], |v| v.as_slice())
    }

    /// Slot capacity of ring `ring` (as of the last sample).
    pub fn capacity(&self, ring: usize) -> u16 {
        self.capacity.get(ring).copied().unwrap_or(0)
    }

    /// Mean fractional occupancy of ring `ring` across its samples.
    pub fn mean_utilization(&self, ring: usize) -> f64 {
        let samples = self.samples(ring);
        let cap = self.capacity(ring);
        if samples.is_empty() || cap == 0 {
            return 0.0;
        }
        let occupied: u64 = samples.iter().map(|&(_, o)| o as u64).sum();
        occupied as f64 / (samples.len() as u64 * cap as u64) as f64
    }

    /// Peak fractional occupancy of ring `ring`.
    pub fn peak_utilization(&self, ring: usize) -> f64 {
        let cap = self.capacity(ring);
        if cap == 0 {
            return 0.0;
        }
        self.samples(ring)
            .iter()
            .map(|&(_, o)| o as f64 / cap as f64)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_LANE;

    fn stamp(cycle: u64, flit: u64, ring: u16, station: u16, event: FlitEvent) -> TraceRecord {
        TraceRecord {
            cycle,
            flit,
            ring,
            station,
            lane: NO_LANE,
            event,
        }
    }

    #[test]
    fn latency_view_pairs_lifecycle_stamps() {
        let records = [
            stamp(0, 1, 0, 0, FlitEvent::Enqueued { node: 0, class: 0 }),
            stamp(5, 1, 0, 0, FlitEvent::Injected { node: 0 }),
            stamp(0, 2, 0, 0, FlitEvent::Enqueued { node: 0, class: 0 }),
            stamp(25, 1, 0, 4, FlitEvent::Delivered { node: 3, class: 0 }),
            // flit 2 never delivered: must not be counted
        ];
        let v = LatencyView::from_records(records.iter());
        assert_eq!(v.total[0].count(), 1);
        assert_eq!(v.total[0].max(), 25);
        assert_eq!(v.network[0].max(), 20);
        assert_eq!(v.total[1].count(), 0);
        let table = v.summary_table("latency");
        assert!(table.contains("REQ"), "{table}");
        assert!(!table.contains("RSP"), "empty classes omitted: {table}");
    }

    #[test]
    fn latency_view_skips_truncated_flits() {
        // Delivered with no Enqueued record (evicted from a bounded
        // buffer): skipped rather than mis-measured.
        let records = [stamp(
            9,
            1,
            0,
            0,
            FlitEvent::Delivered { node: 3, class: 2 },
        )];
        let v = LatencyView::from_records(records.iter());
        assert_eq!(v.total[2].count(), 0);
    }

    #[test]
    fn heatmap_counts_and_grows() {
        let records = [
            stamp(1, 1, 0, 3, FlitEvent::Deflected { target: 9 }),
            stamp(2, 1, 0, 3, FlitEvent::Deflected { target: 9 }),
            stamp(3, 2, 1, 7, FlitEvent::Deflected { target: 5 }),
            stamp(3, 2, 1, 7, FlitEvent::ITagSet { node: 5 }),
        ];
        let h = Heatmap::deflections(records.iter());
        assert_eq!(h.cells()[0][3], 2);
        assert_eq!(h.cells()[1][7], 1);
        assert_eq!(h.max(), 2);
        assert_eq!(h.total(), 3);
        let tags = Heatmap::itags(records.iter());
        assert_eq!(tags.total(), 1);
    }

    #[test]
    fn heatmap_with_shape_keeps_width() {
        let h = Heatmap::with_shape(&[4, 8]);
        assert_eq!(h.cells()[0].len(), 4);
        assert_eq!(h.cells()[1].len(), 8);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn idle_heatmap_normalizes_without_dividing_by_zero() {
        // An idle network produces an all-zero map; normalization must
        // stay finite and zero, not NaN.
        let idle = Heatmap::with_shape(&[4, 8]);
        let norm = idle.normalized();
        assert_eq!(norm.len(), 2);
        for row in &norm {
            for &v in row {
                assert!(v.is_finite());
                assert_eq!(v, 0.0);
            }
        }
        // A hot map scales to the max.
        let mut hot = Heatmap::with_shape(&[4]);
        hot.record(0, 1);
        hot.record(0, 1);
        hot.record(0, 3);
        let n = hot.normalized();
        assert_eq!(n[0][1], 1.0);
        assert_eq!(n[0][3], 0.5);
        assert_eq!(n[0][0], 0.0);
    }

    #[test]
    fn utilization_timeline_aggregates() {
        let records = [
            stamp(
                8,
                crate::NO_FLIT,
                0,
                0,
                FlitEvent::RingUtil {
                    occupied: 2,
                    capacity: 8,
                },
            ),
            stamp(
                16,
                crate::NO_FLIT,
                0,
                0,
                FlitEvent::RingUtil {
                    occupied: 6,
                    capacity: 8,
                },
            ),
        ];
        let t = UtilizationTimeline::from_records(records.iter());
        assert_eq!(t.ring_count(), 1);
        assert_eq!(t.samples(0).len(), 2);
        assert!((t.mean_utilization(0) - 0.5).abs() < 1e-12);
        assert!((t.peak_utilization(0) - 0.75).abs() < 1e-12);
        assert_eq!(t.mean_utilization(3), 0.0, "unknown ring is 0");
    }
}
