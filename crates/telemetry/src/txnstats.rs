//! Observatory view of the transaction layer: windowed per-transaction
//! latency percentiles and in-flight gauges.
//!
//! Mirrors the [`MetricsRegistry`](crate::MetricsRegistry) discipline:
//! the transaction fabric samples a [`TxnSnapshot`] every `period`
//! cycles from state it mutates single-threadedly after each network
//! tick, so the snapshot stream is byte-identical across execution
//! modes for free. Latency is recorded per *completed transaction*
//! (not per flit), which is the number an application actually sees —
//! a DMA burst's p99 here is the tail of whole bursts, headers,
//! reassembly and response included.

use noc_sim::{Cycle, Histogram};
use serde::{Deserialize, Serialize};

/// One sampled window of transaction-layer state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSnapshot {
    /// Cycle the snapshot was taken.
    pub at: u64,
    /// Transactions completed since the registry was created.
    pub completed_total: u64,
    /// Transactions completed during this window.
    pub completed_delta: u64,
    /// Window p50 completion latency (0 when the window is empty).
    pub p50: u64,
    /// Window p95 completion latency.
    pub p95: u64,
    /// Window p99 completion latency.
    pub p99: u64,
    /// Slowest completion in the window.
    pub max: u64,
    /// Gauge: transactions in flight at sample time.
    pub inflight_txns: u64,
    /// Gauge: non-posted window slots occupied, summed over endpoints.
    pub window_occupancy: u64,
}

/// Accumulates completion latencies and emits windowed snapshots.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TxnRegistry {
    period: u64,
    completed_total: u64,
    window: Histogram,
    cumulative: Histogram,
    snapshots: Vec<TxnSnapshot>,
}

impl TxnRegistry {
    /// A registry sampling every `period` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` (callers gate the zero = disabled case).
    pub fn new(period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        TxnRegistry {
            period,
            completed_total: 0,
            window: Histogram::new("txn-latency-window"),
            cumulative: Histogram::new("txn-latency"),
            snapshots: Vec::new(),
        }
    }

    /// Sampling period in cycles.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Record one completed transaction's end-to-end latency.
    pub fn record(&mut self, latency: u64) {
        self.completed_total += 1;
        self.window.record(latency);
        self.cumulative.record(latency);
    }

    /// Close the current window at `at` with the given gauges.
    pub fn sample(&mut self, at: Cycle, inflight_txns: u64, window_occupancy: u64) {
        self.snapshots.push(TxnSnapshot {
            at: at.raw(),
            completed_total: self.completed_total,
            completed_delta: self.window.count(),
            p50: self.window.percentile(0.50),
            p95: self.window.percentile(0.95),
            p99: self.window.percentile(0.99),
            max: self.window.max(),
            inflight_txns,
            window_occupancy,
        });
        self.window.reset();
    }

    /// All snapshots taken so far.
    pub fn snapshots(&self) -> &[TxnSnapshot] {
        &self.snapshots
    }

    /// Whole-run latency histogram (never reset by sampling).
    pub fn cumulative(&self) -> &Histogram {
        &self.cumulative
    }

    /// Transactions completed since creation.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }
}

/// Render snapshots as JSONL, one object per line — same transport as
/// [`snapshots_jsonl`](crate::snapshots_jsonl) for the fabric metrics.
///
/// # Panics
///
/// Panics only if JSON serialization of a plain struct fails, which
/// would be a serde bug.
pub fn txn_snapshots_jsonl(snaps: &[TxnSnapshot]) -> String {
    let mut out = String::new();
    for s in snaps {
        out.push_str(&serde_json::to_string(s).expect("TxnSnapshot serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_reset_between_samples() {
        let mut r = TxnRegistry::new(100);
        for v in [10, 20, 30] {
            r.record(v);
        }
        r.sample(Cycle(100), 2, 5);
        r.record(1000);
        r.sample(Cycle(200), 0, 0);
        let s = r.snapshots();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].completed_delta, 3);
        assert_eq!(s[0].completed_total, 3);
        assert_eq!(s[0].inflight_txns, 2);
        assert_eq!(s[0].window_occupancy, 5);
        assert_eq!(s[1].completed_delta, 1);
        assert_eq!(s[1].completed_total, 4);
        assert!(s[1].p50 >= 512, "second window only saw the slow txn");
        assert_eq!(r.cumulative().count(), 4, "cumulative never resets");
    }

    #[test]
    fn empty_window_snapshot_is_zeroed() {
        let mut r = TxnRegistry::new(10);
        r.sample(Cycle(10), 0, 0);
        let s = &r.snapshots()[0];
        assert_eq!((s.completed_delta, s.p50, s.p99, s.max), (0, 0, 0, 0));
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_line() {
        let mut r = TxnRegistry::new(10);
        r.record(7);
        r.sample(Cycle(10), 1, 1);
        r.sample(Cycle(20), 0, 0);
        let text = txn_snapshots_jsonl(r.snapshots());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("p99").is_some());
        }
    }
}
