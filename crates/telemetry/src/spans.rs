//! Causal span trees for the transaction layer.
//!
//! The observatory's [`TxnRegistry`](crate::TxnRegistry) can say *that*
//! a transaction's p99 is bad; this module records *why*. The
//! transaction fabric builds one [`TxnSpanTree`] per finished
//! transaction — a root span from issue to completion, with one
//! [`PacketSpan`] child per packet it staged (requests, responses,
//! broadcast relays), each carrying the full counter set of the flit
//! whose delivery completed that packet's reassembly (the *critical
//! flit*) plus aggregates over all its flits. The tree is enough to
//! attribute **every cycle** of the transaction's life to a named phase
//! (see [`critical_path`](crate::critical_path)); the phase sums
//! reconcile exactly with the completion latency the registry recorded.
//!
//! # Zero-cost off switch
//!
//! The fabric is generic over a [`SpanSink`] the same way the network
//! engine is generic over a [`TraceSink`](crate::TraceSink): every
//! span-bookkeeping site is guarded by `P::ENABLED`, so for
//! [`NullSpanSink`] (`ENABLED = false`) monomorphization deletes the
//! bookkeeping *and* the branches. A fabric built with the default
//! sink compiles to the PR 8 transaction loop, bit for bit.
//!
//! # Determinism
//!
//! The fabric mutates its state single-threadedly between network
//! ticks: staged flits are pumped in ascending endpoint order,
//! deliveries drained in ascending endpoint order, and under epoch
//! batching both happen at the epoch boundary in exact K=1 order. Span
//! trees are emitted from that same single-threaded path, so the span
//! stream — and the [`TailExemplars`] reservoir derived from it — is
//! byte-identical across `Sequential`/`Parallel(n)` execution and both
//! tick modes, and each epoch K is its own deterministic schedule
//! (PR 8 convention).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Human-readable names for [`TxnSpanTree::op`], in index order.
/// The transaction layer maps its `TxnKind` onto these indices so the
/// telemetry crate stays independent of `noc-txn`.
pub const SPAN_OP_NAMES: [&str; 6] = [
    "read",
    "write",
    "write_np",
    "atomic",
    "broadcast",
    "message",
];

/// Role a packet plays inside its transaction's dependency chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanRole {
    /// Source → destination packet carrying the request (or the posted
    /// payload).
    Request,
    /// Destination → source packet carrying the ack / read data /
    /// atomic result.
    Response,
    /// Broadcast forward staged by a relay node after it finished
    /// reassembling its parent packet.
    Relay,
}

impl SpanRole {
    /// Stable label for rendering.
    pub fn name(self) -> &'static str {
        match self {
            SpanRole::Request => "request",
            SpanRole::Response => "response",
            SpanRole::Relay => "relay",
        }
    }
}

/// Full observability record of one flit, as captured at delivery.
///
/// The fabric fills this from the delivered
/// [`Flit`](../noc_core/struct.Flit.html) of interest — all counters
/// are the network engine's own per-flit bookkeeping, so nothing here
/// is sampled or approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FlitSpan {
    /// Cycle the flit entered its source inject queue.
    pub enqueued_at: u64,
    /// Cycle the flit first won a ring slot.
    pub injected_at: u64,
    /// Cycle the transaction layer drained the flit from its eject
    /// queue. Under epoch batching (K > 1) drains happen at the epoch
    /// boundary, so eject-queue dwell shows up here by design.
    pub delivered_at: u64,
    /// Ring hops travelled (a ring flit advances every cycle, so this
    /// is exactly its cycles spent on rings).
    pub hops: u32,
    /// Times the flit was deflected past a refusing eject point.
    pub deflections: u32,
    /// Ring cycles spent re-circulating between a refused ejection and
    /// the eventual successful one — the exact deflection penalty,
    /// a subset of `hops`.
    pub recirc_cycles: u32,
    /// Extra laps flown after an E-tag reservation was already placed.
    pub etag_laps: u32,
    /// Cycles spent starving at inject-queue heads (I-tag wait).
    pub itag_wait: u32,
    /// Bridge traversals (ring changes).
    pub bridge_crossings: u32,
}

/// One packet's span: staged → reassembled, with flit aggregates and
/// the critical (reassembly-completing) flit's full record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketSpan {
    /// Packet id (allocation order at the transaction layer).
    pub packet: u64,
    /// The packet whose reassembly completion caused this packet to be
    /// staged: the request packet for a response, the relay's inbound
    /// packet for a broadcast forward. `None` for packets staged
    /// directly at submit time.
    pub parent: Option<u64>,
    /// Role in the transaction's dependency chain.
    pub role: SpanRole,
    /// Source node id.
    pub src: u32,
    /// Destination node id.
    pub dst: u32,
    /// Flit class index of the packet's data flits.
    pub class: u8,
    /// Payload bytes carried.
    pub bytes: u32,
    /// Flits in the packet (1 header + data flits).
    pub flits: u32,
    /// Cycle the packet was staged (entered the admission queue).
    pub staged_at: u64,
    /// Cycle the first flit of the packet was drained at the
    /// destination (reassembly opened).
    pub first_flit_at: u64,
    /// Cycle the last flit arrived and reassembly completed.
    pub reassembled_at: u64,
    /// Sum of ring hops over all the packet's flits.
    pub hops: u64,
    /// Sum of deflections over all the packet's flits.
    pub deflections: u64,
    /// Sum of re-circulation cycles over all the packet's flits.
    pub recirc_cycles: u64,
    /// Sum of extra E-tag laps over all the packet's flits.
    pub etag_laps: u64,
    /// Sum of I-tag wait cycles over all the packet's flits.
    pub itag_wait: u64,
    /// Sum of bridge traversals over all the packet's flits.
    pub bridge_crossings: u64,
    /// The critical flit: the one whose delivery completed reassembly.
    pub crit: FlitSpan,
}

/// The finished causal span tree of one transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TxnSpanTree {
    /// Transaction id.
    pub txn: u64,
    /// Operation index into [`SPAN_OP_NAMES`]. (Named `op` so the
    /// field cannot collide with the postmortem bundle's `"kind"`
    /// line tag.)
    pub op: u8,
    /// Submitting node id.
    pub src: u32,
    /// Destination node id (for broadcasts, the root's own id).
    pub dst: u32,
    /// Payload bytes of the transaction.
    pub bytes: u32,
    /// Cycle the transaction was admitted (window slot granted, request
    /// packets staged).
    pub issued_at: u64,
    /// Cycle the request side finished reassembling at the destination
    /// (responses staged). `None` for broadcasts, which have no
    /// request/response split.
    pub req_done_at: Option<u64>,
    /// Cycle the transaction completed.
    pub completed_at: u64,
    /// Non-posted window slots the submitting endpoint already had
    /// occupied when this transaction was admitted — the queueing
    /// pressure the root span formed under.
    pub window_occupancy: u64,
    /// The packet whose reassembly completion finished the transaction;
    /// the critical-path walk starts here and follows `parent` links.
    pub final_packet: u64,
    /// Child spans, in packet-id (staging) order.
    pub packets: Vec<PacketSpan>,
}

impl TxnSpanTree {
    /// End-to-end completion latency in cycles.
    pub fn latency(&self) -> u64 {
        self.completed_at - self.issued_at
    }

    /// Kind name for rendering.
    pub fn op_name(&self) -> &'static str {
        SPAN_OP_NAMES.get(self.op as usize).copied().unwrap_or("?")
    }

    /// Look up a child span by packet id.
    pub fn packet(&self, id: u64) -> Option<&PacketSpan> {
        self.packets.iter().find(|p| p.packet == id)
    }
}

/// Destination for finished span trees. The transaction fabric is
/// generic over one of these; [`SpanSink::ENABLED`] is the zero-cost
/// off switch, exactly like [`TraceSink::ENABLED`](crate::TraceSink).
pub trait SpanSink {
    /// Compile-time switch read at every span-bookkeeping site. Leave
    /// `true` for real sinks; [`NullSpanSink`] overrides it to `false`.
    const ENABLED: bool = true;

    /// Accept one finished transaction's span tree.
    fn record(&mut self, tree: TxnSpanTree);

    /// The K slowest transactions' full trees, if this sink keeps them.
    /// Postmortem bundles attach these; the default keeps none.
    fn exemplars(&self) -> &[TxnSpanTree] {
        &[]
    }

    /// Flush buffered output (end of run). Default: nothing.
    fn flush(&mut self) {}
}

/// The off switch: drops everything, compiled to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSpanSink;

impl SpanSink for NullSpanSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _tree: TxnSpanTree) {}
}

/// Deterministic reservoir of the K slowest transactions' span trees.
///
/// Admission is a pure function of the tree stream: a tree enters if
/// its latency beats the current K-th slowest, ordered by
/// (latency descending, transaction id ascending) so ties resolve
/// identically on every engine variant. Because the fabric emits trees
/// in a deterministic order, the reservoir contents are byte-identical
/// across execution modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailExemplars {
    k: usize,
    slowest: Vec<TxnSpanTree>,
    offered: u64,
}

impl TailExemplars {
    /// A reservoir keeping the `k` slowest trees.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` — an empty reservoir is `NullSpanSink`'s job.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "exemplar reservoir must keep at least one tree");
        TailExemplars {
            k,
            slowest: Vec::with_capacity(k + 1),
            offered: 0,
        }
    }

    /// Order: slowest first, ties broken by ascending transaction id.
    fn ranks_before(a: &TxnSpanTree, b: &TxnSpanTree) -> bool {
        (a.latency(), std::cmp::Reverse(a.txn)) > (b.latency(), std::cmp::Reverse(b.txn))
    }

    /// Offer a tree; it is cloned in only if it ranks in the top K.
    pub fn offer(&mut self, tree: &TxnSpanTree) {
        self.offered += 1;
        if self.slowest.len() == self.k {
            let worst = self.slowest.last().expect("k > 0");
            if !Self::ranks_before(tree, worst) {
                return;
            }
        }
        let pos = self
            .slowest
            .partition_point(|kept| Self::ranks_before(kept, tree));
        self.slowest.insert(pos, tree.clone());
        self.slowest.truncate(self.k);
    }

    /// Retained trees, slowest first.
    pub fn trees(&self) -> &[TxnSpanTree] {
        &self.slowest
    }

    /// Trees offered since creation (admitted or not).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Reservoir capacity.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// The workhorse sink: a bounded buffer of the most recent trees plus
/// a [`TailExemplars`] reservoir of the slowest ones.
///
/// Recent trees feed ad-hoc inspection and the Perfetto export; the
/// exemplars feed postmortem bundles and tail attribution. Totals
/// (`recorded`) never drop, so reconciliation against
/// [`TxnRegistry::completed_total`](crate::TxnRegistry::completed_total)
/// stays exact even after the recent buffer wraps.
#[derive(Debug, Clone)]
pub struct SpanCollector {
    capacity: usize,
    recent: VecDeque<TxnSpanTree>,
    exemplars: TailExemplars,
    recorded: u64,
    dropped: u64,
}

impl SpanCollector {
    /// A collector retaining the `capacity` most recent trees and the
    /// `k` slowest.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `k` is zero.
    pub fn new(capacity: usize, k: usize) -> Self {
        assert!(capacity > 0, "span collector capacity must be positive");
        SpanCollector {
            capacity,
            recent: VecDeque::with_capacity(capacity.min(4096)),
            exemplars: TailExemplars::new(k),
            recorded: 0,
            dropped: 0,
        }
    }

    /// Most recent trees, oldest first.
    pub fn recent(&self) -> impl Iterator<Item = &TxnSpanTree> {
        self.recent.iter()
    }

    /// The tail reservoir.
    pub fn tail(&self) -> &TailExemplars {
        &self.exemplars
    }

    /// Trees recorded since creation (never drops).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Recent trees evicted to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl SpanSink for SpanCollector {
    fn record(&mut self, tree: TxnSpanTree) {
        self.recorded += 1;
        self.exemplars.offer(&tree);
        if self.recent.len() == self.capacity {
            self.recent.pop_front();
            self.dropped += 1;
        }
        self.recent.push_back(tree);
    }

    fn exemplars(&self) -> &[TxnSpanTree] {
        self.exemplars.trees()
    }
}

/// Render span trees as JSON Lines, one tree per line — the transport
/// the byte-identity tests and postmortem attachments compare.
///
/// # Panics
///
/// Panics only if JSON serialization of a plain struct fails, which
/// would be a serde bug.
pub fn span_trees_jsonl(trees: &[TxnSpanTree]) -> String {
    let mut out = String::new();
    for t in trees {
        out.push_str(&serde_json::to_string(t).expect("TxnSpanTree serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn tree(txn: u64, issued: u64, completed: u64) -> TxnSpanTree {
        TxnSpanTree {
            txn,
            op: 0,
            src: 0,
            dst: 1,
            bytes: 64,
            issued_at: issued,
            req_done_at: None,
            completed_at: completed,
            window_occupancy: 0,
            final_packet: 0,
            packets: Vec::new(),
        }
    }

    #[test]
    fn null_span_sink_is_disabled() {
        fn enabled<P: SpanSink>(_: &P) -> bool {
            P::ENABLED
        }
        assert!(!enabled(&NullSpanSink));
        assert!(enabled(&SpanCollector::new(1, 1)));
        let mut s = NullSpanSink;
        s.record(tree(0, 0, 10));
        s.flush();
        assert!(s.exemplars().is_empty());
    }

    #[test]
    fn exemplars_keep_the_k_slowest_with_deterministic_ties() {
        let mut r = TailExemplars::new(2);
        r.offer(&tree(1, 0, 10));
        r.offer(&tree(2, 0, 30));
        r.offer(&tree(3, 0, 20));
        r.offer(&tree(4, 0, 5));
        let ids: Vec<u64> = r.trees().iter().map(|t| t.txn).collect();
        assert_eq!(ids, vec![2, 3], "slowest first");
        assert_eq!(r.offered(), 4);

        // Equal latencies: the lower transaction id wins and order is
        // stable regardless of arrival order.
        let mut a = TailExemplars::new(2);
        let mut b = TailExemplars::new(2);
        for t in [tree(7, 0, 50), tree(5, 0, 50), tree(6, 0, 50)] {
            a.offer(&t);
        }
        for t in [tree(6, 0, 50), tree(5, 0, 50), tree(7, 0, 50)] {
            b.offer(&t);
        }
        let ids: Vec<u64> = a.trees().iter().map(|t| t.txn).collect();
        assert_eq!(ids, vec![5, 6]);
        assert_eq!(a.trees(), b.trees(), "arrival order must not matter");
    }

    #[test]
    fn collector_bounds_recent_but_not_totals() {
        let mut c = SpanCollector::new(2, 1);
        for i in 0..4 {
            c.record(tree(i, 0, 10 * (i + 1)));
        }
        assert_eq!(c.recorded(), 4);
        assert_eq!(c.dropped(), 2);
        let recent: Vec<u64> = c.recent().map(|t| t.txn).collect();
        assert_eq!(recent, vec![2, 3]);
        assert_eq!(c.exemplars().len(), 1);
        assert_eq!(c.exemplars()[0].txn, 3, "slowest survives eviction");
    }

    #[test]
    fn jsonl_round_trips() {
        let trees = vec![tree(0, 0, 10), tree(1, 5, 50)];
        let text = span_trees_jsonl(&trees);
        assert_eq!(text.lines().count(), 2);
        for (line, orig) in text.lines().zip(&trees) {
            let back: TxnSpanTree = serde_json::from_str(line).expect("valid JSON");
            assert_eq!(&back, orig);
        }
    }
}
