//! Chrome `trace_event` export: visual flit timelines.
//!
//! [`chrome_trace`] converts a recorded trace into the JSON Object
//! Format of the Trace Event specification — load the output in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Each flit gets a
//! complete (`"ph":"X"`) span from enqueue to delivery on its own
//! track, lifecycle incidents (deflections, tag placements, SWAPs,
//! bridge stalls) appear as instant events on the flit's track, and
//! ring occupancy samples become counter (`"ph":"C"`) tracks.
//!
//! Cycle numbers are written directly as microsecond timestamps: the
//! viewer's "us" axis reads as cycles.

use crate::critical::critical_path;
use crate::event::{FlitEvent, TraceRecord};
use crate::spans::TxnSpanTree;
use crate::views::CLASS_NAMES;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Process ids used to group tracks in the viewer.
const PID_FLITS: u32 = 1;
const PID_RINGS: u32 = 2;

fn class_name(class: u8) -> &'static str {
    CLASS_NAMES.get(class as usize).copied().unwrap_or("?")
}

fn instant_name(event: &FlitEvent) -> Option<String> {
    match event {
        FlitEvent::InjectLost { .. } => Some("inject-lost".into()),
        FlitEvent::ITagSet { .. } => Some("itag-set".into()),
        FlitEvent::ITagClaimed { .. } => Some("itag-claimed".into()),
        FlitEvent::Deflected { .. } => Some("deflected".into()),
        FlitEvent::ETagReserved { .. } => Some("etag-reserved".into()),
        FlitEvent::BridgeEnqueued { bridge } => Some(format!("bridge{bridge}-enq")),
        FlitEvent::BridgeStalled { bridge } => Some(format!("bridge{bridge}-stall")),
        FlitEvent::SwapTriggered { .. } => Some("swap".into()),
        _ => None,
    }
}

/// Render `records` as a Chrome `trace_event` JSON object.
///
/// # Example
///
/// ```
/// use noc_telemetry::{chrome_trace, FlitEvent, TraceRecord, NO_LANE};
/// let stamp = |cycle, event| TraceRecord {
///     cycle, flit: 1, ring: 0, station: 0, lane: NO_LANE, event,
/// };
/// let json = chrome_trace(&[
///     stamp(0, FlitEvent::Enqueued { node: 0, class: 3 }),
///     stamp(9, FlitEvent::Delivered { node: 2, class: 3 }),
/// ]);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(ev);
    };

    // (enqueue cycle, src node) per in-flight flit.
    let mut open: HashMap<u64, (u64, u32)> = HashMap::new();
    let mut ev = String::new();
    for r in records {
        ev.clear();
        match r.event {
            FlitEvent::Enqueued { node, .. } => {
                open.insert(r.flit, (r.cycle, node));
            }
            FlitEvent::Delivered { node, class } => {
                if let Some((start, src)) = open.remove(&r.flit) {
                    let dur = (r.cycle - start).max(1);
                    write!(
                        ev,
                        "{{\"name\":\"flit {} {} n{}->n{}\",\"cat\":\"flit\",\
                         \"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                        r.flit,
                        class_name(class),
                        src,
                        node,
                        start,
                        dur,
                        PID_FLITS,
                        r.flit
                    )
                    .expect("writing to a String cannot fail");
                    push(&mut out, &ev);
                }
            }
            FlitEvent::RingUtil { occupied, .. } => {
                write!(
                    ev,
                    "{{\"name\":\"ring{} occupancy\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{},\"tid\":0,\"args\":{{\"occupied\":{}}}}}",
                    r.ring, r.cycle, PID_RINGS, occupied
                )
                .expect("writing to a String cannot fail");
                push(&mut out, &ev);
            }
            _ => {
                if let Some(name) = instant_name(&r.event) {
                    write!(
                        ev,
                        "{{\"name\":\"{} r{}s{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
                        name, r.ring, r.station, r.cycle, PID_FLITS, r.flit
                    )
                    .expect("writing to a String cannot fail");
                    push(&mut out, &ev);
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Render transaction span trees as a Chrome `trace_event` JSON object.
///
/// Each transaction becomes its own process: track 0 carries the root
/// span (issue → completion) with the critical chain's phase segments
/// nested under it, and every packet gets a complete span on its own
/// track (staged → reassembled) so overlapping request packets render
/// side by side. Load in `chrome://tracing` or
/// <https://ui.perfetto.dev>; cycle numbers are written as microsecond
/// timestamps, so the "us" axis reads as cycles.
pub fn spans_chrome_trace(trees: &[TxnSpanTree]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(ev);
    };

    let mut ev = String::new();
    for tree in trees {
        let pid = tree.txn;
        ev.clear();
        write!(
            ev,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"txn {} {} n{}->n{}\"}}}}",
            pid,
            tree.txn,
            tree.op_name(),
            tree.src,
            tree.dst
        )
        .expect("writing to a String cannot fail");
        push(&mut out, &ev);

        ev.clear();
        write!(
            ev,
            "{{\"name\":\"txn {} {}\",\"cat\":\"txn\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0,\
             \"args\":{{\"bytes\":{},\"window_occupancy\":{}}}}}",
            tree.txn,
            tree.op_name(),
            tree.issued_at,
            tree.latency().max(1),
            pid,
            tree.bytes,
            tree.window_occupancy
        )
        .expect("writing to a String cannot fail");
        push(&mut out, &ev);

        // Critical-chain phase segments, nested inside the root span on
        // track 0: contiguous and non-overlapping by construction.
        let path = critical_path(tree);
        for link in &path.links {
            let mut at = link.from;
            for (name, cycles) in crate::critical::PHASE_NAMES
                .iter()
                .zip(link.phases.as_array())
            {
                if cycles == 0 {
                    continue;
                }
                ev.clear();
                write!(
                    ev,
                    "{{\"name\":\"{} p{}\",\"cat\":\"critical\",\"ph\":\"X\",\
                     \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0}}",
                    name, link.packet, at, cycles, pid
                )
                .expect("writing to a String cannot fail");
                push(&mut out, &ev);
                at += cycles;
            }
        }

        for (i, p) in tree.packets.iter().enumerate() {
            let tid = i as u64 + 1;
            ev.clear();
            write!(
                ev,
                "{{\"name\":\"pkt {} {} n{}->n{}\",\"cat\":\"packet\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
                 \"args\":{{\"flits\":{},\"hops\":{},\"deflections\":{},\
                 \"recirc\":{},\"bridges\":{}}}}}",
                p.packet,
                p.role.name(),
                p.src,
                p.dst,
                p.staged_at,
                (p.reassembled_at - p.staged_at).max(1),
                pid,
                tid,
                p.flits,
                p.hops,
                p.deflections,
                p.recirc_cycles,
                p.bridge_crossings
            )
            .expect("writing to a String cannot fail");
            push(&mut out, &ev);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NO_FLIT, NO_LANE};
    use serde::Value;

    fn stamp(cycle: u64, flit: u64, event: FlitEvent) -> TraceRecord {
        TraceRecord {
            cycle,
            flit,
            ring: 0,
            station: 2,
            lane: NO_LANE,
            event,
        }
    }

    #[test]
    fn export_is_loadable_json_with_spans_and_counters() {
        let records = vec![
            stamp(0, 1, FlitEvent::Enqueued { node: 0, class: 1 }),
            stamp(3, 1, FlitEvent::Deflected { target: 4 }),
            stamp(
                8,
                NO_FLIT,
                FlitEvent::RingUtil {
                    occupied: 1,
                    capacity: 16,
                },
            ),
            stamp(10, 1, FlitEvent::Delivered { node: 4, class: 1 }),
        ];
        let json = chrome_trace(&records);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3, "span + instant + counter: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("RSP"), "class name in span name: {json}");
    }

    #[test]
    fn undelivered_flits_produce_no_span() {
        let records = vec![stamp(0, 1, FlitEvent::Enqueued { node: 0, class: 0 })];
        let json = chrome_trace(&records);
        assert!(!json.contains("\"ph\":\"X\""));
        let _: Value = serde_json::from_str(&json).expect("still valid JSON");
    }

    #[test]
    fn zero_length_span_gets_unit_duration() {
        let records = vec![
            stamp(5, 2, FlitEvent::Enqueued { node: 0, class: 0 }),
            stamp(5, 2, FlitEvent::Delivered { node: 1, class: 0 }),
        ];
        let json = chrome_trace(&records);
        assert!(json.contains("\"dur\":1"), "{json}");
    }

    #[test]
    fn span_export_is_loadable_json_with_phase_segments() {
        use crate::spans::{FlitSpan, PacketSpan, SpanRole};
        let tree = TxnSpanTree {
            txn: 3,
            op: 0,
            src: 0,
            dst: 4,
            bytes: 64,
            issued_at: 10,
            req_done_at: Some(30),
            completed_at: 40,
            window_occupancy: 1,
            final_packet: 1,
            packets: vec![
                PacketSpan {
                    packet: 0,
                    parent: None,
                    role: SpanRole::Request,
                    src: 0,
                    dst: 4,
                    class: 0,
                    bytes: 64,
                    flits: 2,
                    staged_at: 10,
                    first_flit_at: 25,
                    reassembled_at: 30,
                    hops: 20,
                    deflections: 1,
                    recirc_cycles: 3,
                    etag_laps: 0,
                    itag_wait: 2,
                    bridge_crossings: 1,
                    crit: FlitSpan {
                        enqueued_at: 12,
                        injected_at: 14,
                        delivered_at: 30,
                        hops: 13,
                        deflections: 1,
                        recirc_cycles: 3,
                        etag_laps: 0,
                        itag_wait: 2,
                        bridge_crossings: 1,
                    },
                },
                PacketSpan {
                    packet: 1,
                    parent: Some(0),
                    role: SpanRole::Response,
                    src: 4,
                    dst: 0,
                    class: 1,
                    bytes: 0,
                    flits: 1,
                    staged_at: 30,
                    first_flit_at: 40,
                    reassembled_at: 40,
                    hops: 8,
                    deflections: 0,
                    recirc_cycles: 0,
                    etag_laps: 0,
                    itag_wait: 0,
                    bridge_crossings: 0,
                    crit: FlitSpan {
                        enqueued_at: 31,
                        injected_at: 32,
                        delivered_at: 40,
                        hops: 8,
                        deflections: 0,
                        recirc_cycles: 0,
                        etag_laps: 0,
                        itag_wait: 0,
                        bridge_crossings: 0,
                    },
                },
            ],
        };
        let json = spans_chrome_trace(&[tree]);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 1 process_name + 1 root + phase segments + 2 packet spans.
        assert!(events.len() >= 4, "{json}");
        assert!(json.contains("\"ph\":\"M\""), "{json}");
        assert!(json.contains("txn 3 read"), "{json}");
        assert!(json.contains("pkt 1 response"), "{json}");
        assert!(json.contains("\"recirc p0\""), "phase segment: {json}");
        assert!(spans_chrome_trace(&[]).contains("traceEvents"));
    }
}
