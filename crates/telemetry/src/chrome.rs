//! Chrome `trace_event` export: visual flit timelines.
//!
//! [`chrome_trace`] converts a recorded trace into the JSON Object
//! Format of the Trace Event specification — load the output in
//! `chrome://tracing` or <https://ui.perfetto.dev>. Each flit gets a
//! complete (`"ph":"X"`) span from enqueue to delivery on its own
//! track, lifecycle incidents (deflections, tag placements, SWAPs,
//! bridge stalls) appear as instant events on the flit's track, and
//! ring occupancy samples become counter (`"ph":"C"`) tracks.
//!
//! Cycle numbers are written directly as microsecond timestamps: the
//! viewer's "us" axis reads as cycles.

use crate::event::{FlitEvent, TraceRecord};
use crate::views::CLASS_NAMES;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Process ids used to group tracks in the viewer.
const PID_FLITS: u32 = 1;
const PID_RINGS: u32 = 2;

fn class_name(class: u8) -> &'static str {
    CLASS_NAMES.get(class as usize).copied().unwrap_or("?")
}

fn instant_name(event: &FlitEvent) -> Option<String> {
    match event {
        FlitEvent::InjectLost { .. } => Some("inject-lost".into()),
        FlitEvent::ITagSet { .. } => Some("itag-set".into()),
        FlitEvent::ITagClaimed { .. } => Some("itag-claimed".into()),
        FlitEvent::Deflected { .. } => Some("deflected".into()),
        FlitEvent::ETagReserved { .. } => Some("etag-reserved".into()),
        FlitEvent::BridgeEnqueued { bridge } => Some(format!("bridge{bridge}-enq")),
        FlitEvent::BridgeStalled { bridge } => Some(format!("bridge{bridge}-stall")),
        FlitEvent::SwapTriggered { .. } => Some("swap".into()),
        _ => None,
    }
}

/// Render `records` as a Chrome `trace_event` JSON object.
///
/// # Example
///
/// ```
/// use noc_telemetry::{chrome_trace, FlitEvent, TraceRecord, NO_LANE};
/// let stamp = |cycle, event| TraceRecord {
///     cycle, flit: 1, ring: 0, station: 0, lane: NO_LANE, event,
/// };
/// let json = chrome_trace(&[
///     stamp(0, FlitEvent::Enqueued { node: 0, class: 3 }),
///     stamp(9, FlitEvent::Delivered { node: 2, class: 3 }),
/// ]);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// ```
pub fn chrome_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: &str| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(ev);
    };

    // (enqueue cycle, src node) per in-flight flit.
    let mut open: HashMap<u64, (u64, u32)> = HashMap::new();
    let mut ev = String::new();
    for r in records {
        ev.clear();
        match r.event {
            FlitEvent::Enqueued { node, .. } => {
                open.insert(r.flit, (r.cycle, node));
            }
            FlitEvent::Delivered { node, class } => {
                if let Some((start, src)) = open.remove(&r.flit) {
                    let dur = (r.cycle - start).max(1);
                    write!(
                        ev,
                        "{{\"name\":\"flit {} {} n{}->n{}\",\"cat\":\"flit\",\
                         \"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}}}",
                        r.flit,
                        class_name(class),
                        src,
                        node,
                        start,
                        dur,
                        PID_FLITS,
                        r.flit
                    )
                    .expect("writing to a String cannot fail");
                    push(&mut out, &ev);
                }
            }
            FlitEvent::RingUtil { occupied, .. } => {
                write!(
                    ev,
                    "{{\"name\":\"ring{} occupancy\",\"ph\":\"C\",\"ts\":{},\
                     \"pid\":{},\"tid\":0,\"args\":{{\"occupied\":{}}}}}",
                    r.ring, r.cycle, PID_RINGS, occupied
                )
                .expect("writing to a String cannot fail");
                push(&mut out, &ev);
            }
            _ => {
                if let Some(name) = instant_name(&r.event) {
                    write!(
                        ev,
                        "{{\"name\":\"{} r{}s{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\
                         \"ts\":{},\"pid\":{},\"tid\":{},\"s\":\"t\"}}",
                        name, r.ring, r.station, r.cycle, PID_FLITS, r.flit
                    )
                    .expect("writing to a String cannot fail");
                    push(&mut out, &ev);
                }
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NO_FLIT, NO_LANE};
    use serde::Value;

    fn stamp(cycle: u64, flit: u64, event: FlitEvent) -> TraceRecord {
        TraceRecord {
            cycle,
            flit,
            ring: 0,
            station: 2,
            lane: NO_LANE,
            event,
        }
    }

    #[test]
    fn export_is_loadable_json_with_spans_and_counters() {
        let records = vec![
            stamp(0, 1, FlitEvent::Enqueued { node: 0, class: 1 }),
            stamp(3, 1, FlitEvent::Deflected { target: 4 }),
            stamp(
                8,
                NO_FLIT,
                FlitEvent::RingUtil {
                    occupied: 1,
                    capacity: 16,
                },
            ),
            stamp(10, 1, FlitEvent::Delivered { node: 4, class: 1 }),
        ];
        let json = chrome_trace(&records);
        let v: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 3, "span + instant + counter: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"dur\":10"));
        assert!(json.contains("RSP"), "class name in span name: {json}");
    }

    #[test]
    fn undelivered_flits_produce_no_span() {
        let records = vec![stamp(0, 1, FlitEvent::Enqueued { node: 0, class: 0 })];
        let json = chrome_trace(&records);
        assert!(!json.contains("\"ph\":\"X\""));
        let _: Value = serde_json::from_str(&json).expect("still valid JSON");
    }

    #[test]
    fn zero_length_span_gets_unit_duration() {
        let records = vec![
            stamp(5, 2, FlitEvent::Enqueued { node: 0, class: 0 }),
            stamp(5, 2, FlitEvent::Delivered { node: 1, class: 0 }),
        ];
        let json = chrome_trace(&records);
        assert!(json.contains("\"dur\":1"), "{json}");
    }
}
