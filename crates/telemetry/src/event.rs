//! The flit-lifecycle event taxonomy.
//!
//! Events mirror the mechanisms of the paper's §4 one-to-one, and each
//! lifecycle counter-bearing event corresponds exactly to one
//! `NetStats` counter increment in the engine — the reconciliation
//! differential tests hold the two accountings equal. Coordinates are
//! raw integers (`ring`, `station`, `lane`, node ids as `u32`) rather
//! than `noc-core` id types so this crate can sit *below* the engine in
//! the dependency graph.

use serde::{Deserialize, Serialize};

/// `lane` value for events not tied to a specific lane (enqueues,
/// zero-hop local deliveries, bridge pipelines).
pub const NO_LANE: u8 = u8::MAX;

/// `flit` value for records not tied to a single flit (ring
/// utilization samples).
pub const NO_FLIT: u64 = u64::MAX;

/// What happened to a flit (or a ring) at one point in its lifecycle.
///
/// Lifecycle, in order: [`Enqueued`](FlitEvent::Enqueued) →
/// ([`InjectLost`](FlitEvent::InjectLost) /
/// [`ITagSet`](FlitEvent::ITagSet))* →
/// [`Injected`](FlitEvent::Injected) (possibly via
/// [`ITagClaimed`](FlitEvent::ITagClaimed)) →
/// ([`Deflected`](FlitEvent::Deflected) with
/// [`ETagReserved`](FlitEvent::ETagReserved) on the first lap)* →
/// [`Ejected`](FlitEvent::Ejected) — then either
/// [`Delivered`](FlitEvent::Delivered) at a device, or
/// [`BridgeEnqueued`](FlitEvent::BridgeEnqueued) at a bridge endpoint
/// and the cycle repeats on the next ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlitEvent {
    /// Accepted into a node's Inject Queue. `class` is the
    /// `FlitClass` index (0=REQ, 1=RSP, 2=SNP, 3=DAT).
    Enqueued {
        /// Source node id.
        node: u32,
        /// Flit class index.
        class: u8,
    },
    /// Won a ring slot (or the zero-hop local-delivery path).
    Injected {
        /// Injecting node id.
        node: u32,
    },
    /// Head flit wanted this lane but lost arbitration this cycle
    /// (feeds the starvation counter behind I-tag placement).
    InjectLost {
        /// Losing node id.
        node: u32,
    },
    /// An I-tag was placed on a passing slot for a starving injector.
    ITagSet {
        /// Owning node id.
        node: u32,
    },
    /// A reserved slot came back around and its owner injected into it.
    ITagClaimed {
        /// Owning node id.
        node: u32,
    },
    /// Failed to eject at the exit station; sent onward for another
    /// lap.
    Deflected {
        /// Intended target node id.
        target: u32,
    },
    /// First deflection: the next freed eject buffer at the target was
    /// reserved for this flit.
    ETagReserved {
        /// Target node id holding the reservation.
        target: u32,
    },
    /// Entered a bridge's transfer pipeline.
    BridgeEnqueued {
        /// Bridge id.
        bridge: u16,
    },
    /// A matured bridge flit could not leave the pipeline because the
    /// destination endpoint's Inject Queue is full (backpressure).
    BridgeStalled {
        /// Bridge id.
        bridge: u16,
    },
    /// SWAP fired (§4.4): Eject-Queue head escaped to a reserved Tx
    /// buffer, this flit took its place, and the Inject-Queue head
    /// went out on the vacated slot in the same cycle.
    SwapTriggered {
        /// Bridge-endpoint node id.
        node: u32,
    },
    /// Left the ring into an eject queue (device or bridge endpoint).
    Ejected {
        /// Ejecting node id.
        node: u32,
    },
    /// Reached its destination device (final lifecycle event).
    Delivered {
        /// Destination node id.
        node: u32,
        /// Flit class index.
        class: u8,
    },
    /// Periodic per-ring occupancy sample (`flit` is [`NO_FLIT`]).
    RingUtil {
        /// Occupied slots across the ring's lanes.
        occupied: u16,
        /// Total slots across the ring's lanes.
        capacity: u16,
    },
}

/// One emitted event, stamped with when and where it happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation cycle.
    pub cycle: u64,
    /// Flit id, or [`NO_FLIT`] for ring samples.
    pub flit: u64,
    /// Ring index.
    pub ring: u16,
    /// Station index on the ring.
    pub station: u16,
    /// Lane index, or [`NO_LANE`] when no lane is involved.
    pub lane: u8,
    /// What happened.
    pub event: FlitEvent,
}

/// Per-kind event totals. Unlike a bounded record buffer these never
/// drop, so they reconcile exactly against `NetStats` counters no
/// matter how long the run was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// [`FlitEvent::Enqueued`] events.
    pub enqueued: u64,
    /// [`FlitEvent::Injected`] events.
    pub injected: u64,
    /// [`FlitEvent::InjectLost`] events.
    pub inject_lost: u64,
    /// [`FlitEvent::ITagSet`] events.
    pub itag_set: u64,
    /// [`FlitEvent::ITagClaimed`] events.
    pub itag_claimed: u64,
    /// [`FlitEvent::Deflected`] events.
    pub deflected: u64,
    /// [`FlitEvent::ETagReserved`] events.
    pub etag_reserved: u64,
    /// [`FlitEvent::BridgeEnqueued`] events.
    pub bridge_enqueued: u64,
    /// [`FlitEvent::BridgeStalled`] events.
    pub bridge_stalled: u64,
    /// [`FlitEvent::SwapTriggered`] events.
    pub swap_triggered: u64,
    /// [`FlitEvent::Ejected`] events.
    pub ejected: u64,
    /// [`FlitEvent::Delivered`] events.
    pub delivered: u64,
    /// [`FlitEvent::RingUtil`] samples.
    pub ring_util: u64,
}

impl EventCounts {
    /// Bump the counter for `event`'s kind.
    #[inline]
    pub fn record(&mut self, event: &FlitEvent) {
        match event {
            FlitEvent::Enqueued { .. } => self.enqueued += 1,
            FlitEvent::Injected { .. } => self.injected += 1,
            FlitEvent::InjectLost { .. } => self.inject_lost += 1,
            FlitEvent::ITagSet { .. } => self.itag_set += 1,
            FlitEvent::ITagClaimed { .. } => self.itag_claimed += 1,
            FlitEvent::Deflected { .. } => self.deflected += 1,
            FlitEvent::ETagReserved { .. } => self.etag_reserved += 1,
            FlitEvent::BridgeEnqueued { .. } => self.bridge_enqueued += 1,
            FlitEvent::BridgeStalled { .. } => self.bridge_stalled += 1,
            FlitEvent::SwapTriggered { .. } => self.swap_triggered += 1,
            FlitEvent::Ejected { .. } => self.ejected += 1,
            FlitEvent::Delivered { .. } => self.delivered += 1,
            FlitEvent::RingUtil { .. } => self.ring_util += 1,
        }
    }

    /// Total events recorded across all kinds.
    pub fn total(&self) -> u64 {
        self.enqueued
            + self.injected
            + self.inject_lost
            + self.itag_set
            + self.itag_claimed
            + self.deflected
            + self.etag_reserved
            + self.bridge_enqueued
            + self.bridge_stalled
            + self.swap_triggered
            + self.ejected
            + self.delivered
            + self.ring_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_each_kind() {
        let mut c = EventCounts::default();
        c.record(&FlitEvent::Enqueued { node: 0, class: 3 });
        c.record(&FlitEvent::Deflected { target: 1 });
        c.record(&FlitEvent::Deflected { target: 2 });
        c.record(&FlitEvent::RingUtil {
            occupied: 1,
            capacity: 8,
        });
        assert_eq!(c.enqueued, 1);
        assert_eq!(c.deflected, 2);
        assert_eq!(c.ring_util, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn records_serialize_to_json() {
        let r = TraceRecord {
            cycle: 9,
            flit: 4,
            ring: 1,
            station: 3,
            lane: 0,
            event: FlitEvent::ITagSet { node: 12 },
        };
        let s = serde_json::to_string(&r).expect("serializes");
        assert!(s.contains("\"cycle\":9"), "{s}");
        assert!(s.contains("ITagSet"), "{s}");
    }
}
