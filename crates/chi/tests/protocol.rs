//! Protocol-level tests: MESI transitions, snoops, LLC behaviour and
//! coherence invariants over a real multi-ring network.

use noc_chi::{
    CoherentSystem, LineAddr, LlcParams, MemoryParams, MesiState, ReadKind, SystemSpec, TxnKind,
};
use noc_core::{Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};

/// One ring: 4 requesters, 2 home nodes, 2 memory controllers.
fn small_system() -> (CoherentSystem, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 16).unwrap();
    let rns: Vec<NodeId> = (0..4)
        .map(|i| b.add_node(format!("cpu{i}"), r, i * 2).unwrap())
        .collect();
    let hns: Vec<NodeId> = (0..2)
        .map(|i| b.add_node(format!("hn{i}"), r, 9 + i * 2).unwrap())
        .collect();
    let sns: Vec<NodeId> = (0..2)
        .map(|i| b.add_node(format!("ddr{i}"), r, 13 + i * 2).unwrap())
        .collect();
    let net = Network::new(b.build().unwrap(), NetworkConfig::default());
    let sys = CoherentSystem::new(
        net,
        SystemSpec {
            requesters: rns.clone(),
            home_nodes: hns,
            memories: sns,
            mem_params: MemoryParams::ddr4(),
            llc: LlcParams::default(),
            line_bytes: 64,
            local_hit_latency: 10,
            hn_latency: 12,
            snoop_latency: 6,
        },
    );
    (sys, rns)
}

fn settle(sys: &mut CoherentSystem, budget: u64) {
    for _ in 0..budget {
        sys.tick();
        if sys.outstanding() == 0 {
            return;
        }
    }
    panic!("transactions did not settle within {budget} cycles");
}

#[test]
fn first_read_grants_exclusive() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x1000);
    let t = sys.read(rns[0], a, ReadKind::Shared);
    let c = sys.run_until_complete(t, 5000).expect("completes");
    assert_eq!(sys.rn_state(rns[0], a), MesiState::Exclusive);
    assert!(c.latency() > 60, "cold miss must include DDR latency");
}

#[test]
fn second_read_hits_llc_and_is_faster() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x2000);
    // Warm the LLC via rn0's read + write-back path: a clean E line is
    // silently tracked, so make it dirty and write it back.
    let t = sys.write(rns[0], a);
    sys.run_until_complete(t, 5000).unwrap();
    let wb = sys.write_back(rns[0], a).expect("owner can write back");
    sys.run_until_complete(wb, 5000).unwrap();
    // Now rn1 reads: LLC hit, no memory trip.
    let cold = {
        let t = sys.read(rns[1], LineAddr(0x9999), ReadKind::Shared);
        sys.run_until_complete(t, 5000).unwrap().latency()
    };
    let warm = {
        let t = sys.read(rns[1], a, ReadKind::Shared);
        sys.run_until_complete(t, 5000).unwrap().latency()
    };
    assert!(
        warm < cold,
        "LLC hit ({warm}) must beat memory miss ({cold})"
    );
}

#[test]
fn local_hit_completes_without_noc() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x3000);
    let t = sys.read(rns[0], a, ReadKind::Shared);
    sys.run_until_complete(t, 5000).unwrap();
    let before = sys.network().stats().enqueued.get();
    let t2 = sys.read(rns[0], a, ReadKind::Shared);
    let c = sys.run_until_complete(t2, 5000).unwrap();
    assert_eq!(
        sys.network().stats().enqueued.get(),
        before,
        "local hit must not generate traffic"
    );
    assert_eq!(c.latency(), 10);
}

#[test]
fn dirty_line_is_snooped_from_owner() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x4000);
    let t = sys.write(rns[0], a);
    sys.run_until_complete(t, 5000).unwrap();
    assert_eq!(sys.rn_state(rns[0], a), MesiState::Modified);

    let t = sys.read(rns[1], a, ReadKind::Shared);
    let c = sys.run_until_complete(t, 5000).expect("snooped read");
    assert_eq!(sys.rn_state(rns[0], a), MesiState::Shared, "owner demoted");
    assert_eq!(sys.rn_state(rns[1], a), MesiState::Shared);
    assert!(c.latency() > 0);
    // The snoop path generated Snoop-class flits.
    assert!(sys.network().stats().total_latency[noc_core::FlitClass::Snoop.index()].count() > 0);
}

#[test]
fn read_unique_invalidates_all_sharers() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x5000);
    for &rn in &rns[0..3] {
        let t = sys.read(rn, a, ReadKind::Shared);
        sys.run_until_complete(t, 5000).unwrap();
    }
    let t = sys.write(rns[3], a);
    sys.run_until_complete(t, 5000).expect("write completes");
    assert_eq!(sys.rn_state(rns[3], a), MesiState::Modified);
    for &rn in &rns[0..3] {
        assert_eq!(
            sys.rn_state(rn, a),
            MesiState::Invalid,
            "{rn} must be invalidated"
        );
    }
}

#[test]
fn write_back_requires_ownership() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x6000);
    assert!(sys.write_back(rns[0], a).is_none(), "not held at all");
    let t = sys.read(rns[0], a, ReadKind::Shared);
    sys.run_until_complete(t, 5000).unwrap();
    let t = sys.read(rns[1], a, ReadKind::Shared);
    sys.run_until_complete(t, 5000).unwrap();
    // rns[0] is now Shared, not writable.
    assert!(sys.write_back(rns[0], a).is_none(), "shared is not enough");
}

#[test]
fn nosnp_read_does_not_install_state() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x7000);
    let t = sys.read(rns[0], a, ReadKind::NoSnp);
    let c = sys.run_until_complete(t, 5000).expect("completes");
    assert_eq!(sys.rn_state(rns[0], a), MesiState::Invalid);
    assert_eq!(c.kind, TxnKind::Read(ReadKind::NoSnp));
    assert!(c.latency() > 60, "NoSnp always goes to memory");
}

#[test]
fn concurrent_reads_to_one_line_serialize_safely() {
    let (mut sys, rns) = small_system();
    let a = LineAddr(0x8000);
    let txns: Vec<_> = rns
        .iter()
        .map(|&rn| sys.read(rn, a, ReadKind::Shared))
        .collect();
    settle(&mut sys, 10_000);
    let done = sys.take_completions();
    assert_eq!(done.len(), txns.len());
    for &rn in &rns {
        assert!(sys.rn_state(rn, a).readable());
    }
}

#[test]
fn interleaved_random_traffic_drains_and_stays_coherent() {
    let (mut sys, rns) = small_system();
    // Pseudo-random but deterministic op mix.
    let mut seed = 0x1234_5678u64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        seed >> 33
    };
    for step in 0..400 {
        let rn = rns[(next() % 4) as usize];
        let addr = LineAddr(next() % 32);
        match next() % 4 {
            0 => {
                sys.write(rn, addr);
            }
            1 => {
                sys.write_back(rn, addr);
            }
            _ => {
                sys.read(rn, addr, ReadKind::Shared);
            }
        }
        for _ in 0..3 {
            sys.tick();
        }
        // Invariant: never more than one writable holder per line.
        if step % 20 == 0 {
            for line in 0..32u64 {
                let writable = rns
                    .iter()
                    .filter(|&&rn| sys.rn_state(rn, LineAddr(line)).writable())
                    .count();
                let readable = rns
                    .iter()
                    .filter(|&&rn| sys.rn_state(rn, LineAddr(line)).readable())
                    .count();
                assert!(writable <= 1, "line {line}: {writable} writable holders");
                if writable == 1 {
                    assert_eq!(
                        readable, 1,
                        "line {line}: writable copy must be the only copy"
                    );
                }
            }
        }
    }
    settle(&mut sys, 50_000);
    assert_eq!(sys.outstanding(), 0);
}

#[test]
fn completions_report_kind_and_monotonic_time() {
    let (mut sys, rns) = small_system();
    let t1 = sys.read(rns[0], LineAddr(1), ReadKind::Shared);
    let t2 = sys.write(rns[1], LineAddr(2));
    settle(&mut sys, 10_000);
    let cs = sys.take_completions();
    assert_eq!(cs.len(), 2);
    for c in &cs {
        assert!(c.end >= c.start);
        if c.txn == t1 {
            assert_eq!(c.kind, TxnKind::Read(ReadKind::Shared));
        }
        if c.txn == t2 {
            assert_eq!(c.kind, TxnKind::Write);
        }
    }
}
