//! LLC capacity-pressure tests: dirty evictions, write-back storms and
//! directory behaviour under a working set larger than the LLC.

use noc_chi::{CoherentSystem, LineAddr, LlcParams, MemoryParams, MesiState, ReadKind, SystemSpec};
use noc_core::{Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};

/// A system whose LLC slice holds only 32 lines, so modest working sets
/// force evictions.
fn tiny_llc_system() -> (CoherentSystem, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    let die = b.add_chiplet("die");
    let r = b.add_ring(die, RingKind::Full, 12).unwrap();
    let rns: Vec<NodeId> = (0..3)
        .map(|i| b.add_node(format!("cpu{i}"), r, i * 2).unwrap())
        .collect();
    let hn = b.add_node("hn", r, 7).unwrap();
    let sn = b.add_node("ddr", r, 9).unwrap();
    let net = Network::new(b.build().unwrap(), NetworkConfig::default());
    let sys = CoherentSystem::new(
        net,
        SystemSpec {
            requesters: rns.clone(),
            home_nodes: vec![hn],
            memories: vec![sn],
            mem_params: MemoryParams::ddr4(),
            llc: LlcParams {
                capacity_bytes: 32 * 64, // 32 lines
                ways: 4,
            },
            line_bytes: 64,
            local_hit_latency: 10,
            hn_latency: 12,
            snoop_latency: 6,
        },
    );
    (sys, rns)
}

fn settle(sys: &mut CoherentSystem, budget: u64) {
    for _ in 0..budget {
        if sys.outstanding() == 0 {
            return;
        }
        sys.tick();
    }
    panic!("did not settle");
}

#[test]
fn writeback_storm_evicts_cleanly() {
    let (mut sys, rns) = tiny_llc_system();
    // Dirty 128 lines (4x LLC capacity) and write them all back: every
    // installation past capacity evicts a dirty victim to memory.
    for i in 0..128u64 {
        let t = sys.write(rns[0], LineAddr(i));
        sys.run_until_complete(t, 50_000).expect("write");
        let wb = sys.write_back(rns[0], LineAddr(i)).expect("owner");
        sys.run_until_complete(wb, 50_000).expect("write-back");
    }
    settle(&mut sys, 100_000);
    // Everything still works afterwards: fresh reads complete.
    let t = sys.read(rns[1], LineAddr(5), ReadKind::Shared);
    let c = sys.run_until_complete(t, 50_000).expect("read after storm");
    assert!(c.latency() > 0);
}

#[test]
fn eviction_does_not_break_coherence() {
    let (mut sys, rns) = tiny_llc_system();
    // rn0 owns line 0 (dirty). Then a large read sweep by rn1 flushes
    // the LLC many times over. rn0's ownership must survive (the
    // directory is not the LLC data array).
    let t = sys.write(rns[0], LineAddr(0));
    sys.run_until_complete(t, 50_000).expect("write");
    for i in 100..200u64 {
        let t = sys.read(rns[1], LineAddr(i), ReadKind::Shared);
        sys.run_until_complete(t, 50_000).expect("sweep read");
    }
    assert_eq!(sys.rn_state(rns[0], LineAddr(0)), MesiState::Modified);
    // And a third party still snoops the dirty data correctly.
    let t = sys.read(rns[2], LineAddr(0), ReadKind::Shared);
    sys.run_until_complete(t, 50_000).expect("snooped read");
    assert_eq!(sys.rn_state(rns[0], LineAddr(0)), MesiState::Shared);
    assert_eq!(sys.rn_state(rns[2], LineAddr(0)), MesiState::Shared);
}

#[test]
fn llc_thrash_latency_exceeds_llc_hit() {
    let (mut sys, rns) = tiny_llc_system();
    // Warm one line via write+writeback (lands in LLC dirty).
    let t = sys.write(rns[0], LineAddr(0));
    sys.run_until_complete(t, 50_000).unwrap();
    let wb = sys.write_back(rns[0], LineAddr(0)).unwrap();
    sys.run_until_complete(wb, 50_000).unwrap();
    let t = sys.read(rns[1], LineAddr(0), ReadKind::Shared);
    let warm = sys.run_until_complete(t, 50_000).unwrap().latency();

    // Thrash the LLC, then read a line guaranteed to be evicted.
    for i in 1000..1100u64 {
        let t = sys.read(rns[2], LineAddr(i), ReadKind::Shared);
        sys.run_until_complete(t, 50_000).unwrap();
    }
    // rn1 drops its copy (write-back impossible: Shared), so force the
    // re-fetch via a different, previously-LLC-resident address now
    // evicted; use a fresh cold line as proxy for the memory trip.
    let t = sys.read(rns[1], LineAddr(0xF000), ReadKind::Shared);
    let cold = sys.run_until_complete(t, 50_000).unwrap().latency();
    assert!(
        cold > warm,
        "memory trip ({cold}) must exceed LLC hit ({warm})"
    );
}
