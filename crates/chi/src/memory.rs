//! Memory controller models (DDR channels, HBM stacks).
//!
//! A controller is a latency + bandwidth pair: requests are issued at
//! most one per `issue_interval` cycles (channel bandwidth) and complete
//! `service_latency` cycles after issue (array access + queuing is the
//! caller's concern — queuing happens naturally here when requests
//! arrive faster than the interval allows).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Parameters of one memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Cycles from issue to data availability.
    pub service_latency: u64,
    /// Minimum cycles between issues (1 / bandwidth).
    pub issue_interval: u64,
}

impl MemoryParams {
    /// A DDR4-like channel seen from a ~2 GHz NoC: ~60 cycles access,
    /// one 64-byte line every 4 cycles (~32 GB/s).
    pub fn ddr4() -> Self {
        MemoryParams {
            service_latency: 60,
            issue_interval: 4,
        }
    }

    /// An HBM2e-like stack: similar latency, one line per cycle
    /// (~500 GB/s per stack at 64 B/cycle, 2 GHz NoC × ~4 pseudo-channels
    /// folded into one model).
    pub fn hbm() -> Self {
        MemoryParams {
            service_latency: 50,
            issue_interval: 1,
        }
    }
}

/// A single memory controller's request pipeline.
///
/// # Example
///
/// ```
/// use noc_chi::{MemoryModel, MemoryParams};
/// let mut m = MemoryModel::new(MemoryParams { service_latency: 10, issue_interval: 2 });
/// m.push(0, "req-a");
/// m.push(0, "req-b"); // queued behind req-a's issue slot
/// assert_eq!(m.pop_ready(9), None);
/// assert_eq!(m.pop_ready(10), Some("req-a"));
/// assert_eq!(m.pop_ready(11), None);
/// assert_eq!(m.pop_ready(12), Some("req-b"));
/// ```
#[derive(Debug, Clone)]
pub struct MemoryModel<T> {
    params: MemoryParams,
    next_issue: u64,
    in_service: VecDeque<(u64, T)>,
    served: u64,
}

impl<T> MemoryModel<T> {
    /// Create a controller with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `issue_interval` is zero.
    pub fn new(params: MemoryParams) -> Self {
        assert!(params.issue_interval > 0, "issue interval must be ≥ 1");
        MemoryModel {
            params,
            next_issue: 0,
            in_service: VecDeque::new(),
            served: 0,
        }
    }

    /// Accept a request at time `now`; it will be ready after channel
    /// scheduling plus service latency.
    pub fn push(&mut self, now: u64, payload: T) {
        let issue = self.next_issue.max(now);
        self.next_issue = issue + self.params.issue_interval;
        self.in_service
            .push_back((issue + self.params.service_latency, payload));
    }

    /// Pop the oldest request whose data is ready at `now`.
    pub fn pop_ready(&mut self, now: u64) -> Option<T> {
        if self.in_service.front().is_some_and(|&(r, _)| r <= now) {
            self.served += 1;
            self.in_service.pop_front().map(|(_, p)| p)
        } else {
            None
        }
    }

    /// Requests currently queued or in service.
    pub fn pending(&self) -> usize {
        self.in_service.len()
    }

    /// Requests completed over the model's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// The controller's parameters.
    pub fn params(&self) -> MemoryParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applies() {
        let mut m = MemoryModel::new(MemoryParams {
            service_latency: 5,
            issue_interval: 1,
        });
        m.push(100, 1u32);
        assert_eq!(m.pop_ready(104), None);
        assert_eq!(m.pop_ready(105), Some(1));
        assert_eq!(m.served(), 1);
    }

    #[test]
    fn bandwidth_throttles_bursts() {
        let mut m = MemoryModel::new(MemoryParams {
            service_latency: 0,
            issue_interval: 10,
        });
        for i in 0..3 {
            m.push(0, i);
        }
        assert_eq!(m.pop_ready(0), Some(0));
        assert_eq!(m.pop_ready(9), None);
        assert_eq!(m.pop_ready(10), Some(1));
        assert_eq!(m.pop_ready(20), Some(2));
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn idle_channel_does_not_accumulate_credit() {
        let mut m = MemoryModel::new(MemoryParams {
            service_latency: 0,
            issue_interval: 4,
        });
        m.push(100, 'a');
        m.push(100, 'b');
        // 'b' issues at 104 even though the channel was idle before 100.
        assert_eq!(m.pop_ready(100), Some('a'));
        assert_eq!(m.pop_ready(103), None);
        assert_eq!(m.pop_ready(104), Some('b'));
    }

    #[test]
    fn presets_are_ordered() {
        assert!(MemoryParams::hbm().issue_interval < MemoryParams::ddr4().issue_interval);
    }

    #[test]
    #[should_panic(expected = "issue interval")]
    fn zero_interval_panics() {
        let _ = MemoryModel::<u8>::new(MemoryParams {
            service_latency: 1,
            issue_interval: 0,
        });
    }
}
