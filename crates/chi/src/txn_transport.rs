//! Coherence over the transaction layer: [`ChiTransport`] for
//! [`TxnFabric`].
//!
//! With this impl a [`CoherentSystem`](crate::CoherentSystem) rides
//! real multi-flit packets instead of lone flits: every CHI message is
//! packetized into a header flit plus data flits (a 64 B cache line on
//! the DAT channel becomes header + one data flit; larger lines split
//! further), reassembled out-of-order at the receiver, and handed back
//! by token exactly like the bare-network transport. Backpressure maps
//! the same way too — a full staging queue returns `false` from
//! `offer`, and the protocol layer retries, just as it does when the
//! bare network's inject queue is full.

use crate::system::ChiTransport;
use noc_core::telemetry::{SpanSink, TraceSink};
use noc_core::{FlitClass, NodeId};
use noc_sim::Cycle;
use noc_txn::TxnFabric;

impl<S: TraceSink, P: SpanSink> ChiTransport for TxnFabric<S, P> {
    fn offer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlitClass,
        bytes: u32,
        token: u64,
    ) -> bool {
        self.submit_message(src, dst, class, bytes, token)
    }

    fn tick(&mut self) {
        TxnFabric::tick(self);
    }

    fn now(&self) -> Cycle {
        TxnFabric::now(self)
    }

    fn recv(&mut self, node: NodeId) -> Option<u64> {
        self.recv_message(node)
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        CoherentSystem, LineAddr, LlcParams, MemoryParams, MesiState, ReadKind, SystemSpec,
    };
    use noc_core::{Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};
    use noc_txn::{TxnConfig, TxnFabric};

    fn build() -> (CoherentSystem<TxnFabric>, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let r = b.add_ring(die, RingKind::Full, 16).unwrap();
        let rns: Vec<NodeId> = (0..4u16)
            .map(|i| b.add_node(format!("cpu{i}"), r, i * 2).unwrap())
            .collect();
        let hns = vec![
            b.add_node("hn0", r, 9).unwrap(),
            b.add_node("hn1", r, 11).unwrap(),
        ];
        let sns = vec![
            b.add_node("sn0", r, 13).unwrap(),
            b.add_node("sn1", r, 15).unwrap(),
        ];
        let net = Network::new(b.build().unwrap(), NetworkConfig::default());
        let fab = TxnFabric::new(net, TxnConfig::default());
        let spec = SystemSpec {
            requesters: rns.clone(),
            home_nodes: hns,
            memories: sns,
            mem_params: MemoryParams::ddr4(),
            llc: LlcParams::default(),
            line_bytes: 64,
            local_hit_latency: 10,
            hn_latency: 12,
            snoop_latency: 6,
        };
        (CoherentSystem::new(fab, spec), rns)
    }

    #[test]
    fn coherence_runs_over_multi_flit_packets() {
        let (mut sys, rns) = build();
        // Two readers then a writer on the same line: the full
        // S→S→M/I snoop dance, every message a real packet.
        sys.read(rns[0], LineAddr(3), ReadKind::Shared);
        sys.read(rns[1], LineAddr(3), ReadKind::Shared);
        for _ in 0..20_000 {
            if sys.outstanding() == 0 {
                break;
            }
            sys.tick();
        }
        assert_eq!(sys.outstanding(), 0, "reads wedged over txn transport");
        assert_eq!(sys.rn_state(rns[0], LineAddr(3)), MesiState::Shared);
        assert_eq!(sys.rn_state(rns[1], LineAddr(3)), MesiState::Shared);

        sys.write(rns[2], LineAddr(3));
        for _ in 0..20_000 {
            if sys.outstanding() == 0 {
                break;
            }
            sys.tick();
        }
        assert_eq!(sys.outstanding(), 0, "write wedged over txn transport");
        assert_eq!(sys.rn_state(rns[2], LineAddr(3)), MesiState::Modified);
        assert_eq!(sys.rn_state(rns[0], LineAddr(3)), MesiState::Invalid);
        assert_eq!(sys.rn_state(rns[1], LineAddr(3)), MesiState::Invalid);

        // The transport really packetized: a 64 B DAT message is a
        // header + one data flit, so reassembled packets and delivered
        // messages both counted.
        let fab = sys.network();
        assert!(fab.counters().messages > 0);
        assert_eq!(fab.counters().messages, fab.counters().packets_reassembled);
        assert!(fab.counters().flits_sent > fab.counters().messages);
        assert_eq!(fab.counters().stray_flits, 0);
        assert_eq!(fab.counters().late_responses, 0);
    }
}
