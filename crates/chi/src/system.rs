//! The coherent system: requesters (RN-F), home nodes (HN-F with LLC
//! data + directory) and memory controllers (SN-F) exchanging CHI-style
//! messages over a [`Network`].
//!
//! This is the protocol layer the paper's Server-CPU builds on (§3.2.1):
//! the NoC provides the AMBA5-CHI service to distributed L3/LLC slices;
//! each hit/miss event becomes an independent single-flit transaction.

use crate::cache::{Inserted, SetAssocCache};
use crate::directory::{DirState, Directory};
use crate::memory::{MemoryModel, MemoryParams};
use crate::message::{Message, MsgOp};
use crate::types::{LineAddr, MesiState, ReadKind, TxnId};
use noc_core::{FlitClass, Network, NodeId};
use noc_sim::Cycle;
use std::collections::{HashMap, HashSet, VecDeque};

/// The transport a [`CoherentSystem`] runs over.
///
/// The canonical transport is the paper's bufferless multi-ring
/// [`Network`], but the trait lets the identical protocol run over the
/// baseline interconnects (buffered mesh, hub-and-spoke) so that
/// coherence-latency comparisons exercise real queueing rather than
/// analytic penalties.
pub trait ChiTransport {
    /// Offer a single-flit message. Returns `false` on backpressure
    /// (retry next cycle).
    fn offer(&mut self, src: NodeId, dst: NodeId, class: FlitClass, bytes: u32, token: u64)
        -> bool;

    /// Advance one cycle.
    fn tick(&mut self);

    /// Current cycle.
    fn now(&self) -> Cycle;

    /// Pop the token of the oldest message delivered to `node`.
    fn recv(&mut self, node: NodeId) -> Option<u64>;
}

impl ChiTransport for Network {
    fn offer(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlitClass,
        bytes: u32,
        token: u64,
    ) -> bool {
        Network::enqueue(self, src, dst, class, bytes, token).is_ok()
    }

    fn tick(&mut self) {
        Network::tick(self);
    }

    fn now(&self) -> Cycle {
        Network::now(self)
    }

    fn recv(&mut self, node: NodeId) -> Option<u64> {
        self.pop_delivered(node).map(|f| f.token)
    }
}

/// LLC (home-node data array) geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcParams {
    /// Capacity per home-node slice in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl Default for LlcParams {
    /// 4 MiB, 16-way per slice.
    fn default() -> Self {
        LlcParams {
            capacity_bytes: 4 << 20,
            ways: 16,
        }
    }
}

/// Agent placement and protocol parameters of a coherent system.
#[derive(Debug, Clone)]
pub struct SystemSpec {
    /// Request nodes (CPU clusters / AI cores).
    pub requesters: Vec<NodeId>,
    /// Home nodes (LLC slice + directory each).
    pub home_nodes: Vec<NodeId>,
    /// Memory controllers.
    pub memories: Vec<NodeId>,
    /// Parameters shared by all memory controllers.
    pub mem_params: MemoryParams,
    /// LLC slice geometry.
    pub llc: LlcParams,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Completion latency of a purely local cache hit.
    pub local_hit_latency: u64,
    /// Home-node pipeline latency (directory + LLC tag/data access)
    /// applied to every message a home node sends.
    pub hn_latency: u64,
    /// Requester snoop-response latency (local cache lookup).
    pub snoop_latency: u64,
}

/// What a completed transaction was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnKind {
    /// A read of the given kind.
    Read(ReadKind),
    /// A write (ReadUnique + dirty on completion).
    Write,
    /// A write-back of a dirty line.
    WriteBack,
}

/// A finished transaction, as observed by the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Transaction id.
    pub txn: TxnId,
    /// The requester.
    pub rn: NodeId,
    /// The line.
    pub addr: LineAddr,
    /// What the transaction was.
    pub kind: TxnKind,
    /// Issue time.
    pub start: Cycle,
    /// Completion time.
    pub end: Cycle,
}

impl Completion {
    /// End-to-end latency in cycles.
    pub fn latency(&self) -> u64 {
        self.end.since(self.start)
    }
}

#[derive(Debug, Clone, Copy)]
enum Role {
    Rn(usize),
    Hn(usize),
    Sn(usize),
}

#[derive(Debug)]
struct RnTxn {
    addr: LineAddr,
    kind: TxnKind,
    start: Cycle,
}

#[derive(Debug)]
struct HnTxn {
    requester: NodeId,
    addr: LineAddr,
    op: MsgOp,
    grant: MesiState,
    pending_acks: u32,
    need_mem: bool,
    mem_done: bool,
    coherent: bool,
}

/// The coherent system simulator.
///
/// # Example
///
/// ```
/// use noc_chi::{CoherentSystem, LineAddr, LlcParams, MemoryParams,
///               ReadKind, SystemSpec};
/// use noc_core::{Network, NetworkConfig, RingKind, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// let die = b.add_chiplet("die");
/// let r = b.add_ring(die, RingKind::Full, 8)?;
/// let cpu = b.add_node("cpu", r, 0)?;
/// let hn = b.add_node("hn", r, 3)?;
/// let ddr = b.add_node("ddr", r, 6)?;
/// let net = Network::new(b.build()?, NetworkConfig::default());
///
/// let mut sys = CoherentSystem::new(net, SystemSpec {
///     requesters: vec![cpu],
///     home_nodes: vec![hn],
///     memories: vec![ddr],
///     mem_params: MemoryParams::ddr4(),
///     llc: LlcParams::default(),
///     line_bytes: 64,
///     local_hit_latency: 10,
///     hn_latency: 12,
///     snoop_latency: 6,
/// });
/// let txn = sys.read(cpu, LineAddr(0x100), ReadKind::Shared);
/// let done = sys.run_until_complete(txn, 10_000).expect("completes");
/// assert!(done.latency() > 0);
/// # Ok::<(), noc_core::TopologyError>(())
/// ```
#[derive(Debug)]
pub struct CoherentSystem<T = Network> {
    net: T,
    spec: SystemSpec,
    role: HashMap<NodeId, Role>,
    agents_order: Vec<NodeId>,
    rn_lines: Vec<HashMap<LineAddr, MesiState>>,
    dirs: Vec<Directory>,
    llcs: Vec<SetAssocCache>,
    mems: Vec<MemoryModel<Message>>,
    msgs: HashMap<u64, Message>,
    next_msg: u64,
    next_txn: u64,
    outboxes: HashMap<NodeId, VecDeque<(NodeId, Message)>>,
    rn_txns: HashMap<TxnId, RnTxn>,
    hn_txns: HashMap<TxnId, HnTxn>,
    busy: HashMap<(usize, LineAddr), VecDeque<Message>>,
    busy_set: HashSet<(usize, LineAddr)>,
    /// Grants in flight: txn → (hn index, line) held busy until CompAck.
    awaiting_ack: HashMap<TxnId, (usize, LineAddr)>,
    local_done: VecDeque<(u64, Completion)>,
    /// Messages waiting out a pipeline delay before entering an outbox.
    delayed: Vec<(u64, NodeId, NodeId, Message)>,
    completions: Vec<Completion>,
}

impl<T: ChiTransport> CoherentSystem<T> {
    /// Wire a coherent system onto an existing network.
    ///
    /// # Panics
    ///
    /// Panics if the spec lists no requesters, home nodes or memories,
    /// or if an agent id appears in more than one role.
    pub fn new(net: T, spec: SystemSpec) -> Self {
        assert!(!spec.requesters.is_empty(), "need at least one requester");
        assert!(!spec.home_nodes.is_empty(), "need at least one home node");
        assert!(!spec.memories.is_empty(), "need at least one memory");
        let mut role = HashMap::new();
        let mut agents_order = Vec::new();
        for (i, &n) in spec.requesters.iter().enumerate() {
            assert!(role.insert(n, Role::Rn(i)).is_none(), "{n} has two roles");
            agents_order.push(n);
        }
        for (i, &n) in spec.home_nodes.iter().enumerate() {
            assert!(role.insert(n, Role::Hn(i)).is_none(), "{n} has two roles");
            agents_order.push(n);
        }
        for (i, &n) in spec.memories.iter().enumerate() {
            assert!(role.insert(n, Role::Sn(i)).is_none(), "{n} has two roles");
            agents_order.push(n);
        }
        let line = spec.line_bytes as u64;
        let llcs = spec
            .home_nodes
            .iter()
            .map(|_| SetAssocCache::with_capacity(spec.llc.capacity_bytes, line, spec.llc.ways))
            .collect();
        let mems = spec
            .memories
            .iter()
            .map(|_| MemoryModel::new(spec.mem_params))
            .collect();
        let outboxes = agents_order.iter().map(|&n| (n, VecDeque::new())).collect();
        CoherentSystem {
            rn_lines: vec![HashMap::new(); spec.requesters.len()],
            dirs: spec.home_nodes.iter().map(|_| Directory::new()).collect(),
            llcs,
            mems,
            role,
            agents_order,
            net,
            spec,
            msgs: HashMap::new(),
            next_msg: 0,
            next_txn: 0,
            outboxes,
            rn_txns: HashMap::new(),
            hn_txns: HashMap::new(),
            busy: HashMap::new(),
            busy_set: HashSet::new(),
            awaiting_ack: HashMap::new(),
            local_done: VecDeque::new(),
            delayed: Vec::new(),
            completions: Vec::new(),
        }
    }

    /// The underlying transport (read-only).
    pub fn network(&self) -> &T {
        &self.net
    }

    /// Mutable access to the transport (for probes and stats).
    pub fn network_mut(&mut self) -> &mut T {
        &mut self.net
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.net.now()
    }

    /// Transactions still in flight.
    pub fn outstanding(&self) -> usize {
        self.rn_txns.len()
    }

    /// The MESI state `rn` currently holds for `addr`.
    pub fn rn_state(&self, rn: NodeId, addr: LineAddr) -> MesiState {
        match self.role.get(&rn) {
            Some(Role::Rn(i)) => self.rn_lines[*i]
                .get(&addr)
                .copied()
                .unwrap_or(MesiState::Invalid),
            _ => MesiState::Invalid,
        }
    }

    /// The home node servicing `addr`.
    pub fn home_of(&self, addr: LineAddr) -> NodeId {
        self.spec.home_nodes[addr.interleave(self.spec.home_nodes.len())]
    }

    /// The memory controller servicing `addr`.
    pub fn memory_of(&self, addr: LineAddr) -> NodeId {
        self.spec.memories[addr.interleave(self.spec.memories.len())]
    }

    fn alloc_txn(&mut self) -> TxnId {
        let t = TxnId(self.next_txn);
        self.next_txn += 1;
        t
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: Message) {
        self.outboxes
            .get_mut(&from)
            .expect("sender is a registered agent")
            .push_back((to, msg));
    }

    /// Send after a pipeline delay (home-node array access, snoop
    /// lookup). Zero-delay sends go straight to the outbox.
    fn send_after(&mut self, from: NodeId, to: NodeId, msg: Message, delay: u64) {
        if delay == 0 {
            self.send(from, to, msg);
        } else {
            let ready = self.net.now().raw() + delay;
            self.delayed.push((ready, from, to, msg));
        }
    }

    /// Issue a coherent (or NoSnp) read from `rn`.
    ///
    /// # Panics
    ///
    /// Panics if `rn` is not a registered requester.
    pub fn read(&mut self, rn: NodeId, addr: LineAddr, kind: ReadKind) -> TxnId {
        self.issue(rn, addr, TxnKind::Read(kind))
    }

    /// Issue a write (ReadUnique; line becomes Modified on completion).
    pub fn write(&mut self, rn: NodeId, addr: LineAddr) -> TxnId {
        self.issue(rn, addr, TxnKind::Write)
    }

    fn issue(&mut self, rn: NodeId, addr: LineAddr, kind: TxnKind) -> TxnId {
        let Some(&Role::Rn(idx)) = self.role.get(&rn) else {
            panic!("{rn} is not a requester");
        };
        let txn = self.alloc_txn();
        let start = self.now();
        self.rn_txns.insert(txn, RnTxn { addr, kind, start });
        // Local hit path.
        let st = self.rn_lines[idx]
            .get(&addr)
            .copied()
            .unwrap_or(MesiState::Invalid);
        let local = match kind {
            TxnKind::Read(ReadKind::Shared) => st.readable(),
            TxnKind::Read(ReadKind::Unique) | TxnKind::Write => st.writable(),
            TxnKind::Read(ReadKind::NoSnp) => false,
            TxnKind::WriteBack => unreachable!("issued via write_back"),
        };
        if local {
            if matches!(kind, TxnKind::Write) {
                self.rn_lines[idx].insert(addr, MesiState::Modified);
            }
            let ready = start.raw() + self.spec.local_hit_latency;
            let c = Completion {
                txn,
                rn,
                addr,
                kind,
                start,
                end: Cycle(ready),
            };
            self.local_done.push_back((ready, c));
            return txn;
        }
        let op = match kind {
            TxnKind::Read(ReadKind::Shared) => MsgOp::ReadShared,
            TxnKind::Read(ReadKind::Unique) | TxnKind::Write => MsgOp::ReadUnique,
            TxnKind::Read(ReadKind::NoSnp) => MsgOp::ReadNoSnp,
            TxnKind::WriteBack => unreachable!(),
        };
        let home = self.home_of(addr);
        self.send(
            rn,
            home,
            Message {
                txn,
                op,
                addr,
                from: rn,
            },
        );
        txn
    }

    /// Write back a dirty/owned line. Returns `None` when `rn` does not
    /// hold the line in a writable state.
    pub fn write_back(&mut self, rn: NodeId, addr: LineAddr) -> Option<TxnId> {
        let Some(&Role::Rn(idx)) = self.role.get(&rn) else {
            return None;
        };
        let st = self.rn_lines[idx]
            .get(&addr)
            .copied()
            .unwrap_or(MesiState::Invalid);
        if !st.writable() {
            return None;
        }
        self.rn_lines[idx].insert(addr, MesiState::Invalid);
        let txn = self.alloc_txn();
        let start = self.now();
        self.rn_txns.insert(
            txn,
            RnTxn {
                addr,
                kind: TxnKind::WriteBack,
                start,
            },
        );
        let home = self.home_of(addr);
        self.send(
            rn,
            home,
            Message {
                txn,
                op: MsgOp::WriteBackFull,
                addr,
                from: rn,
            },
        );
        Some(txn)
    }

    /// Take all completions observed since the last call.
    pub fn take_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// Advance one cycle: network, agents, memory, message flush.
    pub fn tick(&mut self) {
        self.net.tick();
        let now = self.net.now();
        // Local (cache-hit) completions.
        while self
            .local_done
            .front()
            .is_some_and(|&(ready, _)| ready <= now.raw())
        {
            let (_, c) = self.local_done.pop_front().expect("checked");
            self.rn_txns.remove(&c.txn);
            self.completions.push(c);
        }
        // Deliveries.
        for i in 0..self.agents_order.len() {
            let node = self.agents_order[i];
            while let Some(token) = self.net.recv(node) {
                let msg = self
                    .msgs
                    .remove(&token)
                    .expect("every protocol flit has a side-table entry");
                self.handle(node, msg);
            }
        }
        // Memory service.
        for i in 0..self.mems.len() {
            let sn = self.spec.memories[i];
            while let Some(req) = self.mems[i].pop_ready(now.raw()) {
                match req.op {
                    MsgOp::MemRead => {
                        let reply = Message {
                            txn: req.txn,
                            op: MsgOp::MemData,
                            addr: req.addr,
                            from: sn,
                        };
                        self.send(sn, req.from, reply);
                    }
                    MsgOp::WriteNoSnp => { /* fire-and-forget eviction */ }
                    other => unreachable!("memory received {other:?}"),
                }
            }
        }
        // Release matured delayed messages into their outboxes.
        let now_raw = now.raw();
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now_raw {
                let (_, from, to, msg) = self.delayed.swap_remove(i);
                self.send(from, to, msg);
            } else {
                i += 1;
            }
        }
        // Flush outboxes into the NoC.
        for i in 0..self.agents_order.len() {
            let node = self.agents_order[i];
            while let Some(&(dst, msg)) = self.outboxes[&node].front() {
                let token = self.next_msg;
                if self.net.offer(
                    node,
                    dst,
                    msg.op.class(),
                    msg.op.payload_bytes(self.spec.line_bytes),
                    token,
                ) {
                    self.next_msg += 1;
                    self.msgs.insert(token, msg);
                    self.outboxes.get_mut(&node).expect("agent").pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Run until `txn` completes or `budget` cycles elapse.
    pub fn run_until_complete(&mut self, txn: TxnId, budget: u64) -> Option<Completion> {
        let mut found = None;
        for _ in 0..budget {
            self.tick();
            let done = self.take_completions();
            for c in done {
                if c.txn == txn {
                    found = Some(c);
                } else {
                    self.completions.push(c);
                }
            }
            if found.is_some() {
                break;
            }
        }
        found
    }

    fn handle(&mut self, at: NodeId, msg: Message) {
        match *self.role.get(&at).expect("delivery to registered agent") {
            Role::Rn(idx) => self.handle_rn(at, idx, msg),
            Role::Hn(idx) => self.handle_hn(at, idx, msg),
            Role::Sn(idx) => {
                let now = self.net.now().raw();
                self.mems[idx].push(now, msg);
            }
        }
    }

    fn handle_rn(&mut self, rn: NodeId, idx: usize, msg: Message) {
        match msg.op {
            MsgOp::SnpShared => {
                let was = self.rn_lines[idx]
                    .get(&msg.addr)
                    .copied()
                    .unwrap_or(MesiState::Invalid);
                self.rn_lines[idx].insert(msg.addr, MesiState::Shared);
                let reply = Message {
                    txn: msg.txn,
                    op: MsgOp::SnpRespData {
                        was_dirty: was == MesiState::Modified,
                    },
                    addr: msg.addr,
                    from: rn,
                };
                let d = self.spec.snoop_latency;
                self.send_after(rn, msg.from, reply, d);
            }
            MsgOp::SnpUnique => {
                let was = self.rn_lines[idx]
                    .get(&msg.addr)
                    .copied()
                    .unwrap_or(MesiState::Invalid);
                self.rn_lines[idx].insert(msg.addr, MesiState::Invalid);
                let reply = Message {
                    txn: msg.txn,
                    op: MsgOp::SnpRespData {
                        was_dirty: was == MesiState::Modified,
                    },
                    addr: msg.addr,
                    from: rn,
                };
                let d = self.spec.snoop_latency;
                self.send_after(rn, msg.from, reply, d);
            }
            MsgOp::CompData { state } => {
                let ack = Message {
                    txn: msg.txn,
                    op: MsgOp::CompAck,
                    addr: msg.addr,
                    from: rn,
                };
                self.send(rn, msg.from, ack);
                if let Some(t) = self.rn_txns.remove(&msg.txn) {
                    let final_state = if matches!(t.kind, TxnKind::Write) {
                        MesiState::Modified
                    } else {
                        state
                    };
                    if final_state != MesiState::Invalid {
                        self.rn_lines[idx].insert(msg.addr, final_state);
                    }
                    self.completions.push(Completion {
                        txn: msg.txn,
                        rn,
                        addr: t.addr,
                        kind: t.kind,
                        start: t.start,
                        end: self.net.now(),
                    });
                }
            }
            MsgOp::Comp => {
                if let Some(t) = self.rn_txns.remove(&msg.txn) {
                    self.completions.push(Completion {
                        txn: msg.txn,
                        rn,
                        addr: t.addr,
                        kind: t.kind,
                        start: t.start,
                        end: self.net.now(),
                    });
                }
            }
            other => unreachable!("requester received {other:?}"),
        }
    }

    fn llc_install(&mut self, idx: usize, hn: NodeId, addr: LineAddr, dirty: bool) {
        if let Inserted::Evicted {
            victim,
            dirty: victim_dirty,
        } = self.llcs[idx].insert(addr, dirty)
        {
            if victim_dirty {
                // Evicted dirty line flows to memory (fire-and-forget).
                let txn = self.alloc_txn();
                let mem = self.memory_of(victim);
                self.send(
                    hn,
                    mem,
                    Message {
                        txn,
                        op: MsgOp::WriteNoSnp,
                        addr: victim,
                        from: hn,
                    },
                );
            }
        }
    }

    fn handle_hn(&mut self, hn: NodeId, idx: usize, msg: Message) {
        match msg.op {
            MsgOp::ReadShared | MsgOp::ReadUnique => {
                if self.busy_set.contains(&(idx, msg.addr)) {
                    self.busy.entry((idx, msg.addr)).or_default().push_back(msg);
                } else {
                    self.start_hn_txn(hn, idx, msg);
                }
            }
            MsgOp::ReadNoSnp => {
                // Non-coherent: straight through to memory.
                self.hn_txns.insert(
                    msg.txn,
                    HnTxn {
                        requester: msg.from,
                        addr: msg.addr,
                        op: msg.op,
                        grant: MesiState::Invalid,
                        pending_acks: 0,
                        need_mem: true,
                        mem_done: false,
                        coherent: false,
                    },
                );
                let mem = self.memory_of(msg.addr);
                self.send(
                    hn,
                    mem,
                    Message {
                        txn: msg.txn,
                        op: MsgOp::MemRead,
                        addr: msg.addr,
                        from: hn,
                    },
                );
            }
            MsgOp::WriteBackFull => {
                self.llc_install(idx, hn, msg.addr, true);
                self.dirs[idx].remove(msg.addr, msg.from);
                let reply = Message {
                    txn: msg.txn,
                    op: MsgOp::Comp,
                    addr: msg.addr,
                    from: hn,
                };
                let d = self.spec.hn_latency;
                self.send_after(hn, msg.from, reply, d);
            }
            MsgOp::SnpRespData { was_dirty } => {
                self.llc_install(idx, hn, msg.addr, was_dirty);
                let done = {
                    let t = self
                        .hn_txns
                        .get_mut(&msg.txn)
                        .expect("snoop response for live txn");
                    t.pending_acks -= 1;
                    t.pending_acks == 0 && (!t.need_mem || t.mem_done)
                };
                if done {
                    self.finish_hn_txn(hn, idx, msg.txn);
                }
            }
            MsgOp::MemData => {
                let (done, coherent) = {
                    let t = self
                        .hn_txns
                        .get_mut(&msg.txn)
                        .expect("memory data for live txn");
                    t.mem_done = true;
                    (t.pending_acks == 0, t.coherent)
                };
                if coherent {
                    self.llc_install(idx, hn, msg.addr, false);
                }
                if done {
                    self.finish_hn_txn(hn, idx, msg.txn);
                }
            }
            MsgOp::CompAck => {
                if let Some((i, addr)) = self.awaiting_ack.remove(&msg.txn) {
                    self.busy_set.remove(&(i, addr));
                    if let Some(queue) = self.busy.get_mut(&(i, addr)) {
                        if let Some(next) = queue.pop_front() {
                            if queue.is_empty() {
                                self.busy.remove(&(i, addr));
                            }
                            self.start_hn_txn(hn, i, next);
                        }
                    }
                }
            }
            MsgOp::MemAck => {}
            other => unreachable!("home node received {other:?}"),
        }
    }

    fn start_hn_txn(&mut self, hn: NodeId, idx: usize, msg: Message) {
        let addr = msg.addr;
        let req = msg.from;
        let dir_state = self.dirs[idx].state(addr).clone();
        let mut t = HnTxn {
            requester: req,
            addr,
            op: msg.op,
            grant: MesiState::Shared,
            pending_acks: 0,
            need_mem: false,
            mem_done: true,
            coherent: true,
        };
        match (&msg.op, &dir_state) {
            (MsgOp::ReadShared, DirState::Owned(o)) if *o != req => {
                let snp = Message {
                    txn: msg.txn,
                    op: MsgOp::SnpShared,
                    addr,
                    from: hn,
                };
                self.send(hn, *o, snp);
                t.pending_acks = 1;
                t.grant = MesiState::Shared;
            }
            (MsgOp::ReadShared, _) => {
                // Owned-by-requester (stale), Shared, or Invalid: data
                // comes from LLC or memory.
                t.grant = if matches!(dir_state, DirState::Invalid) {
                    MesiState::Exclusive
                } else {
                    MesiState::Shared
                };
                if !self.llcs[idx].access(addr) {
                    t.need_mem = true;
                    t.mem_done = false;
                }
            }
            (MsgOp::ReadUnique, DirState::Owned(o)) if *o != req => {
                let snp = Message {
                    txn: msg.txn,
                    op: MsgOp::SnpUnique,
                    addr,
                    from: hn,
                };
                self.send(hn, *o, snp);
                t.pending_acks = 1;
                t.grant = MesiState::Exclusive;
            }
            (MsgOp::ReadUnique, DirState::Shared(sharers)) => {
                let targets: Vec<NodeId> = sharers.iter().copied().filter(|&s| s != req).collect();
                for s in &targets {
                    let snp = Message {
                        txn: msg.txn,
                        op: MsgOp::SnpUnique,
                        addr,
                        from: hn,
                    };
                    self.send(hn, *s, snp);
                }
                t.pending_acks = targets.len() as u32;
                t.grant = MesiState::Exclusive;
                if !self.llcs[idx].access(addr) {
                    t.need_mem = true;
                    t.mem_done = false;
                }
            }
            (MsgOp::ReadUnique, _) => {
                t.grant = MesiState::Exclusive;
                if !self.llcs[idx].access(addr) {
                    t.need_mem = true;
                    t.mem_done = false;
                }
            }
            (other, _) => unreachable!("start_hn_txn got {other:?}"),
        }
        if t.need_mem {
            let mem = self.memory_of(addr);
            self.send(
                hn,
                mem,
                Message {
                    txn: msg.txn,
                    op: MsgOp::MemRead,
                    addr,
                    from: hn,
                },
            );
        }
        if t.pending_acks == 0 && !t.need_mem {
            // LLC hit with nothing to snoop: respond immediately.
            self.hn_txns.insert(msg.txn, t);
            self.busy_set.insert((idx, addr));
            self.finish_hn_txn(hn, idx, msg.txn);
        } else {
            self.hn_txns.insert(msg.txn, t);
            self.busy_set.insert((idx, addr));
        }
    }

    fn finish_hn_txn(&mut self, hn: NodeId, idx: usize, txn: TxnId) {
        let t = self.hn_txns.remove(&txn).expect("finishing live txn");
        let addr = t.addr;
        if t.coherent {
            match t.op {
                MsgOp::ReadShared => {
                    if t.grant == MesiState::Exclusive {
                        self.dirs[idx].set_owner(addr, t.requester);
                    } else {
                        self.dirs[idx].add_sharer(addr, t.requester);
                    }
                }
                MsgOp::ReadUnique => {
                    self.dirs[idx].set_owner(addr, t.requester);
                }
                _ => {}
            }
            // The line stays busy until the requester's CompAck: a later
            // request's snoop must not overtake this grant.
            self.awaiting_ack.insert(txn, (idx, addr));
        }
        let reply = Message {
            txn,
            op: MsgOp::CompData { state: t.grant },
            addr,
            from: hn,
        };
        let d = self.spec.hn_latency;
        self.send_after(hn, t.requester, reply, d);
    }
}
