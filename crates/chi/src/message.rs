//! Protocol messages carried by NoC flits.
//!
//! Each message travels as exactly one flit (paper §3.4.3). The flit's
//! `token` field indexes a side table of [`Message`] structs kept by the
//! [`CoherentSystem`](crate::CoherentSystem); the flit's class and
//! payload size are derived from the opcode below.

use crate::types::{LineAddr, MesiState, TxnId};
use noc_core::{FlitClass, NodeId};
use serde::{Deserialize, Serialize};

/// CHI-flavoured message opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MsgOp {
    /// RN→HN: coherent read, shared copy acceptable.
    ReadShared,
    /// RN→HN: coherent read for ownership (write intent).
    ReadUnique,
    /// RN→HN: non-coherent read (bypasses the directory, straight to
    /// memory via the home node).
    ReadNoSnp,
    /// RN→HN: write back a dirty owned line (carries data).
    WriteBackFull,
    /// HN→SN: non-coherent line write (LLC eviction, carries data).
    WriteNoSnp,
    /// HN→RN: downgrade to Shared, return data.
    SnpShared,
    /// HN→RN: invalidate, return data/ack.
    SnpUnique,
    /// RN→HN: snoop response carrying data (`was_dirty` = line was M).
    SnpRespData {
        /// Whether the snooped line was dirty at the holder.
        was_dirty: bool,
    },
    /// HN→RN: read completion carrying data and the granted state.
    CompData {
        /// Coherence state granted to the requester.
        state: MesiState,
    },
    /// HN→RN: dataless completion (write-back done).
    Comp,
    /// RN→HN: completion acknowledge — the home node keeps the line's
    /// hazard (busy) set until this arrives, so a later snoop can never
    /// overtake the grant it acknowledges.
    CompAck,
    /// HN→SN: memory read request.
    MemRead,
    /// SN→HN: memory read data.
    MemData,
    /// SN→HN: memory write acknowledgement.
    MemAck,
}

impl MsgOp {
    /// The NoC channel (flit class) this opcode travels on.
    pub fn class(self) -> FlitClass {
        match self {
            MsgOp::ReadShared | MsgOp::ReadUnique | MsgOp::ReadNoSnp | MsgOp::MemRead => {
                FlitClass::Request
            }
            MsgOp::SnpShared | MsgOp::SnpUnique => FlitClass::Snoop,
            MsgOp::Comp | MsgOp::CompAck | MsgOp::MemAck => FlitClass::Response,
            MsgOp::WriteBackFull
            | MsgOp::WriteNoSnp
            | MsgOp::SnpRespData { .. }
            | MsgOp::CompData { .. }
            | MsgOp::MemData => FlitClass::Data,
        }
    }

    /// Flit payload bytes: headers for control, a cache line for data.
    pub fn payload_bytes(self, line_bytes: u32) -> u32 {
        match self.class() {
            FlitClass::Request | FlitClass::Snoop => 16,
            FlitClass::Response => 8,
            FlitClass::Data => line_bytes,
        }
    }
}

/// A protocol message between two agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// The transaction this message belongs to.
    pub txn: TxnId,
    /// Opcode.
    pub op: MsgOp,
    /// The line the transaction concerns.
    pub addr: LineAddr,
    /// Sending agent.
    pub from: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_channels() {
        assert_eq!(MsgOp::ReadShared.class(), FlitClass::Request);
        assert_eq!(MsgOp::SnpUnique.class(), FlitClass::Snoop);
        assert_eq!(MsgOp::Comp.class(), FlitClass::Response);
        assert_eq!(
            MsgOp::CompData {
                state: MesiState::Shared
            }
            .class(),
            FlitClass::Data
        );
        assert_eq!(MsgOp::MemData.class(), FlitClass::Data);
    }

    #[test]
    fn data_messages_carry_the_line() {
        assert_eq!(MsgOp::MemData.payload_bytes(64), 64);
        assert_eq!(MsgOp::ReadShared.payload_bytes(64), 16);
        assert_eq!(MsgOp::Comp.payload_bytes(64), 8);
    }
}
