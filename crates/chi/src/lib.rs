//! # noc-chi — an AMBA5-CHI-flavoured coherence substrate
//!
//! The paper's architecture teams "stick to the shared memory
//! abstraction" (§3.2) and layer AMBA5-CHI over the bufferless
//! multi-ring NoC. This crate provides that layer for the reproduction:
//!
//! * [`SetAssocCache`] — LRU set-associative cache model (LLC data
//!   slices, L3 tag caches, workload hit/miss modelling);
//! * [`Directory`] — the home node's sharer/owner tracking (the paper's
//!   "L3 tag cache" function);
//! * [`MemoryModel`] — DDR/HBM controller latency+bandwidth model;
//! * [`CoherentSystem`] — requesters, home nodes and memory controllers
//!   exchanging single-flit CHI transactions over a
//!   [`noc_core::Network`], with MESI states, snoops, write-backs and
//!   per-transaction latency accounting.
//!
//! Every NoC transaction is independent and stateless (§3.2.1), matching
//! the paper's premise that makes the bufferless single-flit design
//! viable.

pub mod cache;
pub mod directory;
pub mod memory;
pub mod message;
pub mod system;
pub mod txn_transport;
pub mod types;

pub use cache::{Inserted, SetAssocCache};
pub use directory::{DirState, Directory};
pub use memory::{MemoryModel, MemoryParams};
pub use message::{Message, MsgOp};
pub use system::{CoherentSystem, Completion, LlcParams, SystemSpec, TxnKind};
pub use types::{LineAddr, MesiState, ReadKind, TxnId};
