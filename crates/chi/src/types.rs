//! Basic protocol types: line addresses, transaction ids, MESI states
//! and message opcodes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A cache-line-aligned physical address (the line index, not the byte
/// address).
///
/// # Example
///
/// ```
/// use noc_chi::LineAddr;
/// let a = LineAddr::from_byte_addr(0x1_0040, 64);
/// assert_eq!(a, LineAddr(0x401));
/// assert_eq!(a.byte_addr(64), 0x1_0040);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Convert a byte address into its line index.
    pub fn from_byte_addr(addr: u64, line_bytes: u64) -> Self {
        LineAddr(addr / line_bytes)
    }

    /// The first byte address of this line.
    pub fn byte_addr(self, line_bytes: u64) -> u64 {
        self.0 * line_bytes
    }

    /// Deterministic interleave: which of `n` slices services this line.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn interleave(self, n: usize) -> usize {
        assert!(n > 0, "interleave over zero slices");
        // Multiplicative hash so strided streams spread evenly.
        ((self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % n
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// Identifies one coherence transaction.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// MESI coherence state of a line in a requester's cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MesiState {
    /// Modified: exclusive and dirty.
    Modified,
    /// Exclusive: sole copy, clean.
    Exclusive,
    /// Shared: possibly multiple copies, clean.
    Shared,
    /// Invalid: not present.
    Invalid,
}

impl MesiState {
    /// Whether this state permits reads without a coherence action.
    pub fn readable(self) -> bool {
        self != MesiState::Invalid
    }

    /// Whether this state permits writes without a coherence action.
    pub fn writable(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }
}

/// What a requester wants from a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReadKind {
    /// ReadShared: the line will be read; S (or E if sole) suffices.
    Shared,
    /// ReadUnique: the line will be written; all other copies must go.
    Unique,
    /// ReadNoSnp: non-coherent read (I/O, uncached).
    NoSnp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_roundtrip() {
        let a = LineAddr::from_byte_addr(4096, 64);
        assert_eq!(a.0, 64);
        assert_eq!(a.byte_addr(64), 4096);
    }

    #[test]
    fn interleave_spreads_strided_streams() {
        let n = 8;
        let mut counts = vec![0u32; n];
        for i in 0..8000u64 {
            counts[LineAddr(i).interleave(n)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced: {counts:?}");
        }
    }

    #[test]
    fn interleave_is_deterministic() {
        assert_eq!(LineAddr(42).interleave(6), LineAddr(42).interleave(6));
    }

    #[test]
    fn mesi_permissions() {
        assert!(MesiState::Modified.writable());
        assert!(MesiState::Exclusive.writable());
        assert!(!MesiState::Shared.writable());
        assert!(MesiState::Shared.readable());
        assert!(!MesiState::Invalid.readable());
    }

    #[test]
    fn display_formats() {
        assert_eq!(LineAddr(0x10).to_string(), "line:0x10");
        assert_eq!(TxnId(3).to_string(), "txn3");
    }
}
