//! A set-associative cache model with LRU replacement.
//!
//! Used for LLC data slices (home nodes), L3 tag caches (Server-CPU) and
//! any hit/miss modelling a workload needs. Tracks presence and a dirty
//! bit; actual data values are never simulated (the NoC only cares about
//! traffic).

use crate::types::LineAddr;

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    addr: LineAddr,
    dirty: bool,
    /// Monotonic LRU stamp: larger = more recently used.
    stamp: u64,
}

/// Result of inserting into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inserted {
    /// The line was already resident (its LRU position was refreshed).
    AlreadyPresent,
    /// The line was installed into a free way.
    Installed,
    /// The line was installed by evicting a victim; `dirty` says whether
    /// the victim needs a write-back.
    Evicted {
        /// The evicted line.
        victim: LineAddr,
        /// Whether the victim was dirty (requires write-back).
        dirty: bool,
    },
}

/// A set-associative, LRU-replacement cache.
///
/// # Example
///
/// ```
/// use noc_chi::{LineAddr, SetAssocCache};
/// let mut c = SetAssocCache::new(64, 8); // 64 sets, 8 ways
/// assert!(!c.contains(LineAddr(1)));
/// c.insert(LineAddr(1), false);
/// assert!(c.contains(LineAddr(1)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: usize,
    ways: usize,
    entries: Vec<Vec<Entry>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Create a cache with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        SetAssocCache {
            sets,
            ways,
            entries: vec![Vec::new(); sets],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Build from a capacity in bytes and a line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry doesn't divide evenly into ≥1 set.
    pub fn with_capacity(bytes: u64, line_bytes: u64, ways: usize) -> Self {
        let lines = (bytes / line_bytes) as usize;
        assert!(lines >= ways && ways > 0, "capacity too small");
        SetAssocCache::new(lines / ways, ways)
    }

    fn set_of(&self, addr: LineAddr) -> usize {
        // Hash the set index so power-of-two strides don't alias.
        ((addr.0.wrapping_mul(0x2545_F491_4F6C_DD1D)) >> 24) as usize % self.sets
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Whether `addr` is resident (does not update LRU or counters).
    pub fn contains(&self, addr: LineAddr) -> bool {
        self.entries[self.set_of(addr)]
            .iter()
            .any(|e| e.addr == addr)
    }

    /// Look up `addr`, refreshing LRU and hit/miss counters.
    pub fn access(&mut self, addr: LineAddr) -> bool {
        self.tick += 1;
        let set = self.set_of(addr);
        let tick = self.tick;
        if let Some(e) = self.entries[set].iter_mut().find(|e| e.addr == addr) {
            e.stamp = tick;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Install `addr` (marking it dirty if requested), evicting an LRU
    /// victim when the set is full.
    pub fn insert(&mut self, addr: LineAddr, dirty: bool) -> Inserted {
        self.tick += 1;
        let tick = self.tick;
        let ways = self.ways;
        let set = self.set_of(addr);
        let entries = &mut self.entries[set];
        if let Some(e) = entries.iter_mut().find(|e| e.addr == addr) {
            e.stamp = tick;
            e.dirty |= dirty;
            return Inserted::AlreadyPresent;
        }
        if entries.len() < ways {
            entries.push(Entry {
                addr,
                dirty,
                stamp: tick,
            });
            return Inserted::Installed;
        }
        let lru = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(i, _)| i)
            .expect("set is full, so non-empty");
        let victim = entries[lru];
        entries[lru] = Entry {
            addr,
            dirty,
            stamp: tick,
        };
        Inserted::Evicted {
            victim: victim.addr,
            dirty: victim.dirty,
        }
    }

    /// Mark a resident line dirty; returns false if absent.
    pub fn mark_dirty(&mut self, addr: LineAddr) -> bool {
        let set = self.set_of(addr);
        if let Some(e) = self.entries[set].iter_mut().find(|e| e.addr == addr) {
            e.dirty = true;
            true
        } else {
            false
        }
    }

    /// Remove a line; returns whether it was present and dirty.
    pub fn invalidate(&mut self, addr: LineAddr) -> Option<bool> {
        let set = self.set_of(addr);
        let pos = self.entries[set].iter().position(|e| e.addr == addr)?;
        let e = self.entries[set].swap_remove(pos);
        Some(e.dirty)
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Currently resident line count.
    pub fn len(&self) -> usize {
        self.entries.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = SetAssocCache::new(16, 4);
        assert!(!c.access(LineAddr(5)));
        c.insert(LineAddr(5), false);
        assert!(c.access(LineAddr(5)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eviction_picks_lru() {
        let mut c = SetAssocCache::new(1, 2);
        c.insert(LineAddr(1), false);
        c.insert(LineAddr(2), true);
        c.access(LineAddr(1)); // 1 is now MRU, 2 is LRU
        match c.insert(LineAddr(3), false) {
            Inserted::Evicted { victim, dirty } => {
                assert_eq!(victim, LineAddr(2));
                assert!(dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(LineAddr(1)));
        assert!(c.contains(LineAddr(3)));
        assert!(!c.contains(LineAddr(2)));
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let mut c = SetAssocCache::new(4, 2);
        c.insert(LineAddr(7), false);
        assert_eq!(c.insert(LineAddr(7), true), Inserted::AlreadyPresent);
        assert_eq!(c.len(), 1);
        // Dirty bit was merged.
        assert_eq!(c.invalidate(LineAddr(7)), Some(true));
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn invalidate_absent_is_none() {
        let mut c = SetAssocCache::new(4, 2);
        assert_eq!(c.invalidate(LineAddr(1)), None);
        assert!(!c.mark_dirty(LineAddr(1)));
    }

    #[test]
    fn with_capacity_geometry() {
        // 1 MiB, 64 B lines, 16 ways → 1024 sets.
        let c = SetAssocCache::with_capacity(1 << 20, 64, 16);
        assert_eq!(c.capacity_lines(), 16384);
    }

    #[test]
    fn working_set_smaller_than_cache_stays_hit() {
        let mut c = SetAssocCache::with_capacity(1 << 16, 64, 8); // 1024 lines
        for round in 0..4 {
            for i in 0..256u64 {
                let hit = c.access(LineAddr(i));
                if round > 0 {
                    assert!(hit, "line {i} evicted despite fitting");
                }
                if !hit {
                    c.insert(LineAddr(i), false);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        let _ = SetAssocCache::new(0, 4);
    }
}
