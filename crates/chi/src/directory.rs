//! The home node's coherence directory.

use crate::types::LineAddr;
use noc_core::NodeId;
use std::collections::{BTreeSet, HashMap};

/// Directory state of one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirState {
    /// No coherent copies exist.
    Invalid,
    /// One or more clean shared copies.
    Shared(BTreeSet<NodeId>),
    /// A single requester owns the line (M or E).
    Owned(NodeId),
}

/// Tracks, per line, which requesters hold copies — the "L3 tag" half of
/// the paper's hybrid L3 design.
///
/// # Example
///
/// ```
/// use noc_chi::{Directory, DirState, LineAddr};
/// use noc_core::NodeId;
/// let mut d = Directory::new();
/// d.set_owner(LineAddr(1), NodeId(3));
/// assert_eq!(d.state(LineAddr(1)), &DirState::Owned(NodeId(3)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Directory {
    lines: HashMap<LineAddr, DirState>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current state of a line (Invalid if never touched).
    pub fn state(&self, addr: LineAddr) -> &DirState {
        self.lines.get(&addr).unwrap_or(&DirState::Invalid)
    }

    /// Record `owner` as the sole (M/E) holder.
    pub fn set_owner(&mut self, addr: LineAddr, owner: NodeId) {
        self.lines.insert(addr, DirState::Owned(owner));
    }

    /// Add a sharer, demoting an owner if present.
    pub fn add_sharer(&mut self, addr: LineAddr, sharer: NodeId) {
        let entry = self.lines.entry(addr).or_insert(DirState::Invalid);
        match entry {
            DirState::Invalid => {
                *entry = DirState::Shared(BTreeSet::from([sharer]));
            }
            DirState::Shared(set) => {
                set.insert(sharer);
            }
            DirState::Owned(owner) => {
                let set = BTreeSet::from([*owner, sharer]);
                *entry = DirState::Shared(set);
            }
        }
    }

    /// Remove one holder (sharer or owner); line becomes Invalid when
    /// the last copy goes.
    pub fn remove(&mut self, addr: LineAddr, node: NodeId) {
        if let Some(entry) = self.lines.get_mut(&addr) {
            match entry {
                DirState::Owned(o) if *o == node => {
                    *entry = DirState::Invalid;
                }
                DirState::Shared(set) => {
                    set.remove(&node);
                    if set.is_empty() {
                        *entry = DirState::Invalid;
                    }
                }
                _ => {}
            }
        }
    }

    /// Drop all tracking of a line.
    pub fn invalidate(&mut self, addr: LineAddr) {
        self.lines.remove(&addr);
    }

    /// Every holder of the line, in deterministic order.
    pub fn holders(&self, addr: LineAddr) -> Vec<NodeId> {
        match self.state(addr) {
            DirState::Invalid => Vec::new(),
            DirState::Owned(o) => vec![*o],
            DirState::Shared(set) => set.iter().copied().collect(),
        }
    }

    /// Number of tracked (non-invalid) lines.
    pub fn len(&self) -> usize {
        self.lines
            .values()
            .filter(|s| !matches!(s, DirState::Invalid))
            .count()
    }

    /// Whether the directory tracks no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_then_share_demotes() {
        let mut d = Directory::new();
        d.set_owner(LineAddr(1), NodeId(0));
        d.add_sharer(LineAddr(1), NodeId(1));
        assert_eq!(d.holders(LineAddr(1)), vec![NodeId(0), NodeId(1)]);
        assert!(matches!(d.state(LineAddr(1)), DirState::Shared(_)));
    }

    #[test]
    fn remove_last_holder_invalidates() {
        let mut d = Directory::new();
        d.add_sharer(LineAddr(2), NodeId(5));
        d.remove(LineAddr(2), NodeId(5));
        assert_eq!(d.state(LineAddr(2)), &DirState::Invalid);
        assert!(d.is_empty());
    }

    #[test]
    fn remove_owner() {
        let mut d = Directory::new();
        d.set_owner(LineAddr(3), NodeId(1));
        d.remove(LineAddr(3), NodeId(1));
        assert_eq!(d.state(LineAddr(3)), &DirState::Invalid);
    }

    #[test]
    fn remove_wrong_owner_is_noop() {
        let mut d = Directory::new();
        d.set_owner(LineAddr(3), NodeId(1));
        d.remove(LineAddr(3), NodeId(2));
        assert_eq!(d.state(LineAddr(3)), &DirState::Owned(NodeId(1)));
    }

    #[test]
    fn untouched_lines_are_invalid() {
        let d = Directory::new();
        assert_eq!(d.state(LineAddr(9)), &DirState::Invalid);
        assert!(d.holders(LineAddr(9)).is_empty());
    }
}
