//! The Server-CPU SoC (paper §4.2, Figure 8A): compute dies with full
//! rings hosting CPU clusters, L3/LLC home-node slices and DDR
//! controllers; I/O dies with half rings hosting latency-tolerant
//! devices and the Protocol Adapter; RBRG-L2 bridges between dies and
//! (via PA/SerDes) between packages.

use noc_chi::{CoherentSystem, LlcParams, MemoryParams, SystemSpec};
use noc_core::telemetry::{HealthConfig, NullSink, RecorderConfig};
use noc_core::{
    BridgeConfig, ExecMode, Network, NetworkConfig, NocDiagnostics, NodeId, RingKind, TickMode,
    Topology, TopologyBuilder, TopologyError,
};

/// Server-CPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCpuConfig {
    /// Packages in the system (the paper scales to 4P via PA/SerDes).
    pub packages: usize,
    /// Compute dies per package.
    pub ccd_count: usize,
    /// CPU clusters per compute die (each cluster = 4 cores sharing an
    /// L3 tag slice).
    pub clusters_per_ccd: usize,
    /// Home-node (L3-data/LLC + directory) slices per compute die.
    pub hn_per_ccd: usize,
    /// DDR controllers per compute die.
    pub ddr_per_ccd: usize,
    /// I/O dies per package.
    pub iod_count: usize,
    /// Die-to-die bridge latency in cycles (in-package RBRG-L2 PHY).
    pub d2d_latency: u32,
    /// Package-to-package latency in cycles (PA SerDes).
    pub serdes_latency: u32,
    /// DDR controller model.
    pub mem_params: MemoryParams,
    /// Per-slice LLC geometry.
    pub llc: LlcParams,
    /// Network queue/tag parameters.
    pub net: NetworkConfig,
    /// How the NoC engine executes the per-ring phase of each tick.
    /// Results are bit-identical across modes; this only trades
    /// wall-clock time.
    pub exec: ExecMode,
    /// Observatory sampling period in cycles: a metrics snapshot (and
    /// health-watchdog pass) every this many cycles. `0` (the default)
    /// keeps the observatory off.
    pub metrics_period: u64,
    /// Flight-recorder sizing. `Some` (with `metrics_period > 0`)
    /// additionally enables per-flow attribution, bounded history
    /// retention, and watchdog-triggered postmortem bundles; `None`
    /// (the default) keeps the observatory metrics-only.
    pub recorder: Option<RecorderConfig>,
}

impl Default for ServerCpuConfig {
    /// The paper's one-package system: 2 CCDs × 12 clusters × 4 cores =
    /// 96 cores ("nearly one hundred"), 2 I/O dies.
    fn default() -> Self {
        ServerCpuConfig {
            packages: 1,
            ccd_count: 2,
            clusters_per_ccd: 12,
            hn_per_ccd: 4,
            ddr_per_ccd: 4,
            iod_count: 2,
            d2d_latency: 8,
            serdes_latency: 45,
            mem_params: MemoryParams::ddr4(),
            llc: LlcParams::default(),
            net: NetworkConfig::default(),
            exec: ExecMode::Sequential,
            metrics_period: 0,
            recorder: None,
        }
    }
}

impl ServerCpuConfig {
    /// Total CPU cores (4 per cluster).
    pub fn cores(&self) -> usize {
        self.packages * self.ccd_count * self.clusters_per_ccd * 4
    }

    /// A scaled-down variant with `clusters` clusters per CCD (the
    /// paper's fair-comparison runs against lower-core-count baselines).
    pub fn scaled_to_clusters(mut self, clusters: usize) -> Self {
        self.clusters_per_ccd = clusters;
        self
    }
}

/// Node map of a built Server-CPU.
#[derive(Debug, Clone)]
pub struct ServerCpuMap {
    /// CPU-cluster requesters, grouped by (package, ccd) in build order.
    pub clusters: Vec<NodeId>,
    /// Home-node slices.
    pub home_nodes: Vec<NodeId>,
    /// DDR controllers.
    pub ddrs: Vec<NodeId>,
    /// I/O-die devices (PCIe, Ethernet, SATA, accelerator), per I/O die.
    pub io_devices: Vec<NodeId>,
    /// Protocol adapters (one per I/O die).
    pub pas: Vec<NodeId>,
    /// Clusters per compute die (for intra/inter-die selection).
    pub clusters_per_ccd: usize,
    /// Compute dies per package.
    pub ccd_count: usize,
}

impl ServerCpuMap {
    /// Clusters belonging to compute die `ccd` (global index across
    /// packages).
    pub fn clusters_of_ccd(&self, ccd: usize) -> &[NodeId] {
        let s = ccd * self.clusters_per_ccd;
        &self.clusters[s..s + self.clusters_per_ccd]
    }
}

/// Build the Server-CPU topology. Returns the topology and its node map.
///
/// # Errors
///
/// Propagates [`TopologyError`] if the configuration is degenerate
/// (zero rings, etc.).
pub fn build_topology(cfg: &ServerCpuConfig) -> Result<(Topology, ServerCpuMap), TopologyError> {
    let mut b = TopologyBuilder::new();
    let mut map = ServerCpuMap {
        clusters: Vec::new(),
        home_nodes: Vec::new(),
        ddrs: Vec::new(),
        io_devices: Vec::new(),
        pas: Vec::new(),
        clusters_per_ccd: cfg.clusters_per_ccd,
        ccd_count: cfg.ccd_count,
    };
    let mut ccd_rings = Vec::new();
    let mut iod_rings = Vec::new();

    for pkg in 0..cfg.packages {
        for c in 0..cfg.ccd_count {
            let die = b.add_chiplet(format!("p{pkg}.ccd{c}"));
            // Port budget: clusters on port 0 of every station; HN and
            // DDR share port 1 of the body; the last three stations are
            // reserved for bridge endpoints (dual CCD↔CCD bridges plus
            // links to both I/O dies).
            let stations = (cfg.clusters_per_ccd.max(cfg.hn_per_ccd + cfg.ddr_per_ccd) + 3) as u16;
            let body = stations - 3;
            let ring = b.add_ring(die, RingKind::Full, stations)?;
            ccd_rings.push(ring);
            for i in 0..cfg.clusters_per_ccd {
                map.clusters
                    .push(b.add_node(format!("p{pkg}.ccd{c}.cl{i}"), ring, i as u16)?);
            }
            // Spread HNs and DDRs around the ring body on port 1.
            let side = cfg.hn_per_ccd + cfg.ddr_per_ccd;
            for i in 0..cfg.hn_per_ccd {
                let st = (i * body as usize / side) as u16;
                map.home_nodes
                    .push(b.add_node(format!("p{pkg}.ccd{c}.hn{i}"), ring, st)?);
            }
            for i in 0..cfg.ddr_per_ccd {
                let st = ((cfg.hn_per_ccd + i) * body as usize / side) as u16;
                map.ddrs
                    .push(b.add_node(format!("p{pkg}.ccd{c}.ddr{i}"), ring, st)?);
            }
        }
        for i in 0..cfg.iod_count {
            let die = b.add_chiplet(format!("p{pkg}.iod{i}"));
            let ring = b.add_ring(die, RingKind::Half, 6)?;
            iod_rings.push(ring);
            for (j, dev) in ["pcie", "eth", "sata", "accel"].iter().enumerate() {
                map.io_devices
                    .push(b.add_node(format!("p{pkg}.iod{i}.{dev}"), ring, j as u16)?);
            }
            map.pas
                .push(b.add_node(format!("p{pkg}.iod{i}.pa"), ring, 4)?);
        }
        // In-package bridges (RBRG-L2 over the parallel die-to-die PHY).
        let d2d = BridgeConfig::l2()
            .with_latency(cfg.d2d_latency)
            .with_width(2);
        let pkg_ccds = &ccd_rings[pkg * cfg.ccd_count..(pkg + 1) * cfg.ccd_count];
        let pkg_iods = &iod_rings[pkg * cfg.iod_count..(pkg + 1) * cfg.iod_count];
        // CCD chain (CCD0↔CCD1↔…): two parallel bridges per pair at the
        // last compute-ring station (the route table load-shares them).
        for w in pkg_ccds.windows(2) {
            let st0 = b.ring_stations(w[0]).expect("ring exists") - 1;
            let st1 = b.ring_stations(w[1]).expect("ring exists") - 1;
            b.add_bridge(d2d.clone(), w[0], st0, w[1], st1)?;
            b.add_bridge(d2d.clone(), w[0], st0, w[1], st1)?;
        }
        // Each CCD to up to two I/O dies.
        for (ci, &ccd) in pkg_ccds.iter().enumerate() {
            let st = b.ring_stations(ccd).expect("ring exists") - 2;
            for k in 0..pkg_iods.len().min(2) {
                let iod = pkg_iods[(ci + k) % pkg_iods.len()];
                b.add_bridge(d2d.clone(), ccd, st, iod, 5)?;
            }
        }
        // I/O-die chain.
        for w in pkg_iods.windows(2) {
            b.add_bridge(d2d.clone(), w[0], 4, w[1], 4)?;
        }
    }
    // Package-to-package scale-up via PA SerDes (ring of packages),
    // bridging I/O die 0 of each neighbouring package pair.
    if cfg.packages > 1 {
        let serdes = BridgeConfig::l2()
            .with_latency(cfg.serdes_latency)
            .with_buffer_cap(16);
        for pkg in 0..cfg.packages {
            let next = (pkg + 1) % cfg.packages;
            if cfg.packages == 2 && pkg == 1 {
                break; // avoid a duplicate second link for 2P
            }
            let a = iod_rings[pkg * cfg.iod_count];
            let z = iod_rings[next * cfg.iod_count];
            b.add_bridge(serdes.clone(), a, 3, z, 2)?;
        }
    }
    Ok((b.build()?, map))
}

/// A fully assembled, coherent Server-CPU system.
#[derive(Debug)]
pub struct ServerCpu {
    /// The coherent protocol engine over the multi-ring NoC.
    pub sys: CoherentSystem<Network>,
    /// Node map.
    pub map: ServerCpuMap,
    /// The configuration it was built from.
    pub cfg: ServerCpuConfig,
}

impl ServerCpu {
    /// Build the default one-package, 96-core system.
    ///
    /// # Errors
    ///
    /// Propagates topology errors from degenerate configurations.
    pub fn build(cfg: ServerCpuConfig) -> Result<Self, TopologyError> {
        let (topo, map) = build_topology(&cfg)?;
        let mut net = Network::with_exec(topo, cfg.net.clone(), TickMode::Fast, cfg.exec, NullSink);
        if cfg.metrics_period > 0 {
            match &cfg.recorder {
                Some(rec) => net.enable_flight_recorder(
                    cfg.metrics_period,
                    HealthConfig::default(),
                    rec.clone(),
                ),
                None => net.enable_metrics(cfg.metrics_period),
            }
        }
        let sys = CoherentSystem::new(
            net,
            SystemSpec {
                requesters: map.clusters.clone(),
                home_nodes: map.home_nodes.clone(),
                memories: map.ddrs.clone(),
                mem_params: cfg.mem_params,
                llc: cfg.llc,
                line_bytes: 64,
                local_hit_latency: 10,
                hn_latency: 12,
                snoop_latency: 6,
            },
        );
        Ok(ServerCpu { sys, map, cfg })
    }
}

/// Heatmap diagnostics (deflections, I-tag placements) via the shared
/// [`NocDiagnostics`] surface — the same accessors the AI-Processor
/// harness exposes, so tooling can treat both SoCs uniformly.
impl NocDiagnostics for ServerCpu {
    fn noc(&self) -> &Network {
        self.sys.network()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_chi::{LineAddr, ReadKind};

    #[test]
    fn default_system_has_96_cores() {
        let cfg = ServerCpuConfig::default();
        assert_eq!(cfg.cores(), 96);
        let s = ServerCpu::build(cfg).expect("builds");
        assert_eq!(s.map.clusters.len(), 24);
        assert_eq!(s.map.home_nodes.len(), 8);
        assert_eq!(s.map.ddrs.len(), 8);
        assert_eq!(s.map.pas.len(), 2);
    }

    #[test]
    fn four_package_system_scales_past_300_cores() {
        let cfg = ServerCpuConfig {
            packages: 4,
            ..Default::default()
        };
        assert_eq!(cfg.cores(), 384);
        let s = ServerCpu::build(cfg).expect("4P builds");
        assert_eq!(s.map.clusters.len(), 96);
    }

    #[test]
    fn intra_ccd_read_completes() {
        let mut s = ServerCpu::build(ServerCpuConfig::default()).unwrap();
        let rn = s.map.clusters[0];
        let t = s.sys.read(rn, LineAddr(0x1000), ReadKind::Shared);
        let c = s.sys.run_until_complete(t, 20_000).expect("completes");
        assert!(c.latency() > 0);
    }

    #[test]
    fn cross_ccd_coherence_works() {
        let mut s = ServerCpu::build(ServerCpuConfig::default()).unwrap();
        let rn0 = s.map.clusters_of_ccd(0)[0];
        let rn1 = s.map.clusters_of_ccd(1)[0];
        let a = LineAddr(0x2000);
        let t = s.sys.write(rn0, a);
        s.sys.run_until_complete(t, 50_000).expect("write");
        let t = s.sys.read(rn1, a, ReadKind::Shared);
        let c = s.sys.run_until_complete(t, 50_000).expect("cross-die read");
        assert!(c.latency() > 0);
        assert!(s.sys.rn_state(rn0, a).readable());
        assert!(s.sys.rn_state(rn1, a).readable());
    }

    #[test]
    fn cross_package_coherence_works() {
        let mut s = ServerCpu::build(ServerCpuConfig {
            packages: 2,
            clusters_per_ccd: 4,
            ..Default::default()
        })
        .unwrap();
        let per_pkg = 2 * 4; // ccd_count × clusters_per_ccd
        let rn0 = s.map.clusters[0];
        let rn1 = s.map.clusters[per_pkg]; // first cluster of package 1
        let a = LineAddr(0x3000);
        let t = s.sys.write(rn0, a);
        s.sys.run_until_complete(t, 100_000).expect("write");
        let t = s.sys.read(rn1, a, ReadKind::Shared);
        let c = s
            .sys
            .run_until_complete(t, 100_000)
            .expect("cross-package read");
        assert!(c.latency() > 0);
    }

    #[test]
    fn heatmaps_render_one_row_per_ring() {
        let mut s = ServerCpu::build(ServerCpuConfig::default()).unwrap();
        // Generate some traffic so the cells are not all zero.
        let rn0 = s.map.clusters_of_ccd(0)[0];
        let rn1 = s.map.clusters_of_ccd(1)[0];
        let a = LineAddr(0x4000);
        let t = s.sys.write(rn0, a);
        s.sys.run_until_complete(t, 50_000).expect("write");
        let t = s.sys.read(rn1, a, ReadKind::Shared);
        s.sys.run_until_complete(t, 50_000).expect("read");
        let rings = s.noc().topology().rings().len();
        for art in [s.deflection_heatmap(), s.itag_heatmap()] {
            // title + station header + one row per ring
            assert_eq!(art.lines().count(), 2 + rings, "{art}");
        }
        assert!(s.deflection_heatmap().starts_with("deflections"));
        assert!(s.itag_heatmap().starts_with("i-tags"));
    }

    #[test]
    fn scaled_down_variant_builds() {
        let cfg = ServerCpuConfig::default().scaled_to_clusters(7); // 56 cores
        assert_eq!(cfg.cores(), 56);
        assert!(ServerCpu::build(cfg).is_ok());
    }
}
