//! Measurement runners behind the Server-CPU evaluation:
//! coherence-latency pings (Table 5), DDR-latency-under-noise curves
//! (Figure 11), and LMBench-style bandwidth runs (Figure 10).

use crate::soc::{build_topology, ServerCpuConfig};
use noc_baseline::{Interconnect, MemHarness, MemHarnessConfig, RingAdapter};
use noc_chi::system::ChiTransport;
use noc_chi::{CoherentSystem, LineAddr, ReadKind};
use noc_core::{Network, NodeId, TopologyError};

/// Coherence state prepared at the first core before the measured read
/// (paper Table 5 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreparedState {
    /// Modified: owner wrote the lines.
    M,
    /// Exclusive: owner read fresh lines (sole copy).
    E,
    /// Shared: owner and a helper both read the lines.
    S,
}

/// Prepare `lines` cache lines in `state` at `owner` (with `helper`
/// for S), then measure `reader`'s mean read latency over them — the
/// Table 5 experiment, generic over the transport so the same protocol
/// runs on the multi-ring NoC and the baselines.
///
/// # Panics
///
/// Panics if any preparation or measured transaction fails to complete
/// within a generous cycle budget.
pub fn coherence_ping<T: ChiTransport>(
    sys: &mut CoherentSystem<T>,
    owner: NodeId,
    helper: NodeId,
    reader: NodeId,
    state: PreparedState,
    addrs: &[LineAddr],
) -> f64 {
    const BUDGET: u64 = 200_000;
    for &addr in addrs {
        match state {
            PreparedState::M => {
                let t = sys.write(owner, addr);
                sys.run_until_complete(t, BUDGET).expect("prepare M");
            }
            PreparedState::E => {
                let t = sys.read(owner, addr, ReadKind::Shared);
                sys.run_until_complete(t, BUDGET).expect("prepare E");
            }
            PreparedState::S => {
                let t = sys.read(owner, addr, ReadKind::Shared);
                sys.run_until_complete(t, BUDGET).expect("prepare S/owner");
                let t = sys.read(helper, addr, ReadKind::Shared);
                sys.run_until_complete(t, BUDGET).expect("prepare S/helper");
            }
        }
    }
    let mut total = 0u64;
    for &addr in addrs {
        let t = sys.read(reader, addr, ReadKind::Shared);
        let c = sys.run_until_complete(t, BUDGET).expect("measured read");
        total += c.latency();
    }
    total as f64 / addrs.len() as f64
}

/// Pick `count` line addresses (scanning upward from `start`) whose
/// home node is in `allowed` — the paper's Table 5 setup keeps the
/// tested data resident in one chiplet's L3, so intra-chiplet pings
/// must use locally-homed lines.
pub fn lines_homed_at<T: ChiTransport>(
    sys: &CoherentSystem<T>,
    allowed: &[NodeId],
    count: usize,
    start: u64,
) -> Vec<LineAddr> {
    let mut out = Vec::with_capacity(count);
    let mut a = start;
    while out.len() < count {
        let addr = LineAddr(a);
        if allowed.contains(&sys.home_of(addr)) {
            out.push(addr);
        }
        a += 1;
    }
    out
}

/// Endpoint indices of a [`server_interconnect`] adapter.
#[derive(Debug, Clone)]
pub struct ServerEndpoints {
    /// Cluster endpoints (requesters), build order.
    pub clusters: Vec<usize>,
    /// DDR endpoints (memory side).
    pub ddrs: Vec<usize>,
}

/// Build the Server-CPU topology and expose it through the generic
/// [`Interconnect`] interface (clusters first, then DDR controllers),
/// for raw-NoC bandwidth/latency experiments that the baselines can run
/// identically.
///
/// # Errors
///
/// Propagates topology errors from degenerate configurations.
pub fn server_interconnect(
    cfg: &ServerCpuConfig,
) -> Result<(RingAdapter, ServerEndpoints), TopologyError> {
    let (topo, map) = build_topology(cfg)?;
    let mut net = Network::new(topo, cfg.net.clone());
    if cfg.metrics_period > 0 {
        net.enable_metrics(cfg.metrics_period);
    }
    let mut endpoints: Vec<NodeId> = Vec::new();
    endpoints.extend(&map.clusters);
    endpoints.extend(&map.ddrs);
    let eps = ServerEndpoints {
        clusters: (0..map.clusters.len()).collect(),
        ddrs: (map.clusters.len()..map.clusters.len() + map.ddrs.len()).collect(),
    };
    Ok((RingAdapter::new("multi-ring-server", net, endpoints), eps))
}

/// One point of the Figure 11 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPoint {
    /// Background injection rate per noise core (requests/cycle).
    pub noise_rate: f64,
    /// Probe core's mean DDR round-trip latency (cycles).
    pub probe_latency: f64,
    /// Median round-trip latency (cycles).
    pub p50: u64,
    /// 95th-percentile round-trip latency (cycles).
    pub p95: u64,
    /// 99th-percentile round-trip latency (cycles).
    pub p99: u64,
    /// Worst observed round-trip latency (cycles).
    pub max: u64,
}

/// Sweep background-noise rates and record the probe core's DDR
/// latency — Figure 11. `factory` builds a fresh harness per point and
/// returns `(harness, probe_endpoint, noise_endpoints)`.
pub fn latency_vs_noise<I, F>(
    factory: F,
    rates: &[f64],
    read_frac: f64,
    warmup: u64,
    measure: u64,
) -> Vec<LatencyPoint>
where
    I: Interconnect,
    F: Fn() -> (MemHarness<I>, usize, Vec<usize>),
{
    rates
        .iter()
        .map(|&rate| {
            let (mut h, probe, noise) = factory();
            let report = h.run_probe_with_noise(probe, &noise, rate, read_frac, warmup, measure);
            let p = &report.per_requester[0];
            LatencyPoint {
                noise_rate: rate,
                probe_latency: p.mean_latency(),
                p50: p.latency.percentile(0.50),
                p95: p.latency.percentile(0.95),
                p99: p.latency.percentile(0.99),
                max: p.latency.max(),
            }
        })
        .collect()
}

/// The load level past which the curve is considered "turned": the
/// first rate whose latency exceeds `threshold ×` the unloaded latency.
pub fn turning_point(points: &[LatencyPoint], threshold: f64) -> Option<f64> {
    let base = points.first()?.probe_latency;
    turning_point_abs(points, base * threshold)
}

/// Turning point against an absolute latency threshold (for comparing
/// systems with different unloaded latencies on the paper's shared
/// y-axis): the first rate whose latency exceeds `latency_threshold`.
pub fn turning_point_abs(points: &[LatencyPoint], latency_threshold: f64) -> Option<f64> {
    points
        .iter()
        .find(|p| p.probe_latency > latency_threshold)
        .map(|p| p.noise_rate)
}

/// LMBench-style closed-loop bandwidth run (Figure 10): `actives`
/// requesters each keep `outstanding` requests in flight with the
/// kernel's read fraction; returns delivered data bytes/cycle.
pub fn lmbench_bandwidth<I: Interconnect>(
    harness: &mut MemHarness<I>,
    actives: &[usize],
    outstanding: u32,
    read_frac: f64,
) -> f64 {
    harness
        .run_closed_loop(actives, outstanding, read_frac, 1_000, 10_000)
        .bytes_per_cycle()
}

/// Default harness configuration used by the Server-CPU experiments
/// (all systems get identical memory parameters — the paper normalizes
/// DDR channel count and frequency).
pub fn server_mem_cfg() -> MemHarnessConfig {
    MemHarnessConfig::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::ServerCpu;

    fn small_cfg() -> ServerCpuConfig {
        ServerCpuConfig {
            clusters_per_ccd: 4,
            hn_per_ccd: 2,
            ddr_per_ccd: 2,
            ..Default::default()
        }
    }

    #[test]
    fn intra_beats_inter_chiplet_latency() {
        let cfg = small_cfg();
        let mut s = ServerCpu::build(cfg.clone()).unwrap();
        // Lines homed in CCD0, where owner/helper/intra-reader live.
        let local_hns: Vec<_> = s.map.home_nodes[..cfg.hn_per_ccd].to_vec();
        let addrs = lines_homed_at(&s.sys, &local_hns, 16, 0x100);
        let owner = s.map.clusters_of_ccd(0)[0];
        let helper = s.map.clusters_of_ccd(0)[2];
        let intra_reader = s.map.clusters_of_ccd(0)[1];
        let inter_reader = s.map.clusters_of_ccd(1)[0];
        let intra = coherence_ping(
            &mut s.sys,
            owner,
            helper,
            intra_reader,
            PreparedState::M,
            &addrs,
        );
        let mut s2 = ServerCpu::build(cfg).unwrap();
        let owner2 = s2.map.clusters_of_ccd(0)[0];
        let helper2 = s2.map.clusters_of_ccd(0)[2];
        let inter = coherence_ping(
            &mut s2.sys,
            owner2,
            helper2,
            inter_reader,
            PreparedState::M,
            &addrs,
        );
        assert!(
            inter > intra,
            "cross-die coherence ({inter}) must cost more than intra ({intra})"
        );
    }

    #[test]
    fn server_interconnect_moves_traffic() {
        let (ic, eps) = server_interconnect(&small_cfg()).unwrap();
        let mut h = MemHarness::new(ic, eps.ddrs.clone(), server_mem_cfg());
        let bw = lmbench_bandwidth(&mut h, &eps.clusters, 8, 1.0);
        assert!(bw > 0.5, "bandwidth {bw} bytes/cycle too low");
    }

    #[test]
    fn noise_sweep_raises_latency() {
        let cfg = small_cfg();
        let points = latency_vs_noise(
            || {
                let (ic, eps) = server_interconnect(&cfg).unwrap();
                let mut noise = eps.clusters.clone();
                let probe = noise.remove(0);
                (
                    MemHarness::new(ic, eps.ddrs.clone(), server_mem_cfg()),
                    probe,
                    noise,
                )
            },
            &[0.0, 0.2, 0.8],
            0.5,
            500,
            4000,
        );
        assert_eq!(points.len(), 3);
        assert!(
            points[2].probe_latency > points[0].probe_latency,
            "heavy noise must raise latency: {points:?}"
        );
        let p = &points[2];
        assert!(
            p.p50 > 0 && p.p50 <= p.p95 && p.p95 <= p.p99 && p.p99 <= p.max,
            "percentiles must be populated and ordered: {p:?}"
        );
    }

    #[test]
    fn turning_point_detection() {
        let pt = |noise_rate, probe_latency| LatencyPoint {
            noise_rate,
            probe_latency,
            p50: probe_latency as u64,
            p95: probe_latency as u64,
            p99: probe_latency as u64,
            max: probe_latency as u64,
        };
        let pts = vec![pt(0.0, 100.0), pt(0.5, 110.0), pt(0.8, 260.0)];
        assert_eq!(turning_point(&pts, 2.0), Some(0.8));
        assert_eq!(turning_point(&pts, 5.0), None);
    }
}
