//! # noc-server-cpu — the Server-CPU SoC on the bufferless multi-ring NoC
//!
//! Assembles the paper's §4.2 system: compute dies (full rings hosting
//! CPU clusters, home-node LLC slices and DDR controllers), I/O dies
//! (half rings with latency-tolerant devices and Protocol Adapters),
//! RBRG-L2 die-to-die bridges, and optional multi-package scale-up over
//! PA SerDes — all running the AMBA5-CHI-style coherence layer from
//! [`noc_chi`].
//!
//! The [`experiments`] module contains the measurement runners behind
//! the paper's Server-CPU evaluation (Table 5, Figures 10-13, Table 6).

pub mod experiments;
pub mod soc;

pub use soc::{build_topology, ServerCpu, ServerCpuConfig, ServerCpuMap};
