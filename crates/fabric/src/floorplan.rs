//! Floorplan-level area accounting for a ring NoC on a chiplet
//! (paper §3.3, Figure 6 and the area-efficiency KPI of §2.2).

use crate::wire::{OverlapUse, WireFabric};
use serde::{Deserialize, Serialize};

/// Geometry and NoC parameters of one chiplet, input to the estimator.
///
/// # Example
///
/// ```
/// use noc_fabric::{FloorplanSpec, WireFabric};
/// let spec = FloorplanSpec {
///     width_mm: 20.0,
///     height_mm: 15.0,
///     ring_lanes: 2,
///     bus_bits: 512,
///     base_pitch_um: 0.08,
///     station_area_mm2: 0.05,
///     freq_ghz: 3.0,
/// };
/// let hd = spec.estimate(&WireFabric::high_dense());
/// let hs = spec.estimate(&WireFabric::high_speed());
/// // The high-speed fabric blocks less usable silicon overall.
/// assert!(hs.net_blocked_mm2() < hd.net_blocked_mm2());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FloorplanSpec {
    /// Chiplet width in mm.
    pub width_mm: f64,
    /// Chiplet height in mm.
    pub height_mm: f64,
    /// Number of ring lanes routed around the chiplet (2 for a full
    /// ring, 1 for a half ring).
    pub ring_lanes: u32,
    /// Data bus width in bits per lane.
    pub bus_bits: u32,
    /// Base (high-dense) track pitch in µm for the technology node.
    pub base_pitch_um: f64,
    /// Silicon area of one cross station in mm².
    pub station_area_mm2: f64,
    /// Target clock frequency in GHz.
    pub freq_ghz: f64,
}

impl FloorplanSpec {
    /// Ring path length: we route the ring as a loop at half-width /
    /// half-height (a typical spine route), so one lap is `w + h` mm.
    pub fn ring_length_mm(&self) -> f64 {
        self.width_mm + self.height_mm
    }

    /// Estimate the floorplan cost of routing the ring on `fabric`.
    ///
    /// # Panics
    ///
    /// Panics if geometry or frequency is non-positive.
    pub fn estimate(&self, fabric: &WireFabric) -> FloorplanEstimate {
        assert!(self.width_mm > 0.0 && self.height_mm > 0.0);
        assert!(self.freq_ghz > 0.0 && self.ring_lanes > 0);
        let length_mm = self.ring_length_mm();
        let length_um = length_mm * 1000.0;

        let stations = fabric.stations_for(length_um, self.freq_ghz).max(1);
        let bus_width_um = fabric.bus_routing_width_um(self.bus_bits, self.base_pitch_um);
        let total_width_um = bus_width_um * self.ring_lanes as f64;

        // Footprint of the metal fabric projected onto the floorplan.
        let wire_mm2 = length_mm * total_width_um / 1000.0;
        // Stride slots reclaimable for SRAM (Figure 6, right).
        let reclaimed_mm2 = match fabric.over() {
            OverlapUse::Nothing => 0.0,
            OverlapUse::Sram => wire_mm2 * fabric.stride_fraction(),
        };
        // Repeater/station logic area.
        let station_mm2 = stations as f64 * self.station_area_mm2 * self.ring_lanes as f64;

        let die_mm2 = self.width_mm * self.height_mm;
        let bandwidth_bytes_per_cycle = (self.bus_bits as f64 / 8.0) * self.ring_lanes as f64;
        let bandwidth_gbs = bandwidth_bytes_per_cycle * self.freq_ghz;

        FloorplanEstimate {
            fabric: fabric.name().to_string(),
            stations,
            ring_length_mm: length_mm,
            wire_area_mm2: wire_mm2,
            reclaimed_area_mm2: reclaimed_mm2,
            station_area_mm2: station_mm2,
            die_area_mm2: die_mm2,
            distance_per_cycle_mm: fabric.distance_per_cycle_mm(self.freq_ghz),
            lap_latency_cycles: stations,
            bandwidth_gbs,
        }
    }
}

/// Output of [`FloorplanSpec::estimate`]: the area and latency cost of
/// one ring on one fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorplanEstimate {
    /// Fabric name.
    pub fabric: String,
    /// Pipeline stations (repeater stages) around the loop.
    pub stations: u32,
    /// Routed loop length in mm.
    pub ring_length_mm: f64,
    /// Metal footprint projected on the floorplan, mm².
    pub wire_area_mm2: f64,
    /// Footprint reclaimed by SRAM-in-stride placement, mm².
    pub reclaimed_area_mm2: f64,
    /// Cross-station / repeater logic area, mm².
    pub station_area_mm2: f64,
    /// Total die area, mm².
    pub die_area_mm2: f64,
    /// Distance per clock cycle (the paper's co-design metric), mm.
    pub distance_per_cycle_mm: f64,
    /// Cycles for one full lap of the ring.
    pub lap_latency_cycles: u32,
    /// Raw ring bandwidth in GB/s (bus bytes/cycle × lanes × freq).
    pub bandwidth_gbs: f64,
}

impl FloorplanEstimate {
    /// Floorplan area actually lost to the NoC: wires that block
    /// placement plus station logic, minus area reclaimed by SRAM.
    pub fn net_blocked_mm2(&self) -> f64 {
        self.wire_area_mm2 + self.station_area_mm2 - self.reclaimed_area_mm2
    }

    /// Fraction of the die lost to the NoC.
    pub fn blocked_fraction(&self) -> f64 {
        self.net_blocked_mm2() / self.die_area_mm2
    }

    /// Area-efficiency KPI (§2.2): GB/s of ring bandwidth per mm² of
    /// blocked silicon. Higher is better.
    pub fn bandwidth_per_mm2(&self) -> f64 {
        let blocked = self.net_blocked_mm2();
        if blocked <= 0.0 {
            f64::INFINITY
        } else {
            self.bandwidth_gbs / blocked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FloorplanSpec {
        FloorplanSpec {
            width_mm: 20.0,
            height_mm: 15.0,
            ring_lanes: 2,
            bus_bits: 512,
            base_pitch_um: 0.08,
            station_area_mm2: 0.05,
            freq_ghz: 3.0,
        }
    }

    #[test]
    fn high_speed_uses_fewer_stations() {
        let hd = spec().estimate(&WireFabric::high_dense());
        let hs = spec().estimate(&WireFabric::high_speed());
        assert!(hs.stations < hd.stations);
        // 35 mm loop: 35000/600 = 59 vs 35000/1800 = 20.
        assert_eq!(hd.stations, 59);
        assert_eq!(hs.stations, 20);
    }

    #[test]
    fn high_speed_has_better_distance_per_cycle() {
        let hd = spec().estimate(&WireFabric::high_dense());
        let hs = spec().estimate(&WireFabric::high_speed());
        assert!(hs.distance_per_cycle_mm > hd.distance_per_cycle_mm);
        assert!(hs.lap_latency_cycles < hd.lap_latency_cycles);
    }

    #[test]
    fn high_speed_blocks_less_net_area() {
        // Per-bit footprint is 1.4x, but stride reclaim + 3x fewer
        // stations give high-speed the lower net blocked area, matching
        // the paper's conclusion that it is "a better choice for NoC".
        let hd = spec().estimate(&WireFabric::high_dense());
        let hs = spec().estimate(&WireFabric::high_speed());
        assert!(hs.net_blocked_mm2() < hd.net_blocked_mm2());
        assert!(hs.bandwidth_per_mm2() > hd.bandwidth_per_mm2());
    }

    #[test]
    fn reclaimed_area_zero_for_high_dense() {
        let hd = spec().estimate(&WireFabric::high_dense());
        assert_eq!(hd.reclaimed_area_mm2, 0.0);
        let hs = spec().estimate(&WireFabric::high_speed());
        assert!(hs.reclaimed_area_mm2 > 0.0);
    }

    #[test]
    fn blocked_fraction_reasonable() {
        let hs = spec().estimate(&WireFabric::high_speed());
        let f = hs.blocked_fraction();
        assert!(f > 0.0 && f < 0.2, "fraction {f}");
    }

    #[test]
    fn bandwidth_scales_with_lanes() {
        let one = FloorplanSpec {
            ring_lanes: 1,
            ..spec()
        }
        .estimate(&WireFabric::high_speed());
        let two = spec().estimate(&WireFabric::high_speed());
        assert!((two.bandwidth_gbs - 2.0 * one.bandwidth_gbs).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_frequency() {
        let mut s = spec();
        s.freq_ghz = 0.0;
        let _ = s.estimate(&WireFabric::high_dense());
    }
}
