//! # noc-fabric — physical wire-fabric and floorplan model
//!
//! The paper's §3.3 argues that the right co-design metric for a
//! chiplet-scale NoC is **distance per clock cycle**, and Table 4 gives
//! the two candidate metal fabrics:
//!
//! | Type | Metal | Width | Pitch | Bus | Jump @3GHz | Stride | Over |
//! |---|---|---|---|---|---|---|---|
//! | High-dense | Mx-My | ×1 | ×1 | ×1 | 600 µm | 0 µm | nothing |
//! | High-speed | My | ×3 | ×3.5 | ×2.5 | 1800 µm | 200 µm | SRAM |
//!
//! This crate turns those constants into a parametric model: how far a
//! flit travels per cycle, how many repeaters/pipeline stations a link of
//! a given length needs, how much silicon the wires block, and how much
//! of the blocked area is reclaimed by placing SRAM in the high-speed
//! fabric's stride slots (Figure 6).
//!
//! # Example
//!
//! ```
//! use noc_fabric::{WireFabric, LinkBudget};
//!
//! let hs = WireFabric::high_speed();
//! let hd = WireFabric::high_dense();
//! // At the paper's 3 GHz target the high-speed fabric jumps 3x further.
//! assert_eq!(hs.jump_um(3.0), 3.0 * hd.jump_um(3.0));
//!
//! // A 9 mm chiplet-edge link needs 3x fewer pipeline hops on high-speed wire.
//! let budget_hs = LinkBudget::for_length(&hs, 9_000.0, 3.0);
//! let budget_hd = LinkBudget::for_length(&hd, 9_000.0, 3.0);
//! assert!(budget_hs.cycles < budget_hd.cycles);
//! ```

pub mod choose;
pub mod floorplan;
pub mod wire;

pub use choose::{best_fabric, frequency_sweep, rank_fabrics, ChoiceWeights, ScoredFabric};
pub use floorplan::{FloorplanEstimate, FloorplanSpec};
pub use wire::{LinkBudget, OverlapUse, WireFabric};
