//! The §3.3 co-design decision procedure as code: given a floorplan and
//! a target frequency, score the candidate fabrics and pick one.
//!
//! The paper's conclusion — "distance per cycle is a suitable metric and
//! a simplified circuit structure is more friendly for physical
//! optimization" — falls out of the scoring at its design point, but the
//! procedure also exposes where the high-dense fabric *would* win
//! (small dies, relaxed frequency, no SRAM to co-place).

use crate::floorplan::{FloorplanEstimate, FloorplanSpec};
use crate::wire::WireFabric;
use serde::{Deserialize, Serialize};

/// Weights of the fabric-selection objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChoiceWeights {
    /// Weight on lap latency (cycles, lower is better).
    pub latency: f64,
    /// Weight on net blocked silicon (mm², lower is better).
    pub area: f64,
    /// Weight on cross-station count (complexity/timing effort).
    pub stations: f64,
}

impl Default for ChoiceWeights {
    /// Balanced weights reflecting the paper's three KPIs (§2.2).
    fn default() -> Self {
        ChoiceWeights {
            latency: 1.0,
            area: 1.0,
            stations: 0.5,
        }
    }
}

/// One scored candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredFabric {
    /// The candidate fabric's name.
    pub fabric: String,
    /// Its floorplan estimate.
    pub estimate: FloorplanEstimate,
    /// Weighted score (lower is better).
    pub score: f64,
}

/// Score every candidate on `spec` and return them best-first.
///
/// Scores are weighted sums of normalized (per-candidate-maximum)
/// latency, blocked area and station count.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn rank_fabrics(
    spec: &FloorplanSpec,
    candidates: &[WireFabric],
    weights: ChoiceWeights,
) -> Vec<ScoredFabric> {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let estimates: Vec<FloorplanEstimate> = candidates.iter().map(|f| spec.estimate(f)).collect();
    let max_lat = estimates
        .iter()
        .map(|e| e.lap_latency_cycles as f64)
        .fold(1.0, f64::max);
    let max_area = estimates
        .iter()
        .map(|e| e.net_blocked_mm2())
        .fold(1e-9, f64::max);
    let max_st = estimates
        .iter()
        .map(|e| e.stations as f64)
        .fold(1.0, f64::max);
    let mut out: Vec<ScoredFabric> = candidates
        .iter()
        .zip(estimates)
        .map(|(f, e)| {
            let score = weights.latency * e.lap_latency_cycles as f64 / max_lat
                + weights.area * e.net_blocked_mm2() / max_area
                + weights.stations * e.stations as f64 / max_st;
            ScoredFabric {
                fabric: f.name().to_string(),
                estimate: e,
                score,
            }
        })
        .collect();
    out.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
    out
}

/// Pick the best fabric for `spec` among the Table 4 candidates with
/// default weights.
///
/// # Example
///
/// ```
/// use noc_fabric::{choose::best_fabric, FloorplanSpec};
/// let spec = FloorplanSpec {
///     width_mm: 20.0,
///     height_mm: 15.0,
///     ring_lanes: 2,
///     bus_bits: 512,
///     base_pitch_um: 0.08,
///     station_area_mm2: 0.05,
///     freq_ghz: 3.0,
/// };
/// // At the paper's design point the high-speed fabric wins.
/// assert_eq!(best_fabric(&spec).fabric, "high-speed");
/// ```
pub fn best_fabric(spec: &FloorplanSpec) -> ScoredFabric {
    rank_fabrics(
        spec,
        &[WireFabric::high_dense(), WireFabric::high_speed()],
        ChoiceWeights::default(),
    )
    .into_iter()
    .next()
    .expect("non-empty candidate list")
}

/// Sweep target frequencies and report the winning fabric at each — the
/// frequency axis of the co-design space.
pub fn frequency_sweep(base: &FloorplanSpec, freqs_ghz: &[f64]) -> Vec<(f64, ScoredFabric)> {
    freqs_ghz
        .iter()
        .map(|&f| {
            let spec = FloorplanSpec {
                freq_ghz: f,
                ..*base
            };
            (f, best_fabric(&spec))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_spec() -> FloorplanSpec {
        FloorplanSpec {
            width_mm: 20.0,
            height_mm: 15.0,
            ring_lanes: 2,
            bus_bits: 512,
            base_pitch_um: 0.08,
            station_area_mm2: 0.05,
            freq_ghz: 3.0,
        }
    }

    #[test]
    fn paper_design_point_picks_high_speed() {
        let best = best_fabric(&paper_spec());
        assert_eq!(best.fabric, "high-speed");
    }

    #[test]
    fn ranking_is_sorted() {
        let ranked = rank_fabrics(
            &paper_spec(),
            &[WireFabric::high_dense(), WireFabric::high_speed()],
            ChoiceWeights::default(),
        );
        assert_eq!(ranked.len(), 2);
        assert!(ranked[0].score <= ranked[1].score);
    }

    #[test]
    fn latency_only_weights_still_pick_high_speed() {
        let ranked = rank_fabrics(
            &paper_spec(),
            &[WireFabric::high_dense(), WireFabric::high_speed()],
            ChoiceWeights {
                latency: 1.0,
                area: 0.0,
                stations: 0.0,
            },
        );
        assert_eq!(ranked[0].fabric, "high-speed");
    }

    #[test]
    fn frequency_sweep_covers_range() {
        let sweep = frequency_sweep(&paper_spec(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sweep.len(), 4);
        // Higher frequency shrinks the jump distance for both fabrics;
        // the relative 3x advantage persists, so high-speed keeps winning.
        for (_, best) in &sweep {
            assert_eq!(best.fabric, "high-speed");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_candidates_panic() {
        let _ = rank_fabrics(&paper_spec(), &[], ChoiceWeights::default());
    }
}
