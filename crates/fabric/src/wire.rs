//! Wire fabric parameters (paper Table 4) and per-link budgets.

use serde::{Deserialize, Serialize};

/// What may be placed underneath/over a wire fabric region (Table 4's
/// "Over" column; see also Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OverlapUse {
    /// High-dense wires are nearly continuous metal: nothing can be
    /// placed beneath them — they block the floorplan.
    Nothing,
    /// High-speed wires only occupy intermittent regions; SRAM blocks
    /// fit into the stride slots.
    Sram,
}

/// A metal wire fabric available to the NoC's physical implementation.
///
/// All relative quantities (`rel_*`) are normalised to the high-dense
/// Mx-My fabric, exactly as Table 4 reports them.
///
/// # Example
///
/// ```
/// use noc_fabric::WireFabric;
/// let hs = WireFabric::high_speed();
/// assert_eq!(hs.jump_um(3.0), 1800.0);
/// // Halving the frequency doubles the reachable distance.
/// assert_eq!(hs.jump_um(1.5), 3600.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireFabric {
    name: String,
    /// Metal layer description ("Mx-My" or "My").
    metal: String,
    /// Wire width relative to the high-dense fabric.
    rel_width: f64,
    /// Wire pitch relative to the high-dense fabric.
    rel_pitch: f64,
    /// Bus width (bits carried per unit routing width) relative to the
    /// high-dense fabric.
    rel_bus_width: f64,
    /// Distance a signal travels in one cycle at 3 GHz, in µm.
    jump_um_at_3ghz: f64,
    /// Length of the stride slot between wire segments, in µm.
    stride_um: f64,
    /// What can live underneath the fabric.
    over: OverlapUse,
}

impl WireFabric {
    /// The high-density Mx-My fabric from Table 4.
    pub fn high_dense() -> Self {
        WireFabric {
            name: "high-dense".into(),
            metal: "Mx-My".into(),
            rel_width: 1.0,
            rel_pitch: 1.0,
            rel_bus_width: 1.0,
            jump_um_at_3ghz: 600.0,
            stride_um: 0.0,
            over: OverlapUse::Nothing,
        }
    }

    /// The high-speed My fabric from Table 4.
    pub fn high_speed() -> Self {
        WireFabric {
            name: "high-speed".into(),
            metal: "My".into(),
            rel_width: 3.0,
            rel_pitch: 3.5,
            rel_bus_width: 2.5,
            jump_um_at_3ghz: 1800.0,
            stride_um: 200.0,
            over: OverlapUse::Sram,
        }
    }

    /// A fully custom fabric for what-if studies.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is non-positive (stride may be zero).
    #[allow(clippy::too_many_arguments)]
    pub fn custom(
        name: impl Into<String>,
        metal: impl Into<String>,
        rel_width: f64,
        rel_pitch: f64,
        rel_bus_width: f64,
        jump_um_at_3ghz: f64,
        stride_um: f64,
        over: OverlapUse,
    ) -> Self {
        assert!(rel_width > 0.0 && rel_pitch > 0.0 && rel_bus_width > 0.0);
        assert!(jump_um_at_3ghz > 0.0 && stride_um >= 0.0);
        WireFabric {
            name: name.into(),
            metal: metal.into(),
            rel_width,
            rel_pitch,
            rel_bus_width,
            jump_um_at_3ghz,
            stride_um,
            over,
        }
    }

    /// Fabric name ("high-dense", "high-speed", or a custom label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Metal layer label.
    pub fn metal(&self) -> &str {
        &self.metal
    }

    /// Relative wire width (Table 4 "Width").
    pub fn rel_width(&self) -> f64 {
        self.rel_width
    }

    /// Relative wire pitch (Table 4 "Pitch").
    pub fn rel_pitch(&self) -> f64 {
        self.rel_pitch
    }

    /// Relative bus width (Table 4 "Bus Width").
    pub fn rel_bus_width(&self) -> f64 {
        self.rel_bus_width
    }

    /// Stride slot length in µm (Table 4 "Stride").
    pub fn stride_um(&self) -> f64 {
        self.stride_um
    }

    /// What can be placed over/under the fabric (Table 4 "Over").
    pub fn over(&self) -> OverlapUse {
        self.over
    }

    /// Distance one cycle covers at frequency `freq_ghz`, in µm.
    ///
    /// Wire delay is dominated by RC through repeated segments, so
    /// reachable distance scales inversely with frequency around the
    /// calibration point.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is not positive.
    pub fn jump_um(&self, freq_ghz: f64) -> f64 {
        assert!(freq_ghz > 0.0, "frequency must be positive");
        self.jump_um_at_3ghz * 3.0 / freq_ghz
    }

    /// The paper's co-design metric: **distance per clock cycle**, in mm.
    pub fn distance_per_cycle_mm(&self, freq_ghz: f64) -> f64 {
        self.jump_um(freq_ghz) / 1000.0
    }

    /// Physical routing width, in µm, of a bus carrying `bits` signals,
    /// given the technology's base track pitch for the high-dense fabric.
    ///
    /// The high-speed fabric needs `rel_pitch` times more pitch per wire
    /// but carries `rel_bus_width` more bits per unit area budget, so the
    /// net footprint ratio is `rel_pitch / rel_bus_width`.
    pub fn bus_routing_width_um(&self, bits: u32, base_pitch_um: f64) -> f64 {
        assert!(base_pitch_um > 0.0);
        bits as f64 * base_pitch_um * self.rel_pitch / self.rel_bus_width
    }

    /// Number of repeater/pipeline stations a straight link of
    /// `length_um` needs at `freq_ghz` (at least 1 cycle for any
    /// non-zero length).
    pub fn stations_for(&self, length_um: f64, freq_ghz: f64) -> u32 {
        if length_um <= 0.0 {
            return 0;
        }
        (length_um / self.jump_um(freq_ghz)).ceil() as u32
    }

    /// Fraction of a link's footprint available as stride slots (usable
    /// for SRAM under the high-speed fabric; zero for high-dense).
    pub fn stride_fraction(&self) -> f64 {
        let segment = self.jump_um_at_3ghz;
        if self.stride_um <= 0.0 {
            0.0
        } else {
            self.stride_um / (segment + self.stride_um)
        }
    }
}

/// The cycle/station budget of one physical link on a given fabric.
///
/// # Example
///
/// ```
/// use noc_fabric::{LinkBudget, WireFabric};
/// let b = LinkBudget::for_length(&WireFabric::high_dense(), 1500.0, 3.0);
/// assert_eq!(b.cycles, 3); // 1500 µm at 600 µm/cycle → 3 pipeline jumps
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    /// Link length in µm.
    pub length_um: f64,
    /// Pipeline cycles (= repeater stations) needed for timing closure.
    pub cycles: u32,
    /// Distance actually covered per cycle for this link, in mm.
    pub distance_per_cycle_mm: f64,
}

impl LinkBudget {
    /// Budget a straight link of `length_um` at `freq_ghz`.
    pub fn for_length(fabric: &WireFabric, length_um: f64, freq_ghz: f64) -> Self {
        let cycles = fabric.stations_for(length_um, freq_ghz).max(1);
        LinkBudget {
            length_um,
            cycles,
            distance_per_cycle_mm: length_um / cycles as f64 / 1000.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_constants() {
        let hd = WireFabric::high_dense();
        let hs = WireFabric::high_speed();
        assert_eq!(hd.jump_um(3.0), 600.0);
        assert_eq!(hs.jump_um(3.0), 1800.0);
        assert_eq!(hd.stride_um(), 0.0);
        assert_eq!(hs.stride_um(), 200.0);
        assert_eq!(hd.over(), OverlapUse::Nothing);
        assert_eq!(hs.over(), OverlapUse::Sram);
        assert_eq!(hs.rel_width(), 3.0);
        assert_eq!(hs.rel_pitch(), 3.5);
        assert_eq!(hs.rel_bus_width(), 2.5);
    }

    #[test]
    fn jump_scales_with_frequency() {
        let hs = WireFabric::high_speed();
        assert!((hs.jump_um(6.0) - 900.0).abs() < 1e-9);
        assert!((hs.distance_per_cycle_mm(3.0) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn stations_round_up() {
        let hd = WireFabric::high_dense();
        assert_eq!(hd.stations_for(0.0, 3.0), 0);
        assert_eq!(hd.stations_for(600.0, 3.0), 1);
        assert_eq!(hd.stations_for(601.0, 3.0), 2);
        assert_eq!(hd.stations_for(6000.0, 3.0), 10);
    }

    #[test]
    fn high_speed_needs_three_times_fewer_stations() {
        let hd = WireFabric::high_dense();
        let hs = WireFabric::high_speed();
        let l = 18_000.0;
        assert_eq!(hd.stations_for(l, 3.0), 3 * hs.stations_for(l, 3.0));
    }

    #[test]
    fn bus_width_footprint_ratio() {
        // The high-speed fabric's footprint per bit is 3.5/2.5 = 1.4x the
        // high-dense fabric's.
        let hd = WireFabric::high_dense();
        let hs = WireFabric::high_speed();
        let ratio = hs.bus_routing_width_um(512, 0.1) / hd.bus_routing_width_um(512, 0.1);
        assert!((ratio - 1.4).abs() < 1e-9);
    }

    #[test]
    fn stride_fraction() {
        assert_eq!(WireFabric::high_dense().stride_fraction(), 0.0);
        let f = WireFabric::high_speed().stride_fraction();
        assert!((f - 0.1).abs() < 1e-9); // 200 / (1800 + 200)
    }

    #[test]
    fn link_budget_minimum_one_cycle() {
        let b = LinkBudget::for_length(&WireFabric::high_speed(), 10.0, 3.0);
        assert_eq!(b.cycles, 1);
    }

    #[test]
    fn custom_fabric_roundtrip() {
        let f = WireFabric::custom("x", "Mz", 2.0, 2.0, 2.0, 1000.0, 50.0, OverlapUse::Sram);
        assert_eq!(f.name(), "x");
        assert_eq!(f.metal(), "Mz");
        assert_eq!(f.jump_um(3.0), 1000.0);
    }

    #[test]
    #[should_panic]
    fn custom_rejects_zero_jump() {
        let _ = WireFabric::custom("x", "M", 1.0, 1.0, 1.0, 0.0, 0.0, OverlapUse::Nothing);
    }
}
