//! Neural-network operator traces (paper Table 3, Table 8).
//!
//! Each model is a list of coarse layers with FLOP and byte counts per
//! training step, derived from the published layer shapes. The traces
//! drive (a) the Figure 3 roofline points, (b) the AI-processor traffic
//! mixes (read/write ratios differ per layer type), and (c) the Table 8
//! end-to-end comparisons.

use crate::roofline::Machine;
use serde::{Deserialize, Serialize};

/// One coarse network layer (or fused block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Layer label.
    pub name: String,
    /// Compute per step in GFLOP.
    pub gflops: f64,
    /// Bytes read per step, in GB.
    pub read_gb: f64,
    /// Bytes written per step, in GB.
    pub write_gb: f64,
}

impl Layer {
    /// Total data moved, in GB.
    pub fn total_gb(&self) -> f64 {
        self.read_gb + self.write_gb
    }

    /// Arithmetic intensity in FLOP/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.gflops / self.total_gb()
    }

    /// Read fraction of the layer's traffic.
    pub fn read_frac(&self) -> f64 {
        self.read_gb / self.total_gb()
    }
}

/// A whole network's per-training-step trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnModel {
    /// Model name.
    pub name: String,
    /// Application domain (Table 3).
    pub domain: &'static str,
    /// Per-step layers.
    pub layers: Vec<Layer>,
}

impl NnModel {
    /// Total compute per step in GFLOP.
    pub fn total_gflops(&self) -> f64 {
        self.layers.iter().map(|l| l.gflops).sum()
    }

    /// Total traffic per step in GB.
    pub fn total_gb(&self) -> f64 {
        self.layers.iter().map(Layer::total_gb).sum()
    }

    /// Whole-model arithmetic intensity.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_gflops() / self.total_gb()
    }

    /// Whole-model read fraction (drives the Table 7 R/W mixes).
    pub fn read_frac(&self) -> f64 {
        self.layers.iter().map(|l| l.read_gb).sum::<f64>() / self.total_gb()
    }

    /// Step time on a machine: layers execute sequentially, each at its
    /// roofline bound.
    pub fn step_time_s(&self, machine: &Machine) -> f64 {
        self.layers
            .iter()
            .map(|l| machine.time_s(l.gflops, l.total_gb()))
            .sum()
    }

    /// Training throughput in steps/second.
    pub fn steps_per_s(&self, machine: &Machine) -> f64 {
        1.0 / self.step_time_s(machine)
    }
}

fn layer(name: &str, gflops: f64, read_gb: f64, write_gb: f64) -> Layer {
    Layer {
        name: name.to_string(),
        gflops,
        read_gb,
        write_gb,
    }
}

/// ResNet-50 v1.5 training step (batch 256, fwd+bwd ≈ 3× fwd FLOPs).
/// Forward is ≈ 4.1 GFLOP/image.
pub fn resnet50(batch: u32) -> NnModel {
    let b = batch as f64;
    NnModel {
        name: format!("ResNet-50 (batch {batch})"),
        domain: "Image Classification",
        layers: vec![
            layer("stem conv7x7", 0.24 * b * 3.0, 0.0017 * b, 0.0032 * b),
            layer("stage1 convs", 0.68 * b * 3.0, 0.010 * b, 0.010 * b),
            layer("stage2 convs", 1.03 * b * 3.0, 0.008 * b, 0.008 * b),
            layer("stage3 convs", 1.47 * b * 3.0, 0.007 * b, 0.006 * b),
            layer("stage4 convs", 0.66 * b * 3.0, 0.005 * b, 0.003 * b),
            layer("fc + loss", 0.004 * b * 3.0, 0.0002 * b, 0.0001 * b),
            // Weight gradients + optimizer touch all 25.6M params.
            layer("optimizer", 0.05 * b, 0.20, 0.10),
        ],
    }
}

/// BERT-large pre-training step (batch, sequence 512). Forward is
/// ≈ 2 × params ≈ 0.68 GFLOP per token with 340 M params; training is
/// ≈ 3× forward. Attention traffic includes the O(T²) score matrices,
/// which keeps part of the step bandwidth-bound.
pub fn bert_large(batch: u32, seq: u32) -> NnModel {
    let tokens = (batch * seq) as f64;
    let fwd = 0.68 * tokens; // GFLOP
                             // Activations ≈ hidden(1024) × layers(24) × ~10 tensors × 2B/token.
    let act_gb_per_token = 0.5e-3;
    // Attention scores: heads(16) × seq × 2B per token, touched ~4×.
    let score_gb_per_token = 16.0 * seq as f64 * 2.0 * 4.0 / 1e9;
    NnModel {
        name: format!("BERT-large (batch {batch}, seq {seq})"),
        domain: "NLP",
        layers: vec![
            layer(
                "embeddings",
                0.02 * fwd * 3.0,
                0.05 * act_gb_per_token * tokens,
                0.05 * act_gb_per_token * tokens,
            ),
            layer(
                "attention",
                0.38 * fwd * 3.0,
                (0.45 * act_gb_per_token + score_gb_per_token) * tokens,
                (0.35 * act_gb_per_token + score_gb_per_token * 0.5) * tokens,
            ),
            layer(
                "ffn",
                0.58 * fwd * 3.0,
                0.45 * act_gb_per_token * tokens,
                0.45 * act_gb_per_token * tokens,
            ),
            layer(
                "mlm head",
                0.02 * fwd * 3.0,
                0.02 * act_gb_per_token * tokens,
                0.01 * act_gb_per_token * tokens,
            ),
            layer("optimizer", 0.7, 2.7, 1.4), // 340M params fp16 + states
        ],
    }
}

/// Wide & Deep recommendation step: embedding-lookup dominated, very
/// low arithmetic intensity.
pub fn wide_deep(batch: u32) -> NnModel {
    let b = batch as f64;
    NnModel {
        name: format!("Wide & Deep (batch {batch})"),
        domain: "Recommendation",
        layers: vec![
            layer("embedding gather", 0.0005 * b, 0.004 * b, 0.0002 * b),
            layer("mlp", 0.002 * b * 3.0, 0.0004 * b, 0.0004 * b),
            layer("optimizer (sparse)", 0.001 * b, 0.008 * b, 0.008 * b),
        ],
    }
}

/// A GPT-style decoder training step (params in billions, batch in
/// tokens). FLOPs/token ≈ 6 × params.
pub fn gpt(params_b: f64, batch_tokens: u32) -> NnModel {
    let tokens = batch_tokens as f64;
    let gflops = 6.0 * params_b * tokens; // 6·P FLOP/token, P in 1e9 → GFLOP
    NnModel {
        name: format!("GPT ({params_b}B params)"),
        domain: "NLP",
        layers: vec![
            layer(
                "attention blocks",
                gflops * 0.35,
                0.002 * tokens,
                0.002 * tokens,
            ),
            layer("mlp blocks", gflops * 0.6, 0.0015 * tokens, 0.0015 * tokens),
            layer("optimizer", params_b, params_b * 8.0, params_b * 4.0),
        ],
    }
}

/// Mask R-CNN training step (batch in images).
pub fn mask_rcnn(batch: u32) -> NnModel {
    let b = batch as f64;
    NnModel {
        name: format!("Mask R-CNN (batch {batch})"),
        domain: "Detection/Segmentation",
        layers: vec![
            layer("backbone (R50-FPN)", 12.0 * b * 3.0, 0.04 * b, 0.04 * b),
            layer("rpn + roi heads", 6.0 * b * 3.0, 0.03 * b, 0.02 * b),
            layer("mask head", 3.0 * b * 3.0, 0.01 * b, 0.01 * b),
            layer("optimizer", 0.09 * b, 0.35, 0.18),
        ],
    }
}

/// YOLOv3 inference (batch in images) — the paper's tiny-inference
/// example (swing face detection).
pub fn yolov3(batch: u32) -> NnModel {
    let b = batch as f64;
    NnModel {
        name: format!("YOLOv3 (batch {batch}, inference)"),
        domain: "Detection",
        layers: vec![
            layer("darknet-53", 50.0 * b, 0.12 * b, 0.10 * b),
            layer("detection heads", 15.0 * b, 0.05 * b, 0.04 * b),
        ],
    }
}

/// The Table 3 model zoo at representative batch sizes.
pub fn table3_models() -> Vec<NnModel> {
    vec![
        resnet50(256),
        bert_large(32, 512),
        wide_deep(4096),
        gpt(175.0, 2048),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_flops_scale_with_batch() {
        let a = resnet50(64);
        let b = resnet50(256);
        let ratio = b.total_gflops() / a.total_gflops();
        assert!((3.5..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn resnet_training_flops_plausible() {
        // ≈ 4.1 GFLOP fwd × 3 × 256 ≈ 3150 GFLOP per step.
        let m = resnet50(256);
        let g = m.total_gflops();
        assert!((2000.0..5000.0).contains(&g), "GFLOP {g}");
    }

    #[test]
    fn conv_nets_have_higher_intensity_than_recsys() {
        let rn = resnet50(256);
        let wd = wide_deep(4096);
        assert!(
            rn.arithmetic_intensity() > 10.0 * wd.arithmetic_intensity(),
            "resnet {} vs wide&deep {}",
            rn.arithmetic_intensity(),
            wd.arithmetic_intensity()
        );
    }

    #[test]
    fn gpt_is_compute_heavy() {
        let g = gpt(175.0, 2048);
        assert!(
            g.total_gflops() > 1e6,
            "175B @ 2048 tokens is petaFLOP-scale"
        );
        assert!(g.arithmetic_intensity() > 50.0);
    }

    #[test]
    fn read_frac_in_unit_interval() {
        for m in table3_models() {
            let f = m.read_frac();
            assert!((0.0..=1.0).contains(&f), "{}: {f}", m.name);
        }
    }

    #[test]
    fn step_time_decreases_on_faster_machine() {
        let slow = Machine::new("slow", 100.0, 1.0);
        let fast = Machine::new("fast", 300.0, 3.0);
        for m in table3_models() {
            assert!(m.step_time_s(&fast) < m.step_time_s(&slow), "{}", m.name);
            assert!(m.steps_per_s(&fast) > 0.0);
        }
    }
}
