//! Transaction-shaped traffic: a seeded stream of reads, writes,
//! atomics and broadcasts for the `noc-txn` layer.
//!
//! The generator is a pure function of a [`SimRng`] stream and the
//! device list, so the same seed replays the same transaction sequence
//! on every engine — the property the lockstep differential tests and
//! the CI transaction-fuzz sweep are built on. Burst sizes come from
//! [`sample_burst_bytes`], log-uniform from one data flit up to a full
//! packet, so short control transfers and maximum-length DMA packets
//! both appear.

use noc_core::NodeId;
use noc_sim::fuzz::{sample_burst_bytes, TrafficPattern};
use noc_sim::SimRng;
use noc_txn::{AtomicKind, TxnOp};
use serde::{Deserialize, Serialize};

/// Mix of a transaction workload. Fractions are cumulative-sampled in
/// field order; whatever probability mass remains after `read_frac`,
/// `write_frac`, `atomic_frac` and `bcast_frac` falls back to reads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TxnMix {
    /// Fraction of non-posted reads.
    pub read_frac: f64,
    /// Fraction of writes (split by `posted_frac`).
    pub write_frac: f64,
    /// Fraction of remote atomics.
    pub atomic_frac: f64,
    /// Fraction of broadcasts to a sampled station subset.
    pub bcast_frac: f64,
    /// Among writes, the posted share.
    pub posted_frac: f64,
}

impl Default for TxnMix {
    /// A DMA-flavoured default: mostly bulk reads/writes, a sprinkle
    /// of atomics and collectives.
    fn default() -> Self {
        TxnMix {
            read_frac: 0.40,
            write_frac: 0.40,
            atomic_frac: 0.12,
            bcast_frac: 0.08,
            posted_frac: 0.5,
        }
    }
}

/// One generated transaction request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnRequest {
    /// Point-to-point operation.
    Point {
        /// Issuing endpoint.
        src: NodeId,
        /// Destination endpoint.
        dst: NodeId,
        /// The operation.
        op: TxnOp,
    },
    /// Broadcast from `src` to `targets`.
    Broadcast {
        /// Root endpoint.
        src: NodeId,
        /// Target set (never contains `src`).
        targets: Vec<NodeId>,
        /// Payload bytes (at most one packet).
        bytes: u32,
    },
}

/// Seeded generator of [`TxnRequest`]s over a fixed device list.
#[derive(Debug, Clone)]
pub struct TxnWorkload {
    devices: Vec<NodeId>,
    mix: TxnMix,
    pattern: TrafficPattern,
    flit_bytes: u32,
    max_data_flits: u32,
}

impl TxnWorkload {
    /// A workload over `devices` (must hold at least two endpoints).
    /// `flit_bytes`/`max_data_flits` bound sampled burst sizes and
    /// should match the fabric's `TxnConfig`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two devices are given.
    pub fn new(
        devices: Vec<NodeId>,
        mix: TxnMix,
        pattern: TrafficPattern,
        flit_bytes: u32,
        max_data_flits: u32,
    ) -> Self {
        assert!(devices.len() >= 2, "transactions need two endpoints");
        TxnWorkload {
            devices,
            mix,
            pattern,
            flit_bytes,
            max_data_flits,
        }
    }

    /// The device list.
    pub fn devices(&self) -> &[NodeId] {
        &self.devices
    }

    /// Draw the next request from `rng`.
    pub fn next(&self, rng: &mut SimRng) -> TxnRequest {
        let n = self.devices.len();
        let src_i = rng.gen_index(n);
        let src = self.devices[src_i];
        let roll = rng.gen_f64();
        let m = &self.mix;
        if roll < m.read_frac + m.write_frac + m.atomic_frac {
            let dst = self.devices[self.pattern.pick_dest(rng, n, src_i)];
            let op = if roll < m.read_frac {
                TxnOp::Read {
                    bytes: sample_burst_bytes(rng, self.flit_bytes, self.max_data_flits),
                }
            } else if roll < m.read_frac + m.write_frac {
                TxnOp::Write {
                    bytes: sample_burst_bytes(rng, self.flit_bytes, self.max_data_flits),
                    posted: rng.gen_bool(m.posted_frac),
                }
            } else {
                TxnOp::Atomic(match rng.gen_index(4) {
                    0 => AtomicKind::Accumulate(rng.gen_range(1..1000)),
                    1 => AtomicKind::Swap(rng.gen_range(0..1000)),
                    2 => AtomicKind::Increment,
                    _ => AtomicKind::CompareSwap {
                        expected: 0,
                        desired: rng.gen_range(1..1000),
                    },
                })
            };
            TxnRequest::Point { src, dst, op }
        } else if roll < m.read_frac + m.write_frac + m.atomic_frac + m.bcast_frac {
            // Broadcast to a sampled subset (everyone with p=0.5,
            // minimum one target), payload bounded to one packet.
            let mut targets: Vec<NodeId> = self
                .devices
                .iter()
                .copied()
                .filter(|&d| d != src && rng.gen_bool(0.5))
                .collect();
            if targets.is_empty() {
                targets.push(self.devices[self.pattern.pick_dest(rng, n, src_i)]);
            }
            let bytes = sample_burst_bytes(rng, self.flit_bytes, self.max_data_flits);
            TxnRequest::Broadcast {
                src,
                targets,
                bytes,
            }
        } else {
            let dst = self.devices[self.pattern.pick_dest(rng, n, src_i)];
            TxnRequest::Point {
                src,
                dst,
                op: TxnOp::Read {
                    bytes: sample_burst_bytes(rng, self.flit_bytes, self.max_data_flits),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devs(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn same_seed_same_stream() {
        let w = TxnWorkload::new(devs(8), TxnMix::default(), TrafficPattern::Uniform, 64, 256);
        let a: Vec<TxnRequest> = {
            let mut rng = SimRng::seed_from(42);
            (0..200).map(|_| w.next(&mut rng)).collect()
        };
        let b: Vec<TxnRequest> = {
            let mut rng = SimRng::seed_from(42);
            (0..200).map(|_| w.next(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mix_produces_every_kind() {
        let w = TxnWorkload::new(devs(8), TxnMix::default(), TrafficPattern::Uniform, 64, 256);
        let mut rng = SimRng::seed_from(7);
        let (mut reads, mut writes, mut atomics, mut bcasts) = (0, 0, 0, 0);
        for _ in 0..2000 {
            match w.next(&mut rng) {
                TxnRequest::Point {
                    op: TxnOp::Read { .. },
                    ..
                } => reads += 1,
                TxnRequest::Point {
                    op: TxnOp::Write { .. },
                    ..
                } => writes += 1,
                TxnRequest::Point {
                    op: TxnOp::Atomic(_),
                    ..
                } => atomics += 1,
                TxnRequest::Broadcast { .. } => bcasts += 1,
            }
        }
        assert!(reads > 0 && writes > 0 && atomics > 0 && bcasts > 0);
    }

    #[test]
    fn requests_are_well_formed() {
        let d = devs(6);
        let w = TxnWorkload::new(
            d.clone(),
            TxnMix::default(),
            TrafficPattern::Uniform,
            64,
            256,
        );
        let mut rng = SimRng::seed_from(9);
        for _ in 0..1000 {
            match w.next(&mut rng) {
                TxnRequest::Point { src, dst, op } => {
                    assert_ne!(src, dst);
                    assert!(d.contains(&src) && d.contains(&dst));
                    if let TxnOp::Write { bytes, .. } | TxnOp::Read { bytes } = op {
                        assert!((1..=64 * 256).contains(&bytes));
                    }
                }
                TxnRequest::Broadcast {
                    src,
                    targets,
                    bytes,
                } => {
                    assert!(!targets.is_empty());
                    assert!(!targets.contains(&src));
                    assert!((1..=64 * 256).contains(&bytes));
                }
            }
        }
    }
}
