//! Traffic trace record & replay.
//!
//! The paper's AI-processor bandwidth experiments "use AI-processor's
//! instruction trace record as NoC's input" (§5.2). This module provides
//! the equivalent facility: capture `(cycle, src, dst, class, bytes)`
//! events from any traffic source, serialize them, and replay them
//! cycle-accurately into any interconnect.

use noc_core::FlitClass;
use serde::{Deserialize, Serialize};

/// One recorded injection event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event was offered.
    pub cycle: u64,
    /// Source endpoint index.
    pub src: usize,
    /// Destination endpoint index.
    pub dst: usize,
    /// Message class.
    pub class: FlitClass,
    /// Payload bytes.
    pub bytes: u32,
}

/// An ordered event trace.
///
/// # Example
///
/// ```
/// use noc_workloads::{Trace, TraceEvent};
/// use noc_core::FlitClass;
///
/// let mut t = Trace::new();
/// t.record(TraceEvent { cycle: 3, src: 0, dst: 1, class: FlitClass::Data, bytes: 64 });
/// t.record(TraceEvent { cycle: 5, src: 1, dst: 0, class: FlitClass::Response, bytes: 8 });
/// let json = t.to_json().unwrap();
/// let back = Trace::from_json(&json).unwrap();
/// assert_eq!(back.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event. Events must be recorded in non-decreasing cycle
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `event.cycle` precedes the last recorded cycle.
    pub fn record(&mut self, event: TraceEvent) {
        if let Some(last) = self.events.last() {
            assert!(
                event.cycle >= last.cycle,
                "trace events must be time-ordered"
            );
        }
        self.events.push(event);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events, time-ordered.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Last event cycle (0 when empty).
    pub fn duration(&self) -> u64 {
        self.events.last().map_or(0, |e| e.cycle)
    }

    /// Total payload bytes across events.
    pub fn total_bytes(&self) -> u64 {
        self.events.iter().map(|e| u64::from(e.bytes)).sum()
    }

    /// Serialize to JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (practically infallible for this
    /// type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Fails on malformed input or out-of-order events.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let t: Trace = serde_json::from_str(s)?;
        Ok(t)
    }

    /// Create a replayer for this trace.
    pub fn replay(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            trace: self,
            next: 0,
            retry: Vec::new(),
        }
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        let mut t = Trace::new();
        for e in iter {
            t.record(e);
        }
        t
    }
}

/// Replays a [`Trace`] cycle by cycle, retrying backpressured events.
#[derive(Debug)]
pub struct TraceReplayer<'a> {
    trace: &'a Trace,
    next: usize,
    retry: Vec<TraceEvent>,
}

impl TraceReplayer<'_> {
    /// Offer every event scheduled at or before `cycle` through `offer`
    /// (returning `false` means backpressure: the event is retried on
    /// the next call). Returns the number of events accepted this call.
    pub fn pump<F: FnMut(&TraceEvent) -> bool>(&mut self, cycle: u64, mut offer: F) -> usize {
        let mut accepted = 0;
        let mut still = Vec::new();
        for e in std::mem::take(&mut self.retry) {
            if offer(&e) {
                accepted += 1;
            } else {
                still.push(e);
            }
        }
        self.retry = still;
        while self
            .next
            .checked_sub(0)
            .and_then(|i| self.trace.events.get(i))
            .is_some_and(|e| e.cycle <= cycle)
        {
            let e = self.trace.events[self.next];
            self.next += 1;
            if offer(&e) {
                accepted += 1;
            } else {
                self.retry.push(e);
            }
        }
        accepted
    }

    /// Whether every event has been accepted.
    pub fn finished(&self) -> bool {
        self.next >= self.trace.events.len() && self.retry.is_empty()
    }

    /// Events still waiting (scheduled or backpressured).
    pub fn pending(&self) -> usize {
        (self.trace.events.len() - self.next) + self.retry.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, src: usize, dst: usize) -> TraceEvent {
        TraceEvent {
            cycle,
            src,
            dst,
            class: FlitClass::Data,
            bytes: 64,
        }
    }

    #[test]
    fn record_and_query() {
        let t: Trace = [ev(1, 0, 1), ev(4, 1, 2), ev(4, 2, 0)]
            .into_iter()
            .collect();
        assert_eq!(t.len(), 3);
        assert_eq!(t.duration(), 4);
        assert_eq!(t.total_bytes(), 192);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order() {
        let mut t = Trace::new();
        t.record(ev(5, 0, 1));
        t.record(ev(3, 0, 1));
    }

    #[test]
    fn json_roundtrip() {
        let t: Trace = [ev(0, 0, 1), ev(2, 1, 0)].into_iter().collect();
        let back = Trace::from_json(&t.to_json().unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_respects_time_and_backpressure() {
        let t: Trace = [ev(0, 0, 1), ev(0, 1, 2), ev(5, 2, 0)]
            .into_iter()
            .collect();
        let mut r = t.replay();
        // First cycle: accept only the first event, push back the second.
        let mut calls = 0;
        let accepted = r.pump(0, |_| {
            calls += 1;
            calls == 1
        });
        assert_eq!(accepted, 1);
        assert_eq!(r.pending(), 2);
        // Cycle 1: retry succeeds; the cycle-5 event is not yet due.
        let accepted = r.pump(1, |_| true);
        assert_eq!(accepted, 1);
        assert!(!r.finished());
        // Cycle 5: final event.
        let accepted = r.pump(5, |_| true);
        assert_eq!(accepted, 1);
        assert!(r.finished());
    }

    #[test]
    fn replay_into_real_network() {
        use noc_core::{Network, NetworkConfig, NodeId, RingKind, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let die = b.add_chiplet("die");
        let ring = b.add_ring(die, RingKind::Full, 4).unwrap();
        let eps: Vec<NodeId> = (0..4)
            .map(|i| b.add_node(format!("n{i}"), ring, i).unwrap())
            .collect();
        let mut net = Network::new(b.build().unwrap(), NetworkConfig::default());

        let t: Trace = (0..20)
            .map(|i| ev(i, (i % 4) as usize, ((i + 1) % 4) as usize))
            .collect();
        let mut r = t.replay();
        for cycle in 0..200u64 {
            r.pump(cycle, |e| {
                net.enqueue(eps[e.src], eps[e.dst], e.class, e.bytes, e.cycle)
                    .is_ok()
            });
            net.tick();
            for &n in &eps {
                while net.pop_delivered(n).is_some() {}
            }
            if r.finished() && net.in_flight() == 0 {
                break;
            }
        }
        assert!(r.finished());
        assert_eq!(net.stats().delivered.get(), 20);
    }
}
