//! Zipfian sampling.
//!
//! The paper's server-application analysis (§3.1.1) notes that
//! datacenter data follows a Zipfian distribution; workload generators
//! use this sampler for skewed address streams.

use noc_sim::SimRng;

/// A Zipf(θ) sampler over ranks `0..n` using a precomputed CDF.
///
/// Rank 0 is the most popular item. θ = 0 degenerates to uniform.
///
/// # Example
///
/// ```
/// use noc_workloads::Zipf;
/// use noc_sim::SimRng;
/// let z = Zipf::new(1000, 0.99);
/// let mut rng = SimRng::seed_from(1);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` ranks with skew `theta` (≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipf over zero items");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid skew");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_head_dominates() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SimRng::seed_from(7);
        let n = 100_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        // With θ≈1 the top-10 of 1000 items should draw ~30% of samples.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.2, "head fraction {frac}");
    }

    #[test]
    fn zero_theta_is_roughly_uniform() {
        let z = Zipf::new(100, 0.0);
        let mut rng = SimRng::seed_from(9);
        let n = 100_000;
        let head = (0..n).filter(|_| z.sample(&mut rng) < 10).count();
        let frac = head as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "head fraction {frac}");
    }

    #[test]
    fn samples_within_range() {
        let z = Zipf::new(16, 1.2);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 16);
        }
    }

    #[test]
    #[should_panic(expected = "zero items")]
    fn rejects_empty() {
        let _ = Zipf::new(0, 1.0);
    }
}
