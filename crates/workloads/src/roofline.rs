//! Roofline model (paper Figure 3) and machine descriptions.

use serde::{Deserialize, Serialize};

/// A machine roofline: peak compute and peak memory bandwidth.
///
/// # Example
///
/// ```
/// use noc_workloads::Machine;
/// let m = Machine::new("a100-like", 312.0, 2.0);
/// // Below the ridge point, bandwidth-bound:
/// assert!(m.attainable_tflops(10.0) < m.peak_tflops);
/// // Far above it, compute-bound:
/// assert_eq!(m.attainable_tflops(1000.0), 312.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Machine {
    /// Human-readable name.
    pub name: String,
    /// Peak FP16 compute in TFLOP/s.
    pub peak_tflops: f64,
    /// Sustained memory bandwidth in TB/s.
    pub mem_bw_tbs: f64,
}

impl Machine {
    /// Describe a machine.
    ///
    /// # Panics
    ///
    /// Panics if either peak is non-positive.
    pub fn new(name: impl Into<String>, peak_tflops: f64, mem_bw_tbs: f64) -> Self {
        assert!(peak_tflops > 0.0 && mem_bw_tbs > 0.0);
        Machine {
            name: name.into(),
            peak_tflops,
            mem_bw_tbs,
        }
    }

    /// Arithmetic intensity (FLOP/byte) at which the machine transitions
    /// from bandwidth-bound to compute-bound.
    pub fn ridge_point(&self) -> f64 {
        self.peak_tflops / self.mem_bw_tbs
    }

    /// Attainable TFLOP/s at arithmetic intensity `ai` (FLOP/byte).
    pub fn attainable_tflops(&self, ai: f64) -> f64 {
        (ai * self.mem_bw_tbs).min(self.peak_tflops)
    }

    /// Time in seconds to execute `gflops` of work moving `gbytes` of
    /// data (the max of the compute and memory rooflines).
    pub fn time_s(&self, gflops: f64, gbytes: f64) -> f64 {
        let compute = gflops / (self.peak_tflops * 1000.0);
        let memory = gbytes / (self.mem_bw_tbs * 1000.0);
        compute.max(memory)
    }
}

/// An application class plotted on Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPoint {
    /// Label ("AI training", "web service", …).
    pub name: String,
    /// Arithmetic intensity in FLOP/byte.
    pub arithmetic_intensity: f64,
}

/// The application classes of Figure 3, ordered by intensity: AI has the
/// highest arithmetic intensity, general-purpose server workloads the
/// lowest.
pub fn figure3_app_points() -> Vec<AppPoint> {
    let p = |name: &str, ai: f64| AppPoint {
        name: name.to_string(),
        arithmetic_intensity: ai,
    };
    vec![
        p("web service", 0.06),
        p("key-value store", 0.12),
        p("database/OLTP", 0.25),
        p("big-data analytics", 0.5),
        p("HPC stencil", 4.0),
        p("AI inference (CNN)", 40.0),
        p("AI training (transformer)", 120.0),
        p("AI training (CNN)", 180.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ridge_point_divides_regimes() {
        let m = Machine::new("m", 100.0, 2.0);
        let ridge = m.ridge_point();
        assert_eq!(ridge, 50.0);
        assert!(m.attainable_tflops(ridge * 0.5) < m.peak_tflops);
        assert_eq!(m.attainable_tflops(ridge * 2.0), m.peak_tflops);
    }

    #[test]
    fn time_is_max_of_bounds() {
        let m = Machine::new("m", 1.0, 1.0); // 1 TFLOP/s, 1 TB/s
                                             // 1000 GFLOP, 1 GB → compute-bound: 1 s vs 1 ms.
        assert!((m.time_s(1000.0, 1.0) - 1.0).abs() < 1e-9);
        // 1 GFLOP, 1000 GB → memory-bound: 1 s.
        assert!((m.time_s(1.0, 1000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ai_has_highest_intensity_in_figure3() {
        let pts = figure3_app_points();
        let max = pts
            .iter()
            .max_by(|a, b| {
                a.arithmetic_intensity
                    .partial_cmp(&b.arithmetic_intensity)
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(max.name.contains("AI"), "paper: AI intensity is highest");
        let min = pts
            .iter()
            .min_by(|a, b| {
                a.arithmetic_intensity
                    .partial_cmp(&b.arithmetic_intensity)
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(min.arithmetic_intensity < 0.1);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_peaks() {
        let _ = Machine::new("bad", 0.0, 1.0);
    }
}
