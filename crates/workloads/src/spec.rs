//! SPEC-like benchmark profiles and the analytic performance model that
//! converts measured NoC/memory latency into normalized scores
//! (paper Figures 12, 13 and Table 6).
//!
//! The paper uses SPECint as a *consumer* of memory latency: these
//! benchmarks "rely on pointer-based data structures and require plenty
//! of off-chip memory access" (§3.1.1). We model each benchmark by its
//! L3-miss intensity (MPKI), its CPI with perfect memory, and its
//! memory-level parallelism, then let measured latency set the score.
//! MPKI/CPI values are representative figures from the public
//! characterization literature — the *relative* sensitivity between
//! benchmarks is what matters for reproducing the figures' shape.

use serde::{Deserialize, Serialize};

/// Which suite a profile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecSuite {
    /// SPECint-2006.
    Int2006,
    /// SPECint-2017 (rate).
    Int2017,
    /// SPECpower-ssj-2008.
    Power2008,
}

/// An analytic profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Owning suite.
    pub suite: SpecSuite,
    /// L3 misses per kilo-instruction (drives NoC+DRAM traffic).
    pub mpki_l3: f64,
    /// Cycles per instruction with a perfect memory system.
    pub base_cpi: f64,
    /// Memory-level parallelism: average overlapped misses.
    pub mlp: f64,
}

impl SpecProfile {
    /// Effective CPI when the average post-L2 memory latency is
    /// `mem_latency` cycles.
    pub fn cpi(&self, mem_latency: f64) -> f64 {
        self.base_cpi + self.mpki_l3 / 1000.0 * mem_latency / self.mlp
    }

    /// Instructions per cycle under the same latency.
    pub fn ipc(&self, mem_latency: f64) -> f64 {
        1.0 / self.cpi(mem_latency)
    }

    /// Single-core score at `freq_ghz` with the given latency — an
    /// arbitrary-unit rate proportional to instructions/second.
    pub fn score(&self, mem_latency: f64, freq_ghz: f64) -> f64 {
        self.ipc(mem_latency) * freq_ghz
    }

    /// Off-chip demand bandwidth in bytes/cycle at the given latency
    /// (misses × line size × IPC).
    pub fn demand_bytes_per_cycle(&self, mem_latency: f64, line_bytes: f64) -> f64 {
        self.ipc(mem_latency) * self.mpki_l3 / 1000.0 * line_bytes
    }
}

/// The SPECint-2017 (intrate) profiles.
pub fn specint2017() -> Vec<SpecProfile> {
    let p = |name, mpki_l3, base_cpi, mlp| SpecProfile {
        name,
        suite: SpecSuite::Int2017,
        mpki_l3,
        base_cpi,
        mlp,
    };
    vec![
        p("perlbench", 0.8, 0.55, 1.6),
        p("gcc", 2.6, 0.65, 1.8),
        p("mcf", 18.0, 0.80, 2.4),
        p("omnetpp", 9.5, 0.75, 1.7),
        p("xalancbmk", 4.2, 0.70, 1.9),
        p("x264", 0.9, 0.45, 2.2),
        p("deepsjeng", 1.1, 0.60, 1.5),
        p("leela", 0.5, 0.60, 1.4),
        p("exchange2", 0.1, 0.50, 1.2),
        p("xz", 3.8, 0.70, 2.0),
    ]
}

/// The SPECint-2006 profiles.
pub fn specint2006() -> Vec<SpecProfile> {
    let p = |name, mpki_l3, base_cpi, mlp| SpecProfile {
        name,
        suite: SpecSuite::Int2006,
        mpki_l3,
        base_cpi,
        mlp,
    };
    vec![
        p("perlbench", 0.7, 0.55, 1.5),
        p("bzip2", 2.2, 0.60, 1.8),
        p("gcc", 3.0, 0.65, 1.8),
        p("mcf", 32.0, 0.85, 2.6),
        p("gobmk", 0.6, 0.65, 1.4),
        p("hmmer", 0.3, 0.45, 1.6),
        p("sjeng", 0.5, 0.60, 1.4),
        p("libquantum", 24.0, 0.50, 3.2),
        p("h264ref", 0.8, 0.50, 1.9),
        p("omnetpp", 12.0, 0.75, 1.7),
        p("astar", 5.0, 0.70, 1.6),
        p("xalancbmk", 6.0, 0.70, 1.9),
    ]
}

/// Geometric mean of per-benchmark score ratios — how SPEC aggregates.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn geomean_ratio(ours: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(ours.len(), baseline.len());
    assert!(!ours.is_empty());
    let log_sum: f64 = ours.iter().zip(baseline).map(|(a, b)| (a / b).ln()).sum();
    (log_sum / ours.len() as f64).exp()
}

/// SPECpower-ssj model: throughput/watt across the standard load
/// ladder. `throughput` is the max ssj_ops equivalent; power scales
/// between `idle_w` and `peak_w` with utilization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Peak throughput (operations per second, arbitrary units).
    pub peak_ops: f64,
    /// Idle power in watts.
    pub idle_w: f64,
    /// Full-load power in watts.
    pub peak_w: f64,
}

impl PowerModel {
    /// The SPECpower overall score: sum of ssj_ops at the 100%..10% load
    /// levels divided by the sum of average power at each level.
    pub fn score(&self) -> f64 {
        let mut ops = 0.0;
        let mut watts = 0.0;
        for step in (1..=10).rev() {
            let u = step as f64 / 10.0;
            ops += self.peak_ops * u;
            watts += self.idle_w + (self.peak_w - self.idle_w) * u;
        }
        // Active-idle measurement contributes power only.
        watts += self.idle_w;
        ops / watts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_hurts_memory_bound_benchmarks_more() {
        let suite = specint2006();
        let mcf = suite.iter().find(|p| p.name == "mcf").unwrap();
        let hmmer = suite.iter().find(|p| p.name == "hmmer").unwrap();
        let mcf_drop = mcf.score(300.0, 3.0) / mcf.score(100.0, 3.0);
        let hmmer_drop = hmmer.score(300.0, 3.0) / hmmer.score(100.0, 3.0);
        assert!(
            mcf_drop < hmmer_drop,
            "mcf must be the latency-sensitive one"
        );
    }

    #[test]
    fn suites_have_expected_members() {
        assert_eq!(specint2017().len(), 10);
        assert_eq!(specint2006().len(), 12);
        assert!(specint2017().iter().all(|p| p.suite == SpecSuite::Int2017));
    }

    #[test]
    fn score_monotone_in_latency() {
        for p in specint2017() {
            assert!(p.score(100.0, 3.0) > p.score(200.0, 3.0), "{}", p.name);
        }
    }

    #[test]
    fn demand_bandwidth_positive_and_bounded() {
        for p in specint2006() {
            let bw = p.demand_bytes_per_cycle(150.0, 64.0);
            assert!(bw > 0.0 && bw < 64.0, "{}: {bw}", p.name);
        }
    }

    #[test]
    fn geomean_of_equal_sets_is_one() {
        let a = [1.0, 2.0, 4.0];
        assert!((geomean_ratio(&a, &a) - 1.0).abs() < 1e-12);
        let b = [2.0, 4.0, 8.0];
        assert!((geomean_ratio(&b, &a) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_score_prefers_efficiency() {
        let ours = PowerModel {
            peak_ops: 1000.0,
            idle_w: 50.0,
            peak_w: 200.0,
        };
        let hungrier = PowerModel {
            peak_ops: 1000.0,
            idle_w: 80.0,
            peak_w: 260.0,
        };
        assert!(ours.score() > hungrier.score());
    }
}
