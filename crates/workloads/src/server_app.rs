//! A server-application request model (§3.1.1): client requests over
//! big data whose popularity follows a Zipfian distribution, with
//! bursty arrivals and a read-heavy operation mix — the traffic a
//! key-value store or web tier presents to the memory system.

use crate::zipf::Zipf;
use noc_sim::SimRng;
use serde::{Deserialize, Serialize};

/// One memory operation implied by serving a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerOp {
    /// Cache-line address touched.
    pub line: u64,
    /// Whether the touch is a write.
    pub is_write: bool,
}

/// Parameters of the server application.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerAppParams {
    /// Distinct objects in the store.
    pub objects: usize,
    /// Zipf skew of object popularity (≈0.99 for memcached-like).
    pub skew: f64,
    /// Cache lines touched per request (object size / line size).
    pub lines_per_request: u32,
    /// Fraction of requests that mutate their object.
    pub write_frac: f64,
    /// Mean requests per kilocycle per front-end core.
    pub requests_per_kcycle: f64,
}

impl Default for ServerAppParams {
    /// A memcached-flavoured default: 64k objects, skew 0.99, 4-line
    /// objects, 10% writes.
    fn default() -> Self {
        ServerAppParams {
            objects: 65_536,
            skew: 0.99,
            lines_per_request: 4,
            write_frac: 0.1,
            requests_per_kcycle: 20.0,
        }
    }
}

/// Generates per-cycle memory operations for one front-end core.
///
/// # Example
///
/// ```
/// use noc_workloads::{ServerApp, ServerAppParams};
/// let mut app = ServerApp::new(ServerAppParams::default(), 7);
/// let mut ops = 0;
/// for _ in 0..10_000 {
///     ops += app.cycle_ops().len();
/// }
/// assert!(ops > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ServerApp {
    params: ServerAppParams,
    zipf: Zipf,
    rng: SimRng,
    /// Operations queued from the in-flight request.
    pending: Vec<ServerOp>,
    /// Cycles until the next request arrives.
    gap: u64,
}

impl ServerApp {
    /// Create a generator with its own seeded RNG.
    pub fn new(params: ServerAppParams, seed: u64) -> Self {
        ServerApp {
            zipf: Zipf::new(params.objects, params.skew),
            rng: SimRng::seed_from(seed),
            pending: Vec::new(),
            gap: 0,
            params,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> ServerAppParams {
        self.params
    }

    fn start_request(&mut self) {
        let object = self.zipf.sample(&mut self.rng) as u64;
        let is_write = self.rng.gen_bool(self.params.write_frac);
        let base = object * u64::from(self.params.lines_per_request);
        for i in 0..self.params.lines_per_request {
            self.pending.push(ServerOp {
                line: base + u64::from(i),
                is_write,
            });
        }
    }

    /// Advance one cycle and return the operations to issue this cycle
    /// (at most one — cores serialize their misses at this layer; MLP is
    /// the memory system's job).
    pub fn cycle_ops(&mut self) -> Vec<ServerOp> {
        if self.pending.is_empty() {
            if self.gap == 0 {
                let p = self.params.requests_per_kcycle / 1000.0;
                self.gap = self.rng.gen_gap(p.min(1.0));
            }
            self.gap = self.gap.saturating_sub(1);
            if self.gap == 0 {
                self.start_request();
            }
        }
        match self.pending.pop() {
            Some(op) => vec![op],
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_rate_roughly_matches() {
        let params = ServerAppParams {
            requests_per_kcycle: 50.0,
            lines_per_request: 2,
            ..Default::default()
        };
        let mut app = ServerApp::new(params, 3);
        let ops: usize = (0..100_000).map(|_| app.cycle_ops().len()).sum();
        // 50 req/kcycle × 100 kcycle × 2 lines = ~10_000 ops.
        assert!((6_000..14_000).contains(&ops), "ops {ops}");
    }

    #[test]
    fn popularity_is_skewed() {
        let mut app = ServerApp::new(ServerAppParams::default(), 5);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..200_000 {
            for op in app.cycle_ops() {
                *counts.entry(op.line / 4).or_insert(0u32) += 1;
            }
        }
        let total: u32 = counts.values().sum();
        let mut sorted: Vec<u32> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top100: u32 = sorted.iter().take(100).sum();
        assert!(
            f64::from(top100) / f64::from(total) > 0.2,
            "top-100 objects carry {}%, expected Zipfian head",
            100 * top100 / total
        );
    }

    #[test]
    fn write_fraction_respected() {
        let params = ServerAppParams {
            write_frac: 0.3,
            ..Default::default()
        };
        let mut app = ServerApp::new(params, 9);
        let mut writes = 0u32;
        let mut total = 0u32;
        for _ in 0..200_000 {
            for op in app.cycle_ops() {
                total += 1;
                if op.is_write {
                    writes += 1;
                }
            }
        }
        let frac = f64::from(writes) / f64::from(total);
        assert!((frac - 0.3).abs() < 0.05, "write frac {frac}");
    }

    #[test]
    fn requests_touch_consecutive_lines() {
        let params = ServerAppParams {
            lines_per_request: 4,
            requests_per_kcycle: 1000.0,
            ..Default::default()
        };
        let mut app = ServerApp::new(params, 1);
        // Collect one full request's ops.
        let mut ops = Vec::new();
        while ops.len() < 4 {
            ops.extend(app.cycle_ops());
        }
        let base = ops.iter().map(|o| o.line).min().unwrap();
        let mut lines: Vec<u64> = ops.iter().map(|o| o.line - base).collect();
        lines.sort_unstable();
        assert_eq!(lines, vec![0, 1, 2, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut app = ServerApp::new(ServerAppParams::default(), seed);
            (0..50_000)
                .flat_map(|_| app.cycle_ops())
                .map(|o| o.line)
                .sum::<u64>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
