//! # noc-workloads — traffic generators and application models
//!
//! Everything the paper's evaluation throws at the NoC, reconstructed:
//!
//! * [`TrafficGen`]/[`Pattern`] — synthetic endpoint traffic (uniform,
//!   hotspot, permutation, neighbor) with read/write mixes;
//! * [`Zipf`]/[`ZipfAddressStream`] — skewed server address streams
//!   (§3.1.1);
//! * [`lmbench_kernels`] — the Figure 10 bandwidth kernels;
//! * [`SpecProfile`] + suites — analytic SPECint/SPECpower models
//!   converting measured latency into scores (Figures 12/13, Table 6);
//! * [`NnModel`] traces for ResNet-50, BERT, Wide&Deep, GPT, Mask R-CNN,
//!   YOLOv3 (Tables 3 and 8);
//! * [`Machine`] rooflines (Figure 3).

pub mod lmbench;
pub mod nn;
pub mod roofline;
pub mod server_app;
pub mod spec;
pub mod synthetic;
pub mod trace;
pub mod txn;
pub mod zipf;

pub use lmbench::{lmbench_kernels, LmbenchKernel};
pub use nn::{
    bert_large, gpt, mask_rcnn, resnet50, table3_models, wide_deep, yolov3, Layer, NnModel,
};
pub use roofline::{figure3_app_points, AppPoint, Machine};
pub use server_app::{ServerApp, ServerAppParams, ServerOp};
pub use spec::{geomean_ratio, specint2006, specint2017, PowerModel, SpecProfile, SpecSuite};
pub use synthetic::{Pattern, TrafficGen, ZipfAddressStream};
pub use trace::{Trace, TraceEvent, TraceReplayer};
pub use txn::{TxnMix, TxnRequest, TxnWorkload};
pub use zipf::Zipf;
