//! LMBench-style bandwidth kernels (paper Figure 10).
//!
//! LMBench's `bw_mem` family measures sustained memory bandwidth with
//! simple kernels. Each kernel is characterised by how many bytes it
//! reads and writes per "operation" on a 64-byte granule and whether it
//! streams through the OS read path (extra copies). The NoC harness
//! replays the resulting line-level access mix.

use serde::{Deserialize, Serialize};

/// One LMBench bandwidth kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LmbenchKernel {
    /// Kernel mnemonic as the paper's Figure 10 lists them.
    pub name: &'static str,
    /// What the kernel does.
    pub description: &'static str,
    /// Lines read per operation.
    pub reads_per_op: u32,
    /// Lines written per operation.
    pub writes_per_op: u32,
    /// Extra copy factor (OS read interface doubles traffic).
    pub copy_factor: f64,
}

impl LmbenchKernel {
    /// Total memory-traffic lines per operation, copies included.
    pub fn lines_per_op(&self) -> f64 {
        (self.reads_per_op + self.writes_per_op) as f64 * self.copy_factor
    }

    /// Fraction of the traffic that is reads.
    pub fn read_frac(&self) -> f64 {
        let total = self.reads_per_op + self.writes_per_op;
        if total == 0 {
            0.0
        } else {
            self.reads_per_op as f64 / total as f64
        }
    }
}

/// The Figure 10 kernel set.
///
/// # Example
///
/// ```
/// use noc_workloads::lmbench_kernels;
/// let ks = lmbench_kernels();
/// assert!(ks.iter().any(|k| k.name == "rd"));
/// ```
pub fn lmbench_kernels() -> Vec<LmbenchKernel> {
    vec![
        LmbenchKernel {
            name: "rd",
            description: "memory reading and summing",
            reads_per_op: 1,
            writes_per_op: 0,
            copy_factor: 1.0,
        },
        LmbenchKernel {
            name: "frd",
            description: "file read via OS read interface",
            reads_per_op: 1,
            writes_per_op: 0,
            copy_factor: 2.0,
        },
        LmbenchKernel {
            name: "wr",
            description: "memory writing",
            reads_per_op: 0,
            writes_per_op: 1,
            copy_factor: 1.0,
        },
        LmbenchKernel {
            name: "fwr",
            description: "file write via OS write interface",
            reads_per_op: 0,
            writes_per_op: 1,
            copy_factor: 2.0,
        },
        LmbenchKernel {
            name: "cp",
            description: "memory copy",
            reads_per_op: 1,
            writes_per_op: 1,
            copy_factor: 1.0,
        },
        LmbenchKernel {
            name: "fcp",
            description: "file copy via OS interfaces",
            reads_per_op: 1,
            writes_per_op: 1,
            copy_factor: 2.0,
        },
        LmbenchKernel {
            name: "bzero",
            description: "block zeroing",
            reads_per_op: 0,
            writes_per_op: 1,
            copy_factor: 1.0,
        },
        LmbenchKernel {
            name: "bcopy",
            description: "block copy",
            reads_per_op: 1,
            writes_per_op: 1,
            copy_factor: 1.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_set_matches_paper() {
        let ks = lmbench_kernels();
        assert_eq!(ks.len(), 8);
        for name in ["rd", "frd", "cp", "fcp", "bzero", "bcopy"] {
            assert!(ks.iter().any(|k| k.name == name), "missing {name}");
        }
    }

    #[test]
    fn copy_kernels_move_more_lines() {
        let ks = lmbench_kernels();
        let rd = ks.iter().find(|k| k.name == "rd").unwrap();
        let fcp = ks.iter().find(|k| k.name == "fcp").unwrap();
        assert!(fcp.lines_per_op() > rd.lines_per_op());
    }

    #[test]
    fn read_fracs() {
        let ks = lmbench_kernels();
        assert_eq!(ks.iter().find(|k| k.name == "rd").unwrap().read_frac(), 1.0);
        assert_eq!(
            ks.iter().find(|k| k.name == "bzero").unwrap().read_frac(),
            0.0
        );
        assert_eq!(ks.iter().find(|k| k.name == "cp").unwrap().read_frac(), 0.5);
    }
}
