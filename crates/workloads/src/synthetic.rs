//! Synthetic traffic generators for raw NoC experiments.

use crate::zipf::Zipf;
use noc_core::FlitClass;
use noc_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Spatial traffic pattern: who talks to whom.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Pattern {
    /// Every destination equally likely (excluding self).
    UniformRandom,
    /// A fraction `hot_frac` of traffic targets destination 0, the rest
    /// uniform.
    Hotspot {
        /// Fraction of traffic aimed at the hot node.
        hot_frac: f64,
    },
    /// Fixed bit-reversal-style permutation (node i → node (n-1-i)).
    Permutation,
    /// Node i → node (i+1) mod n.
    NeighborShift,
}

/// A traffic injector: at a given per-node rate, produce `(src, dst)`
/// endpoint indices plus a read/write class mix.
///
/// The generator speaks in *endpoint indices* `0..n`; the harness maps
/// them onto actual [`noc_core::NodeId`]s.
///
/// # Example
///
/// ```
/// use noc_workloads::{Pattern, TrafficGen};
/// let mut gen = TrafficGen::new(8, 0.5, Pattern::UniformRandom, 0.5, 42);
/// let events = gen.cycle_events();
/// for (src, dst, _class, _bytes) in events {
///     assert!(src < 8 && dst < 8 && src != dst);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct TrafficGen {
    n: usize,
    rate: f64,
    pattern: Pattern,
    read_frac: f64,
    rng: SimRng,
    /// Payload bytes per generated transaction.
    pub payload_bytes: u32,
}

impl TrafficGen {
    /// Create a generator over `n` endpoints injecting with probability
    /// `rate` per endpoint per cycle; `read_frac` of transactions are
    /// reads (Request class), the rest writes (Data class).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `rate`/`read_frac` are outside `[0, 1]`.
    pub fn new(n: usize, rate: f64, pattern: Pattern, read_frac: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two endpoints");
        assert!((0.0..=1.0).contains(&rate), "rate in [0,1]");
        assert!((0.0..=1.0).contains(&read_frac), "read_frac in [0,1]");
        TrafficGen {
            n,
            rate,
            pattern,
            read_frac,
            rng: SimRng::seed_from(seed),
            payload_bytes: 64,
        }
    }

    /// Endpoint count.
    pub fn endpoints(&self) -> usize {
        self.n
    }

    /// Injection rate per endpoint per cycle.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Change the injection rate (for load sweeps).
    pub fn set_rate(&mut self, rate: f64) {
        assert!((0.0..=1.0).contains(&rate));
        self.rate = rate;
    }

    fn pick_dst(&mut self, src: usize) -> usize {
        let n = self.n;
        let dst = match self.pattern {
            Pattern::UniformRandom => {
                let mut d = self.rng.gen_index(n - 1);
                if d >= src {
                    d += 1;
                }
                d
            }
            Pattern::Hotspot { hot_frac } => {
                if src != 0 && self.rng.gen_bool(hot_frac) {
                    0
                } else {
                    let mut d = self.rng.gen_index(n - 1);
                    if d >= src {
                        d += 1;
                    }
                    d
                }
            }
            Pattern::Permutation => n - 1 - src,
            Pattern::NeighborShift => (src + 1) % n,
        };
        if dst == src {
            (src + 1) % n
        } else {
            dst
        }
    }

    /// Generate this cycle's injection events:
    /// `(src_index, dst_index, class, payload_bytes)`.
    pub fn cycle_events(&mut self) -> Vec<(usize, usize, FlitClass, u32)> {
        let mut out = Vec::new();
        for src in 0..self.n {
            if self.rng.gen_bool(self.rate) {
                let dst = self.pick_dst(src);
                let class = if self.rng.gen_bool(self.read_frac) {
                    FlitClass::Request
                } else {
                    FlitClass::Data
                };
                out.push((src, dst, class, self.payload_bytes));
            }
        }
        out
    }
}

/// A skewed (Zipfian) line-address stream over a footprint, the §3.1.1
/// server data-access shape.
#[derive(Debug, Clone)]
pub struct ZipfAddressStream {
    zipf: Zipf,
    rng: SimRng,
    /// Line-address base offset.
    pub base: u64,
}

impl ZipfAddressStream {
    /// Stream over `lines` distinct lines with skew `theta`.
    pub fn new(lines: usize, theta: f64, seed: u64) -> Self {
        ZipfAddressStream {
            zipf: Zipf::new(lines, theta),
            rng: SimRng::seed_from(seed),
            base: 0,
        }
    }

    /// Next line address.
    pub fn next_line(&mut self) -> u64 {
        self.base + self.zipf.sample(&mut self.rng) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_respect_rate() {
        let mut g = TrafficGen::new(16, 0.25, Pattern::UniformRandom, 0.5, 1);
        let total: usize = (0..4000).map(|_| g.cycle_events().len()).sum();
        let per_node_rate = total as f64 / 4000.0 / 16.0;
        assert!((per_node_rate - 0.25).abs() < 0.02, "rate {per_node_rate}");
    }

    #[test]
    fn no_self_traffic() {
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Hotspot { hot_frac: 0.8 },
            Pattern::Permutation,
            Pattern::NeighborShift,
        ] {
            let mut g = TrafficGen::new(9, 1.0, pattern, 0.5, 2);
            for _ in 0..200 {
                for (s, d, _, _) in g.cycle_events() {
                    assert_ne!(s, d, "{pattern:?} generated self traffic");
                }
            }
        }
    }

    #[test]
    fn hotspot_concentrates_on_node_zero() {
        let mut g = TrafficGen::new(16, 1.0, Pattern::Hotspot { hot_frac: 0.7 }, 0.5, 3);
        let mut to_zero = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            for (_, d, _, _) in g.cycle_events() {
                total += 1;
                if d == 0 {
                    to_zero += 1;
                }
            }
        }
        let frac = to_zero as f64 / total as f64;
        assert!(frac > 0.5, "hotspot fraction {frac}");
    }

    #[test]
    fn read_fraction_respected() {
        let mut g = TrafficGen::new(8, 1.0, Pattern::UniformRandom, 0.8, 4);
        let mut reads = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            for (_, _, c, _) in g.cycle_events() {
                total += 1;
                if c == FlitClass::Request {
                    reads += 1;
                }
            }
        }
        let frac = reads as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.02, "read frac {frac}");
    }

    #[test]
    fn permutation_is_fixed() {
        let mut g = TrafficGen::new(8, 1.0, Pattern::Permutation, 0.5, 5);
        for _ in 0..50 {
            for (s, d, _, _) in g.cycle_events() {
                assert_eq!(d, 7 - s);
            }
        }
    }

    #[test]
    fn zipf_stream_in_range() {
        let mut s = ZipfAddressStream::new(128, 0.9, 6);
        s.base = 1000;
        for _ in 0..1000 {
            let a = s.next_line();
            assert!((1000..1128).contains(&a));
        }
    }
}
