//! Cross-crate integration tests live in /tests (see Cargo.toml [[test]] entries).
