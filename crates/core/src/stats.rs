//! Network-wide statistics.

use crate::flit::{Flit, FlitClass};
use noc_sim::{Counter, Cycle, Histogram};

/// Aggregated statistics of one [`Network`](crate::Network) run.
///
/// Counters cover every mechanism the paper describes: I-tag and E-tag
/// placements, deflections, DRM (deadlock-resolution-mode) entries and
/// SWAP operations.
#[derive(Debug, Clone)]
pub struct NetStats {
    /// Flits accepted into inject queues.
    pub enqueued: Counter,
    /// Flits that won a ring slot.
    pub injected: Counter,
    /// Injection attempts that lost arbitration (no free slot, or the
    /// passing slot was reserved for someone else). One flit can lose
    /// many times before it wins; `injected / (injected +
    /// inject_losses)` is the injection success rate.
    pub inject_losses: Counter,
    /// Flits delivered to a device eject queue.
    pub delivered: Counter,
    /// Payload bytes delivered to devices.
    pub delivered_bytes: Counter,
    /// Deflections (failed ejections that sent a flit onward).
    pub deflections: Counter,
    /// I-tags placed on passing slots.
    pub itags_placed: Counter,
    /// E-tag reservations created.
    pub etags_placed: Counter,
    /// Times an RBRG-L2 entered deadlock resolution mode.
    pub drm_entries: Counter,
    /// SWAP operations performed during DRM.
    pub swaps: Counter,
    /// Flits that crossed a bridge.
    pub bridge_crossings: Counter,
    /// Extra laps flown by delivered flits after an E-tag reservation
    /// was already in place — the one-lap guarantee of §4.1.2 bounds
    /// the *wait for a buffer*, not the laps a saturated exit forces.
    pub etag_laps: Counter,
    /// Cycles delivered flits spent as starving inject-queue heads,
    /// summed over every ring they injected on.
    pub itag_wait_cycles: Counter,
    /// End-to-end latency (enqueue → device delivery) per flit class.
    pub total_latency: [Histogram; 4],
    /// In-network latency (injection → device delivery) per flit class.
    pub network_latency: [Histogram; 4],
    /// Ring hops per delivered flit.
    pub hops: Histogram,
    /// Deflections per delivered flit.
    pub deflections_per_flit: Histogram,
}

impl NetStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        let h = |name: &str| Histogram::new(name);
        NetStats {
            enqueued: Counter::new("enqueued"),
            injected: Counter::new("injected"),
            inject_losses: Counter::new("inject_losses"),
            delivered: Counter::new("delivered"),
            delivered_bytes: Counter::new("delivered_bytes"),
            deflections: Counter::new("deflections"),
            itags_placed: Counter::new("itags_placed"),
            etags_placed: Counter::new("etags_placed"),
            drm_entries: Counter::new("drm_entries"),
            swaps: Counter::new("swaps"),
            bridge_crossings: Counter::new("bridge_crossings"),
            etag_laps: Counter::new("etag_laps"),
            itag_wait_cycles: Counter::new("itag_wait_cycles"),
            total_latency: [
                h("total_latency.req"),
                h("total_latency.rsp"),
                h("total_latency.snp"),
                h("total_latency.dat"),
            ],
            network_latency: [
                h("network_latency.req"),
                h("network_latency.rsp"),
                h("network_latency.snp"),
                h("network_latency.dat"),
            ],
            hops: h("hops"),
            deflections_per_flit: h("deflections_per_flit"),
        }
    }

    /// Record a device delivery at time `now`.
    pub fn record_delivery(&mut self, flit: &Flit, now: Cycle) {
        self.delivered.inc();
        self.delivered_bytes.add(flit.payload_bytes as u64);
        self.etag_laps.add(flit.etag_laps as u64);
        self.itag_wait_cycles.add(flit.itag_wait as u64);
        let i = flit.class.index();
        self.total_latency[i].record(flit.total_latency(now));
        self.network_latency[i].record(flit.network_latency(now));
        self.hops.record(flit.hops as u64);
        self.deflections_per_flit.record(flit.deflections as u64);
    }

    /// Mean end-to-end latency across all classes (cycles).
    pub fn mean_total_latency(&self) -> f64 {
        let (sum, count) = self
            .total_latency
            .iter()
            .fold((0u64, 0u64), |(s, c), h| (s + h.sum(), c + h.count()));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Mean end-to-end latency for one class (cycles).
    pub fn mean_total_latency_of(&self, class: FlitClass) -> f64 {
        self.total_latency[class.index()].mean()
    }

    /// Delivered payload bandwidth in bytes/cycle over `elapsed` cycles.
    pub fn bytes_per_cycle(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.delivered_bytes.get() as f64 / elapsed as f64
        }
    }

    /// Conservation check value: enqueued − delivered (must equal the
    /// number of flits still inside the network).
    pub fn outstanding(&self) -> u64 {
        self.enqueued.get() - self.delivered.get()
    }

    /// Fold another statistics block into this one (counter sums,
    /// histogram merges). Used by the sharded engine to combine
    /// per-ring statistics into the network-wide view; merging is
    /// commutative, so the result is independent of shard order.
    pub fn merge_from(&mut self, other: &NetStats) {
        self.enqueued.add(other.enqueued.get());
        self.injected.add(other.injected.get());
        self.inject_losses.add(other.inject_losses.get());
        self.delivered.add(other.delivered.get());
        self.delivered_bytes.add(other.delivered_bytes.get());
        self.deflections.add(other.deflections.get());
        self.itags_placed.add(other.itags_placed.get());
        self.etags_placed.add(other.etags_placed.get());
        self.drm_entries.add(other.drm_entries.get());
        self.swaps.add(other.swaps.get());
        self.bridge_crossings.add(other.bridge_crossings.get());
        self.etag_laps.add(other.etag_laps.get());
        self.itag_wait_cycles.add(other.itag_wait_cycles.get());
        for (mine, theirs) in self.total_latency.iter_mut().zip(&other.total_latency) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.network_latency.iter_mut().zip(&other.network_latency) {
            mine.merge(theirs);
        }
        self.hops.merge(&other.hops);
        self.deflections_per_flit.merge(&other.deflections_per_flit);
    }

    /// A semantic digest of the run: every counter plus a
    /// (count, sum, max) triple per histogram.
    ///
    /// Two networks that simulated the same traffic identically produce
    /// equal fingerprints. Engine instrumentation (station visit counts,
    /// sweep fallbacks) deliberately lives in
    /// [`TickProfile`], not here, so the occupancy-indexed
    /// and reference tick paths can be compared with `fingerprint()`
    /// while legitimately differing in how much work they did.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut fp = vec![
            self.enqueued.get(),
            self.injected.get(),
            self.inject_losses.get(),
            self.delivered.get(),
            self.delivered_bytes.get(),
            self.deflections.get(),
            self.itags_placed.get(),
            self.etags_placed.get(),
            self.drm_entries.get(),
            self.swaps.get(),
            self.bridge_crossings.get(),
            self.etag_laps.get(),
            self.itag_wait_cycles.get(),
        ];
        let hists = self
            .total_latency
            .iter()
            .chain(self.network_latency.iter())
            .chain([&self.hops, &self.deflections_per_flit]);
        for h in hists {
            fp.extend([h.count(), h.sum(), h.max()]);
        }
        fp
    }
}

/// Engine-level instrumentation of the tick loop itself.
///
/// These counters describe how much work the sweep did — not what the
/// simulated network did — so they are kept out of [`NetStats`] and its
/// [`NetStats::fingerprint`]: the occupancy-indexed fast path and the
/// reference full sweep produce identical `NetStats` but very different
/// profiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TickProfile {
    /// Cycles simulated.
    pub ticks: u64,
    /// Lane passes performed (rings × lanes × ticks).
    pub lane_passes: u64,
    /// Stations a full sweep would have visited.
    pub stations_total: u64,
    /// Stations actually visited.
    pub stations_visited: u64,
    /// Lane passes that fell back to a full sweep (saturated lane).
    pub full_lane_sweeps: u64,
}

impl TickProfile {
    /// Fold another profile into this one. `ticks` is summed like the
    /// rest; shard-local profiles keep it at zero so the merged value
    /// is whatever the engine adds on top.
    pub fn merge_from(&mut self, other: &TickProfile) {
        self.ticks += other.ticks;
        self.lane_passes += other.lane_passes;
        self.stations_total += other.stations_total;
        self.stations_visited += other.stations_visited;
        self.full_lane_sweeps += other.full_lane_sweeps;
    }

    /// Fraction of station visits skipped relative to a full sweep
    /// (0.0 for the reference mode or a fully saturated network).
    pub fn skip_fraction(&self) -> f64 {
        if self.stations_total == 0 {
            0.0
        } else {
            1.0 - self.stations_visited as f64 / self.stations_total as f64
        }
    }
}

impl Default for NetStats {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    #[test]
    fn delivery_updates_everything() {
        let mut s = NetStats::new();
        let mut f = Flit::new(1, NodeId(0), NodeId(1), FlitClass::Data, 64, 0, Cycle(10));
        f.injected_at = Some(Cycle(12));
        f.hops = 5;
        f.deflections = 1;
        s.enqueued.inc();
        s.record_delivery(&f, Cycle(30));
        assert_eq!(s.delivered.get(), 1);
        assert_eq!(s.delivered_bytes.get(), 64);
        assert_eq!(s.total_latency[FlitClass::Data.index()].mean(), 20.0);
        assert_eq!(s.network_latency[FlitClass::Data.index()].mean(), 18.0);
        assert_eq!(s.hops.max(), 5);
        assert_eq!(s.outstanding(), 0);
        assert_eq!(s.mean_total_latency(), 20.0);
        assert_eq!(s.mean_total_latency_of(FlitClass::Data), 20.0);
        assert_eq!(s.mean_total_latency_of(FlitClass::Request), 0.0);
    }

    #[test]
    fn bandwidth_accounting() {
        let mut s = NetStats::new();
        s.delivered_bytes.add(1000);
        assert!((s.bytes_per_cycle(100) - 10.0).abs() < 1e-12);
        assert_eq!(s.bytes_per_cycle(0), 0.0);
    }
}
