//! Per-ring shards: the unit of state ownership and parallelism.
//!
//! A [`RingShard`] owns everything the paper's §4 station logic can
//! touch while processing one ring for one cycle: the ring's lanes and
//! their flit/I-tag bitsets, the node interfaces attached to its
//! stations (inject/eject queues, starvation counters, E-tag lists),
//! its sides of any bridges ([`BridgeSide`] mailboxes), the
//! round-robin pointers and pending-injector index, plus a private
//! [`NetStats`], [`TickProfile`] and [`TraceBuffer`].
//!
//! Because the station logic is provably ring-local — a flit can only
//! leave its ring through a bridge mailbox, and mailboxes are swapped
//! by the engine at phase barriers — shards can be evaluated in any
//! order, or concurrently, with bit-identical results. The engine
//! merges their stats, profiles and trace buffers in ascending ring
//! order afterwards. Immutable inputs every shard needs (config, route
//! table, global→local id maps) live in one shared [`EngineShared`].
//!
//! Methods take a `const TRACE: bool` parameter instead of a sink type:
//! with `TRACE = false` every record construction folds away exactly
//! like the `S::ENABLED` guards did in the monolith, and shards stay
//! independent of sink types (which keeps them `Send` without bounds
//! gymnastics).

use crate::bits::BitRing;
use crate::bridge::BridgeSide;
use crate::census::{self, PacketPlace, RingCensus, SidePart, TransitCensus, WaitCensus};
use crate::config::{BridgeLevel, NetworkConfig};
use crate::flit::Flit;
use crate::ids::{NodeId, RingId};
use crate::network::TickMode;
use crate::queue::Fifo;
use crate::ring::Ring;
use crate::route::{ring_travel, RouteTable};
use crate::stats::{NetStats, TickProfile};
use crate::topology::{NodeKind, Topology};
use noc_sim::{BandwidthProbe, Cycle};
use noc_telemetry::{
    BridgeGauges, FlitEvent, FlowDelta, FlowTable, RingGauges, RingWindow, TraceBuffer,
    TraceRecord, WindowCounters, NO_FLIT, NO_LANE,
};
use std::collections::VecDeque;

/// Fast-path lanes fall back to a full sweep when
/// `active * SATURATION_DENOM >= stations * SATURATION_NUM` — i.e. at
/// ≥ 50% activity, where per-station bit extraction stops paying off.
const SATURATION_NUM: usize = 1;
const SATURATION_DENOM: usize = 2;

/// When a tracing sink is attached, every ring's occupancy is sampled
/// ([`noc_telemetry::FlitEvent::RingUtil`]) once per this many cycles.
/// Irrelevant for `NullSink` networks: the sampling sites compile away.
pub(crate) const UTIL_SAMPLE_PERIOD: u64 = 8;

/// One metrics sample staged inside the per-ring phase, tagged with the
/// cycle it was taken at so the engine can commit it at the right point
/// of an epoch's deferred epilogue. `in_flight` is this shard's
/// contribution to the global in-flight gauge (enqueued − delivered) at
/// the sample cycle; summing the staged contributions reproduces
/// exactly what `Network::in_flight()` returned at the K=1 barrier.
#[derive(Debug, Clone)]
pub(crate) struct StagedSample {
    pub cycle: u64,
    pub in_flight: u64,
    pub window: RingWindow,
}

/// Where a global node id lives: which ring shard, at which index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeLoc {
    pub ring: u16,
    pub local: u32,
}

/// Where one side of a bridge lives: which ring shard, at which index
/// in that shard's `sides`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SideLoc {
    pub ring: u16,
    pub idx: u32,
}

/// Immutable engine inputs shared by all shards (held in an `Arc` so a
/// parallel fan-out can hand every worker the same reference).
#[derive(Debug)]
pub(crate) struct EngineShared {
    pub cfg: NetworkConfig,
    pub topo: Topology,
    pub route: RouteTable,
    /// Global node id → owning shard and local index.
    pub node_loc: Vec<NodeLoc>,
    /// Bridge id → location of each side.
    pub side_loc: Vec<[SideLoc; 2]>,
}

/// Per-node runtime state: the two queues of a node interface plus tag
/// bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    /// Global id (telemetry events and the public API speak global ids).
    pub id: NodeId,
    pub ring: RingId,
    pub station: u16,
    pub kind: NodeKind,
    pub inject: Fifo<Flit>,
    pub eject: Fifo<Flit>,
    /// Consecutive cycles the head of `inject` failed to win a slot.
    pub starve: u32,
    /// Whether an I-tagged slot is circulating for this node.
    pub itag_pending: bool,
    /// E-tag reservations: ids of flits entitled to freed eject buffers,
    /// oldest first.
    pub etag_list: VecDeque<u64>,
    /// Deflections of flits that targeted this node (diagnostics).
    pub deflected_here: u64,
    /// I-tags this node has placed on passing slots (diagnostics).
    pub itags_here: u64,
    /// Bandwidth probe (devices only, when probing is configured).
    pub probe: Option<BandwidthProbe>,
}

/// One ring plus everything attached to it. See the module docs.
#[derive(Debug, Clone)]
pub(crate) struct RingShard {
    pub ring: Ring,
    /// Node interfaces on this ring, ascending global id.
    pub nodes: Vec<NodeState>,
    /// Bridge sides on this ring, ascending (bridge, side).
    pub sides: Vec<BridgeSide>,
    /// Round-robin pointer per (station, lane).
    rr: Vec<[u8; 2]>,
    /// Local node index attached per (station, port).
    ports: Vec<[Option<u32>; 2]>,
    /// Nodes with a non-empty inject queue per station: 0–2.
    inject_count: Vec<u8>,
    /// Station bit set iff `inject_count > 0`.
    inject_bits: BitRing,
    pub stats: NetStats,
    /// Shard-local sweep instrumentation (`ticks` stays 0 here; the
    /// engine adds the tick count on top when merging).
    pub profile: TickProfile,
    /// Events staged this tick, drained by the engine in ring order.
    pub trace: TraceBuffer,
    /// Metrics sampling period in cycles; 0 disables sampling.
    pub metrics_period: u64,
    /// Counter readings at the end of the previous metrics window, so
    /// each sample reports exact per-window deltas.
    metrics_base: WindowCounters,
    /// Samples staged during the (possibly parallel) per-ring phase,
    /// oldest first, collected by the engine in ring order at the next
    /// epoch boundary. Holds at most one entry per elapsed sampling
    /// boundary; a K=1 tick drains it every cycle.
    pub pending_metrics: VecDeque<StagedSample>,
    /// Ring-utilization samples `(cycle, occupied, capacity)` staged at
    /// [`UTIL_SAMPLE_PERIOD`] boundaries when tracing, emitted by the
    /// engine in ring order at the next epoch boundary.
    pub pending_util: VecDeque<(u64, u16, u16)>,
    /// Space-Saving capacity of the flow table; 0 disables flow
    /// accounting (and link counting) entirely.
    pub flow_topk: usize,
    /// Heaviest (src, dst) flows delivering or deflecting on this ring.
    /// Shard-local; fed from `flow_buf` at sampling boundaries in
    /// sorted flow-key order, so its contents are identical under any
    /// execution order.
    pub flows: FlowTable,
    /// Per-flow deltas staged since the last flush. Charging is lazy —
    /// deflections accumulate on the flit itself and are converted to
    /// deltas at delivery and at metrics sampling boundaries — so the
    /// deflection hot path stays free of accounting work. The fast and
    /// reference sweeps visit stations in different orders and
    /// Space-Saving eviction is order-sensitive; sorting the staged
    /// deltas by (src, dst) and summing per flow before applying makes
    /// the table evolution canonical (per-flow sums commute).
    flow_buf: Vec<(u32, u32, FlowDelta)>,
    /// Flits observed on each station's link at sampling boundaries
    /// (lanes summed, cumulative across windows), index = station. A
    /// deterministic occupancy sample, not an exact traversal count —
    /// counting every traversal would put work on every tick.
    pub link_util: Vec<u64>,
    /// Sampling windows between in-flight charge sweeps (see
    /// `charge_inflight`); 1 sweeps every window.
    flow_charge_stride: usize,
    /// Windows left before the next in-flight charge sweep. A forced
    /// sweep (bundle capture, `finish_metrics`) resets the countdown so
    /// the following window boundary does not sweep again.
    windows_until_charge: usize,
}

/// Build the shared inputs and one shard per ring from a validated
/// topology.
pub(crate) fn build(topo: Topology, cfg: NetworkConfig) -> (EngineShared, Vec<RingShard>) {
    let route = RouteTable::build(&topo);
    let mut shards: Vec<RingShard> = topo
        .rings()
        .iter()
        .map(|r| RingShard {
            ring: Ring::new(r.id, r.chiplet, r.kind, r.stations),
            nodes: Vec::new(),
            sides: Vec::new(),
            rr: vec![[0u8; 2]; r.stations as usize],
            ports: vec![[None, None]; r.stations as usize],
            inject_count: vec![0u8; r.stations as usize],
            inject_bits: BitRing::new(r.stations as usize),
            stats: NetStats::new(),
            profile: TickProfile::default(),
            trace: TraceBuffer::default(),
            metrics_period: 0,
            metrics_base: WindowCounters::default(),
            pending_metrics: VecDeque::new(),
            pending_util: VecDeque::new(),
            flow_topk: 0,
            flows: FlowTable::new(0),
            flow_buf: Vec::new(),
            link_util: vec![0; r.stations as usize],
            flow_charge_stride: 1,
            windows_until_charge: 1,
        })
        .collect();
    let mut node_loc = Vec::with_capacity(topo.nodes().len());
    for n in topo.nodes() {
        let shard = &mut shards[n.ring.index()];
        let local = shard.nodes.len() as u32;
        node_loc.push(NodeLoc {
            ring: n.ring.0,
            local,
        });
        shard.ports[n.station as usize][n.port as usize] = Some(local);
        shard.nodes.push(NodeState {
            id: n.id,
            ring: n.ring,
            station: n.station,
            kind: n.kind,
            inject: Fifo::new(cfg.inject_queue_cap),
            eject: Fifo::new(cfg.eject_queue_cap),
            starve: 0,
            itag_pending: false,
            etag_list: VecDeque::new(),
            deflected_here: 0,
            itags_here: 0,
            probe: (cfg.probe_window > 0 && matches!(n.kind, NodeKind::Device))
                .then(|| BandwidthProbe::new(n.name.clone(), cfg.probe_window)),
        });
    }
    let mut side_loc = Vec::with_capacity(topo.bridges().len());
    for b in topo.bridges() {
        let mut locs = [SideLoc { ring: 0, idx: 0 }; 2];
        for (side, ep) in [(0u8, b.a), (1u8, b.b)] {
            let loc = node_loc[ep.index()];
            let shard = &mut shards[loc.ring as usize];
            locs[side as usize] = SideLoc {
                ring: loc.ring,
                idx: shard.sides.len() as u32,
            };
            shard.sides.push(BridgeSide {
                bridge: b.id,
                side,
                endpoint: loc.local,
                cfg: b.config.clone(),
                rx: VecDeque::new(),
                tx: VecDeque::new(),
                peer_backlog: 0,
                reserved: Vec::new(),
                drm: false,
                drm_entries: 0,
                tx_pushed: 0,
                rx_popped: 0,
            });
        }
        side_loc.push(locs);
    }
    let shared = EngineShared {
        cfg,
        topo,
        route,
        node_loc,
        side_loc,
    };
    (shared, shards)
}

impl RingShard {
    // ------------------------------------------------------------------
    // Occupancy-index maintenance
    // ------------------------------------------------------------------

    /// Record that local node `ni`'s inject queue went from empty to
    /// non-empty. Must be called at every such transition.
    #[inline]
    pub(crate) fn inject_became_nonempty(&mut self, ni: usize) {
        let s = self.nodes[ni].station as usize;
        let c = &mut self.inject_count[s];
        *c += 1;
        if *c == 1 {
            self.inject_bits.set(s);
        }
    }

    /// Record that local node `ni`'s inject queue went from non-empty
    /// to empty. Must be called at every such transition.
    #[inline]
    fn inject_became_empty(&mut self, ni: usize) {
        let s = self.nodes[ni].station as usize;
        let c = &mut self.inject_count[s];
        debug_assert!(*c > 0, "inject count underflow at station {s}");
        *c -= 1;
        if *c == 0 {
            self.inject_bits.clear(s);
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: bridge delivery (reads only this shard + its rx inboxes)
    // ------------------------------------------------------------------

    /// Move matured flits from this shard's bridge inboxes into their
    /// endpoint inject queues.
    pub(crate) fn phase_deliver<const TRACE: bool>(&mut self, now: Cycle) {
        let nraw = now.raw();
        for si in 0..self.sides.len() {
            let ep = self.sides[si].endpoint as usize;
            loop {
                let ready = self.sides[si].rx.front().is_some_and(|&(r, _)| r <= nraw);
                if !ready || self.nodes[ep].inject.is_full() {
                    if TRACE && ready {
                        // Matured flit held in the pipeline by a full
                        // endpoint Inject Queue: backpressure.
                        let fid = self.sides[si].rx.front().map_or(NO_FLIT, |(_, f)| f.id);
                        let record = TraceRecord {
                            cycle: nraw,
                            flit: fid,
                            ring: self.ring.id.0,
                            station: self.nodes[ep].station,
                            lane: NO_LANE,
                            event: FlitEvent::BridgeStalled {
                                bridge: self.sides[si].bridge.index() as u16,
                            },
                        };
                        self.trace.push(record);
                    }
                    break;
                }
                let (_, flit) = self.sides[si].rx.pop_front().expect("checked non-empty");
                self.sides[si].rx_popped += 1;
                self.nodes[ep].inject.push(flit).expect("checked not full");
                if self.nodes[ep].inject.len() == 1 {
                    self.inject_became_nonempty(ep);
                }
                self.stats.bridge_crossings.inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: the per-ring cycle (safe to run concurrently per shard)
    // ------------------------------------------------------------------

    /// The fused per-ring portion of one tick: zero-hop local
    /// deliveries, the station sweep, lane advancement, bridge intake
    /// (staged into `tx` mailboxes) and DRM bookkeeping.
    pub(crate) fn phase_cycle<const TRACE: bool>(
        &mut self,
        shared: &EngineShared,
        now: Cycle,
        mode: TickMode,
    ) {
        match mode {
            TickMode::Fast => self.local_deliveries_fast::<TRACE>(shared, now),
            TickMode::Reference => crate::reference::local_sweep::<TRACE>(self, shared, now),
        }
        match mode {
            TickMode::Fast => self.sweep_active::<TRACE>(shared, now),
            TickMode::Reference => crate::reference::sweep::<TRACE>(self, shared, now),
        }
        for lane in &mut self.ring.lanes {
            lane.advance();
        }
        self.bridge_intake::<TRACE>(now);
        self.drm_update();
        if self.metrics_period != 0 && now.raw().is_multiple_of(self.metrics_period) {
            self.sample_metrics(shared, now);
        }
        // Ring occupancy no longer changes this cycle, so the sample
        // staged here is exactly what the engine's end-of-tick probe
        // used to read. Staging (instead of emitting) lets an epoch
        // defer the sink traffic without changing a byte of it.
        if TRACE && now.raw().is_multiple_of(UTIL_SAMPLE_PERIOD) {
            self.pending_util.push_back((
                now.raw(),
                self.ring.occupancy() as u16,
                self.ring.capacity() as u16,
            ));
        }
    }

    /// Occupancy-indexed station walk: per lane, merge the flit, I-tag
    /// and pending-injector bitsets word by word and visit only set
    /// bits, in ascending station order — the same order as the
    /// reference sweep. Correctness rests on `process_station(s)` only
    /// mutating state attached to station `s` (its slot, its ports'
    /// queues, its bridge side), so skipping provably-idle stations and
    /// snapshotting each 64-station word before visiting it cannot
    /// change the outcome.
    fn sweep_active<const TRACE: bool>(&mut self, shared: &EngineShared, now: Cycle) {
        let stations = self.ring.stations as usize;
        let nlanes = self.ring.lanes.len();
        let nwords = self.inject_bits.words().len();
        for li in 0..nlanes {
            self.profile.lane_passes += 1;
            self.profile.stations_total += stations as u64;
            let mut active = 0usize;
            for wi in 0..nwords {
                let lane = &self.ring.lanes[li];
                let w = lane.flit_bits().words()[wi]
                    | lane.itag_bits().words()[wi]
                    | self.inject_bits.words()[wi];
                active += w.count_ones() as usize;
            }
            if active * SATURATION_DENOM >= stations * SATURATION_NUM {
                self.profile.full_lane_sweeps += 1;
                self.profile.stations_visited += stations as u64;
                for s in 0..stations as u16 {
                    self.process_station::<TRACE>(shared, now, li, s);
                }
                continue;
            }
            for wi in 0..nwords {
                let lane = &self.ring.lanes[li];
                let mut w = lane.flit_bits().words()[wi]
                    | lane.itag_bits().words()[wi]
                    | self.inject_bits.words()[wi];
                while w != 0 {
                    let s = wi * 64 + w.trailing_zeros() as usize;
                    w &= w - 1;
                    self.profile.stations_visited += 1;
                    self.process_station::<TRACE>(shared, now, li, s as u16);
                }
            }
        }
    }

    /// Deliver head flits whose exit station equals their source node's
    /// own station without touching the ring (zero-hop path),
    /// enumerating candidate stations from the pending-injector bits.
    fn local_deliveries_fast<const TRACE: bool>(&mut self, shared: &EngineShared, now: Cycle) {
        for wi in 0..self.inject_bits.words().len() {
            let mut w = self.inject_bits.words()[wi];
            while w != 0 {
                let s = wi * 64 + w.trailing_zeros() as usize;
                w &= w - 1;
                for port in 0..2 {
                    if let Some(local) = self.ports[s][port] {
                        self.try_local_delivery::<TRACE>(shared, now, local as usize);
                    }
                }
            }
        }
    }

    /// Attempt the zero-hop local delivery for local node `i`'s head
    /// flit.
    pub(crate) fn try_local_delivery<const TRACE: bool>(
        &mut self,
        shared: &EngineShared,
        now: Cycle,
        i: usize,
    ) {
        let station = self.nodes[i].station;
        let Some(head) = self.nodes[i].inject.peek() else {
            return;
        };
        let hop = match shared.route.exit(self.ring.id, head.dst) {
            Some(h) => h,
            None => return,
        };
        if hop.station != station || hop.target == self.nodes[i].id {
            return;
        }
        let t = shared.node_loc[hop.target.index()].local as usize;
        // Normal-flit eject rule: leave reserved buffers alone.
        let free = self.nodes[t].eject.free();
        let reserved = self.nodes[t].etag_list.len();
        if free > reserved {
            let mut flit = self.nodes[i].inject.pop().expect("peeked");
            if self.nodes[i].inject.is_empty() {
                self.inject_became_empty(i);
            }
            flit.itag_wait += self.nodes[i].starve;
            flit.injected_at = Some(now);
            self.stats.injected.inc();
            if TRACE {
                let record = TraceRecord {
                    cycle: now.raw(),
                    flit: flit.id,
                    ring: self.ring.id.0,
                    station,
                    lane: NO_LANE,
                    event: FlitEvent::Injected {
                        node: self.nodes[i].id.0,
                    },
                };
                self.trace.push(record);
            }
            self.finish_arrival::<TRACE>(now, t, flit, NO_LANE);
            self.nodes[i].starve = 0;
        }
    }

    /// The full cross-station evaluation for `(lane, station)`:
    /// arrival/ejection, injection arbitration (I-tag claim or
    /// round-robin), then starvation accounting and I-tag placement.
    pub(crate) fn process_station<const TRACE: bool>(
        &mut self,
        shared: &EngineShared,
        now: Cycle,
        li: usize,
        s: u16,
    ) {
        let ring_id = self.ring.id;
        // ---- arrival / ejection ----
        if let Some(flit) = self.ring.lanes[li].take_flit(s) {
            let hop = shared
                .route
                .exit(ring_id, flit.dst)
                .expect("validated topology routes every destination");
            if hop.station == s {
                self.arrive::<TRACE>(shared, now, li, s, hop.target, flit);
            } else {
                self.ring.lanes[li].put_flit(s, flit);
            }
        }
        // ---- injection ----
        let mut injected_port: Option<u8> = None;
        let slot_free = self.ring.lanes[li].flit_at(s).is_none();
        if slot_free {
            let itag = self.ring.lanes[li].itag_at(s);
            if let Some(owner) = itag {
                let loc = shared.node_loc[owner.index()];
                let o = loc.local as usize;
                if loc.ring == ring_id.0 && self.nodes[o].station == s {
                    match self.head_lane(shared, o) {
                        Some(lane) if lane == li => {
                            if TRACE {
                                let fid = self.nodes[o].inject.peek().expect("head checked").id;
                                let record = TraceRecord {
                                    cycle: now.raw(),
                                    flit: fid,
                                    ring: ring_id.0,
                                    station: s,
                                    lane: li as u8,
                                    event: FlitEvent::ITagClaimed { node: owner.0 },
                                };
                                self.trace.push(record);
                            }
                            self.inject_head::<TRACE>(now, o, li, s);
                            injected_port = self.ports[s as usize]
                                .iter()
                                .position(|&p| p == Some(o as u32))
                                .map(|p| p as u8);
                            self.ring.lanes[li].take_itag(s);
                            self.nodes[o].itag_pending = false;
                        }
                        Some(_) | None => {
                            // Stale tag: head now prefers the other lane
                            // or queue drained. Release the slot.
                            self.ring.lanes[li].take_itag(s);
                            self.nodes[o].itag_pending = false;
                        }
                    }
                }
                // Tag owned by a node elsewhere on the ring: slot stays
                // reserved and passes by.
            } else {
                // Round-robin arbitration between the two interfaces.
                let start = self.rr[s as usize][li];
                for off in 0..2u8 {
                    let port = (start + off) % 2;
                    let Some(local) = self.ports[s as usize][port as usize] else {
                        continue;
                    };
                    let ni = local as usize;
                    if self.head_lane(shared, ni) == Some(li) {
                        self.inject_head::<TRACE>(now, ni, li, s);
                        self.rr[s as usize][li] = (port + 1) % 2;
                        injected_port = Some(port);
                        break;
                    }
                }
            }
        }
        // ---- starvation accounting & I-tag placement ----
        for port in 0..2u8 {
            if injected_port == Some(port) {
                continue;
            }
            let Some(local) = self.ports[s as usize][port as usize] else {
                continue;
            };
            let ni = local as usize;
            if self.head_lane(shared, ni) != Some(li) {
                continue;
            }
            self.nodes[ni].starve += 1;
            self.stats.inject_losses.inc();
            if TRACE {
                let fid = self.nodes[ni].inject.peek().expect("head checked").id;
                let record = TraceRecord {
                    cycle: now.raw(),
                    flit: fid,
                    ring: ring_id.0,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::InjectLost {
                        node: self.nodes[ni].id.0,
                    },
                };
                self.trace.push(record);
            }
            if self.nodes[ni].starve >= shared.cfg.itag_threshold
                && !self.nodes[ni].itag_pending
                && self.ring.lanes[li].itag_at(s).is_none()
            {
                self.ring.lanes[li].set_itag(s, self.nodes[ni].id);
                self.nodes[ni].itag_pending = true;
                self.nodes[ni].itags_here += 1;
                self.stats.itags_placed.inc();
                if TRACE {
                    let fid = self.nodes[ni].inject.peek().expect("head checked").id;
                    let record = TraceRecord {
                        cycle: now.raw(),
                        flit: fid,
                        ring: ring_id.0,
                        station: s,
                        lane: li as u8,
                        event: FlitEvent::ITagSet {
                            node: self.nodes[ni].id.0,
                        },
                    };
                    self.trace.push(record);
                }
            }
        }
    }

    /// Which lane the head flit of local node `ni` wants, if it has one
    /// and needs the ring (zero-hop deliveries are handled elsewhere).
    fn head_lane(&self, shared: &EngineShared, ni: usize) -> Option<usize> {
        let node = &self.nodes[ni];
        let head = node.inject.peek()?;
        let hop = shared.route.exit(node.ring, head.dst)?;
        if hop.station == node.station {
            return None; // zero-hop: local delivery path
        }
        let (dir, _) = ring_travel(
            self.ring.kind,
            self.ring.stations,
            node.station,
            hop.station,
        );
        Some(dir.lane())
    }

    /// Move local node `ni`'s head flit into the (empty) slot at its
    /// station.
    fn inject_head<const TRACE: bool>(&mut self, now: Cycle, ni: usize, li: usize, s: u16) {
        let mut flit = self.nodes[ni].inject.pop().expect("head checked");
        if self.nodes[ni].inject.is_empty() {
            self.inject_became_empty(ni);
        }
        flit.itag_wait += self.nodes[ni].starve;
        if flit.injected_at.is_none() {
            flit.injected_at = Some(now);
            self.stats.injected.inc();
            if TRACE {
                let record = TraceRecord {
                    cycle: now.raw(),
                    flit: flit.id,
                    ring: self.ring.id.0,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::Injected {
                        node: self.nodes[ni].id.0,
                    },
                };
                self.trace.push(record);
            }
        }
        self.ring.lanes[li].put_flit(s, flit);
        self.nodes[ni].starve = 0;
    }

    /// Handle a flit arriving at its exit station: eject, SWAP, or
    /// deflect with an E-tag.
    fn arrive<const TRACE: bool>(
        &mut self,
        shared: &EngineShared,
        now: Cycle,
        li: usize,
        s: u16,
        target: NodeId,
        mut flit: Flit,
    ) {
        let t = shared.node_loc[target.index()].local as usize;
        let free = self.nodes[t].eject.free();
        let reserved_count = self.nodes[t].etag_list.len();

        let may_eject = if flit.etag {
            // A returning E-tag flit may use a freed buffer once its
            // reservation is covered by the free count.
            match self.nodes[t].etag_list.iter().position(|&id| id == flit.id) {
                Some(pos) => free > pos,
                None => free > reserved_count, // tagged for another node earlier
            }
        } else {
            free > reserved_count
        };

        if may_eject {
            if flit.etag {
                self.consume_etag(t, flit.id);
                flit.etag = false;
            }
            self.finish_arrival::<TRACE>(now, t, flit, li as u8);
            return;
        }

        // SWAP path (§4.4): bridge endpoint in DRM (or permanently, in
        // escape-buffer mode) with escape space.
        if let NodeKind::BridgeEndpoint { bridge, side } = self.nodes[t].kind {
            let si = shared.side_loc[bridge.index()][side as usize].idx as usize;
            let active = self.sides[si].drm || self.sides[si].cfg.escape_always;
            if active
                && self.sides[si].reserved.len() < self.sides[si].cfg.reserved_cap
                && !self.nodes[t].eject.is_empty()
            {
                // Push the Eject Queue head into a reserved Tx buffer…
                let escaped = self.nodes[t].eject.pop().expect("non-empty");
                self.sides[si].reserved.push(escaped);
                // …eject the traversing flit into the vacated space…
                if flit.etag {
                    self.consume_etag(t, flit.id);
                    flit.etag = false;
                }
                let fid = flit.id;
                flit.settle_recirc(now);
                self.nodes[t].eject.push(flit).expect("space just vacated");
                if TRACE {
                    let record = TraceRecord {
                        cycle: now.raw(),
                        flit: fid,
                        ring: self.ring.id.0,
                        station: s,
                        lane: li as u8,
                        event: FlitEvent::Ejected { node: target.0 },
                    };
                    self.trace.push(record);
                }
                // …and, in SWAP mode, swap the Inject Queue head onto
                // the ring slot in the same cycle. The escape-buffer
                // alternative lacks this simultaneous injection — that
                // is exactly the latency edge §4.4 claims for SWAP.
                if self.sides[si].drm && self.nodes[t].inject.peek().is_some() {
                    self.inject_head::<TRACE>(now, t, li, s);
                    self.stats.swaps.inc();
                    if TRACE {
                        let record = TraceRecord {
                            cycle: now.raw(),
                            flit: fid,
                            ring: self.ring.id.0,
                            station: s,
                            lane: li as u8,
                            event: FlitEvent::SwapTriggered { node: target.0 },
                        };
                        self.trace.push(record);
                    }
                }
                return;
            }
        }

        // Deflect: place an E-tag reservation (once) and circle on.
        let had_etag = flit.etag;
        if !flit.etag {
            flit.etag = true;
            self.nodes[t].etag_list.push_back(flit.id);
            self.stats.etags_placed.inc();
            if TRACE {
                let record = TraceRecord {
                    cycle: now.raw(),
                    flit: flit.id,
                    ring: self.ring.id.0,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::ETagReserved { target: target.0 },
                };
                self.trace.push(record);
            }
        }
        flit.deflections += 1;
        if flit.deflected_since.is_none() {
            // Open a re-circulation episode: every ring cycle from here
            // until the successful ejection is deflection penalty.
            flit.deflected_since = Some(now);
        }
        if had_etag {
            // A deflection of an already-tagged flit defeats the
            // one-lap guarantee once more (§4.1.2).
            flit.etag_laps += 1;
        }
        // Flow accounting charges these counters lazily (at delivery
        // and at sampling boundaries) — nothing to do here.
        self.stats.deflections.inc();
        self.nodes[t].deflected_here += 1;
        if TRACE {
            let record = TraceRecord {
                cycle: now.raw(),
                flit: flit.id,
                ring: self.ring.id.0,
                station: s,
                lane: li as u8,
                event: FlitEvent::Deflected { target: target.0 },
            };
            self.trace.push(record);
        }
        self.ring.lanes[li].put_flit(s, flit);
    }

    fn consume_etag(&mut self, t: usize, flit_id: u64) {
        if let Some(pos) = self.nodes[t].etag_list.iter().position(|&id| id == flit_id) {
            self.nodes[t].etag_list.remove(pos);
        }
    }

    /// Complete an arrival into local node `t`'s eject queue, recording
    /// delivery stats for devices. `lane` is the ring lane the flit
    /// left (or [`NO_LANE`] for the zero-hop local path).
    fn finish_arrival<const TRACE: bool>(
        &mut self,
        now: Cycle,
        t: usize,
        mut flit: Flit,
        lane: u8,
    ) {
        flit.settle_recirc(now);
        let is_device = matches!(self.nodes[t].kind, NodeKind::Device);
        if is_device {
            self.stats.record_delivery(&flit, now);
            if self.flow_topk != 0 {
                // Charge the delivery plus whatever deflections and
                // E-tag laps the window sweeps have not yet seen.
                self.flow_buf.push((
                    flit.src.0,
                    flit.dst.0,
                    FlowDelta {
                        delivered: 1,
                        latency_sum: flit.total_latency(now),
                        itag_waits: u64::from(flit.itag_wait),
                        deflections: u64::from(flit.deflections - flit.charged_deflections),
                        etag_laps: u64::from(flit.etag_laps - flit.charged_etag_laps),
                    },
                ));
            }
            if let Some(p) = &mut self.nodes[t].probe {
                p.record(now, flit.payload_bytes as u64);
            }
        }
        if TRACE {
            let (ring, station) = (self.ring.id.0, self.nodes[t].station);
            let cycle = now.raw();
            self.trace.push(TraceRecord {
                cycle,
                flit: flit.id,
                ring,
                station,
                lane,
                event: FlitEvent::Ejected {
                    node: self.nodes[t].id.0,
                },
            });
            if is_device {
                self.trace.push(TraceRecord {
                    cycle,
                    flit: flit.id,
                    ring,
                    station,
                    lane,
                    event: FlitEvent::Delivered {
                        node: self.nodes[t].id.0,
                        class: flit.class.index() as u8,
                    },
                });
            }
        }
        self.nodes[t]
            .eject
            .push(flit)
            .expect("caller checked eject space");
    }

    /// Pull flits from bridge endpoint eject queues into the outbound
    /// `tx` mailboxes, draining reserved escape buffers first.
    fn bridge_intake<const TRACE: bool>(&mut self, now: Cycle) {
        let nraw = now.raw();
        for si in 0..self.sides.len() {
            let (ep, latency, width, cap) = {
                let side = &self.sides[si];
                (
                    side.endpoint as usize,
                    side.cfg.latency as u64,
                    side.cfg.width_flits_per_cycle as usize,
                    side.cfg.buffer_cap,
                )
            };
            let mut moved = 0usize;
            // Priority: reserved escape buffers drain first.
            while moved < width
                && !self.sides[si].reserved.is_empty()
                && self.sides[si].pipe_len() < cap
            {
                let mut flit = self.sides[si].reserved.remove(0);
                flit.ring_changes += 1;
                if TRACE {
                    self.push_bridge_enqueued(nraw, si, ep, flit.id);
                }
                self.sides[si].tx.push_back((nraw + latency, flit));
                self.sides[si].tx_pushed += 1;
                moved += 1;
            }
            while moved < width
                && !self.nodes[ep].eject.is_empty()
                && self.sides[si].pipe_len() < cap
            {
                let mut flit = self.nodes[ep].eject.pop().expect("non-empty");
                flit.ring_changes += 1;
                if TRACE {
                    self.push_bridge_enqueued(nraw, si, ep, flit.id);
                }
                self.sides[si].tx.push_back((nraw + latency, flit));
                self.sides[si].tx_pushed += 1;
                moved += 1;
            }
        }
    }

    /// Record a flit entering the bridge pipeline at endpoint `ep`.
    fn push_bridge_enqueued(&mut self, cycle: u64, si: usize, ep: usize, flit: u64) {
        self.trace.push(TraceRecord {
            cycle,
            flit,
            ring: self.ring.id.0,
            station: self.nodes[ep].station,
            lane: NO_LANE,
            event: FlitEvent::BridgeEnqueued {
                bridge: self.sides[si].bridge.index() as u16,
            },
        });
    }

    /// Enter/exit deadlock resolution mode per L2 bridge side on this
    /// ring. Reads only this side's escape buffers and its endpoint's
    /// starvation state — both shard-local.
    fn drm_update(&mut self) {
        for si in 0..self.sides.len() {
            if self.sides[si].cfg.level != BridgeLevel::L2 || !self.sides[si].cfg.swap_enabled {
                continue;
            }
            let ep = self.sides[si].endpoint as usize;
            let starve = self.nodes[ep].starve;
            let inject_empty = self.nodes[ep].inject.is_empty();
            let side = &mut self.sides[si];
            let mut entered = false;
            if !side.drm {
                if starve >= side.cfg.deadlock_threshold && !inject_empty {
                    side.drm = true;
                    side.drm_entries += 1;
                    entered = true;
                }
            } else if side.reserved.len() <= side.cfg.drm_exit_occupancy
                && starve < side.cfg.deadlock_threshold
            {
                side.drm = false;
            }
            if entered {
                self.stats.drm_entries.inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Flow attribution (shard-local, deterministic)
    // ------------------------------------------------------------------

    /// Switch flow accounting on with a Space-Saving capacity of `k`
    /// per ring (or off with 0), discarding any prior table. In-flight
    /// charge sweeps run every `stride` sampling windows (clamped to at
    /// least 1).
    pub(crate) fn enable_flow_accounting(&mut self, k: usize, stride: usize) {
        self.flow_topk = k;
        self.flows = FlowTable::new(k);
        self.flow_buf.clear();
        self.link_util = vec![0; self.ring.stations as usize];
        self.flow_charge_stride = stride.max(1);
        self.windows_until_charge = self.flow_charge_stride;
    }

    /// Force the flow table exact *now*: sweep in-flight flits, then
    /// flush everything staged. Called before a postmortem bundle
    /// freezes the table and at `finish_metrics`, so captured flow
    /// rankings never lag behind the charge stride. Resets the stride
    /// countdown — the next window boundary will not sweep again.
    pub(crate) fn charge_and_flush(&mut self) {
        if self.flow_topk == 0 {
            return;
        }
        self.charge_inflight();
        self.flush_flow_events();
        // +1 because a window boundary in the same cycle (finish's
        // final sample) will decrement before checking.
        self.windows_until_charge = self.flow_charge_stride + 1;
    }

    /// Apply the staged flow deltas in sorted (src, dst) order, one
    /// batched table update per distinct flow. Eviction in the
    /// Space-Saving table depends on the sequence of keys it sees; the
    /// sort erases the sweep-order differences between the fast and
    /// reference ticks (see `flow_buf`), and summing a flow's run of
    /// deltas keeps a deflection storm from paying one table lookup
    /// per event.
    fn flush_flow_events(&mut self) {
        if self.flow_buf.is_empty() {
            return;
        }
        let mut buf = core::mem::take(&mut self.flow_buf);
        buf.sort_unstable_by_key(|&(src, dst, _)| (src, dst));
        let mut run = buf.iter();
        let &(mut src, mut dst, mut delta) = run.next().expect("buffer is non-empty");
        for &(s, d, next) in run {
            if (s, d) != (src, dst) {
                self.flows.apply(src, dst, &delta);
                (src, dst, delta) = (s, d, FlowDelta::default());
            }
            delta.merge(&next);
        }
        self.flows.apply(src, dst, &delta);
        buf.clear();
        self.flow_buf = buf;
    }

    /// Credit every station whose ring slot holds a flit with one link
    /// occupancy sample, straight from the occupancy bitsets — no flit
    /// memory touched. Runs at every sampling boundary; the sum over
    /// windows approximates relative link load without per-tick cost.
    fn sample_links(&mut self) {
        let link_util = &mut self.link_util;
        for lane in &self.ring.lanes {
            for (wi, &word) in lane.flit_bits().words().iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    link_util[wi * 64 + w.trailing_zeros() as usize] += 1;
                    w &= w - 1;
                }
            }
        }
    }

    /// Sweep the in-flight flits: charge each one's as-yet-uncharged
    /// deflections and E-tag laps to its flow. Runs every
    /// `flow_charge_stride`-th metrics window plus whenever the table
    /// is frozen (bundle capture, finish), so a wedged flow
    /// (circulating forever, delivering nothing) still climbs the
    /// table while the deflection hot path itself carries no
    /// accounting work.
    fn charge_inflight(&mut self) {
        let flow_buf = &mut self.flow_buf;
        for lane in &mut self.ring.lanes {
            for (_s, flit) in lane.flits_mut() {
                let deflections = flit.deflections - flit.charged_deflections;
                if deflections != 0 {
                    let etag_laps = flit.etag_laps - flit.charged_etag_laps;
                    flit.charged_deflections = flit.deflections;
                    flit.charged_etag_laps = flit.etag_laps;
                    flow_buf.push((
                        flit.src.0,
                        flit.dst.0,
                        FlowDelta {
                            deflections: u64::from(deflections),
                            etag_laps: u64::from(etag_laps),
                            ..FlowDelta::default()
                        },
                    ));
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Observatory sampling (shard-local, deterministic)
    // ------------------------------------------------------------------

    /// Current cumulative counter readings of this shard, in
    /// [`WindowCounters`] form.
    pub(crate) fn counters_now(&self) -> WindowCounters {
        WindowCounters {
            enqueued: self.stats.enqueued.get(),
            injected: self.stats.injected.get(),
            inject_losses: self.stats.inject_losses.get(),
            delivered: self.stats.delivered.get(),
            delivered_bytes: self.stats.delivered_bytes.get(),
            deflections: self.stats.deflections.get(),
            itags_placed: self.stats.itags_placed.get(),
            etags_placed: self.stats.etags_placed.get(),
            drm_entries: self.stats.drm_entries.get(),
            swaps: self.stats.swaps.get(),
            bridge_crossings: self.stats.bridge_crossings.get(),
        }
    }

    /// Reset the window base to the current counter readings (called
    /// when sampling is switched on, so the first window excludes
    /// pre-enable history).
    pub(crate) fn rebase_metrics(&mut self) {
        self.metrics_base = self.counters_now();
    }

    /// Stage one metrics sample: window counter deltas since the last
    /// sample plus instantaneous ring/bridge gauges. Runs inside the
    /// per-ring phase — it reads only shard-local state, so samples are
    /// identical under any execution order. The engine collects the
    /// staged [`StagedSample`]s in ring order at the next epoch
    /// boundary (every cycle for a K=1 tick).
    pub(crate) fn sample_metrics(&mut self, shared: &EngineShared, now: Cycle) {
        let now_counters = self.counters_now();
        let counters = now_counters.delta_since(&self.metrics_base);
        self.metrics_base = now_counters;

        let mut gauges = RingGauges {
            occupancy: self.ring.occupancy() as u64,
            capacity: self.ring.capacity() as u64,
            itag_slots: self.ring.itag_count() as u64,
            ..RingGauges::default()
        };
        for node in &self.nodes {
            gauges.inject_backlog += node.inject.len() as u64;
            gauges.eject_backlog += node.eject.len() as u64;
            gauges.etag_backlog += node.etag_list.len() as u64;
            let starve = node.starve as u64;
            gauges.record_starve(starve);
            gauges.max_starve = gauges.max_starve.max(starve);
            if node.starve >= shared.cfg.itag_threshold {
                gauges.starving_nodes += 1;
            }
        }

        let bridges = self
            .sides
            .iter()
            .map(|side| BridgeGauges {
                bridge: side.bridge.index() as u16,
                side: side.side,
                ring: self.ring.id.0,
                tx_pipe: side.pipe_len() as u32,
                rx_depth: side.rx.len() as u32,
                reserved: side.reserved.len() as u32,
                in_drm: side.drm,
                drm_entries: side.drm_entries,
            })
            .collect();

        let (flows, links) = if self.flow_topk == 0 {
            (Vec::new(), Vec::new())
        } else {
            // Link occupancy and delivery flushes run every window;
            // the in-flight charge sweep only every
            // `flow_charge_stride`-th, to keep steady-state cost down.
            // Forced sweeps (bundle capture, finish) make the table
            // exact whenever it is actually frozen.
            self.sample_links();
            self.windows_until_charge -= 1;
            if self.windows_until_charge == 0 {
                self.charge_inflight();
                self.windows_until_charge = self.flow_charge_stride;
            }
            self.flush_flow_events();
            (self.flows.ranked(), self.link_util.clone())
        };

        // Wrapping: enqueues count at the source shard but deliveries
        // at the destination shard, so one shard's delta may be
        // "negative". The engine's wrapping sum over all shards is the
        // exact global gauge.
        self.pending_metrics.push_back(StagedSample {
            cycle: now.raw(),
            in_flight: self
                .stats
                .enqueued
                .get()
                .wrapping_sub(self.stats.delivered.get()),
            window: RingWindow {
                ring: self.ring.id.0,
                counters,
                gauges,
                bridges,
                flows,
                links,
            },
        });
    }

    /// Contribute this ring's rows to a wait census (see
    /// [`crate::census`]): the ring's slot-pool node with its monotone
    /// progress counter, per-bridge-side transit demand (who on this
    /// ring wants to cross where), raw per-side escape readings for the
    /// engine to pair up across shards, and the placement of every
    /// resident flit's packet. Runs between ticks on owner-held state;
    /// iteration is in lane/station/side order, so the contribution is
    /// deterministic across execution modes.
    ///
    /// `full = false` skips everything that walks individual flits —
    /// transit demand, packet placement, min-packet holders — leaving
    /// only the O(1)-per-resource occupancy and progress readings the
    /// stall-forensics fast path needs.
    pub(crate) fn wait_census_part(
        &self,
        shared: &EngineShared,
        census: &mut WaitCensus,
        full: bool,
    ) -> Vec<SidePart> {
        let ring_id = self.ring.id.0;
        // Transit demand: flits resident on the lanes whose route exits
        // over a bridge, accumulated per (bridge, side).
        let mut transit: Vec<TransitCensus> = Vec::new();
        let mut note_transit = |bridge: u16, side: u8, packet: u64| match transit
            .iter_mut()
            .find(|t| t.bridge == bridge && t.side == side)
        {
            Some(t) => {
                t.count += 1;
                t.min_packet = t.min_packet.min(packet);
            }
            None => transit.push(TransitCensus {
                bridge,
                side,
                count: 1,
                min_packet: packet,
            }),
        };
        if full {
            for lane in &self.ring.lanes {
                for flit in lane.flits() {
                    let packet = census::packet_of(flit.token);
                    census
                        .packet_where
                        .push((packet, PacketPlace::Ring { ring: ring_id }));
                    if let Some(hop) = shared.route.exit(self.ring.id, flit.dst) {
                        if let NodeKind::BridgeEndpoint { bridge, side } =
                            shared.topo.nodes()[hop.target.index()].kind
                        {
                            note_transit(bridge.index() as u16, side, packet);
                        }
                    }
                }
            }
            // Flits queued to inject are pinned to this ring's slot pool
            // exactly like resident flits — they only matter for packet
            // placement, not occupancy (they hold no slot yet).
            for node in &self.nodes {
                for flit in node.inject.iter() {
                    census.packet_where.push((
                        census::packet_of(flit.token),
                        PacketPlace::Ring { ring: ring_id },
                    ));
                }
            }
        }
        transit.sort_unstable_by_key(|t| (t.bridge, t.side));
        census.rings.push(RingCensus {
            ring: ring_id,
            occupancy: self.ring.occupancy() as u64,
            capacity: self.ring.capacity() as u64,
            progress: self.stats.injected.get()
                + self.stats.delivered.get()
                + self.stats.bridge_crossings.get(),
            transit,
        });

        // Raw per-side readings; the engine pairs side A's outbound
        // half with side B's inbound mailbox to form each escape row.
        self.sides
            .iter()
            .map(|side| {
                let bridge = side.bridge.index() as u16;
                let mut min_out = None;
                let mut min_rx = None;
                if full {
                    min_out = side
                        .tx
                        .iter()
                        .map(|(_, f)| census::packet_of(f.token))
                        .chain(side.reserved.iter().map(|f| census::packet_of(f.token)))
                        .min();
                    min_rx = side
                        .rx
                        .iter()
                        .map(|(_, f)| census::packet_of(f.token))
                        .min();
                    for (_, f) in &side.tx {
                        census.packet_where.push((
                            census::packet_of(f.token),
                            PacketPlace::Escape {
                                bridge,
                                side: side.side,
                            },
                        ));
                    }
                    for f in &side.reserved {
                        census.packet_where.push((
                            census::packet_of(f.token),
                            PacketPlace::Escape {
                                bridge,
                                side: side.side,
                            },
                        ));
                    }
                    // Inbound flits belong to the *peer's* escape
                    // resource: they are its pipe contents in flight
                    // toward us.
                    for (_, f) in &side.rx {
                        census.packet_where.push((
                            census::packet_of(f.token),
                            PacketPlace::Escape {
                                bridge,
                                side: 1 - side.side,
                            },
                        ));
                    }
                }
                SidePart {
                    bridge,
                    side: side.side,
                    ring: ring_id,
                    out_occ: (side.tx.len() + side.reserved.len()) as u64,
                    rx_occ: side.rx.len() as u64,
                    min_packet_out: min_out,
                    min_packet_rx: min_rx,
                    tx_pushed: side.tx_pushed,
                    rx_popped: side.rx_popped,
                    pipe_cap: side.cfg.buffer_cap as u64,
                    reserved_cap: side.cfg.reserved_cap as u64,
                    drm: side.drm,
                }
            })
            .collect()
    }

    /// Flits physically inside this shard (queues, slots, mailboxes,
    /// escape buffers), for conservation checks.
    pub(crate) fn resident_flits(&self) -> u64 {
        let mut n = 0u64;
        for node in &self.nodes {
            n += (node.inject.len() + node.eject.len()) as u64;
        }
        n += self.ring.occupancy() as u64;
        for side in &self.sides {
            n += side.resident_flits() as u64;
        }
        n
    }
}
