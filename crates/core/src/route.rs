//! Route computation.
//!
//! Routing in the multi-ring NoC is two-level, mirroring §4.1/§4.3:
//!
//! 1. **Ring graph**: which bridge to take next, precomputed by BFS over
//!    the graph whose vertices are rings and whose edges are bridges
//!    (fewest ring changes; deterministic tie-break on bridge id).
//! 2. **On-ring**: travel to the exit station (either the destination's
//!    own station or the chosen bridge endpoint's station) by the
//!    shortest direction — the cross station's "ring selection".

use crate::ids::{Direction, NodeId, RingId, RingKind};
use crate::topology::Topology;

/// Where a flit on a given ring should leave the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Station at which to eject.
    pub station: u16,
    /// The agent (device or bridge endpoint) to eject into.
    pub target: NodeId,
}

/// Precomputed next-hop table: for every (ring, destination node) pair,
/// the station and agent to eject into on that ring.
///
/// Stored as one dense ring-major array (`ring * stride + node`) so the
/// per-arrival `exit` lookup in the tick hot path is a single indexed
/// load with no nested-`Vec` pointer chase.
#[derive(Debug, Clone)]
pub struct RouteTable {
    /// Exit hop at `ring.index() * stride + node.index()`.
    next: Vec<Option<Hop>>,
    /// Row stride of `next` (= node count at build time).
    stride: usize,
    /// Bridge-count distance between rings (`u32::MAX` = unreachable).
    ring_dist: Vec<Vec<u32>>,
}

impl RouteTable {
    /// Build the table for a validated topology.
    pub fn build(topo: &Topology) -> Self {
        let nrings = topo.rings().len();
        let nodes = topo.nodes();

        // Ring adjacency via bridges (sorted for determinism).
        // adj[ring] = [(neighbor ring, endpoint-on-this-ring NodeId)]
        let mut adj: Vec<Vec<(usize, NodeId)>> = vec![Vec::new(); nrings];
        for br in topo.bridges() {
            let (na, nb) = (&nodes[br.a.index()], &nodes[br.b.index()]);
            adj[na.ring.index()].push((nb.ring.index(), br.a));
            adj[nb.ring.index()].push((na.ring.index(), br.b));
        }
        for a in &mut adj {
            a.sort_by_key(|&(r, n)| (r, n));
        }

        // BFS from every ring for bridge-count distances.
        let mut ring_dist = vec![vec![u32::MAX; nrings]; nrings];
        for (start, dist) in ring_dist.iter_mut().enumerate() {
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(r) = queue.pop_front() {
                for &(nbr, _) in &adj[r] {
                    if dist[nbr] == u32::MAX {
                        dist[nbr] = dist[r] + 1;
                        queue.push_back(nbr);
                    }
                }
            }
        }

        // Equal-cost first hops from `ring` toward `to`: every local
        // bridge endpoint whose neighbor ring is one step closer.
        // Parallel bridges between the same ring pair load-share by
        // hashing the destination node over the candidate set.
        let candidates = |ring: usize, to: usize| -> Vec<NodeId> {
            let d = ring_dist[ring][to];
            if d == u32::MAX || d == 0 {
                return Vec::new();
            }
            adj[ring]
                .iter()
                .filter(|&&(nbr, _)| ring_dist[nbr][to] == d - 1)
                .map(|&(_, via)| via)
                .collect()
        };

        // Exit hop per (ring, destination node), ring-major.
        let stride = nodes.len();
        let mut next = vec![None; nrings * stride];
        for dst in nodes {
            for ring in 0..nrings {
                let hop = if dst.ring.index() == ring {
                    Some(Hop {
                        station: dst.station,
                        target: dst.id,
                    })
                } else {
                    let cands = candidates(ring, dst.ring.index());
                    if cands.is_empty() {
                        None
                    } else {
                        let ep = cands[dst.id.index() % cands.len()];
                        let ep_spec = &nodes[ep.index()];
                        Some(Hop {
                            station: ep_spec.station,
                            target: ep,
                        })
                    }
                };
                next[ring * stride + dst.id.index()] = hop;
            }
        }

        RouteTable {
            next,
            stride,
            ring_dist,
        }
    }

    /// Exit hop on `ring` for a flit destined to `dst`, or `None` when
    /// unreachable.
    #[inline]
    pub fn exit(&self, ring: RingId, dst: NodeId) -> Option<Hop> {
        self.next[ring.index() * self.stride + dst.index()]
    }

    /// Number of ring changes (bridge traversals) between two rings.
    /// `None` when unreachable.
    pub fn ring_changes(&self, from: RingId, to: RingId) -> Option<u32> {
        let d = self.ring_dist[from.index()][to.index()];
        (d != u32::MAX).then_some(d)
    }
}

/// Shortest travel on a ring: direction and hop count from `from` to
/// `to` on a ring with `stations` stations.
///
/// Half rings only travel clockwise. Full rings pick the shorter arc,
/// clockwise on ties (deterministic).
///
/// # Example
///
/// ```
/// use noc_core::route::ring_travel;
/// use noc_core::{Direction, RingKind};
/// let (dir, hops) = ring_travel(RingKind::Full, 8, 1, 7);
/// assert_eq!((dir, hops), (Direction::Ccw, 2));
/// let (dir, hops) = ring_travel(RingKind::Half, 8, 1, 7);
/// assert_eq!((dir, hops), (Direction::Cw, 6));
/// ```
pub fn ring_travel(kind: RingKind, stations: u16, from: u16, to: u16) -> (Direction, u16) {
    let n = stations;
    let cw = (to + n - from) % n;
    match kind {
        RingKind::Half => (Direction::Cw, cw),
        RingKind::Full => {
            let ccw = (from + n - to) % n;
            if cw <= ccw {
                (Direction::Cw, cw)
            } else {
                (Direction::Ccw, ccw)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BridgeConfig;
    use crate::topology::TopologyBuilder;

    fn linear_three_rings() -> (Topology, Vec<NodeId>) {
        let mut b = TopologyBuilder::new();
        let d = b.add_chiplet("die");
        let r0 = b.add_ring(d, RingKind::Full, 8).unwrap();
        let r1 = b.add_ring(d, RingKind::Full, 8).unwrap();
        let r2 = b.add_ring(d, RingKind::Full, 8).unwrap();
        let a = b.add_node("a", r0, 0).unwrap();
        let m = b.add_node("m", r1, 0).unwrap();
        let c = b.add_node("c", r2, 0).unwrap();
        b.add_bridge(BridgeConfig::l1(), r0, 4, r1, 2).unwrap();
        b.add_bridge(BridgeConfig::l1(), r1, 6, r2, 2).unwrap();
        (b.build().unwrap(), vec![a, m, c])
    }

    #[test]
    fn same_ring_exit_is_destination() {
        let (topo, ids) = linear_three_rings();
        let table = RouteTable::build(&topo);
        let hop = table.exit(RingId(0), ids[0]).unwrap();
        assert_eq!(hop.station, 0);
        assert_eq!(hop.target, ids[0]);
    }

    #[test]
    fn cross_ring_exit_is_bridge_endpoint() {
        let (topo, ids) = linear_three_rings();
        let table = RouteTable::build(&topo);
        // From ring 0 toward node on ring 2: exit at the r0-side bridge
        // endpoint (station 4).
        let hop = table.exit(RingId(0), ids[2]).unwrap();
        assert_eq!(hop.station, 4);
        // Target must be a bridge endpoint, not the device.
        assert_ne!(hop.target, ids[2]);
    }

    #[test]
    fn ring_changes_counts_bridges() {
        let (topo, _) = linear_three_rings();
        let table = RouteTable::build(&topo);
        assert_eq!(table.ring_changes(RingId(0), RingId(0)), Some(0));
        assert_eq!(table.ring_changes(RingId(0), RingId(1)), Some(1));
        assert_eq!(table.ring_changes(RingId(0), RingId(2)), Some(2));
    }

    #[test]
    fn ring_travel_shortest_direction() {
        assert_eq!(ring_travel(RingKind::Full, 8, 0, 3), (Direction::Cw, 3));
        assert_eq!(ring_travel(RingKind::Full, 8, 0, 5), (Direction::Ccw, 3));
        // Tie (distance 4 both ways) goes clockwise.
        assert_eq!(ring_travel(RingKind::Full, 8, 0, 4), (Direction::Cw, 4));
        // Same station: zero hops.
        assert_eq!(ring_travel(RingKind::Full, 8, 2, 2), (Direction::Cw, 0));
    }

    #[test]
    fn half_ring_always_clockwise() {
        assert_eq!(ring_travel(RingKind::Half, 6, 5, 0), (Direction::Cw, 1));
        assert_eq!(ring_travel(RingKind::Half, 6, 0, 5), (Direction::Cw, 5));
    }

    #[test]
    fn full_ring_never_exceeds_half_lap() {
        for n in [2u16, 3, 5, 8, 16, 33] {
            for from in 0..n {
                for to in 0..n {
                    let (_, hops) = ring_travel(RingKind::Full, n, from, to);
                    assert!(hops <= n / 2 + (n % 2), "n={n} {from}->{to} hops={hops}");
                }
            }
        }
    }
}
