//! The network engine: cross-station arbitration, I-tag/E-tag
//! starvation and livelock protection, ring bridges and SWAP deadlock
//! resolution — the complete §4 of the paper, cycle by cycle.
//!
//! # Occupancy-indexed tick
//!
//! A cross station is a strict no-op for a lane pass unless at least
//! one of three things is true: the slot at the station carries a flit,
//! the slot carries an I-tag, or a node interface at the station has a
//! non-empty inject queue. The engine maintains one bitset per
//! condition ([`crate::bits::BitRing`]: flit and I-tag bits per lane,
//! pending-injector bits per ring) and the default
//! [`TickMode::Fast`] sweep visits only stations whose merged
//! activity word is non-zero. When a lane is at least half active the
//! index would visit most stations anyway, so the pass falls back to a
//! straight sweep (cheaper per station). The original full sweep is
//! preserved verbatim as [`TickMode::Reference`] (see
//! [`crate::reference`]) and serves as the golden model for the
//! differential tests in `tests/tick_equivalence.rs`.

use crate::config::{BridgeLevel, NetworkConfig};
use crate::error::EnqueueError;
use crate::flit::{Flit, FlitClass};
use crate::ids::{BridgeId, NodeId, RingId};
use crate::queue::Fifo;
use crate::ring::Ring;
use crate::route::{ring_travel, RouteTable};
use crate::stats::{NetStats, TickProfile};
use crate::topology::{NodeKind, Topology};
use noc_sim::{BandwidthProbe, Component, Cycle};
use noc_telemetry::{FlitEvent, NullSink, TraceRecord, TraceSink, NO_FLIT, NO_LANE};
use std::collections::VecDeque;

/// Which sweep implementation [`Network::tick`] uses.
///
/// Both modes simulate the exact same network, cycle for cycle — the
/// differential test suite holds them to identical delivery streams and
/// [`NetStats::fingerprint`]s. They differ only in how stations are
/// enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TickMode {
    /// Occupancy-indexed sweep: visit only stations with a flit, an
    /// I-tag, or a pending injector; fall back to a full sweep on
    /// saturated lanes.
    #[default]
    Fast,
    /// The original exhaustive station walk, kept as the golden model.
    Reference,
}

/// Fast-path lanes fall back to a full sweep when
/// `active * SATURATION_DENOM >= stations * SATURATION_NUM` — i.e. at
/// ≥ 50% activity, where per-station bit extraction stops paying off.
const SATURATION_NUM: usize = 1;
const SATURATION_DENOM: usize = 2;

/// When a tracing sink is attached, every ring's occupancy is sampled
/// into the sink ([`FlitEvent::RingUtil`]) once per this many cycles.
/// Irrelevant for [`NullSink`] networks: the sampling loop is compiled
/// away entirely.
const UTIL_SAMPLE_PERIOD: u64 = 8;

/// Per-node runtime state: the two queues of a node interface plus tag
/// bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    ring: RingId,
    station: u16,
    kind: NodeKind,
    inject: Fifo<Flit>,
    eject: Fifo<Flit>,
    /// Consecutive cycles the head of `inject` failed to win a slot.
    starve: u32,
    /// Whether an I-tagged slot is circulating for this node.
    itag_pending: bool,
    /// E-tag reservations: ids of flits entitled to freed eject buffers,
    /// oldest first.
    etag_list: VecDeque<u64>,
    /// Deflections of flits that targeted this node (diagnostics).
    deflected_here: u64,
    /// I-tags this node has placed on passing slots (diagnostics).
    itags_here: u64,
}

/// Per-bridge runtime state.
#[derive(Debug, Clone)]
struct BridgeState {
    cfg: crate::config::BridgeConfig,
    a: NodeId,
    b: NodeId,
    /// In-flight flits a→b: (ready cycle, flit).
    pipe_ab: VecDeque<(u64, Flit)>,
    /// In-flight flits b→a.
    pipe_ba: VecDeque<(u64, Flit)>,
    /// Reserved escape buffers for each side (used only in DRM).
    reserved: [Vec<Flit>; 2],
    /// Whether each side is in deadlock resolution mode.
    drm: [bool; 2],
}

impl BridgeState {
    fn side_of(&self, node: NodeId) -> usize {
        if node == self.a {
            0
        } else {
            1
        }
    }
}

/// The bufferless multi-ring network.
///
/// Create one from a [`crate::Topology`] and a
/// [`NetworkConfig`], then alternate [`Network::enqueue`] /
/// [`Network::tick`] / [`Network::pop_delivered`].
///
/// # Example
///
/// ```
/// use noc_core::{BridgeConfig, FlitClass, NetworkConfig, Network,
///                RingKind, TopologyBuilder};
///
/// let mut b = TopologyBuilder::new();
/// let die = b.add_chiplet("die0");
/// let ring = b.add_ring(die, RingKind::Full, 8)?;
/// let src = b.add_node("src", ring, 0)?;
/// let dst = b.add_node("dst", ring, 4)?;
/// let mut net = Network::new(b.build()?, NetworkConfig::default());
///
/// net.enqueue(src, dst, FlitClass::Request, 64, 0).unwrap();
/// for _ in 0..20 {
///     net.tick();
/// }
/// let flit = net.pop_delivered(dst).expect("delivered");
/// assert_eq!(flit.src, src);
/// # Ok::<(), noc_core::TopologyError>(())
/// ```
///
/// # Telemetry
///
/// The network is generic over a [`TraceSink`] that receives a
/// [`FlitEvent`] for every lifecycle step (enqueue, arbitration loss,
/// I-tag placement/claim, injection, deflection, E-tag reservation,
/// bridge entry/stall, SWAP, ejection, delivery) plus periodic ring
/// occupancy samples. The default sink is [`NullSink`], whose
/// `ENABLED = false` constant deletes every emission site at
/// monomorphization — a `Network<NullSink>` ticks exactly as fast as a
/// network compiled without telemetry. Attach a real sink with
/// [`Network::with_sink`]:
///
/// ```
/// use noc_core::{FlitClass, Network, NetworkConfig, RingKind, TickMode,
///                TopologyBuilder};
/// use noc_telemetry::RingBufferSink;
///
/// let mut b = TopologyBuilder::new();
/// let die = b.add_chiplet("die0");
/// let ring = b.add_ring(die, RingKind::Full, 8)?;
/// let src = b.add_node("src", ring, 0)?;
/// let dst = b.add_node("dst", ring, 4)?;
/// let mut net = Network::with_sink(
///     b.build()?,
///     NetworkConfig::default(),
///     TickMode::Fast,
///     RingBufferSink::new(4096),
/// );
/// net.enqueue(src, dst, FlitClass::Request, 64, 0).unwrap();
/// for _ in 0..20 {
///     net.tick();
/// }
/// assert_eq!(net.sink().counts().delivered, 1);
/// # Ok::<(), noc_core::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Network<S: TraceSink = NullSink> {
    cfg: NetworkConfig,
    topo: Topology,
    route: RouteTable,
    pub(crate) rings: Vec<Ring>,
    pub(crate) nodes: Vec<NodeState>,
    bridges: Vec<BridgeState>,
    /// Round-robin pointer per (ring, station, lane).
    rr: Vec<Vec<[u8; 2]>>,
    /// Node ids attached per (ring, station): up to two ports.
    ports: Vec<Vec<[Option<NodeId>; 2]>>,
    /// Nodes with a non-empty inject queue per (ring, station): 0–2.
    inject_count: Vec<Vec<u8>>,
    /// Station bit set iff `inject_count > 0`, one bitset per ring.
    inject_bits: Vec<crate::bits::BitRing>,
    mode: TickMode,
    now: Cycle,
    next_flit_id: u64,
    stats: NetStats,
    profile: TickProfile,
    probes: Vec<Option<BandwidthProbe>>,
    sink: S,
}

impl Network {
    /// Instantiate the runtime network for a validated topology, using
    /// the default occupancy-indexed tick ([`TickMode::Fast`]) and no
    /// telemetry ([`NullSink`]).
    pub fn new(topo: Topology, cfg: NetworkConfig) -> Self {
        Self::with_mode(topo, cfg, TickMode::Fast)
    }

    /// Instantiate with an explicit [`TickMode`] and no telemetry.
    /// `Reference` runs the golden-model exhaustive sweep — useful for
    /// differential testing and as a fallback while debugging the
    /// engine itself.
    pub fn with_mode(topo: Topology, cfg: NetworkConfig, mode: TickMode) -> Self {
        Self::with_sink(topo, cfg, mode, NullSink)
    }
}

impl<S: TraceSink> Network<S> {
    /// Instantiate with an explicit [`TraceSink`] receiving the full
    /// flit-lifecycle event stream (see the type-level docs).
    pub fn with_sink(topo: Topology, cfg: NetworkConfig, mode: TickMode, sink: S) -> Self {
        let route = RouteTable::build(&topo);
        let rings: Vec<Ring> = topo
            .rings()
            .iter()
            .map(|r| Ring::new(r.id, r.chiplet, r.kind, r.stations))
            .collect();
        let nodes: Vec<NodeState> = topo
            .nodes()
            .iter()
            .map(|n| NodeState {
                ring: n.ring,
                station: n.station,
                kind: n.kind,
                inject: Fifo::new(cfg.inject_queue_cap),
                eject: Fifo::new(cfg.eject_queue_cap),
                starve: 0,
                itag_pending: false,
                etag_list: VecDeque::new(),
                deflected_here: 0,
                itags_here: 0,
            })
            .collect();
        let bridges: Vec<BridgeState> = topo
            .bridges()
            .iter()
            .map(|b| BridgeState {
                cfg: b.config.clone(),
                a: b.a,
                b: b.b,
                pipe_ab: VecDeque::new(),
                pipe_ba: VecDeque::new(),
                reserved: [Vec::new(), Vec::new()],
                drm: [false, false],
            })
            .collect();
        let mut ports = Vec::with_capacity(rings.len());
        for r in topo.rings() {
            ports.push(vec![[None, None]; r.stations as usize]);
        }
        for n in topo.nodes() {
            ports[n.ring.index()][n.station as usize][n.port as usize] = Some(n.id);
        }
        let rr = topo
            .rings()
            .iter()
            .map(|r| vec![[0u8; 2]; r.stations as usize])
            .collect();
        let inject_count = topo
            .rings()
            .iter()
            .map(|r| vec![0u8; r.stations as usize])
            .collect();
        let inject_bits = topo
            .rings()
            .iter()
            .map(|r| crate::bits::BitRing::new(r.stations as usize))
            .collect();
        let probes = if cfg.probe_window > 0 {
            topo.nodes()
                .iter()
                .map(|n| {
                    matches!(n.kind, NodeKind::Device)
                        .then(|| BandwidthProbe::new(n.name.clone(), cfg.probe_window))
                })
                .collect()
        } else {
            vec![None; topo.nodes().len()]
        };
        Network {
            cfg,
            topo,
            route,
            rings,
            nodes,
            bridges,
            rr,
            ports,
            inject_count,
            inject_bits,
            mode,
            now: Cycle::ZERO,
            next_flit_id: 0,
            stats: NetStats::new(),
            profile: TickProfile::default(),
            probes,
            sink,
        }
    }

    /// The attached trace sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the attached trace sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consume the network, returning the sink (flushed).
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The topology the network was built from.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Which sweep implementation `tick` uses.
    pub fn mode(&self) -> TickMode {
        self.mode
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Engine instrumentation: how much station-visiting work the tick
    /// loop has done (independent of what the network simulated).
    pub fn tick_profile(&self) -> &TickProfile {
        &self.profile
    }

    /// Route table (exit stations, ring-change distances).
    pub fn route(&self) -> &RouteTable {
        &self.route
    }

    /// Flits inside the network (queued, on rings, in bridges) that have
    /// not yet been delivered to a device.
    pub fn in_flight(&self) -> u64 {
        self.stats.outstanding()
    }

    /// Whether `src` currently has room to enqueue another flit.
    pub fn can_enqueue(&self, src: NodeId) -> bool {
        self.nodes
            .get(src.index())
            .is_some_and(|n| !n.inject.is_full())
    }

    /// Enqueue a new single-flit transaction at `src`'s Inject Queue.
    /// Returns the flit id for correlation.
    ///
    /// # Errors
    ///
    /// Fails when the node ids are invalid, equal, not devices, or the
    /// Inject Queue is full (backpressure: retry next cycle).
    pub fn enqueue(
        &mut self,
        src: NodeId,
        dst: NodeId,
        class: FlitClass,
        payload_bytes: u32,
        token: u64,
    ) -> Result<u64, EnqueueError> {
        if src.index() >= self.nodes.len() {
            return Err(EnqueueError::UnknownNode { node: src });
        }
        if dst.index() >= self.nodes.len() {
            return Err(EnqueueError::UnknownNode { node: dst });
        }
        if src == dst {
            return Err(EnqueueError::SelfSend { node: src });
        }
        if !matches!(self.nodes[src.index()].kind, NodeKind::Device) {
            return Err(EnqueueError::NotAddressable { node: src });
        }
        if !matches!(self.nodes[dst.index()].kind, NodeKind::Device) {
            return Err(EnqueueError::NotAddressable { node: dst });
        }
        let id = self.next_flit_id;
        let flit = Flit::new(id, src, dst, class, payload_bytes, token, self.now);
        match self.nodes[src.index()].inject.push(flit) {
            Ok(()) => {
                self.next_flit_id += 1;
                self.stats.enqueued.inc();
                if S::ENABLED {
                    let n = &self.nodes[src.index()];
                    let (ring, station) = (n.ring.0, n.station);
                    self.sink.emit(TraceRecord {
                        cycle: self.now.raw(),
                        flit: id,
                        ring,
                        station,
                        lane: NO_LANE,
                        event: FlitEvent::Enqueued {
                            node: src.0,
                            class: class.index() as u8,
                        },
                    });
                }
                if self.nodes[src.index()].inject.len() == 1 {
                    self.inject_became_nonempty(src.index());
                }
                Ok(id)
            }
            Err(_) => Err(EnqueueError::InjectQueueFull { node: src }),
        }
    }

    /// Pop the oldest flit delivered to device `node`, if any. Devices
    /// must drain their Eject Queues or the network will backpressure
    /// (E-tag deflections).
    pub fn pop_delivered(&mut self, node: NodeId) -> Option<Flit> {
        self.nodes.get_mut(node.index())?.eject.pop()
    }

    /// Number of delivered flits waiting at device `node`.
    pub fn delivered_len(&self, node: NodeId) -> usize {
        self.nodes.get(node.index()).map_or(0, |n| n.eject.len())
    }

    /// Occupied inject-queue depth at `node`.
    pub fn inject_len(&self, node: NodeId) -> usize {
        self.nodes.get(node.index()).map_or(0, |n| n.inject.len())
    }

    /// Deflections charged to flits targeting `node` (diagnostics).
    pub fn deflections_at(&self, node: NodeId) -> u64 {
        self.nodes.get(node.index()).map_or(0, |n| n.deflected_here)
    }

    /// I-tags node `node` has placed on passing slots (diagnostics).
    pub fn itags_placed_by(&self, node: NodeId) -> u64 {
        self.nodes.get(node.index()).map_or(0, |n| n.itags_here)
    }

    /// Per-(ring, station) deflection counts from the engine's built-in
    /// diagnostics — available on any network, [`NullSink`] included —
    /// shaped for [`crate::render::ascii_heatmap`].
    pub fn deflection_cells(&self) -> Vec<Vec<u64>> {
        self.station_cells(|n| n.deflected_here)
    }

    /// Per-(ring, station) I-tag placement counts, shaped for
    /// [`crate::render::ascii_heatmap`].
    pub fn itag_cells(&self) -> Vec<Vec<u64>> {
        self.station_cells(|n| n.itags_here)
    }

    fn station_cells(&self, value: impl Fn(&NodeState) -> u64) -> Vec<Vec<u64>> {
        let mut cells: Vec<Vec<u64>> = self
            .rings
            .iter()
            .map(|r| vec![0u64; r.stations as usize])
            .collect();
        for n in &self.nodes {
            cells[n.ring.index()][n.station as usize] += value(n);
        }
        cells
    }

    /// Current consecutive-injection-failure count at `node`
    /// (diagnostics; feeds I-tag placement and L2 deadlock detection).
    pub fn starve_of(&self, node: NodeId) -> u32 {
        self.nodes.get(node.index()).map_or(0, |n| n.starve)
    }

    /// Outstanding E-tag reservations at `node` (diagnostics).
    pub fn etag_backlog(&self, node: NodeId) -> usize {
        self.nodes
            .get(node.index())
            .map_or(0, |n| n.etag_list.len())
    }

    /// Flits currently riding ring `ring`.
    pub fn ring_occupancy(&self, ring: RingId) -> usize {
        self.rings[ring.index()].occupancy()
    }

    /// Slots of `ring` currently reserved by circulating I-tags.
    pub fn ring_itag_count(&self, ring: RingId) -> usize {
        self.rings[ring.index()].itag_count()
    }

    /// Whether either side of `bridge` is in deadlock resolution mode.
    pub fn bridge_in_drm(&self, bridge: BridgeId) -> bool {
        let b = &self.bridges[bridge.index()];
        b.drm[0] || b.drm[1]
    }

    /// Per-device bandwidth probes (present when
    /// [`NetworkConfig::probe_window`] is non-zero), keyed by node index.
    pub fn probes(&self) -> impl Iterator<Item = (NodeId, &BandwidthProbe)> {
        self.probes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|p| (NodeId(i as u32), p)))
    }

    /// Flush probe windows at end of run.
    pub fn finish_probes(&mut self) {
        let now = self.now;
        for p in self.probes.iter_mut().flatten() {
            p.finish(now);
        }
    }

    /// Total flits physically present anywhere inside the network
    /// (queues, slots, pipelines, escape buffers). Used by conservation
    /// checks.
    pub fn count_resident_flits(&self) -> u64 {
        let mut n = 0u64;
        for node in &self.nodes {
            n += (node.inject.len() + node.eject.len()) as u64;
        }
        for ring in &self.rings {
            n += ring.occupancy() as u64;
        }
        for b in &self.bridges {
            n += (b.pipe_ab.len() + b.pipe_ba.len()) as u64;
            n += (b.reserved[0].len() + b.reserved[1].len()) as u64;
        }
        // Delivered flits still sitting in device eject queues were
        // counted above but are already "delivered" in stats; subtract
        // them so the value matches `in_flight` + undrained deliveries.
        n
    }

    // ------------------------------------------------------------------
    // Occupancy-index maintenance
    // ------------------------------------------------------------------

    /// Record that node `ni`'s inject queue went from empty to
    /// non-empty. Must be called at every such transition.
    #[inline]
    fn inject_became_nonempty(&mut self, ni: usize) {
        let ri = self.nodes[ni].ring.index();
        let s = self.nodes[ni].station as usize;
        let c = &mut self.inject_count[ri][s];
        *c += 1;
        if *c == 1 {
            self.inject_bits[ri].set(s);
        }
    }

    /// Record that node `ni`'s inject queue went from non-empty to
    /// empty. Must be called at every such transition.
    #[inline]
    fn inject_became_empty(&mut self, ni: usize) {
        let ri = self.nodes[ni].ring.index();
        let s = self.nodes[ni].station as usize;
        let c = &mut self.inject_count[ri][s];
        debug_assert!(*c > 0, "inject count underflow at ring {ri} station {s}");
        *c -= 1;
        if *c == 0 {
            self.inject_bits[ri].clear(s);
        }
    }

    // ------------------------------------------------------------------
    // Simulation step
    // ------------------------------------------------------------------

    /// Advance the network by one clock cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.profile.ticks += 1;
        self.bridge_deliver();
        self.local_deliveries();
        match self.mode {
            TickMode::Fast => self.sweep_active(),
            TickMode::Reference => crate::reference::sweep(self),
        }
        for ring in &mut self.rings {
            for lane in &mut ring.lanes {
                lane.advance();
            }
        }
        self.bridge_intake();
        self.drm_update();
        if S::ENABLED && self.now.raw().is_multiple_of(UTIL_SAMPLE_PERIOD) {
            for ri in 0..self.rings.len() {
                let (occupied, capacity) = {
                    let r = &self.rings[ri];
                    (r.occupancy() as u16, r.capacity() as u16)
                };
                self.sink.emit(TraceRecord {
                    cycle: self.now.raw(),
                    flit: NO_FLIT,
                    ring: ri as u16,
                    station: 0,
                    lane: NO_LANE,
                    event: FlitEvent::RingUtil { occupied, capacity },
                });
            }
        }
    }

    /// Occupancy-indexed station walk: per lane, merge the flit, I-tag
    /// and pending-injector bitsets word by word and visit only set
    /// bits, in ascending station order — the same order as the
    /// reference sweep. Correctness rests on `process_station(s)` only
    /// mutating state attached to station `s` (its slot, its ports'
    /// queues, its bridge side), so skipping provably-idle stations and
    /// snapshotting each 64-station word before visiting it cannot
    /// change the outcome.
    fn sweep_active(&mut self) {
        for ri in 0..self.rings.len() {
            let stations = self.rings[ri].stations as usize;
            let nlanes = self.rings[ri].lanes.len();
            let nwords = self.inject_bits[ri].words().len();
            for li in 0..nlanes {
                self.profile.lane_passes += 1;
                self.profile.stations_total += stations as u64;
                let mut active = 0usize;
                for wi in 0..nwords {
                    let lane = &self.rings[ri].lanes[li];
                    let w = lane.flit_bits().words()[wi]
                        | lane.itag_bits().words()[wi]
                        | self.inject_bits[ri].words()[wi];
                    active += w.count_ones() as usize;
                }
                if active * SATURATION_DENOM >= stations * SATURATION_NUM {
                    self.profile.full_lane_sweeps += 1;
                    self.profile.stations_visited += stations as u64;
                    for s in 0..stations as u16 {
                        self.process_station(ri, li, s);
                    }
                    continue;
                }
                for wi in 0..nwords {
                    let lane = &self.rings[ri].lanes[li];
                    let mut w = lane.flit_bits().words()[wi]
                        | lane.itag_bits().words()[wi]
                        | self.inject_bits[ri].words()[wi];
                    while w != 0 {
                        let s = wi * 64 + w.trailing_zeros() as usize;
                        w &= w - 1;
                        self.profile.stations_visited += 1;
                        self.process_station(ri, li, s as u16);
                    }
                }
            }
        }
    }

    /// Move matured bridge-pipeline flits into destination endpoint
    /// inject queues.
    fn bridge_deliver(&mut self) {
        let now = self.now.raw();
        for bi in 0..self.bridges.len() {
            for dir in 0..2 {
                loop {
                    let b = &mut self.bridges[bi];
                    let (pipe, dst) = if dir == 0 {
                        (&mut b.pipe_ab, b.b)
                    } else {
                        (&mut b.pipe_ba, b.a)
                    };
                    let ready = pipe.front().is_some_and(|&(r, _)| r <= now);
                    if !ready || self.nodes[dst.index()].inject.is_full() {
                        if S::ENABLED && ready {
                            // Matured flit held in the pipeline by a full
                            // endpoint Inject Queue: backpressure.
                            let fid = pipe.front().map_or(NO_FLIT, |(_, f)| f.id);
                            let n = &self.nodes[dst.index()];
                            let (ring, station) = (n.ring.0, n.station);
                            self.sink.emit(TraceRecord {
                                cycle: now,
                                flit: fid,
                                ring,
                                station,
                                lane: NO_LANE,
                                event: FlitEvent::BridgeStalled { bridge: bi as u16 },
                            });
                        }
                        break;
                    }
                    let (_, flit) = self.bridges[bi]
                        .pipe_if(dir)
                        .pop_front()
                        .expect("checked non-empty");
                    self.nodes[dst.index()]
                        .inject
                        .push(flit)
                        .expect("checked not full");
                    if self.nodes[dst.index()].inject.len() == 1 {
                        self.inject_became_nonempty(dst.index());
                    }
                    self.stats.bridge_crossings.inc();
                }
            }
        }
    }

    /// Deliver head flits whose exit station equals their source node's
    /// own station without touching the ring (zero-hop path).
    ///
    /// Interactions are confined to one station (a node's zero-hop
    /// target always sits at its own station), so the fast path can
    /// enumerate candidate stations from the pending-injector bits in
    /// any order; [`crate::reference::local_sweep`] walks all nodes.
    fn local_deliveries(&mut self) {
        match self.mode {
            TickMode::Reference => crate::reference::local_sweep(self),
            TickMode::Fast => {
                for ri in 0..self.rings.len() {
                    for wi in 0..self.inject_bits[ri].words().len() {
                        let mut w = self.inject_bits[ri].words()[wi];
                        while w != 0 {
                            let s = wi * 64 + w.trailing_zeros() as usize;
                            w &= w - 1;
                            for port in 0..2 {
                                if let Some(node) = self.ports[ri][s][port] {
                                    self.try_local_delivery(node.index());
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Attempt the zero-hop local delivery for node `i`'s head flit.
    pub(crate) fn try_local_delivery(&mut self, i: usize) {
        let (ring, station) = (self.nodes[i].ring, self.nodes[i].station);
        let Some(head) = self.nodes[i].inject.peek() else {
            return;
        };
        let hop = match self.route.exit(ring, head.dst) {
            Some(h) => h,
            None => return,
        };
        if hop.station != station || hop.target.index() == i {
            return;
        }
        let t = hop.target.index();
        // Normal-flit eject rule: leave reserved buffers alone.
        let free = self.nodes[t].eject.free();
        let reserved = self.nodes[t].etag_list.len();
        if free > reserved {
            let mut flit = self.nodes[i].inject.pop().expect("peeked");
            if self.nodes[i].inject.is_empty() {
                self.inject_became_empty(i);
            }
            flit.injected_at = Some(self.now);
            self.stats.injected.inc();
            if S::ENABLED {
                self.sink.emit(TraceRecord {
                    cycle: self.now.raw(),
                    flit: flit.id,
                    ring: ring.0,
                    station,
                    lane: NO_LANE,
                    event: FlitEvent::Injected { node: i as u32 },
                });
            }
            self.finish_arrival(t, flit, NO_LANE);
            self.nodes[i].starve = 0;
        }
    }

    pub(crate) fn process_station(&mut self, ri: usize, li: usize, s: u16) {
        let ring_id = RingId(ri as u16);
        // ---- arrival / ejection ----
        if let Some(flit) = self.rings[ri].lanes[li].take_flit(s) {
            let hop = self
                .route
                .exit(ring_id, flit.dst)
                .expect("validated topology routes every destination");
            if hop.station == s {
                self.arrive(ri, li, s, hop.target, flit);
            } else {
                self.rings[ri].lanes[li].put_flit(s, flit);
            }
        }
        // ---- injection ----
        let mut injected_port: Option<u8> = None;
        let slot_free = self.rings[ri].lanes[li].flit_at(s).is_none();
        if slot_free {
            let itag = self.rings[ri].lanes[li].itag_at(s);
            if let Some(owner) = itag {
                let o = owner.index();
                if self.nodes[o].ring == ring_id && self.nodes[o].station == s {
                    match self.head_lane(o) {
                        Some(lane) if lane == li => {
                            if S::ENABLED {
                                let fid = self.nodes[o].inject.peek().expect("head checked").id;
                                self.sink.emit(TraceRecord {
                                    cycle: self.now.raw(),
                                    flit: fid,
                                    ring: ri as u16,
                                    station: s,
                                    lane: li as u8,
                                    event: FlitEvent::ITagClaimed { node: o as u32 },
                                });
                            }
                            self.inject_head(o, ri, li, s);
                            injected_port = self.ports[ri][s as usize]
                                .iter()
                                .position(|&p| p == Some(owner))
                                .map(|p| p as u8);
                            self.rings[ri].lanes[li].take_itag(s);
                            self.nodes[o].itag_pending = false;
                        }
                        Some(_) | None => {
                            // Stale tag: head now prefers the other lane
                            // or queue drained. Release the slot.
                            self.rings[ri].lanes[li].take_itag(s);
                            self.nodes[o].itag_pending = false;
                        }
                    }
                }
                // Tag owned by a node elsewhere on the ring: slot stays
                // reserved and passes by.
            } else {
                // Round-robin arbitration between the two interfaces.
                let start = self.rr[ri][s as usize][li];
                for off in 0..2u8 {
                    let port = (start + off) % 2;
                    let Some(node) = self.ports[ri][s as usize][port as usize] else {
                        continue;
                    };
                    let ni = node.index();
                    if self.head_lane(ni) == Some(li) {
                        self.inject_head(ni, ri, li, s);
                        self.rr[ri][s as usize][li] = (port + 1) % 2;
                        injected_port = Some(port);
                        break;
                    }
                }
            }
        }
        // ---- starvation accounting & I-tag placement ----
        for port in 0..2u8 {
            if injected_port == Some(port) {
                continue;
            }
            let Some(node) = self.ports[ri][s as usize][port as usize] else {
                continue;
            };
            let ni = node.index();
            if self.head_lane(ni) != Some(li) {
                continue;
            }
            self.nodes[ni].starve += 1;
            if S::ENABLED {
                let fid = self.nodes[ni].inject.peek().expect("head checked").id;
                self.sink.emit(TraceRecord {
                    cycle: self.now.raw(),
                    flit: fid,
                    ring: ri as u16,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::InjectLost { node: ni as u32 },
                });
            }
            if self.nodes[ni].starve >= self.cfg.itag_threshold
                && !self.nodes[ni].itag_pending
                && self.rings[ri].lanes[li].itag_at(s).is_none()
            {
                self.rings[ri].lanes[li].set_itag(s, node);
                self.nodes[ni].itag_pending = true;
                self.nodes[ni].itags_here += 1;
                self.stats.itags_placed.inc();
                if S::ENABLED {
                    let fid = self.nodes[ni].inject.peek().expect("head checked").id;
                    self.sink.emit(TraceRecord {
                        cycle: self.now.raw(),
                        flit: fid,
                        ring: ri as u16,
                        station: s,
                        lane: li as u8,
                        event: FlitEvent::ITagSet { node: ni as u32 },
                    });
                }
            }
        }
    }

    /// Which lane the head flit of node `ni` wants, if it has one and
    /// needs the ring (local zero-hop deliveries are handled elsewhere).
    fn head_lane(&self, ni: usize) -> Option<usize> {
        let node = &self.nodes[ni];
        let head = node.inject.peek()?;
        let hop = self.route.exit(node.ring, head.dst)?;
        if hop.station == node.station {
            return None; // zero-hop: local delivery path
        }
        let ring = &self.rings[node.ring.index()];
        let (dir, _) = ring_travel(ring.kind, ring.stations, node.station, hop.station);
        Some(dir.lane())
    }

    /// Move node `ni`'s head flit into the (empty) slot at its station.
    fn inject_head(&mut self, ni: usize, ri: usize, li: usize, s: u16) {
        let mut flit = self.nodes[ni].inject.pop().expect("head checked");
        if self.nodes[ni].inject.is_empty() {
            self.inject_became_empty(ni);
        }
        if flit.injected_at.is_none() {
            flit.injected_at = Some(self.now);
            self.stats.injected.inc();
            if S::ENABLED {
                self.sink.emit(TraceRecord {
                    cycle: self.now.raw(),
                    flit: flit.id,
                    ring: ri as u16,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::Injected { node: ni as u32 },
                });
            }
        }
        self.rings[ri].lanes[li].put_flit(s, flit);
        self.nodes[ni].starve = 0;
    }

    /// Handle a flit arriving at its exit station: eject, SWAP, or
    /// deflect with an E-tag.
    fn arrive(&mut self, ri: usize, li: usize, s: u16, target: NodeId, mut flit: Flit) {
        let t = target.index();
        let free = self.nodes[t].eject.free();
        let reserved_count = self.nodes[t].etag_list.len();

        let may_eject = if flit.etag {
            // A returning E-tag flit may use a freed buffer once its
            // reservation is covered by the free count.
            match self.nodes[t].etag_list.iter().position(|&id| id == flit.id) {
                Some(pos) => free > pos,
                None => free > reserved_count, // tagged for another node earlier
            }
        } else {
            free > reserved_count
        };

        if may_eject {
            if flit.etag {
                self.consume_etag(t, flit.id);
                flit.etag = false;
            }
            self.finish_arrival(t, flit, li as u8);
            return;
        }

        // SWAP path (§4.4): bridge endpoint in DRM (or permanently, in
        // escape-buffer mode) with escape space.
        if let NodeKind::BridgeEndpoint { bridge, .. } = self.nodes[t].kind {
            let bi = bridge.index();
            let side = self.bridges[bi].side_of(target);
            let active = self.bridges[bi].drm[side] || self.bridges[bi].cfg.escape_always;
            if active
                && self.bridges[bi].reserved[side].len() < self.bridges[bi].cfg.reserved_cap
                && !self.nodes[t].eject.is_empty()
            {
                // Push the Eject Queue head into a reserved Tx buffer…
                let escaped = self.nodes[t].eject.pop().expect("non-empty");
                self.bridges[bi].reserved[side].push(escaped);
                // …eject the traversing flit into the vacated space…
                if flit.etag {
                    self.consume_etag(t, flit.id);
                    flit.etag = false;
                }
                let fid = flit.id;
                self.nodes[t].eject.push(flit).expect("space just vacated");
                if S::ENABLED {
                    self.sink.emit(TraceRecord {
                        cycle: self.now.raw(),
                        flit: fid,
                        ring: ri as u16,
                        station: s,
                        lane: li as u8,
                        event: FlitEvent::Ejected { node: t as u32 },
                    });
                }
                // …and, in SWAP mode, swap the Inject Queue head onto
                // the ring slot in the same cycle. The escape-buffer
                // alternative lacks this simultaneous injection — that
                // is exactly the latency edge §4.4 claims for SWAP.
                if self.bridges[bi].drm[side] && self.nodes[t].inject.peek().is_some() {
                    self.inject_head(t, ri, li, s);
                    self.stats.swaps.inc();
                    if S::ENABLED {
                        self.sink.emit(TraceRecord {
                            cycle: self.now.raw(),
                            flit: fid,
                            ring: ri as u16,
                            station: s,
                            lane: li as u8,
                            event: FlitEvent::SwapTriggered { node: t as u32 },
                        });
                    }
                }
                return;
            }
        }

        // Deflect: place an E-tag reservation (once) and circle on.
        if !flit.etag {
            flit.etag = true;
            self.nodes[t].etag_list.push_back(flit.id);
            self.stats.etags_placed.inc();
            if S::ENABLED {
                self.sink.emit(TraceRecord {
                    cycle: self.now.raw(),
                    flit: flit.id,
                    ring: ri as u16,
                    station: s,
                    lane: li as u8,
                    event: FlitEvent::ETagReserved { target: t as u32 },
                });
            }
        }
        flit.deflections += 1;
        self.stats.deflections.inc();
        self.nodes[t].deflected_here += 1;
        if S::ENABLED {
            self.sink.emit(TraceRecord {
                cycle: self.now.raw(),
                flit: flit.id,
                ring: ri as u16,
                station: s,
                lane: li as u8,
                event: FlitEvent::Deflected { target: t as u32 },
            });
        }
        self.rings[ri].lanes[li].put_flit(s, flit);
    }

    fn consume_etag(&mut self, t: usize, flit_id: u64) {
        if let Some(pos) = self.nodes[t].etag_list.iter().position(|&id| id == flit_id) {
            self.nodes[t].etag_list.remove(pos);
        }
    }

    /// Complete an arrival into node `t`'s eject queue, recording
    /// delivery stats for devices. `lane` is the ring lane the flit
    /// left (or [`NO_LANE`] for the zero-hop local path).
    fn finish_arrival(&mut self, t: usize, flit: Flit, lane: u8) {
        let is_device = matches!(self.nodes[t].kind, NodeKind::Device);
        if is_device {
            self.stats.record_delivery(&flit, self.now);
            if let Some(p) = &mut self.probes[t] {
                p.record(self.now, flit.payload_bytes as u64);
            }
        }
        if S::ENABLED {
            let (ring, station) = (self.nodes[t].ring.0, self.nodes[t].station);
            let cycle = self.now.raw();
            self.sink.emit(TraceRecord {
                cycle,
                flit: flit.id,
                ring,
                station,
                lane,
                event: FlitEvent::Ejected { node: t as u32 },
            });
            if is_device {
                self.sink.emit(TraceRecord {
                    cycle,
                    flit: flit.id,
                    ring,
                    station,
                    lane,
                    event: FlitEvent::Delivered {
                        node: t as u32,
                        class: flit.class.index() as u8,
                    },
                });
            }
        }
        self.nodes[t]
            .eject
            .push(flit)
            .expect("caller checked eject space");
    }

    /// Record a flit entering bridge `bi`'s pipeline at endpoint `ep`.
    #[inline]
    fn emit_bridge_enqueued(&mut self, bi: usize, ep: NodeId, flit: u64) {
        if S::ENABLED {
            let n = &self.nodes[ep.index()];
            let (ring, station) = (n.ring.0, n.station);
            self.sink.emit(TraceRecord {
                cycle: self.now.raw(),
                flit,
                ring,
                station,
                lane: NO_LANE,
                event: FlitEvent::BridgeEnqueued { bridge: bi as u16 },
            });
        }
    }

    /// Pull flits from bridge endpoint eject queues into the pipelines,
    /// draining reserved escape buffers first.
    fn bridge_intake(&mut self) {
        let now = self.now.raw();
        for bi in 0..self.bridges.len() {
            for side in 0..2 {
                let (ep, latency, width, cap) = {
                    let b = &self.bridges[bi];
                    (
                        if side == 0 { b.a } else { b.b },
                        b.cfg.latency as u64,
                        b.cfg.width_flits_per_cycle as usize,
                        b.cfg.buffer_cap,
                    )
                };
                let mut moved = 0usize;
                // Priority: reserved escape buffers drain first.
                while moved < width
                    && !self.bridges[bi].reserved[side].is_empty()
                    && self.bridges[bi].pipe_if_len(side) < cap
                {
                    let mut flit = self.bridges[bi].reserved[side].remove(0);
                    flit.ring_changes += 1;
                    self.emit_bridge_enqueued(bi, ep, flit.id);
                    self.bridges[bi]
                        .pipe_for_side(side)
                        .push_back((now + latency, flit));
                    moved += 1;
                }
                while moved < width
                    && !self.nodes[ep.index()].eject.is_empty()
                    && self.bridges[bi].pipe_if_len(side) < cap
                {
                    let mut flit = self.nodes[ep.index()].eject.pop().expect("non-empty");
                    flit.ring_changes += 1;
                    self.emit_bridge_enqueued(bi, ep, flit.id);
                    self.bridges[bi]
                        .pipe_for_side(side)
                        .push_back((now + latency, flit));
                    moved += 1;
                }
            }
        }
    }

    /// Enter/exit deadlock resolution mode per L2 bridge side.
    fn drm_update(&mut self) {
        for bi in 0..self.bridges.len() {
            if self.bridges[bi].cfg.level != BridgeLevel::L2 || !self.bridges[bi].cfg.swap_enabled {
                continue;
            }
            for side in 0..2 {
                let ep = if side == 0 {
                    self.bridges[bi].a
                } else {
                    self.bridges[bi].b
                };
                let starve = self.nodes[ep.index()].starve;
                let b = &mut self.bridges[bi];
                if !b.drm[side] {
                    if starve >= b.cfg.deadlock_threshold
                        && !self.nodes[ep.index()].inject.is_empty()
                    {
                        b.drm[side] = true;
                        self.stats.drm_entries.inc();
                    }
                } else if b.reserved[side].len() <= b.cfg.drm_exit_occupancy
                    && starve < b.cfg.deadlock_threshold
                {
                    b.drm[side] = false;
                }
            }
        }
    }
}

impl BridgeState {
    fn pipe_if(&mut self, dir: usize) -> &mut VecDeque<(u64, Flit)> {
        if dir == 0 {
            &mut self.pipe_ab
        } else {
            &mut self.pipe_ba
        }
    }

    /// Pipeline that carries flits AWAY from `side`.
    fn pipe_for_side(&mut self, side: usize) -> &mut VecDeque<(u64, Flit)> {
        if side == 0 {
            &mut self.pipe_ab
        } else {
            &mut self.pipe_ba
        }
    }

    fn pipe_if_len(&self, side: usize) -> usize {
        if side == 0 {
            self.pipe_ab.len()
        } else {
            self.pipe_ba.len()
        }
    }
}

impl<S: TraceSink> Component for Network<S> {
    fn tick(&mut self, _now: Cycle) {
        Network::tick(self);
    }

    fn busy(&self) -> bool {
        self.in_flight() > 0
    }
}
